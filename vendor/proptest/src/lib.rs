//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset the workspace's property tests use: the
//! `proptest!` macro with `arg in strategy` bindings, range strategies
//! over numeric types, `proptest::collection::vec`, and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros. Each test
//! runs a fixed number of deterministic cases seeded from the test name,
//! so failures are reproducible; there is no shrinking.

use std::ops::Range;

/// Number of generated cases per property test.
pub const CASES: usize = 64;

/// Deterministic case generator handed to [`Strategy::new_value`].
#[derive(Debug, Clone)]
pub struct TestRunner {
    state: u64,
}

impl TestRunner {
    /// Runner seeded from a test name (deterministic across runs).
    pub fn new(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Self { state: h }
    }

    /// Number of cases to run.
    pub fn cases(&self) -> usize {
        CASES
    }

    /// Next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// How one proptest case ended early.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` failed; skip the case.
    Reject,
    /// `prop_assert*!` failed; fail the test with this message.
    Fail(String),
}

impl TestCaseError {
    /// A failing case with a message.
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }

    /// A rejected (skipped) case.
    pub fn reject() -> Self {
        TestCaseError::Reject
    }
}

/// A generator of values for one macro binding.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn new_value(&self, runner: &mut TestRunner) -> Self::Value;
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn new_value(&self, runner: &mut TestRunner) -> f64 {
        self.start + runner.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn new_value(&self, runner: &mut TestRunner) -> f32 {
        self.start + runner.next_f64() as f32 * (self.end - self.start)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn new_value(&self, runner: &mut TestRunner) -> $t {
                    let span = (self.end - self.start) as u64;
                    assert!(span > 0, "empty integer range strategy");
                    self.start + (runner.next_u64() % span) as $t
                }
            }
        )*
    };
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn new_value(&self, runner: &mut TestRunner) -> $t {
                    let span = (self.end as i128 - self.start as i128) as u128;
                    assert!(span > 0, "empty integer range strategy");
                    (self.start as i128 + (runner.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*
    };
}

signed_range_strategy!(i8, i16, i32, i64, isize);

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRunner};
    use std::ops::Range;

    /// Strategy producing `Vec`s with element strategy `S` and a length
    /// drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// `proptest::collection::vec(element_strategy, length_range)`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, runner: &mut TestRunner) -> Vec<S::Value> {
            let n = Strategy::new_value(&self.len, runner);
            (0..n).map(|_| self.elem.new_value(runner)).collect()
        }
    }
}

pub mod prelude {
    //! Everything the `proptest!` macro body needs in scope.

    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, Strategy, TestCaseError, TestRunner,
    };
}

/// Define property tests: each `fn name(arg in strategy, …) { body }`
/// becomes a `#[test]` running [`CASES`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut runner = $crate::TestRunner::new(stringify!($name));
                for case in 0..runner.cases() {
                    $(
                        let $arg = $crate::Strategy::new_value(&($strat), &mut runner);
                    )*
                    let result: ::std::result::Result<(), $crate::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match result {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => continue,
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("proptest {} failed at case {case}: {msg}", stringify!($name))
                        }
                    }
                }
            }
        )*
    };
}

/// Assert inside a proptest body; failure reports the generated case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assert inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let left = $a;
        let right = $b;
        if left != right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} == {:?}` ({} == {})",
                left,
                right,
                stringify!($a),
                stringify!($b)
            )));
        }
    }};
}

/// Skip the current case unless a precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 1.5f64..2.5, n in 3u64..7, k in 0usize..4) {
            prop_assert!((1.5..2.5).contains(&x));
            prop_assert!((3..7).contains(&n));
            prop_assert!(k < 4);
        }

        #[test]
        fn vec_strategy_length(v in collection::vec(0.0f64..1.0, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            for x in &v {
                prop_assert!((0.0..1.0).contains(x), "out of range: {x}");
            }
        }

        #[test]
        fn assume_skips(n in 0u64..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn runner_is_deterministic() {
        let mut a = TestRunner::new("t");
        let mut b = TestRunner::new("t");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(
            TestRunner::new("t").next_u64(),
            TestRunner::new("u").next_u64()
        );
    }
}
