//! Minimal read-only memory mapping for the PrivTree suite.
//!
//! This is a deliberately tiny, dependency-free shim over `mmap(2)` /
//! `munmap(2)`: it maps a whole file `PROT_READ` + `MAP_SHARED`, exposes
//! the mapping as `&[u8]`, and unmaps on drop. Nothing else — no
//! resizing, no writes, no advice hints.
//!
//! Safety model: a [`Mmap`] owns its mapping for its whole lifetime, so
//! the returned byte slice is valid as long as the `Mmap` is alive. The
//! mapping is read-only, so it is `Send + Sync`. The one caveat every
//! caller must respect is external truncation: shrinking the mapped file
//! while the mapping is live turns reads past EOF into `SIGBUS`. The
//! PrivTree catalog never rewrites release files in place — it publishes
//! via atomic rename — so a mapping taken from a catalog stays backed by
//! the original inode even after the catalog entry is replaced or
//! removed.
//!
//! On non-unix targets the same API is provided by reading the file into
//! an owned buffer, so callers never need to `cfg` on the platform.

use std::fs::File;
use std::io;
use std::path::Path;

#[cfg(unix)]
mod unix {
    use super::*;
    use std::os::unix::io::AsRawFd;

    use std::ffi::{c_int, c_void};

    const PROT_READ: c_int = 1;
    const MAP_SHARED: c_int = 1;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }

    /// A read-only, shared mapping of an entire file.
    pub struct Mmap {
        /// Null iff the file was empty (zero-length maps are invalid for
        /// `mmap(2)`, so an empty file is represented without a mapping).
        ptr: *mut c_void,
        len: usize,
    }

    // The mapping is immutable for its whole lifetime and `munmap` runs
    // once in `Drop`, so shared references from any thread are fine.
    unsafe impl Send for Mmap {}
    unsafe impl Sync for Mmap {}

    impl Mmap {
        /// Map `path` read-only in its entirety.
        pub fn open(path: &Path) -> io::Result<Mmap> {
            let file = File::open(path)?;
            let len = file.metadata()?.len();
            if len > usize::MAX as u64 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "file too large to map",
                ));
            }
            let len = len as usize;
            if len == 0 {
                return Ok(Mmap {
                    ptr: std::ptr::null_mut(),
                    len: 0,
                });
            }
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_SHARED,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize == -1 {
                return Err(io::Error::last_os_error());
            }
            // the fd can be closed immediately; the mapping keeps the
            // inode alive on its own
            Ok(Mmap { ptr, len })
        }

        /// The mapped bytes. Empty iff the file was empty.
        pub fn bytes(&self) -> &[u8] {
            if self.len == 0 {
                return &[];
            }
            // SAFETY: ptr/len come from a successful PROT_READ mapping
            // that lives until Drop.
            unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
        }

        /// Length of the mapping in bytes.
        pub fn len(&self) -> usize {
            self.len
        }

        /// Whether the mapped file was empty.
        pub fn is_empty(&self) -> bool {
            self.len == 0
        }
    }

    impl Drop for Mmap {
        fn drop(&mut self) {
            if self.len != 0 {
                // SAFETY: exactly the region returned by mmap in `open`.
                unsafe {
                    munmap(self.ptr, self.len);
                }
            }
        }
    }

    impl std::fmt::Debug for Mmap {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Mmap").field("len", &self.len).finish()
        }
    }
}

#[cfg(not(unix))]
mod fallback {
    use super::*;

    /// Portable stand-in: owns a full copy of the file. Same API shape,
    /// no page-cache sharing.
    #[derive(Debug)]
    pub struct Mmap {
        buf: Vec<u8>,
    }

    impl Mmap {
        pub fn open(path: &Path) -> io::Result<Mmap> {
            Ok(Mmap {
                buf: std::fs::read(path)?,
            })
        }

        pub fn bytes(&self) -> &[u8] {
            &self.buf
        }

        pub fn len(&self) -> usize {
            self.buf.len()
        }

        pub fn is_empty(&self) -> bool {
            self.buf.is_empty()
        }
    }
}

#[cfg(unix)]
pub use unix::Mmap;

#[cfg(not(unix))]
pub use fallback::Mmap;

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("privtree-mmap-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn maps_file_contents() {
        let path = temp_path("basic");
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        std::fs::write(&path, &payload).unwrap();
        let map = Mmap::open(&path).unwrap();
        assert_eq!(map.len(), payload.len());
        assert_eq!(map.bytes(), &payload[..]);
        drop(map);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_file_maps_to_empty_slice() {
        let path = temp_path("empty");
        std::fs::write(&path, b"").unwrap();
        let map = Mmap::open(&path).unwrap();
        assert!(map.is_empty());
        assert_eq!(map.bytes(), b"");
        drop(map);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_an_io_error() {
        assert!(Mmap::open(Path::new("/definitely/not/here.ptbin")).is_err());
    }

    #[cfg(unix)]
    #[test]
    fn mapping_survives_unlink() {
        // the property the catalog relies on: atomic-rename publishes can
        // replace or remove a file while existing mappings stay valid
        let path = temp_path("unlink");
        let payload = vec![42u8; 4096 * 3 + 17];
        std::fs::write(&path, &payload).unwrap();
        let map = Mmap::open(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(map.bytes(), &payload[..]);
    }

    #[test]
    fn mapping_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Mmap>();
    }
}
