//! Offline stand-in for the `criterion` crate.
//!
//! Implements the small slice of the criterion API the workspace's benches
//! use — `Criterion::default().sample_size(n)`, `bench_function`,
//! `Bencher::iter`, and the `criterion_group!`/`criterion_main!` macros —
//! with straightforward wall-clock timing. Results are printed one line
//! per benchmark: median, mean, and throughput-free total over the sample.

use std::time::{Duration, Instant};

/// True when the bench binary was invoked with `--test`
/// (`cargo bench -- --test`), real criterion's smoke mode: benches should
/// run a quick configuration (this shim also drops the default sample
/// count to 2) and skip committing measurement artifacts.
pub fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// Benchmark driver. Collects `sample_size` timed samples per benchmark
/// and reports summary statistics on stdout.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: if test_mode() { 2 } else { 10 },
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark (min 2).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run one benchmark: `f` receives a [`Bencher`] whose `iter` is the
    /// routine under measurement.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut b);
        b.report(id);
        self
    }
}

/// Handle passed to the benchmark closure; `iter` times the routine.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine` over `sample_size` samples (one call each, after a
    /// single untimed warm-up call).
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        std::hint::black_box(routine()); // warm-up
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    fn report(&mut self, id: &str) {
        if self.samples.is_empty() {
            println!("{id}: no samples (Bencher::iter never called)");
            return;
        }
        self.samples.sort_unstable();
        let median = self.samples[self.samples.len() / 2];
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        println!(
            "{id}: median {:?}, mean {:?} over {} samples",
            median,
            mean,
            self.samples.len()
        );
    }
}

/// Declare a benchmark group: a function that runs each target with a
/// fresh [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                {
                    let mut c = $crate::Criterion::default();
                    $target(&mut c);
                }
            )+
        }
    };
}

/// Declare the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_times_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0;
        c.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        // 1 warm-up + 3 samples
        assert_eq!(runs, 4);
    }
}
