//! Offline stand-in for the `rand` crate.
//!
//! The container this workspace builds in has no access to crates.io, so
//! this shim provides exactly the API surface the suite consumes — the
//! [`Rng`] / [`RngExt`] traits, [`SeedableRng`], and [`rngs::StdRng`] —
//! with a deterministic xoshiro256++ generator behind it. Everything in
//! the workspace that samples randomness is a pure function of a `u64`
//! seed, which is the only property the experiments rely on.

/// A source of random `u64`s.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an [`Rng`].
pub trait Random: Sized {
    /// Draw one uniform value.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Random for u64 {
    #[inline]
    fn random<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Random for u32 {
    #[inline]
    fn random<R: Rng + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Random for usize {
    #[inline]
    fn random<R: Rng + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Random for u8 {
    #[inline]
    fn random<R: Rng + ?Sized>(rng: &mut R) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}

impl Random for bool {
    #[inline]
    fn random<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

impl Random for f64 {
    /// Uniform on `[0, 1)` with 53 bits of precision.
    #[inline]
    fn random<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    /// Uniform on `[0, 1)` with 24 bits of precision.
    #[inline]
    fn random<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Convenience sampling methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// Draw a uniform value of type `T` (`rng.random::<f64>()` etc).
    #[inline]
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose entire output stream is determined by
    /// `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64: used to expand a `u64` seed into generator state.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    //! Concrete generators.

    use super::{splitmix64, Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256++, seeded via
    /// SplitMix64. Deterministic, fast, and statistically solid for the
    /// Monte-Carlo checks in the test suite.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngExt, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..100_000 {
            let x = rng.random::<f64>();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 100_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn works_through_unsized_refs() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.random::<f64>()
        }
        let mut rng = StdRng::seed_from_u64(2);
        let dynrng: &mut dyn Rng = &mut rng;
        assert!((0.0..1.0).contains(&draw(dynrng)));
    }

    #[test]
    fn u32_and_bool_are_balanced() {
        let mut rng = StdRng::seed_from_u64(3);
        let trues = (0..10_000).filter(|_| rng.random::<bool>()).count();
        assert!((4_500..5_500).contains(&trues), "trues = {trues}");
    }
}
