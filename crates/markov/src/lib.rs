//! Private Markov models for sequence data (Section 4 of the paper).
//!
//! * [`data`] — sequence datasets with `$`/`&` padding and the l⊤
//!   truncation of Section 4.2.
//! * [`domain`] — the PST [`privtree_core::TreeDomain`] with the
//!   Eq. (13) score `c(v) = ‖hist(v)‖₁ − max_x hist(v)[x]`.
//! * [`pst`] — released prediction suffix trees: histogram storage, the
//!   Eq. (12) string-frequency estimator, and synthetic-sequence sampling.
//! * [`private`] — the modified-PrivTree pipeline (Theorems 4.1/4.2): tree
//!   at ε/β, leaf histograms at ε(β−1)/β, negative clamping.
//! * [`topk`] — exact and model-based top-k frequent string mining
//!   (Figure 6).
//! * [`ngram`] — the N-gram baseline of Chen et al. \[6\].
//! * [`em`] — the exponential-mechanism baseline (Section 6.2).

pub mod data;
pub mod domain;
pub mod em;
pub mod ngram;
pub mod private;
pub mod pst;
pub mod topk;

pub use data::SequenceDataset;
pub use domain::{PstDomain, PstNode};
pub use ngram::{ngram_model, NGramModel};
pub use private::{exact_pst, private_pst};
pub use pst::{synthesize_dataset, PstModel, SequenceModel};
pub use topk::{exact_topk, model_topk};
