//! Released prediction suffix trees: the Markov model consumers query.
//!
//! A [`PstModel`] couples the decomposition tree (edge-labelled contexts)
//! with one prediction histogram per node. It implements the two
//! operations of Section 4.1:
//!
//! * **string-frequency estimation** (Eq. 12): walk the query string,
//!   multiplying by the conditional probability of each symbol given the
//!   deepest context whose predictor is a suffix of the prefix so far;
//! * **synthetic-sequence sampling**: repeatedly sample the next symbol
//!   from the histogram of the deepest matching context until `&`.

use privtree_core::tree::{NodeId, Tree};
use rand::{Rng, RngExt};

/// Behaviour shared by sequence models (the PST and the N-gram baseline),
/// so the top-k miner and the Figure 7 generator are model-agnostic.
pub trait SequenceModel {
    /// Alphabet size |I|.
    fn alphabet(&self) -> usize;

    /// Estimated number of times the string `s` (symbols over I) appears
    /// across the dataset's sequences.
    fn estimate_count(&self, s: &[u8]) -> f64;

    /// Sample one synthetic sequence (without markers), cut off at
    /// `max_len` symbols.
    fn sample_sequence<R: Rng + ?Sized>(&self, rng: &mut R, max_len: usize) -> Vec<u8>;
}

/// Sample a complete synthetic dataset from a model — the Figure 7 task
/// ("apply PrivTree and other existing methods to generate synthetic
/// sequence data") as a one-liner. Because the model is a postprocessing
/// of an ε-DP release, the synthetic dataset inherits the ε-DP guarantee.
pub fn synthesize_dataset<M: SequenceModel, R: Rng + ?Sized>(
    model: &M,
    n: usize,
    max_len: usize,
    rng: &mut R,
) -> Vec<Vec<u8>> {
    (0..n)
        .map(|_| model.sample_sequence(rng, max_len))
        .collect()
}

/// Payload of a released PST node: the edge symbol that was prepended to
/// the parent's predictor (`None` at the root).
#[derive(Debug, Clone)]
pub struct PstPayload {
    /// Edge symbol: `0..alphabet` for symbols of I, `alphabet + 1` for `$`.
    pub edge: Option<u8>,
}

/// A released prediction suffix tree with per-node histograms.
#[derive(Debug, Clone)]
pub struct PstModel {
    tree: Tree<PstPayload>,
    /// per node: counts over `I ∪ {&}` (index `alphabet` = `&`)
    hists: Vec<Vec<f64>>,
    alphabet: usize,
    start_symbol: u8,
}

impl PstModel {
    /// Assemble a model from its parts (used by the construction
    /// pipelines in [`crate::private`]).
    pub fn from_parts(
        tree: Tree<PstPayload>,
        hists: Vec<Vec<f64>>,
        alphabet: usize,
        start_symbol: u8,
    ) -> Self {
        assert_eq!(tree.len(), hists.len());
        assert!(hists.iter().all(|h| h.len() == alphabet + 1));
        Self {
            tree,
            hists,
            alphabet,
            start_symbol,
        }
    }

    /// The decomposition tree.
    pub fn tree(&self) -> &Tree<PstPayload> {
        &self.tree
    }

    /// Histogram of a node (counts over `I ∪ {&}`).
    pub fn hist(&self, v: NodeId) -> &[f64] {
        &self.hists[v.index()]
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.tree.len()
    }

    /// The `$` symbol id.
    pub fn start_symbol(&self) -> u8 {
        self.start_symbol
    }

    /// Child of `v` along edge symbol `sym` (a symbol of I or `$`).
    /// Children are stored in the fixed order `0, …, |I|−1, $`.
    fn child(&self, v: NodeId, sym: u8) -> Option<NodeId> {
        let slot = if sym == self.start_symbol {
            self.alphabet
        } else {
            sym as usize
        };
        self.tree.children(v).nth(slot)
    }

    /// The deepest node whose predictor is a suffix of the padded prefix
    /// `prefix` (most recent symbol last, `$` first).
    pub fn node_for_context(&self, prefix: &[u8]) -> NodeId {
        let mut cur = self.tree.root();
        for &sym in prefix.iter().rev() {
            match self.child(cur, sym) {
                Some(c) => cur = c,
                None => break,
            }
        }
        cur
    }

    /// The conditional distribution of the next symbol given the padded
    /// prefix; `None` if the matched histogram is all zeros.
    fn next_symbol_weights(&self, prefix: &[u8]) -> Option<&[f64]> {
        // back off to shallower contexts until one has mass
        let mut path = vec![self.tree.root()];
        let mut cur = self.tree.root();
        for &sym in prefix.iter().rev() {
            match self.child(cur, sym) {
                Some(c) => {
                    cur = c;
                    path.push(c);
                }
                None => break,
            }
        }
        while let Some(v) = path.pop() {
            let h = &self.hists[v.index()];
            if h.iter().sum::<f64>() > 0.0 {
                return Some(h);
            }
        }
        None
    }
}

impl SequenceModel for PstModel {
    fn alphabet(&self) -> usize {
        self.alphabet
    }

    /// Eq. (12): `ans = hist(v1)[x1] · Π_{i≥2} hist(v_i)[x_i] / ‖hist(v_i)‖₁`
    /// with `v_i` the longest-suffix node of `$ x1 … x_{i−1}`.
    fn estimate_count(&self, s: &[u8]) -> f64 {
        assert!(!s.is_empty());
        debug_assert!(s.iter().all(|x| (*x as usize) < self.alphabet));
        let root_hist = &self.hists[self.tree.root().index()];
        let mut ans = root_hist[s[0] as usize].max(0.0);
        if ans == 0.0 {
            return 0.0;
        }
        // The context is the *unanchored* prefix x1…x_{i−1} — the paper's
        // worked example matches sq = AB against dom = A (not dom = $A),
        // because string occurrences are counted anywhere in a sequence.
        let mut prefix = Vec::with_capacity(s.len());
        prefix.push(s[0]);
        for &x in &s[1..] {
            let v = self.node_for_context(&prefix);
            let h = &self.hists[v.index()];
            let mag: f64 = h.iter().sum();
            if mag <= 0.0 {
                return 0.0;
            }
            ans *= (h[x as usize].max(0.0)) / mag;
            prefix.push(x);
        }
        ans
    }

    fn sample_sequence<R: Rng + ?Sized>(&self, rng: &mut R, max_len: usize) -> Vec<u8> {
        let mut prefix = vec![self.start_symbol];
        let mut out = Vec::new();
        while out.len() < max_len {
            let Some(h) = self.next_symbol_weights(&prefix) else {
                break;
            };
            let total: f64 = h.iter().sum();
            let mut t = rng.random::<f64>() * total;
            let mut sym = self.alphabet; // defaults to & on float drift
            for (i, w) in h.iter().enumerate() {
                t -= w;
                if t <= 0.0 {
                    sym = i;
                    break;
                }
            }
            if sym == self.alphabet {
                break; // sampled &: the sequence ends
            }
            out.push(sym as u8);
            prefix.push(sym as u8);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::SequenceDataset;
    use crate::private::exact_pst;
    use privtree_dp::rng::seeded;

    /// The Figure 3 dataset (A=0, B=1).
    fn figure3_model() -> PstModel {
        let data = SequenceDataset::new(
            &[vec![1], vec![0, 1], vec![0, 0, 1], vec![0, 0, 0, 1]],
            2,
            50,
        );
        // expand every node with any occurrences (θ = −1 keeps splitting
        // while c(v) ≥ 0 > θ... use θ = 0: split while c(v) > 0)
        exact_pst(&data, 0.0, Some(4))
    }

    #[test]
    fn section_4_1_worked_example() {
        // "consider a query sequence sq = AB … we return ans = 3"
        let m = figure3_model();
        let est = m.estimate_count(&[0, 1]); // AB
        assert!((est - 3.0).abs() < 1e-9, "est = {est}");
    }

    #[test]
    fn single_symbol_estimates_are_root_counts() {
        let m = figure3_model();
        assert_eq!(m.estimate_count(&[0]), 6.0); // A appears 6 times
        assert_eq!(m.estimate_count(&[1]), 4.0); // B appears 4 times
    }

    #[test]
    fn estimate_of_impossible_string_is_zero() {
        let m = figure3_model();
        // BB never occurs; hist(B) = (0,0,4) so P(B|B) = 0
        assert_eq!(m.estimate_count(&[1, 1]), 0.0);
    }

    #[test]
    fn longer_strings_never_increase_estimates() {
        let m = figure3_model();
        let e_a = m.estimate_count(&[0]);
        let e_aa = m.estimate_count(&[0, 0]);
        let e_aab = m.estimate_count(&[0, 0, 1]);
        assert!(e_aa <= e_a);
        assert!(e_aab <= e_aa);
    }

    #[test]
    fn sampling_reproduces_length_statistics() {
        let m = figure3_model();
        // the model was fit on sequences of length 1..4 ending in B; with
        // the PST's exact histograms, samples should end after a B
        let mut rng = seeded(3);
        for _ in 0..200 {
            let s = m.sample_sequence(&mut rng, 50);
            assert!(!s.is_empty());
            assert_eq!(*s.last().unwrap(), 1, "sequences end with B: {s:?}");
            assert!(s.len() <= 10);
        }
    }

    #[test]
    fn sampling_respects_max_len() {
        let m = figure3_model();
        let mut rng = seeded(4);
        for _ in 0..50 {
            assert!(m.sample_sequence(&mut rng, 2).len() <= 2);
        }
    }

    #[test]
    fn synthesize_dataset_shape() {
        let m = figure3_model();
        let data = synthesize_dataset(&m, 50, 20, &mut seeded(9));
        assert_eq!(data.len(), 50);
        assert!(data.iter().all(|s| s.len() <= 20));
        assert!(data.iter().all(|s| s.iter().all(|x| *x < 2)));
        // deterministic
        let again = synthesize_dataset(&m, 50, 20, &mut seeded(9));
        assert_eq!(data, again);
    }

    #[test]
    fn node_for_context_walks_to_deepest_match() {
        let m = figure3_model();
        // context $A: the node with predictor $A exists in the exact PST
        let v = m.node_for_context(&[m.start_symbol(), 0]);
        assert_eq!(m.tree().depth(v), 2);
        // unknown context falls back to the deepest existing suffix
        let v2 = m.node_for_context(&[1, 1, 1, 0]);
        assert!(m.tree().depth(v2) >= 1);
    }
}
