//! EM — the exponential-mechanism baseline for top-k frequent string
//! mining (Section 6.2).
//!
//! "It first initializes a set R that contains |I| strings of length 1 …
//! After that, it invokes the exponential mechanism k times. In each
//! invocation, it selects the most frequent string r from R with
//! differential privacy, and then replaces r in R with |I| strings, each
//! of which is obtained by adding a symbol to the end of r."
//!
//! Each selection spends ε/k; the utility (a string's occurrence count)
//! has sensitivity l⊤ because one sequence contributes at most l⊤
//! occurrences of any string.

use privtree_dp::budget::Epsilon;
use privtree_dp::exponential::exponential_mechanism;
use rand::Rng;

use crate::data::SequenceDataset;
use crate::topk::{substring_counts, MAX_PATTERN_LEN};

/// Run the EM top-k miner; returns the k selected strings in selection
/// order. Candidate strings are capped at `max_len` symbols.
pub fn em_topk<R: Rng + ?Sized>(
    data: &SequenceDataset,
    k: usize,
    max_len: usize,
    epsilon: Epsilon,
    rng: &mut R,
) -> Vec<Vec<u8>> {
    assert!(k >= 1);
    let max_len = max_len.min(MAX_PATTERN_LEN);
    let alphabet = data.alphabet();
    // one up-front pass caches every candidate count we could ever need
    let counts = substring_counts(data, max_len);
    let count_of = |s: &[u8]| -> f64 {
        let mut key = (s.len() as u64) << 60;
        for (i, &x) in s.iter().enumerate() {
            key |= (x as u64) << (5 * i);
        }
        counts.get(&key).copied().unwrap_or(0) as f64
    };

    let eps_round = Epsilon::new(epsilon.get() / k as f64).expect("k >= 1");
    let sensitivity = data.l_top() as f64;

    let mut candidates: Vec<Vec<u8>> = (0..alphabet as u8).map(|a| vec![a]).collect();
    let mut selected = Vec::with_capacity(k);
    for _round in 0..k {
        if candidates.is_empty() {
            break;
        }
        let utilities: Vec<f64> = candidates.iter().map(|c| count_of(c)).collect();
        let idx = exponential_mechanism(&utilities, eps_round, sensitivity, rng)
            .expect("candidates non-empty");
        let chosen = candidates.swap_remove(idx);
        if chosen.len() < max_len {
            for a in 0..alphabet as u8 {
                let mut ext = chosen.clone();
                ext.push(a);
                candidates.push(ext);
            }
        }
        selected.push(chosen);
    }
    selected
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topk::exact_topk;
    use privtree_dp::rng::seeded;
    use rand::RngExt;

    fn skewed_data(n: usize, seed: u64) -> SequenceDataset {
        let mut rng = seeded(seed);
        let seqs: Vec<Vec<u8>> = (0..n)
            .map(|_| {
                let l = 2 + (rng.random::<u64>() % 5) as usize;
                (0..l)
                    .map(|_| {
                        let r = rng.random::<f64>();
                        if r < 0.6 {
                            0u8
                        } else if r < 0.9 {
                            1
                        } else {
                            2
                        }
                    })
                    .collect()
            })
            .collect();
        SequenceDataset::new(&seqs, 3, 10)
    }

    #[test]
    fn returns_k_distinct_strings() {
        let data = skewed_data(1000, 1);
        let out = em_topk(&data, 10, 6, Epsilon::new(1.0).unwrap(), &mut seeded(2));
        assert_eq!(out.len(), 10);
        let mut dedup = out.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 10, "selections must be distinct");
    }

    #[test]
    fn high_epsilon_finds_the_top_string() {
        let data = skewed_data(5000, 3);
        let exact = exact_topk(&data, 1, 6);
        let mut hits = 0;
        for rep in 0..10 {
            let out = em_topk(
                &data,
                1,
                6,
                Epsilon::new(100.0).unwrap(),
                &mut seeded(10 + rep),
            );
            if out[0] == exact[0] {
                hits += 1;
            }
        }
        assert!(hits >= 8, "top-1 recovered only {hits}/10 times");
    }

    #[test]
    fn precision_degrades_with_k() {
        // the paper: "Its accuracy degrades with the increase of k, since a
        // larger k requires it to inject more noise into the selection"
        let data = skewed_data(5000, 5);
        let eps = Epsilon::new(0.8).unwrap();
        let prec = |k: usize, seed: u64| {
            let exact = exact_topk(&data, k, 6);
            let got = em_topk(&data, k, 6, eps, &mut seeded(seed));
            let hit = got.iter().filter(|s| exact.contains(s)).count();
            hit as f64 / k as f64
        };
        let mut p_small = 0.0;
        let mut p_large = 0.0;
        for rep in 0..5 {
            p_small += prec(5, 100 + rep);
            p_large += prec(60, 200 + rep);
        }
        assert!(
            p_small >= p_large,
            "precision@5 {p_small} should be ≥ precision@60 {p_large}"
        );
    }

    #[test]
    fn respects_max_len() {
        let data = skewed_data(500, 7);
        for s in em_topk(&data, 30, 3, Epsilon::new(1.0).unwrap(), &mut seeded(8)) {
            assert!(s.len() <= 3);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let data = skewed_data(500, 9);
        let a = em_topk(&data, 5, 6, Epsilon::new(1.0).unwrap(), &mut seeded(10));
        let b = em_topk(&data, 5, 6, Epsilon::new(1.0).unwrap(), &mut seeded(10));
        assert_eq!(a, b);
    }
}
