//! Construction pipelines for PST models.
//!
//! The private pipeline follows Section 4.2 exactly:
//!
//! 1. run the modified PrivTree over the PST domain with fanout
//!    β = |I| + 1, score Eq. (13), sensitivity l⊤, and privacy budget
//!    ε/β (Theorem 4.1);
//! 2. derive each **leaf**'s exact prediction histogram and add Laplace
//!    noise of scale `l⊤·β/(ε(β−1))` to every count — i.e. the
//!    postprocessing budget ε(β−1)/β of Theorem 4.2;
//! 3. compute every internal node's histogram as the sum of its
//!    descendant leaves' noisy histograms;
//! 4. clamp negative counts to zero.

use privtree_core::nonprivate::nonprivate_tree;
use privtree_core::params::PrivTreeParams;
use privtree_core::privtree::build_privtree;
use privtree_core::tree::{NodeId, Tree};
use privtree_dp::budget::Epsilon;
use privtree_dp::laplace::Laplace;
use rand::Rng;

use crate::data::SequenceDataset;
use crate::domain::{PstDomain, PstNode};
use crate::pst::{PstModel, PstPayload};

/// Build a PST model with ε-differential privacy (Theorems 4.1 + 4.2 via
/// Lemma 2.1 composition).
pub fn private_pst<R: Rng + ?Sized>(
    data: &SequenceDataset,
    epsilon: Epsilon,
    rng: &mut R,
) -> Result<PstModel, Box<dyn std::error::Error>> {
    let beta = data.alphabet() + 1;
    // Section 4.2 budget split: tree ε/β, histograms ε(β−1)/β
    let parts = epsilon.split(&[1.0, beta as f64 - 1.0])?;
    let (eps_tree, eps_hist) = (parts[0], parts[1]);

    let mut domain = PstDomain::new(data);
    let params =
        PrivTreeParams::from_epsilon_with_sensitivity(eps_tree, beta, data.l_top() as f64)?;
    let tree = build_privtree(&mut domain, &params, rng)?;

    // leaf histograms + Laplace(l⊤/ε_hist), summed upward, clamped
    let noise = Laplace::centered(data.l_top() as f64 / eps_hist.get())?;
    Ok(assemble_model(
        data,
        &domain,
        tree,
        |h, rng| {
            for c in h.iter_mut() {
                *c += noise.sample(rng);
            }
        },
        rng,
    ))
}

/// Build the noise-free PST that splits every node with score above
/// `theta` (the reference model for tests and the non-private upper
/// bound).
pub fn exact_pst(data: &SequenceDataset, theta: f64, max_depth: Option<u32>) -> PstModel {
    let mut domain = PstDomain::new(data);
    let tree = nonprivate_tree(&mut domain, theta, max_depth);
    let mut rng = privtree_dp::rng::seeded(0); // unused by the no-op noiser
    assemble_model(data, &domain, tree, |_h, _rng| {}, &mut rng)
}

/// Shared assembly: derive leaf histograms (noised by `noisify`),
/// aggregate to internal nodes, clamp, and package a [`PstModel`].
fn assemble_model<R: Rng + ?Sized>(
    data: &SequenceDataset,
    domain: &PstDomain<'_>,
    tree: Tree<PstNode>,
    mut noisify: impl FnMut(&mut [f64], &mut R),
    rng: &mut R,
) -> PstModel {
    let k = data.alphabet() + 1;
    let mut hists = vec![vec![0.0f64; k]; tree.len()];
    for v in tree.leaf_ids() {
        let mut h = domain.hist(tree.payload(v));
        noisify(&mut h, rng);
        hists[v.index()] = h;
    }
    // arena order puts parents before children, so accumulate in reverse
    let ids: Vec<NodeId> = tree.ids().collect();
    for &v in ids.iter().rev() {
        if let Some(p) = tree.parent(v) {
            let (head, tail) = hists.split_at_mut(v.index());
            let parent_h = &mut head[p.index()];
            for (a, b) in parent_h.iter_mut().zip(&tail[0]) {
                *a += b;
            }
        }
    }
    for h in &mut hists {
        for c in h.iter_mut() {
            if *c < 0.0 {
                *c = 0.0;
            }
        }
    }
    let released = tree.map(|_, n| PstPayload { edge: n.edge });
    PstModel::from_parts(released, hists, data.alphabet(), data.start_symbol())
}

#[cfg(test)]
mod tests {
    use super::*;
    use privtree_dp::rng::seeded;

    fn figure3_data() -> SequenceDataset {
        SequenceDataset::new(
            &[vec![1], vec![0, 1], vec![0, 0, 1], vec![0, 0, 0, 1]],
            2,
            50,
        )
    }

    fn mixed_data(n: usize, seed: u64) -> SequenceDataset {
        use rand::RngExt;
        let mut rng = seeded(seed);
        let seqs: Vec<Vec<u8>> = (0..n)
            .map(|_| {
                let l = 1 + (rng.random::<u64>() % 8) as usize;
                // sticky two-symbol chains: 0 tends to repeat, 1 ends runs
                let mut s = Vec::with_capacity(l);
                let mut cur = (rng.random::<u64>() % 3) as u8;
                for _ in 0..l {
                    s.push(cur);
                    if rng.random::<f64>() < 0.3 {
                        cur = (rng.random::<u64>() % 3) as u8;
                    }
                }
                s
            })
            .collect();
        SequenceDataset::new(&seqs, 3, 10)
    }

    #[test]
    fn exact_model_reproduces_figure_3_counts() {
        let data = figure3_data();
        let m = exact_pst(&data, 0.0, Some(6));
        // root histogram
        assert_eq!(m.hist(m.tree().root()), &[6.0, 4.0, 4.0]);
    }

    #[test]
    fn internal_hist_is_sum_of_leaf_hists() {
        let data = mixed_data(500, 1);
        let m = private_pst(&data, Epsilon::new(4.0).unwrap(), &mut seeded(2)).unwrap();
        let tree = m.tree();
        for v in tree.internal_ids() {
            // internal = Σ children (clamping happens after aggregation,
            // so compare only when all involved values are non-negative…
            // clamp(0) applies to the stored values; recompute tolerance)
            let child_sum: Vec<f64> = tree.children(v).fold(vec![0.0; 4], |mut acc, c| {
                for (a, b) in acc.iter_mut().zip(m.hist(c)) {
                    *a += b;
                }
                acc
            });
            for (a, b) in m.hist(v).iter().zip(&child_sum) {
                // clamping can only LIFT stored values above the raw sums
                assert!(*a + 1e-9 >= b.min(0.0), "a={a}, b={b}");
            }
        }
    }

    #[test]
    fn histograms_are_non_negative() {
        let data = mixed_data(200, 3);
        // tiny ε ⇒ lots of noise ⇒ clamping must kick in
        let m = private_pst(&data, Epsilon::new(0.05).unwrap(), &mut seeded(4)).unwrap();
        for v in m.tree().ids() {
            assert!(m.hist(v).iter().all(|c| *c >= 0.0));
        }
    }

    #[test]
    fn private_estimates_approach_exact_with_large_epsilon() {
        use crate::pst::SequenceModel;
        let data = mixed_data(5000, 5);
        let exact = exact_pst(&data, 0.0, Some(6));
        let private = private_pst(&data, Epsilon::new(50.0).unwrap(), &mut seeded(6)).unwrap();
        for s in [&[0u8][..], &[1], &[0, 0], &[2, 1]] {
            let e = exact.estimate_count(s);
            let p = private.estimate_count(s);
            let denom = e.max(50.0);
            assert!(
                (e - p).abs() / denom < 0.25,
                "string {s:?}: exact {e} vs private {p}"
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        use crate::pst::SequenceModel;
        let data = mixed_data(300, 7);
        let a = private_pst(&data, Epsilon::new(1.0).unwrap(), &mut seeded(8)).unwrap();
        let b = private_pst(&data, Epsilon::new(1.0).unwrap(), &mut seeded(8)).unwrap();
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.estimate_count(&[0]), b.estimate_count(&[0]));
    }

    #[test]
    fn smaller_epsilon_grows_smaller_trees() {
        let data = mixed_data(5000, 9);
        let mut small_eps_nodes = 0;
        let mut large_eps_nodes = 0;
        for rep in 0..5 {
            small_eps_nodes +=
                private_pst(&data, Epsilon::new(0.05).unwrap(), &mut seeded(10 + rep))
                    .unwrap()
                    .node_count();
            large_eps_nodes +=
                private_pst(&data, Epsilon::new(8.0).unwrap(), &mut seeded(20 + rep))
                    .unwrap()
                    .node_count();
        }
        assert!(
            small_eps_nodes <= large_eps_nodes,
            "ε=0.05 nodes {small_eps_nodes} vs ε=8 nodes {large_eps_nodes}"
        );
    }
}
