//! Top-k frequent string mining (the Figure 6 task).
//!
//! * [`exact_topk`] — ground truth: exhaustive substring counting.
//! * [`model_topk`] — best-first enumeration over a released sequence
//!   model, using the fact that the Eq. (12) estimate can only shrink as
//!   a string grows (each step multiplies by a probability ≤ 1).

use std::collections::{BinaryHeap, HashMap};

use crate::data::SequenceDataset;
use crate::pst::SequenceModel;

/// Longest substring the packed-key counters support (5 bits per symbol).
pub const MAX_PATTERN_LEN: usize = 12;

/// Pack a string of symbols (< 32) into a u64 key with its length.
fn pack(s: &[u8]) -> u64 {
    debug_assert!(s.len() <= MAX_PATTERN_LEN);
    let mut key = (s.len() as u64) << 60;
    for (i, &x) in s.iter().enumerate() {
        debug_assert!(x < 32);
        key |= (x as u64) << (5 * i);
    }
    key
}

/// Invert [`pack`].
fn unpack(key: u64) -> Vec<u8> {
    let len = (key >> 60) as usize;
    (0..len).map(|i| ((key >> (5 * i)) & 31) as u8).collect()
}

/// Exact occurrence counts of every substring of length `1..=max_len`
/// across the dataset's (truncated) sequences.
pub fn substring_counts(data: &SequenceDataset, max_len: usize) -> HashMap<u64, u64> {
    let max_len = max_len.min(MAX_PATTERN_LEN);
    let mut counts: HashMap<u64, u64> = HashMap::new();
    for i in 0..data.len() {
        let raw = data.raw(i);
        for start in 0..raw.len() {
            let end_max = (start + max_len).min(raw.len());
            for end in (start + 1)..=end_max {
                *counts.entry(pack(&raw[start..end])).or_insert(0) += 1;
            }
        }
    }
    counts
}

/// The exact top-k most frequent substrings (ties broken by packed key
/// for determinism).
pub fn exact_topk(data: &SequenceDataset, k: usize, max_len: usize) -> Vec<Vec<u8>> {
    let counts = substring_counts(data, max_len);
    let mut entries: Vec<(u64, u64)> = counts.into_iter().collect();
    entries.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    entries
        .into_iter()
        .take(k)
        .map(|(key, _)| unpack(key))
        .collect()
}

#[derive(PartialEq)]
struct HeapItem {
    est: f64,
    string: Vec<u8>,
}

impl Eq for HeapItem {}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.est
            .total_cmp(&other.est)
            // deterministic tie-break: shorter, then lexicographically
            // smaller strings first
            .then_with(|| other.string.len().cmp(&self.string.len()))
            .then_with(|| other.string.cmp(&self.string))
    }
}

/// Best-first top-k extraction from a sequence model.
///
/// Because the model's estimate is monotone non-increasing under string
/// extension, a max-heap expansion enumerates strings in estimate order:
/// when a string is popped, nothing still in the heap (or any extension
/// of it) can beat it.
pub fn model_topk<M: SequenceModel>(model: &M, k: usize, max_len: usize) -> Vec<Vec<u8>> {
    let alphabet = model.alphabet();
    let mut heap = BinaryHeap::new();
    for a in 0..alphabet as u8 {
        let est = model.estimate_count(&[a]);
        if est > 0.0 {
            heap.push(HeapItem {
                est,
                string: vec![a],
            });
        }
    }
    let mut out = Vec::with_capacity(k);
    let pop_cap = (k * alphabet * max_len).max(1000) * 4;
    let mut pops = 0usize;
    while let Some(item) = heap.pop() {
        pops += 1;
        if item.string.len() < max_len {
            for a in 0..alphabet as u8 {
                let mut ext = item.string.clone();
                ext.push(a);
                let est = model.estimate_count(&ext);
                if est > 0.0 {
                    heap.push(HeapItem { est, string: ext });
                }
            }
        }
        out.push(item.string);
        if out.len() >= k || pops >= pop_cap {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::private::exact_pst;

    fn tiny_data() -> SequenceDataset {
        // "00" dominates, then "01"
        SequenceDataset::new(&[vec![0, 0, 0], vec![0, 0, 1], vec![0, 1], vec![1]], 2, 50)
    }

    #[test]
    fn pack_unpack_round_trip() {
        for s in [vec![0u8], vec![1, 2, 3], vec![17; 12], vec![4, 0, 4]] {
            assert_eq!(unpack(pack(&s)), s);
        }
    }

    #[test]
    fn exact_counts_by_hand() {
        let data = tiny_data();
        let counts = substring_counts(&data, 3);
        // "0" occurs 3+2+1 = 6 times, "1" occurs 0+1+1+1 = 3 times
        assert_eq!(counts[&pack(&[0])], 6);
        assert_eq!(counts[&pack(&[1])], 3);
        // "00" occurs 2+1 = 3 times, "01" occurs 1+1 = 2 times
        assert_eq!(counts[&pack(&[0, 0])], 3);
        assert_eq!(counts[&pack(&[0, 1])], 2);
        // "000" occurs once
        assert_eq!(counts[&pack(&[0, 0, 0])], 1);
    }

    #[test]
    fn exact_topk_order() {
        let data = tiny_data();
        let top = exact_topk(&data, 4, 3);
        assert_eq!(top[0], vec![0]);
        assert_eq!(top[1], vec![1]); // 3 occurrences, ties with "00"…
                                     // "1" (count 3) and "00" (count 3) tie; packed-key order puts the
                                     // shorter string first
        assert_eq!(top[2], vec![0, 0]);
        assert_eq!(top[3], vec![0, 1]);
    }

    #[test]
    fn model_topk_matches_exact_on_noise_free_model() {
        let data = tiny_data();
        let model = exact_pst(&data, 0.0, Some(6));
        let from_model = model_topk(&model, 3, 3);
        assert_eq!(from_model[0], vec![0]);
        // the model's estimates for deeper strings are products of
        // conditionals, which reproduce relative order of the top strings
        assert!(from_model.contains(&vec![0, 0]) || from_model.contains(&vec![1]));
    }

    #[test]
    fn model_topk_larger_dataset_precision() {
        use privtree_dp::rng::seeded;
        use rand::RngExt;
        // skewed Markov-ish data: symbol 0 dominates
        let mut rng = seeded(1);
        let seqs: Vec<Vec<u8>> = (0..3000)
            .map(|_| {
                let l = 2 + (rng.random::<u64>() % 6) as usize;
                (0..l)
                    .map(|_| {
                        let r = rng.random::<f64>();
                        if r < 0.5 {
                            0u8
                        } else if r < 0.8 {
                            1
                        } else {
                            2
                        }
                    })
                    .collect()
            })
            .collect();
        let data = SequenceDataset::new(&seqs, 3, 12);
        let model = exact_pst(&data, 0.0, Some(8));
        let exact = exact_topk(&data, 20, 6);
        let estimated = model_topk(&model, 20, 6);
        let hits = estimated.iter().filter(|s| exact.contains(s)).count();
        assert!(
            hits >= 14,
            "noise-free model should recover most of the exact top-20, got {hits}"
        );
    }

    #[test]
    fn model_topk_respects_max_len() {
        let data = tiny_data();
        let model = exact_pst(&data, 0.0, Some(6));
        for s in model_topk(&model, 10, 2) {
            assert!(s.len() <= 2);
        }
    }
}
