//! The PST [`TreeDomain`]: prediction-suffix-tree contexts with the
//! Eq. (13) score.
//!
//! A node's predictor string `dom(v)` is stored reversed (`ctx\[0\]` is the
//! symbol immediately before the predicted position). Each node owns a
//! contiguous segment of a shared occurrence array of `(sequence,
//! position)` pairs: position `j` of a padded sequence belongs to node `v`
//! iff `dom(v)` matches the padded prefix ending at `j − 1`. Splitting a
//! node partitions its segment in place by the symbol one step further
//! back; occurrences whose context window ran past the sequence head
//! simply drop out (they belong to no child).
//!
//! Condition C1 of Section 4.2 — a predictor starting with `$` cannot be
//! extended — maps to `split() == None`.
//!
//! The shared occurrence array is a plain `Vec` owned by the domain (no
//! `RefCell`): splits take `&mut self` per the [`TreeDomain`] contract,
//! so [`PstDomain`] is `Send` and frontier levels can be split in batch.

use privtree_core::domain::TreeDomain;

use crate::data::SequenceDataset;

/// A PST node during construction.
#[derive(Debug, Clone)]
pub struct PstNode {
    /// The symbol this node prepended to its parent's predictor (`None`
    /// for the root). Symbol `alphabet + 1` encodes `$`.
    pub edge: Option<u8>,
    /// `true` once the predictor starts with `$` (condition C1).
    c1_blocked: bool,
    start: u32,
    end: u32,
    depth: u16,
}

impl PstNode {
    /// Number of occurrences of this node's predictor (with a following
    /// symbol) in the dataset — the magnitude `‖hist(v)‖₁`.
    pub fn occurrence_count(&self) -> usize {
        (self.end - self.start) as usize
    }
}

/// The PST domain over a [`SequenceDataset`].
pub struct PstDomain<'a> {
    data: &'a SequenceDataset,
    occ: Vec<(u32, u32)>,
}

impl<'a> PstDomain<'a> {
    /// Build the domain; the root's occurrences are every predicted
    /// position of every padded sequence.
    pub fn new(data: &'a SequenceDataset) -> Self {
        let mut occ = Vec::with_capacity(data.total_positions());
        for (i, p) in data.iter_padded().enumerate() {
            for j in 1..p.len() {
                occ.push((i as u32, j as u32));
            }
        }
        Self { data, occ }
    }

    /// The dataset.
    pub fn data(&self) -> &SequenceDataset {
        self.data
    }

    /// The prediction histogram of a node: counts over `I ∪ {&}`
    /// (index `alphabet` is `&`).
    pub fn hist(&self, node: &PstNode) -> Vec<f64> {
        let mut h = vec![0.0f64; self.data.alphabet() + 1];
        for &(seq, pos) in &self.occ[node.start as usize..node.end as usize] {
            let sym = self.data.padded(seq as usize)[pos as usize] as usize;
            debug_assert!(sym <= self.data.alphabet());
            h[sym] += 1.0;
        }
        h
    }

    /// The Eq. (13) score computed directly from a histogram.
    pub fn score_of_hist(hist: &[f64]) -> f64 {
        let total: f64 = hist.iter().sum();
        let max = hist.iter().copied().fold(0.0f64, f64::max);
        total - max
    }
}

impl TreeDomain for PstDomain<'_> {
    type Node = PstNode;

    fn root(&self) -> PstNode {
        PstNode {
            edge: None,
            c1_blocked: false,
            start: 0,
            end: self.occ.len() as u32,
            depth: 0,
        }
    }

    fn fanout(&self) -> usize {
        // |I| + 1 children: each symbol of I plus `$`
        self.data.alphabet() + 1
    }

    fn split(&mut self, node: &PstNode) -> Option<Vec<PstNode>> {
        // C1: predictors starting with $ cannot grow
        if node.c1_blocked {
            return None;
        }
        // predictors longer than any padded prefix are pointless
        if node.depth as usize > self.data.l_top() + 1 {
            return None;
        }
        let alphabet = self.data.alphabet();
        let start_sym = self.data.start_symbol();
        let k = alphabet + 1; // children: symbols 0..alphabet-1, then $
        let depth = node.depth as usize;

        let seg = &mut self.occ[node.start as usize..node.end as usize];

        // classify: child = symbol at pos − depth − 1, or drop if the
        // context window leaves the padded sequence
        let mut labels = Vec::with_capacity(seg.len());
        let mut sizes = vec![0u32; k + 1]; // last bucket = dropped
        for &(seq, pos) in seg.iter() {
            let back = pos as i64 - depth as i64 - 1;
            let label = if back < 0 {
                k
            } else {
                let sym = self.data.padded(seq as usize)[back as usize];
                if sym == start_sym {
                    alphabet // the `$` child is at index |I|
                } else {
                    sym as usize // regular symbol child (END can never
                                 // appear before another symbol)
                }
            };
            labels.push(label as u8);
            sizes[label] += 1;
        }
        let mut offsets = vec![0u32; k + 2];
        for j in 0..=k {
            offsets[j + 1] = offsets[j] + sizes[j];
        }
        let mut scratch = vec![(0u32, 0u32); seg.len()];
        let mut cursor = offsets.clone();
        for (i, &pair) in seg.iter().enumerate() {
            let j = labels[i] as usize;
            scratch[cursor[j] as usize] = pair;
            cursor[j] += 1;
        }
        seg.copy_from_slice(&scratch);

        Some(
            (0..k)
                .map(|j| {
                    let edge = if j == alphabet {
                        self.data.start_symbol()
                    } else {
                        j as u8
                    };
                    PstNode {
                        edge: Some(edge),
                        c1_blocked: j == alphabet,
                        start: node.start + offsets[j],
                        end: node.start + offsets[j + 1],
                        depth: node.depth + 1,
                    }
                })
                .collect(),
        )
    }

    fn score(&self, node: &PstNode) -> f64 {
        Self::score_of_hist(&self.hist(node))
    }

    /// Pool-backed batch scoring. Unlike the quadtree's O(1) segment
    /// lengths, the Eq. (13) score scans every occurrence of a node, so a
    /// frontier level is a real fan-out: each score is an independent
    /// noise-free read of shared state, chunked by occurrence count and
    /// collected in input order (bit-identical to the sequential loop for
    /// every worker count).
    #[cfg(feature = "parallel")]
    fn score_frontier(&self, nodes: &[&PstNode]) -> Vec<f64> {
        /// Fan out only when the level scans at least this many
        /// occurrences; below it the loop is cheaper than the dispatch.
        const PARALLEL_OCC_THRESHOLD: usize = 1 << 14;

        let total: usize = nodes.iter().map(|n| n.occurrence_count()).sum();
        let pool = privtree_runtime::global();
        if pool.workers() <= 1 || nodes.len() <= 1 || total < PARALLEL_OCC_THRESHOLD {
            return nodes.iter().map(|n| self.score(n)).collect();
        }
        pool.map_vec_weighted(
            nodes.to_vec(),
            |n| n.occurrence_count().max(1),
            |n| Self::score_of_hist(&self.hist(n)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privtree_core::domain::TreeDomain;

    /// The Figure 3 dataset: s1=$B&, s2=$AB&, s3=$AAB&, s4=$AAAB& with
    /// I = {A, B} encoded as A=0, B=1.
    pub(crate) fn figure3_data() -> SequenceDataset {
        SequenceDataset::new(
            &[vec![1], vec![0, 1], vec![0, 0, 1], vec![0, 0, 0, 1]],
            2,
            50,
        )
    }

    #[test]
    fn root_histogram_matches_figure_3() {
        let data = figure3_data();
        let dom = PstDomain::new(&data);
        let root = dom.root();
        // v1: A:6 | B:4 | &:4
        assert_eq!(dom.hist(&root), vec![6.0, 4.0, 4.0]);
        // c(v1) = 14 − 6 = 8
        assert_eq!(dom.score(&root), 8.0);
    }

    #[test]
    fn first_level_histograms_match_figure_3() {
        let data = figure3_data();
        let mut dom = PstDomain::new(&data);
        let kids = dom.split(&dom.root()).unwrap();
        assert_eq!(kids.len(), 3); // A, B, $
                                   // v3: dom = A, hist A:3 | B:3 | &:0
        assert_eq!(dom.hist(&kids[0]), vec![3.0, 3.0, 0.0]);
        // v4: dom = B, hist A:0 | B:0 | &:4
        assert_eq!(dom.hist(&kids[1]), vec![0.0, 0.0, 4.0]);
        // v2: dom = $, hist A:3 | B:1 | &:0
        assert_eq!(dom.hist(&kids[2]), vec![3.0, 1.0, 0.0]);
    }

    #[test]
    fn second_level_histograms_match_figure_3() {
        let data = figure3_data();
        let mut dom = PstDomain::new(&data);
        let kids = dom.split(&dom.root()).unwrap();
        let a_kids = dom.split(&kids[0]).unwrap(); // children of dom = A
                                                   // v6: dom = AA, hist A:1 | B:2 | &:0
        assert_eq!(dom.hist(&a_kids[0]), vec![1.0, 2.0, 0.0]);
        // v7: dom = BA — never occurs: A:0 | B:0 | &:0
        assert_eq!(dom.hist(&a_kids[1]), vec![0.0, 0.0, 0.0]);
        // v5: dom = $A, hist A:2 | B:1 | &:0
        assert_eq!(dom.hist(&a_kids[2]), vec![2.0, 1.0, 0.0]);
    }

    #[test]
    fn dollar_children_are_c1_blocked() {
        let data = figure3_data();
        let mut dom = PstDomain::new(&data);
        let kids = dom.split(&dom.root()).unwrap();
        assert!(dom.split(&kids[2]).is_none(), "dom=$ must not split");
        assert!(dom.split(&kids[0]).is_some());
    }

    #[test]
    fn score_is_monotone_under_split() {
        let data = figure3_data();
        let mut dom = PstDomain::new(&data);
        let root = dom.root();
        let root_score = dom.score(&root);
        let kids = dom.split(&root).unwrap();
        for k in &kids {
            assert!(dom.score(k) <= root_score);
        }
        // and one level deeper
        for k in &kids {
            if let Some(gk) = dom.split(k) {
                for g in gk {
                    assert!(dom.score(&g) <= dom.score(k));
                }
            }
        }
    }

    #[test]
    fn child_magnitudes_do_not_exceed_parent() {
        let data = figure3_data();
        let mut dom = PstDomain::new(&data);
        let root = dom.root();
        let kids = dom.split(&root).unwrap();
        let child_sum: usize = kids.iter().map(|k| k.occurrence_count()).sum();
        // every position with a preceding symbol lands in exactly one
        // child (here all positions have one, since padding starts with $)
        assert_eq!(child_sum, root.occurrence_count());
    }

    #[test]
    fn eq13_score_properties() {
        // small magnitude ⇒ small score
        assert_eq!(PstDomain::score_of_hist(&[1.0, 0.0, 0.0]), 0.0);
        // skewed histogram ⇒ small score even with large magnitude
        assert_eq!(PstDomain::score_of_hist(&[100.0, 1.0, 1.0]), 2.0);
        // balanced histogram ⇒ large score
        assert_eq!(PstDomain::score_of_hist(&[50.0, 50.0, 50.0]), 100.0);
    }
}
