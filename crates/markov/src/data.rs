//! Sequence datasets with `$`/`&` padding and l⊤ truncation.
//!
//! A sequence `s = x1 x2 … xl` over the alphabet `I = {0, …, |I|−1}` is
//! conceptually written `$ x1 … xl &` (Section 4.1). Section 4.2 bounds
//! the length of every sequence — *counting `&` but not `$`* — by a known
//! constant l⊤: any longer sequence is cut to its first l⊤ symbols and
//! loses its end marker (it becomes "open-ended").
//!
//! Internally each sequence is stored padded: `[START, x1, …, xl, END?]`,
//! where `START` encodes `$` and `END` encodes `&`. The padded layout
//! makes PST occurrence bookkeeping uniform: every position `j ≥ 1` of
//! the padded sequence is a "predicted" position whose context is the
//! padded prefix before it.

/// A sequence dataset ready for PST construction.
#[derive(Debug, Clone)]
pub struct SequenceDataset {
    /// padded sequences: `padded[i]\[0\] == START`, optionally ending in END
    padded: Vec<Vec<u8>>,
    alphabet: usize,
    l_top: usize,
    truncated_count: usize,
}

impl SequenceDataset {
    /// Build from raw sequences (symbols in `0..alphabet`), truncating per
    /// Section 4.2 with the bound `l_top` (≥ 1).
    pub fn new(sequences: &[Vec<u8>], alphabet: usize, l_top: usize) -> Self {
        assert!((1..=250).contains(&alphabet), "alphabet out of range");
        assert!(l_top >= 1);
        let start = Self::start_symbol_for(alphabet);
        let end = Self::end_symbol_for(alphabet);
        let mut truncated_count = 0;
        let padded = sequences
            .iter()
            .map(|s| {
                debug_assert!(s.iter().all(|x| (*x as usize) < alphabet));
                let mut p = Vec::with_capacity(s.len().min(l_top) + 2);
                p.push(start);
                if s.len() < l_top {
                    // fits with its end marker
                    p.extend_from_slice(s);
                    p.push(end);
                } else {
                    // cut to the first l⊤ symbols, open-ended
                    truncated_count += 1;
                    p.extend_from_slice(&s[..l_top]);
                }
                p
            })
            .collect();
        Self {
            padded,
            alphabet,
            l_top,
            truncated_count,
        }
    }

    fn start_symbol_for(alphabet: usize) -> u8 {
        alphabet as u8 + 1
    }

    fn end_symbol_for(alphabet: usize) -> u8 {
        alphabet as u8
    }

    /// The `$` marker symbol id (`alphabet + 1`).
    pub fn start_symbol(&self) -> u8 {
        Self::start_symbol_for(self.alphabet)
    }

    /// The `&` marker symbol id (`alphabet`). Histograms are indexed by
    /// `0..=alphabet` with the last slot counting `&`.
    pub fn end_symbol(&self) -> u8 {
        Self::end_symbol_for(self.alphabet)
    }

    /// Alphabet size |I|.
    pub fn alphabet(&self) -> usize {
        self.alphabet
    }

    /// The truncation bound l⊤.
    pub fn l_top(&self) -> usize {
        self.l_top
    }

    /// Number of sequences that lost symbols to truncation.
    pub fn truncated_count(&self) -> usize {
        self.truncated_count
    }

    /// Number of sequences.
    pub fn len(&self) -> usize {
        self.padded.len()
    }

    /// `true` iff the dataset has no sequences.
    pub fn is_empty(&self) -> bool {
        self.padded.is_empty()
    }

    /// The padded representation of sequence `i`.
    pub fn padded(&self, i: usize) -> &[u8] {
        &self.padded[i]
    }

    /// Iterate over padded sequences.
    pub fn iter_padded(&self) -> impl Iterator<Item = &[u8]> {
        self.padded.iter().map(Vec::as_slice)
    }

    /// The raw (truncated) symbols of sequence `i`, without markers.
    pub fn raw(&self, i: usize) -> &[u8] {
        let p = &self.padded[i];
        let end = if *p.last().expect("padded is non-empty") == self.end_symbol() {
            p.len() - 1
        } else {
            p.len()
        };
        &p[1..end]
    }

    /// Length of sequence `i` counting `&` but not `$` (the Section 4.2
    /// length measure; equals l⊤ for truncated sequences).
    pub fn measured_length(&self, i: usize) -> usize {
        self.padded[i].len() - 1
    }

    /// Total number of predicted positions = Σ measured lengths. This is
    /// the number of PST root occurrences.
    pub fn total_positions(&self) -> usize {
        self.padded.iter().map(|p| p.len() - 1).sum()
    }

    /// Histogram of *raw* sequence lengths (after truncation, not counting
    /// markers), for the Figure 7 task.
    pub fn raw_length_histogram(&self, max_len: usize) -> Vec<f64> {
        let mut h = vec![0.0; max_len + 1];
        for i in 0..self.len() {
            h[self.raw(i).len().min(max_len)] += 1.0;
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn padding_with_end_marker() {
        let d = SequenceDataset::new(&[vec![0, 1, 0]], 2, 10);
        // $ 0 1 0 &
        assert_eq!(d.padded(0), &[3, 0, 1, 0, 2]);
        assert_eq!(d.raw(0), &[0, 1, 0]);
        assert_eq!(d.measured_length(0), 4);
        assert_eq!(d.truncated_count(), 0);
    }

    #[test]
    fn truncation_drops_end_marker() {
        // l⊤ = 3: a length-3 sequence (3+1 > 3) is cut to 3 symbols, open
        let d = SequenceDataset::new(&[vec![0, 1, 0]], 2, 3);
        assert_eq!(d.padded(0), &[3, 0, 1, 0]);
        assert_eq!(d.raw(0), &[0, 1, 0]);
        assert_eq!(d.measured_length(0), 3);
        assert_eq!(d.truncated_count(), 1);
    }

    #[test]
    fn boundary_fits_exactly() {
        // l⊤ = 4: length-3 sequence measures 4 with & — exactly fits
        let d = SequenceDataset::new(&[vec![0, 1, 0]], 2, 4);
        assert_eq!(d.measured_length(0), 4);
        assert_eq!(d.truncated_count(), 0);
    }

    #[test]
    fn long_sequences_are_cut() {
        let d = SequenceDataset::new(&[vec![0; 100]], 2, 5);
        assert_eq!(d.raw(0).len(), 5);
        assert_eq!(d.measured_length(0), 5);
    }

    #[test]
    fn empty_sequence_is_just_end() {
        let d = SequenceDataset::new(&[vec![]], 2, 10);
        assert_eq!(d.padded(0), &[3, 2]); // $ &
        assert_eq!(d.raw(0), &[] as &[u8]);
        assert_eq!(d.measured_length(0), 1);
    }

    #[test]
    fn total_positions_counts_everything_predictable() {
        let d = SequenceDataset::new(&[vec![0], vec![1, 1]], 3, 10);
        // $0& → 2 positions; $11& → 3 positions
        assert_eq!(d.total_positions(), 5);
    }

    #[test]
    fn marker_symbols_are_outside_alphabet() {
        let d = SequenceDataset::new(&[vec![0]], 7, 50);
        assert_eq!(d.end_symbol(), 7);
        assert_eq!(d.start_symbol(), 8);
    }

    #[test]
    fn length_histogram() {
        let d = SequenceDataset::new(&[vec![0], vec![0, 1], vec![0; 30]], 2, 10);
        let h = d.raw_length_histogram(20);
        assert_eq!(h[1], 1.0);
        assert_eq!(h[2], 1.0);
        assert_eq!(h[10], 1.0); // truncated to 10
    }
}
