//! The N-gram baseline of Chen et al. \[6\] (Section 4.3 / Figure 12).
//!
//! A variable-length n-gram model built with the Algorithm 1 recipe the
//! paper criticizes: a pre-defined maximum gram length `nmax` (the tree
//! height h), per-level privacy budget ε/nmax, noise scale `nmax·l⊤/ε`
//! per released gram count (one sequence contributes at most l⊤ gram
//! occurrences per level), and a noise-scale-proportional threshold that
//! decides which grams get expanded. Queries are answered with the
//! (n−1)-order Markov property, backing off to the longest expanded
//! context.

use std::collections::{HashMap, HashSet};

use privtree_dp::budget::Epsilon;
use privtree_dp::laplace::Laplace;
use rand::{Rng, RngExt};

use crate::data::SequenceDataset;
use crate::pst::SequenceModel;

/// Pack a gram over `I ∪ {&}` (symbols < 32, length ≤ 12).
fn pack(s: &[u8]) -> u64 {
    debug_assert!(s.len() <= 12);
    let mut key = (s.len() as u64) << 60;
    for (i, &x) in s.iter().enumerate() {
        debug_assert!(x < 32);
        key |= (x as u64) << (5 * i);
    }
    key
}

/// A released variable-length n-gram model.
#[derive(Debug, Clone)]
pub struct NGramModel {
    /// noisy counts of released grams (clamped at 0), keyed by packed gram
    counts: HashMap<u64, f64>,
    /// grams whose children were released ("" is always expanded)
    expanded: HashSet<u64>,
    alphabet: usize,
    nmax: usize,
}

/// Build the private n-gram model with maximum gram length `nmax`.
pub fn ngram_model<R: Rng + ?Sized>(
    data: &SequenceDataset,
    epsilon: Epsilon,
    nmax: usize,
    rng: &mut R,
) -> NGramModel {
    assert!((1..=12).contains(&nmax));
    let alphabet = data.alphabet();
    let end = data.end_symbol();
    // per-level scale: sensitivity l⊤ per level, budget ε/nmax per level
    let scale = nmax as f64 * data.l_top() as f64 / epsilon.get();
    let noise = Laplace::centered(scale).expect("positive scale");
    let threshold = std::f64::consts::SQRT_2 * scale; // one noise std

    let mut counts: HashMap<u64, f64> = HashMap::new();
    let mut expanded: HashSet<u64> = HashSet::new();
    expanded.insert(pack(&[]));

    // frontier of grams to count at the current level
    let mut frontier: Vec<Vec<u8>> = (0..alphabet as u8)
        .map(|a| vec![a])
        .chain([vec![end]])
        .collect();

    for _level in 1..=nmax {
        if frontier.is_empty() {
            break;
        }
        // count all frontier grams in one scan over `x1…xl (&)`
        let mut level_counts: HashMap<u64, f64> = frontier.iter().map(|g| (pack(g), 0.0)).collect();
        let glen = frontier[0].len();
        for i in 0..data.len() {
            let padded = data.padded(i);
            let body = &padded[1..]; // symbols plus optional &
            if body.len() < glen {
                continue;
            }
            for w in body.windows(glen) {
                if let Some(c) = level_counts.get_mut(&pack(w)) {
                    *c += 1.0;
                }
            }
        }
        // release noisy counts; decide expansions
        let mut next_frontier = Vec::new();
        for gram in frontier {
            let key = pack(&gram);
            let noisy = (level_counts[&key] + noise.sample(rng)).max(0.0);
            counts.insert(key, noisy);
            let ends_in_marker = *gram.last().expect("grams non-empty") == end;
            if noisy > threshold && !ends_in_marker && gram.len() < nmax {
                expanded.insert(key);
                for a in (0..alphabet as u8).chain([end]) {
                    let mut g = gram.clone();
                    g.push(a);
                    next_frontier.push(g);
                }
            }
        }
        frontier = next_frontier;
    }
    NGramModel {
        counts,
        expanded,
        alphabet,
        nmax,
    }
}

impl NGramModel {
    /// Number of grams with released counts.
    pub fn released_grams(&self) -> usize {
        self.counts.len()
    }

    /// The maximum gram length h used at construction.
    pub fn nmax(&self) -> usize {
        self.nmax
    }

    /// The `&` symbol id.
    fn end(&self) -> u8 {
        self.alphabet as u8
    }

    /// Released count of a gram, if present.
    fn count(&self, gram: &[u8]) -> Option<f64> {
        self.counts.get(&pack(gram)).copied()
    }

    /// Conditional probability of `x` after `ctx`, backing off to the
    /// longest *expanded* suffix of `ctx`.
    fn cond_prob(&self, ctx: &[u8], x: u8) -> f64 {
        let max_ctx = ctx.len().min(self.nmax - 1);
        for j in (0..=max_ctx).rev() {
            let suffix = &ctx[ctx.len() - j..];
            if !self.expanded.contains(&pack(suffix)) {
                continue;
            }
            let mut denom = 0.0;
            let mut num = 0.0;
            let mut any = false;
            for a in (0..self.alphabet as u8).chain([self.end()]) {
                let mut g = suffix.to_vec();
                g.push(a);
                if let Some(c) = self.count(&g) {
                    any = true;
                    denom += c;
                    if a == x {
                        num = c;
                    }
                }
            }
            if any && denom > 0.0 {
                return num / denom;
            }
        }
        0.0
    }
}

impl SequenceModel for NGramModel {
    fn alphabet(&self) -> usize {
        self.alphabet
    }

    fn estimate_count(&self, s: &[u8]) -> f64 {
        assert!(!s.is_empty());
        // longest stored prefix gives the base count; extend via the
        // Markov property
        let mut base_len = s.len().min(self.nmax);
        while base_len > 0 && self.count(&s[..base_len]).is_none() {
            base_len -= 1;
        }
        if base_len == 0 {
            return 0.0;
        }
        let mut est = self.count(&s[..base_len]).expect("checked above");
        for i in base_len..s.len() {
            if est <= 0.0 {
                return 0.0;
            }
            est *= self.cond_prob(&s[..i], s[i]);
        }
        est
    }

    fn sample_sequence<R: Rng + ?Sized>(&self, rng: &mut R, max_len: usize) -> Vec<u8> {
        let mut out: Vec<u8> = Vec::new();
        while out.len() < max_len {
            // sample the next symbol from the longest expanded context
            let max_ctx = out.len().min(self.nmax - 1);
            let mut weights: Option<Vec<f64>> = None;
            for j in (0..=max_ctx).rev() {
                let suffix = &out[out.len() - j..];
                if !self.expanded.contains(&pack(suffix)) {
                    continue;
                }
                let w: Vec<f64> = (0..self.alphabet as u8)
                    .chain([self.end()])
                    .map(|a| {
                        let mut g = suffix.to_vec();
                        g.push(a);
                        self.count(&g).unwrap_or(0.0).max(0.0)
                    })
                    .collect();
                if w.iter().sum::<f64>() > 0.0 {
                    weights = Some(w);
                    break;
                }
            }
            let Some(w) = weights else { break };
            let total: f64 = w.iter().sum();
            let mut t = rng.random::<f64>() * total;
            let mut sym = self.alphabet;
            for (i, wi) in w.iter().enumerate() {
                t -= wi;
                if t <= 0.0 {
                    sym = i;
                    break;
                }
            }
            if sym == self.alphabet {
                break; // sampled &
            }
            out.push(sym as u8);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privtree_dp::rng::seeded;

    fn sticky_data(n: usize, seed: u64) -> SequenceDataset {
        let mut rng = seeded(seed);
        let seqs: Vec<Vec<u8>> = (0..n)
            .map(|_| {
                let l = 2 + (rng.random::<u64>() % 6) as usize;
                let mut cur = (rng.random::<u64>() % 3) as u8;
                (0..l)
                    .map(|_| {
                        if rng.random::<f64>() < 0.25 {
                            cur = (rng.random::<u64>() % 3) as u8;
                        }
                        cur
                    })
                    .collect()
            })
            .collect();
        SequenceDataset::new(&seqs, 3, 10)
    }

    #[test]
    fn builds_and_releases_level_one() {
        let data = sticky_data(2000, 1);
        let m = ngram_model(&data, Epsilon::new(2.0).unwrap(), 3, &mut seeded(2));
        // all |I| + 1 unigrams must be released
        assert!(m.released_grams() >= 4);
        assert!(m.count(&[0]).is_some());
        assert!(m.count(&[3]).is_some()); // the & unigram
    }

    #[test]
    fn unigram_counts_near_truth_at_large_epsilon() {
        let data = sticky_data(5000, 3);
        let m = ngram_model(&data, Epsilon::new(100.0).unwrap(), 3, &mut seeded(4));
        // exact count of symbol 0
        let truth: f64 = (0..data.len())
            .map(|i| data.raw(i).iter().filter(|x| **x == 0).count() as f64)
            .sum();
        let est = m.count(&[0]).unwrap();
        assert!(
            (est - truth).abs() / truth < 0.05,
            "est {est} vs truth {truth}"
        );
    }

    #[test]
    fn estimates_decrease_with_string_length() {
        use crate::pst::SequenceModel;
        let data = sticky_data(5000, 5);
        let m = ngram_model(&data, Epsilon::new(10.0).unwrap(), 4, &mut seeded(6));
        let e1 = m.estimate_count(&[0]);
        let e2 = m.estimate_count(&[0, 0]);
        let e3 = m.estimate_count(&[0, 0, 0]);
        assert!(e2 <= e1 + 1e-9);
        assert!(e3 <= e2 + 1e-9);
    }

    #[test]
    fn small_epsilon_prunes_expansions() {
        let data = sticky_data(2000, 7);
        let tight = ngram_model(&data, Epsilon::new(0.05).unwrap(), 5, &mut seeded(8));
        let loose = ngram_model(&data, Epsilon::new(20.0).unwrap(), 5, &mut seeded(9));
        assert!(
            tight.released_grams() <= loose.released_grams(),
            "tight {} vs loose {}",
            tight.released_grams(),
            loose.released_grams()
        );
    }

    #[test]
    fn sampling_produces_plausible_sequences() {
        use crate::pst::SequenceModel;
        let data = sticky_data(5000, 10);
        let m = ngram_model(&data, Epsilon::new(5.0).unwrap(), 4, &mut seeded(11));
        let mut rng = seeded(12);
        let mut total_len = 0usize;
        for _ in 0..200 {
            let s = m.sample_sequence(&mut rng, 30);
            assert!(s.iter().all(|x| (*x as usize) < 3));
            total_len += s.len();
        }
        let mean = total_len as f64 / 200.0;
        // the data's mean raw length is ~4.5; the model should land near
        assert!(mean > 1.5 && mean < 12.0, "mean sampled length {mean}");
    }

    #[test]
    fn deterministic_given_seed() {
        let data = sticky_data(500, 13);
        let a = ngram_model(&data, Epsilon::new(1.0).unwrap(), 3, &mut seeded(14));
        let b = ngram_model(&data, Epsilon::new(1.0).unwrap(), 3, &mut seeded(14));
        assert_eq!(a.released_grams(), b.released_grams());
        assert_eq!(a.count(&[0]), b.count(&[0]));
    }
}
