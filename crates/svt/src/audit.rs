//! Exact privacy-loss computations for the SVT variants.
//!
//! Conditioned on the noisy threshold `θ̂ = x`, every comparison in an SVT
//! run is independent, so the probability of any output pattern is a
//! one-dimensional integral over `x`:
//!
//! ```text
//! Pr[E] = ∫ f_θ(x) · Π_{oᵢ=1} SF(x − aᵢ) · Π_{oᵢ=0} CDF(x − aᵢ) dx
//! ```
//!
//! where `aᵢ` are the exact query answers. Evaluating the integral for
//! the paper's counterexample datasets turns Lemma 5.1 and the Claim 2
//! refutation into executable numbers.

use privtree_dp::laplace::Laplace;

use crate::integrate::integrate_with_kinks;

fn integration_bounds(theta: f64, answers: &[f64], lambda: f64) -> (f64, f64, Vec<f64>) {
    let mut lo = theta;
    let mut hi = theta;
    for &a in answers {
        lo = lo.min(a);
        hi = hi.max(a);
    }
    let pad = 60.0 * lambda;
    let mut kinks = vec![theta];
    kinks.extend_from_slice(answers);
    (lo - pad, hi + pad, kinks)
}

/// `ln Pr[output = pattern]` for BinarySVT (Algorithm 3) given the exact
/// query answers.
pub fn binary_event_log_prob(answers: &[f64], pattern: &[bool], theta: f64, lambda: f64) -> f64 {
    assert_eq!(answers.len(), pattern.len());
    let noise = Laplace::centered(lambda).expect("positive lambda");
    let (lo, hi, kinks) = integration_bounds(theta, answers, lambda);
    let f = |x: f64| {
        let mut p = noise.pdf(x - theta);
        for (a, &one) in answers.iter().zip(pattern) {
            p *= if one {
                noise.sf(x - a)
            } else {
                noise.cdf(x - a)
            };
            if p == 0.0 {
                break;
            }
        }
        p
    };
    integrate_with_kinks(&f, lo, hi, &kinks, 1e-13)
        .max(f64::MIN_POSITIVE)
        .ln()
}

/// `ln` density of VanillaSVT (Algorithm 4) producing the given outputs
/// (`None` = ⊥, `Some(y)` = released noisy answer `y`), with `t` the
/// release budget (query noise scale is `t·λ`).
pub fn vanilla_event_log_prob(
    answers: &[f64],
    outputs: &[Option<f64>],
    theta: f64,
    lambda: f64,
    t: usize,
) -> f64 {
    assert_eq!(answers.len(), outputs.len());
    let thresh = Laplace::centered(lambda).expect("positive lambda");
    let query = Laplace::centered(t as f64 * lambda).expect("positive lambda");
    // released densities are constants in x; the threshold must lie below
    // every released value
    let mut upper_cap = f64::INFINITY;
    let mut released_log_density = 0.0;
    for (a, o) in answers.iter().zip(outputs) {
        if let Some(y) = o {
            upper_cap = upper_cap.min(*y);
            released_log_density += query.ln_pdf(y - a);
        }
    }
    let (lo, hi, kinks) = integration_bounds(theta, answers, lambda);
    let hi = hi.min(upper_cap);
    if hi <= lo {
        return f64::MIN_POSITIVE.ln();
    }
    let f = |x: f64| {
        let mut p = thresh.pdf(x - theta);
        for (a, o) in answers.iter().zip(outputs) {
            if o.is_none() {
                p *= query.cdf(x - a);
            }
            if p == 0.0 {
                break;
            }
        }
        p
    };
    let integral = integrate_with_kinks(&f, lo, hi, &kinks, 1e-13);
    integral.max(f64::MIN_POSITIVE).ln() + released_log_density
}

/// `ln Pr[output = pattern]` for ImprovedSVT (Algorithm 6): threshold
/// noise scale λ, query noise scale `t·λ`.
pub fn improved_event_log_prob(
    answers: &[f64],
    pattern: &[bool],
    theta: f64,
    lambda: f64,
    t: usize,
) -> f64 {
    assert_eq!(answers.len(), pattern.len());
    let thresh = Laplace::centered(lambda).expect("positive lambda");
    let query = Laplace::centered(t as f64 * lambda).expect("positive lambda");
    let (lo, hi, kinks) = integration_bounds(theta, answers, lambda);
    let f = |x: f64| {
        let mut p = thresh.pdf(x - theta);
        for (a, &one) in answers.iter().zip(pattern) {
            p *= if one {
                query.sf(x - a)
            } else {
                query.cdf(x - a)
            };
            if p == 0.0 {
                break;
            }
        }
        p
    };
    integrate_with_kinks(&f, lo, hi, &kinks, 1e-13)
        .max(f64::MIN_POSITIVE)
        .ln()
}

/// The Lemma 5.1 counterexample, computed exactly.
///
/// Datasets `D1 = {a, b}` and `D3 = {b, b}` (note `D1 ~ D2 ~ D3` with
/// `D2 = {a, b, b}`), query sequence = k/2 copies of `q_a` followed by
/// k/2 copies of `q_b`, threshold θ = 1. The audited event is "1 for
/// every `q_a`, 0 for every `q_b`". Returns
/// `ln(Pr[D1 → E] / Pr[D3 → E])`, which the lemma lower-bounds by
/// `k/(2λ)`.
pub fn lemma_5_1_log_ratio(k: usize, lambda: f64) -> f64 {
    assert!(k >= 2 && k.is_multiple_of(2));
    let theta = 1.0;
    let half = k / 2;
    let mut pattern = vec![true; half];
    pattern.extend(std::iter::repeat_n(false, half));
    // D1 = {a, b}: q_a = 1, q_b = 1
    let mut answers_d1 = vec![1.0; half];
    answers_d1.extend(std::iter::repeat_n(1.0, half));
    // D3 = {b, b}: q_a = 0, q_b = 2
    let mut answers_d3 = vec![0.0; half];
    answers_d3.extend(std::iter::repeat_n(2.0, half));
    binary_event_log_prob(&answers_d1, &pattern, theta, lambda)
        - binary_event_log_prob(&answers_d3, &pattern, theta, lambda)
}

/// The Claim 2 (vanilla SVT) counterexample of Appendix A, computed
/// exactly: `D1 = {a, b}` vs `D3 = {a, a}`, k−1 copies of `q_a` followed
/// by one `q_b`, t = 1, θ = 0; the event is "⊥ everywhere, then release
/// the value 1". Returns `ln(Pr[D1 → E] / Pr[D3 → E]) ≈ k/λ`.
pub fn claim_2_log_ratio(k: usize, lambda: f64) -> f64 {
    assert!(k >= 2);
    let theta = 0.0;
    let mut outputs: Vec<Option<f64>> = vec![None; k - 1];
    outputs.push(Some(1.0));
    // D1 = {a, b}: q_a = 1, q_b = 1
    let mut answers_d1 = vec![1.0; k - 1];
    answers_d1.push(1.0);
    // D3 = {a, a}: q_a = 2, q_b = 0
    let mut answers_d3 = vec![2.0; k - 1];
    answers_d3.push(0.0);
    vanilla_event_log_prob(&answers_d1, &outputs, theta, lambda, 1)
        - vanilla_event_log_prob(&answers_d3, &outputs, theta, lambda, 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variants::binary_svt;
    use privtree_dp::rng::seeded;

    /// The integration machinery agrees with Monte Carlo simulation.
    #[test]
    fn binary_event_prob_matches_simulation() {
        let answers = [1.5, -0.5, 0.2];
        let pattern = [true, false, true];
        let (theta, lambda) = (0.0, 1.0);
        let lp = binary_event_log_prob(&answers, &pattern, theta, lambda);
        let p = lp.exp();
        let mut rng = seeded(1);
        let n = 200_000;
        let hits = (0..n)
            .filter(|_| binary_svt(&answers, theta, lambda, &mut rng) == pattern)
            .count();
        let p_hat = hits as f64 / n as f64;
        assert!(
            (p - p_hat).abs() < 0.01,
            "integral {p} vs simulation {p_hat}"
        );
    }

    /// All-pattern probabilities sum to 1 for the binary SVT.
    #[test]
    fn binary_pattern_probabilities_sum_to_one() {
        let answers = [0.5, -1.0];
        let mut total = 0.0;
        for bits in 0..4u32 {
            let pattern = [bits & 1 == 1, bits & 2 == 2];
            total += binary_event_log_prob(&answers, &pattern, 0.0, 1.3).exp();
        }
        assert!((total - 1.0).abs() < 1e-8, "total = {total}");
    }

    /// Lemma 5.1: the loss grows linearly in k, so the claimed λ = 2/ε is
    /// violated once k > 4 (for ε = 1).
    #[test]
    fn lemma_5_1_loss_grows_linearly() {
        let eps = 1.0;
        let lambda = 2.0 / eps; // the Claim 1 calibration
        let l8 = lemma_5_1_log_ratio(8, lambda);
        let l16 = lemma_5_1_log_ratio(16, lambda);
        let l32 = lemma_5_1_log_ratio(32, lambda);
        // the proof's lower bound k/(2λ)
        assert!(l8 > 8.0 / (2.0 * lambda) - 1e-6, "l8 = {l8}");
        assert!(l16 > 16.0 / (2.0 * lambda) - 1e-6, "l16 = {l16}");
        assert!(l32 > 32.0 / (2.0 * lambda) - 1e-6, "l32 = {l32}");
        // far beyond the 2ε the composition argument would allow
        assert!(l32 > 2.0 * eps, "binary SVT loss {l32} must exceed 2ε");
        // approximate linearity
        let slope = (l32 - l16) / 16.0;
        assert!(slope > 0.3 / lambda, "slope {slope}");
    }

    /// Claim 2 refutation: vanilla SVT's loss ≈ k/λ.
    #[test]
    fn claim_2_loss_is_k_over_lambda() {
        let lambda = 2.0;
        for k in [4usize, 8, 16] {
            let loss = claim_2_log_ratio(k, lambda);
            let predicted = k as f64 / lambda;
            assert!(
                (loss - predicted).abs() < 0.35 + 0.05 * predicted,
                "k = {k}: loss {loss} vs predicted {predicted}"
            );
        }
    }

    /// Lemma A.1: the improved SVT's loss stays within ε = 2/λ over an
    /// exhaustive sweep of insertion neighbors and output patterns.
    #[test]
    fn lemma_a_1_improved_svt_is_private() {
        let lambda = 2.0;
        let eps = 2.0 / lambda;
        let t = 2usize;
        let k = 5usize;
        let theta = 0.0;
        let base = [0.0, 1.0, -1.0, 0.5, 2.0];
        let mut worst = 0.0f64;
        // neighbors: any subset of queries shifted by +1 (an inserted
        // tuple increases each count by 0 or 1)
        for delta_bits in 0..(1u32 << k) {
            let neighbor: Vec<f64> = (0..k)
                .map(|i| base[i] + f64::from((delta_bits >> i) & 1))
                .collect();
            for pat_bits in 0..(1u32 << k) {
                let pattern: Vec<bool> = (0..k).map(|i| (pat_bits >> i) & 1 == 1).collect();
                // valid prefixes only: the run stops at the t-th positive
                let ones = pattern.iter().filter(|b| **b).count();
                if ones > t || (ones == t && !pattern[k - 1]) {
                    continue;
                }
                let lp_a = improved_event_log_prob(&base, &pattern, theta, lambda, t);
                let lp_b = improved_event_log_prob(&neighbor, &pattern, theta, lambda, t);
                worst = worst.max((lp_a - lp_b).abs());
            }
        }
        assert!(
            worst <= eps + 1e-6,
            "improved SVT worst loss {worst} exceeds ε {eps}"
        );
        // and the bound is not hugely loose
        assert!(worst > 0.5 * eps, "worst loss {worst} suspiciously small");
    }

    /// Sanity: a single-query binary SVT *is* private (the failure needs
    /// many queries).
    #[test]
    fn binary_svt_single_query_is_private() {
        let lambda = 2.0;
        let eps = 2.0 / lambda;
        let mut worst = 0.0f64;
        for a in [-1.0, 0.0, 0.3, 1.0] {
            for pattern in [[true], [false]] {
                let lp_a = binary_event_log_prob(&[a], &pattern, 0.0, lambda);
                let lp_b = binary_event_log_prob(&[a + 1.0], &pattern, 0.0, lambda);
                worst = worst.max((lp_a - lp_b).abs());
            }
        }
        assert!(worst <= eps + 1e-6, "single-query loss {worst}");
    }
}
