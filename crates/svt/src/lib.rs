//! Sparse Vector Technique variants and their privacy audits (Section 5
//! and Appendix A of the paper).
//!
//! The paper's negative results are as important as its algorithm: the
//! "binary SVT" (Algorithm 3, claimed ε-DP with λ ≥ 2/ε in \[28\]) and the
//! "vanilla SVT" (Algorithm 4, claimed ε-DP in \[21\]) are **not**
//! differentially private — in the worst case they need noise scaling
//! with the number of queries (Lemma 5.1). The "improved SVT"
//! (Algorithm 6, the paper's own fix of Dwork & Roth's reduced SVT) is
//! ε-DP (Lemma A.1) but needs Lap(2t/ε) per query, making it useless for
//! hierarchical decompositions.
//!
//! * [`variants`] — Algorithms 3–6 as runnable mechanisms.
//! * [`mod@integrate`] — adaptive Simpson quadrature.
//! * [`audit`] — exact (numeric-integration) event probabilities for the
//!   counterexample datasets, reproducing the Lemma 5.1 and Claim 2
//!   privacy-loss blow-ups and validating Lemma A.1.
//! * [`tree_adapter`] — the hypothetical SVT-driven quadtree of Section 5
//!   (what PrivTree would look like if Claim 1 were true).

pub mod audit;
pub mod integrate;
pub mod tree_adapter;
pub mod variants;

pub use audit::{
    binary_event_log_prob, claim_2_log_ratio, improved_event_log_prob, lemma_5_1_log_ratio,
    vanilla_event_log_prob,
};
pub use integrate::integrate;
pub use tree_adapter::svt_quadtree;
pub use variants::{binary_svt, improved_svt, reduced_svt, vanilla_svt};
