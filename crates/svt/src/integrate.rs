//! Adaptive Simpson quadrature for the SVT privacy audits.
//!
//! The audited event probabilities are one-dimensional integrals over the
//! noisy threshold; the integrands are smooth except for kinks where the
//! threshold crosses a query answer (the Laplace density's corner), so
//! callers split the integration range at those points.

/// Integrate `f` over `[a, b]` with adaptive Simpson to the given
/// absolute tolerance.
pub fn integrate(f: &dyn Fn(f64) -> f64, a: f64, b: f64, tol: f64) -> f64 {
    assert!(a <= b && tol > 0.0);
    if a == b {
        return 0.0;
    }
    let m = 0.5 * (a + b);
    let (fa, fm, fb) = (f(a), f(m), f(b));
    simpson_rec(f, a, b, fa, fm, fb, simpson(a, b, fa, fm, fb), tol, 40)
}

/// Integrate `f` over `[a, b]`, splitting at the interior `kinks`.
pub fn integrate_with_kinks(
    f: &dyn Fn(f64) -> f64,
    a: f64,
    b: f64,
    kinks: &[f64],
    tol: f64,
) -> f64 {
    let mut pts: Vec<f64> = kinks.iter().copied().filter(|k| *k > a && *k < b).collect();
    pts.push(a);
    pts.push(b);
    pts.sort_by(f64::total_cmp);
    pts.dedup();
    pts.windows(2).map(|w| integrate(f, w[0], w[1], tol)).sum()
}

fn simpson(a: f64, b: f64, fa: f64, fm: f64, fb: f64) -> f64 {
    (b - a) / 6.0 * (fa + 4.0 * fm + fb)
}

#[allow(clippy::too_many_arguments)]
fn simpson_rec(
    f: &dyn Fn(f64) -> f64,
    a: f64,
    b: f64,
    fa: f64,
    fm: f64,
    fb: f64,
    whole: f64,
    tol: f64,
    depth: u32,
) -> f64 {
    let m = 0.5 * (a + b);
    let lm = 0.5 * (a + m);
    let rm = 0.5 * (m + b);
    let (flm, frm) = (f(lm), f(rm));
    let left = simpson(a, m, fa, flm, fm);
    let right = simpson(m, b, fm, frm, fb);
    let delta = left + right - whole;
    if depth == 0 || delta.abs() <= 15.0 * tol {
        left + right + delta / 15.0
    } else {
        simpson_rec(f, a, m, fa, flm, fm, left, tol / 2.0, depth - 1)
            + simpson_rec(f, m, b, fm, frm, fb, right, tol / 2.0, depth - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polynomial_is_exact() {
        // Simpson is exact for cubics
        let f = |x: f64| 3.0 * x * x + 2.0 * x + 1.0;
        let got = integrate(&f, 0.0, 2.0, 1e-12);
        assert!((got - (8.0 + 4.0 + 2.0)).abs() < 1e-10);
    }

    #[test]
    fn gaussian_like_integral() {
        let f = |x: f64| (-x * x).exp();
        let got = integrate(&f, -10.0, 10.0, 1e-12);
        assert!((got - std::f64::consts::PI.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn laplace_density_integrates_to_one() {
        let lam = 1.7;
        let f = move |x: f64| (-x.abs() / lam).exp() / (2.0 * lam);
        let got = integrate_with_kinks(&f, -80.0, 80.0, &[0.0], 1e-12);
        assert!((got - 1.0).abs() < 1e-9, "got {got}");
    }

    #[test]
    fn kinks_improve_accuracy() {
        // |x| has a kink at 0; splitting there makes Simpson exact
        let f = |x: f64| x.abs();
        let split = integrate_with_kinks(&f, -1.0, 1.0, &[0.0], 1e-14);
        assert!((split - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_interval_is_zero() {
        let f = |_x: f64| 1.0;
        assert_eq!(integrate(&f, 2.0, 2.0, 1e-9), 0.0);
    }
}
