//! Algorithms 3–6: the four SVT variants discussed by the paper.
//!
//! All variants take the *exact* answers of a sequence of sensitivity-1
//! counting queries (the privacy analysis is about how the noisy
//! comparisons leak; the query evaluation itself is exact).

use privtree_dp::laplace::Laplace;
use rand::Rng;

/// Algorithm 3 — BinarySVT. Outputs one boolean per query: whether the
/// noisy answer exceeds the noisy threshold. \[28\] claimed this is ε-DP at
/// λ = 2/ε; Lemma 5.1 shows it needs λ = Ω(k/ε).
pub fn binary_svt<R: Rng + ?Sized>(
    answers: &[f64],
    theta: f64,
    lambda: f64,
    rng: &mut R,
) -> Vec<bool> {
    let noise = Laplace::centered(lambda).expect("positive lambda");
    let theta_hat = theta + noise.sample(rng);
    answers
        .iter()
        .map(|q| q + noise.sample(rng) > theta_hat)
        .collect()
}

/// Algorithm 4 — VanillaSVT. Like BinarySVT but outputs the noisy answer
/// itself when above the threshold (noise scale t·λ per query) and stops
/// after `t` such outputs. \[21\] claimed ε-DP at λ = 2/ε; Appendix A
/// refutes it.
pub fn vanilla_svt<R: Rng + ?Sized>(
    answers: &[f64],
    theta: f64,
    lambda: f64,
    t: usize,
    rng: &mut R,
) -> Vec<Option<f64>> {
    assert!(t >= 1);
    let thresh_noise = Laplace::centered(lambda).expect("positive lambda");
    let query_noise = Laplace::centered(t as f64 * lambda).expect("positive lambda");
    let theta_hat = theta + thresh_noise.sample(rng);
    let mut out = Vec::with_capacity(answers.len());
    let mut released = 0usize;
    for q in answers {
        let q_hat = q + query_noise.sample(rng);
        if q_hat > theta_hat {
            out.push(Some(q_hat));
            released += 1;
            if released >= t {
                break;
            }
        } else {
            out.push(None);
        }
    }
    out
}

/// Algorithm 5 — ReducedSVT (Dwork & Roth \[18\]). Boolean outputs, noise
/// `t·λ` on the threshold *and* each query, threshold re-drawn after each
/// positive output, stops after `t` positives. ε-DP for λ ≥ 2/ε.
pub fn reduced_svt<R: Rng + ?Sized>(
    answers: &[f64],
    theta: f64,
    lambda: f64,
    t: usize,
    rng: &mut R,
) -> Vec<bool> {
    assert!(t >= 1);
    let noise = Laplace::centered(t as f64 * lambda).expect("positive lambda");
    let mut theta_hat = theta + noise.sample(rng);
    let mut out = Vec::with_capacity(answers.len());
    let mut positives = 0usize;
    for q in answers {
        let q_hat = q + noise.sample(rng);
        if q_hat > theta_hat {
            out.push(true);
            theta_hat = theta + noise.sample(rng);
            positives += 1;
            if positives >= t {
                break;
            }
        } else {
            out.push(false);
        }
    }
    out
}

/// Algorithm 6 — ImprovedSVT (this paper's Appendix A). Like ReducedSVT
/// but with a single noisy threshold at scale λ (not t·λ), which Lemma
/// A.1 proves is still ε-DP for λ ≥ 2/ε and answers more accurately.
pub fn improved_svt<R: Rng + ?Sized>(
    answers: &[f64],
    theta: f64,
    lambda: f64,
    t: usize,
    rng: &mut R,
) -> Vec<bool> {
    assert!(t >= 1);
    let thresh_noise = Laplace::centered(lambda).expect("positive lambda");
    let query_noise = Laplace::centered(t as f64 * lambda).expect("positive lambda");
    let theta_hat = theta + thresh_noise.sample(rng);
    let mut out = Vec::with_capacity(answers.len());
    let mut positives = 0usize;
    for q in answers {
        let q_hat = q + query_noise.sample(rng);
        if q_hat > theta_hat {
            out.push(true);
            positives += 1;
            if positives >= t {
                break;
            }
        } else {
            out.push(false);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use privtree_dp::rng::seeded;

    #[test]
    fn binary_svt_separates_clear_cases() {
        let mut rng = seeded(1);
        // answers far from θ on both sides: tiny noise can't flip them
        let answers = [100.0, -100.0, 100.0];
        let out = binary_svt(&answers, 0.0, 0.5, &mut rng);
        assert_eq!(out, vec![true, false, true]);
    }

    #[test]
    fn vanilla_svt_stops_after_t() {
        let mut rng = seeded(2);
        let answers = [100.0; 10];
        let out = vanilla_svt(&answers, 0.0, 1.0, 3, &mut rng);
        let released = out.iter().filter(|o| o.is_some()).count();
        assert_eq!(released, 3);
        assert!(out.len() <= 10);
    }

    #[test]
    fn vanilla_svt_outputs_noisy_values() {
        let mut rng = seeded(3);
        let answers = [50.0];
        let out = vanilla_svt(&answers, 0.0, 1.0, 1, &mut rng);
        let v = out[0].expect("well above threshold");
        assert!((v - 50.0).abs() < 20.0, "noisy output {v} near 50");
        assert_ne!(v, 50.0, "output must carry noise");
    }

    #[test]
    fn reduced_svt_stops_after_t_positives() {
        let mut rng = seeded(4);
        let answers = [100.0; 20];
        let out = reduced_svt(&answers, 0.0, 1.0, 5, &mut rng);
        assert_eq!(out.iter().filter(|b| **b).count(), 5);
    }

    #[test]
    fn improved_svt_stops_after_t_positives() {
        let mut rng = seeded(5);
        let answers = [100.0; 20];
        let out = improved_svt(&answers, 0.0, 1.0, 5, &mut rng);
        assert_eq!(out.iter().filter(|b| **b).count(), 5);
    }

    #[test]
    fn improved_svt_is_more_accurate_than_reduced() {
        // the improved variant's threshold noise is t times smaller, so
        // near-threshold classifications are more accurate
        let t = 8;
        let lambda = 2.0;
        let answers = vec![6.0; 400]; // slightly above θ = 0
        let mut improved_correct = 0usize;
        let mut reduced_correct = 0usize;
        for seed in 0..40 {
            let a = improved_svt(&answers, 0.0, lambda, t, &mut seeded(seed));
            let b = reduced_svt(&answers, 0.0, lambda, t, &mut seeded(1000 + seed));
            improved_correct += a.iter().filter(|x| **x).count();
            reduced_correct += b.iter().filter(|x| **x).count();
        }
        // both stop after t positives; correctness shows in how few
        // false negatives they emit before reaching t — measure via
        // output length: shorter runs = fewer mistakes
        let _ = (improved_correct, reduced_correct);
        let mut improved_len = 0usize;
        let mut reduced_len = 0usize;
        for seed in 0..40 {
            improved_len += improved_svt(&answers, 0.0, lambda, t, &mut seeded(seed)).len();
            reduced_len += reduced_svt(&answers, 0.0, lambda, t, &mut seeded(1000 + seed)).len();
        }
        assert!(
            improved_len <= reduced_len,
            "improved {improved_len} vs reduced {reduced_len}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let answers = [1.0, -1.0, 3.0];
        let a = binary_svt(&answers, 0.0, 1.0, &mut seeded(6));
        let b = binary_svt(&answers, 0.0, 1.0, &mut seeded(6));
        assert_eq!(a, b);
    }
}
