//! The hypothetical SVT-driven quadtree of Section 5.
//!
//! "Given a threshold θ and a set D of spatial points … we invoke the
//! binary SVT to inspect each query in Q one by one; if the binary SVT
//! outputs 1 for a query c(v), then we split the node v." If Claim 1 held,
//! this construction would need only `Lap(2/ε)` noise — beating
//! PrivTree's `(2β−1)/(β−1)·(1/ε)`. Lemma 5.1 shows it is **not**
//! ε-differentially private; it is provided so the benchmark harness can
//! demonstrate both its (illusory) utility appeal and its privacy
//! failure. Do not deploy it.

use std::collections::VecDeque;

use privtree_core::domain::TreeDomain;
use privtree_core::tree::Tree;
use privtree_core::{CoreError, Result};
use privtree_dp::laplace::Laplace;
use rand::Rng;

/// Build a decomposition tree with binary-SVT split decisions at noise
/// scale `lambda` (the refuted Claim 1 would set `lambda = 2/ε`).
pub fn svt_quadtree<D: TreeDomain, R: Rng + ?Sized>(
    domain: &mut D,
    theta: f64,
    lambda: f64,
    node_limit: usize,
    rng: &mut R,
) -> Result<Tree<D::Node>> {
    let noise = Laplace::centered(lambda).map_err(|e| CoreError::BadParams(e.to_string()))?;
    // one noisy threshold for the whole run (Algorithm 3 line 1)
    let theta_hat = theta + noise.sample(rng);

    let mut tree = Tree::with_root(domain.root());
    let mut queue = VecDeque::new();
    queue.push_back(tree.root());
    while let Some(v) = queue.pop_front() {
        let q_hat = domain.score(tree.payload(v)) + noise.sample(rng);
        if q_hat > theta_hat {
            if let Some(children) = domain.split(tree.payload(v)) {
                if tree.len() + children.len() > node_limit {
                    return Err(CoreError::TreeTooLarge { limit: node_limit });
                }
                for c in tree.add_children(v, children) {
                    queue.push_back(c);
                }
            }
        }
    }
    Ok(tree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use privtree_core::domain::LineDomain;
    use privtree_dp::rng::seeded;

    fn clustered(n: usize) -> Vec<f64> {
        (0..n).map(|i| (i as f64) / (n as f64) / 64.0).collect()
    }

    #[test]
    fn builds_adaptive_trees() {
        let mut domain = LineDomain::new(clustered(50_000)).with_min_width(1e-6);
        let tree = svt_quadtree(&mut domain, 100.0, 2.0, 1 << 20, &mut seeded(1)).unwrap();
        assert!(tree.max_depth() > 5, "depth = {}", tree.max_depth());
    }

    /// The utility appeal the paper warns about: at the same ε the
    /// (non-private!) SVT tree uses constant noise 2/ε, smaller than
    /// PrivTree's (2β−1)/(β−1)/ε for β = 2.
    #[test]
    fn nominal_noise_is_smaller_than_privtree() {
        let eps = 1.0;
        let svt_lambda = 2.0 / eps;
        let privtree_lambda = privtree_dp::rho::privtree_scale_for_fanout(eps, 2);
        assert!(svt_lambda < privtree_lambda);
    }

    #[test]
    fn respects_node_limit() {
        let mut domain = LineDomain::new(clustered(50_000)).with_min_width(1e-9);
        let err = svt_quadtree(&mut domain, 0.0, 2.0, 8, &mut seeded(2)).unwrap_err();
        assert!(matches!(err, CoreError::TreeTooLarge { .. }));
    }

    #[test]
    fn deterministic_given_seed() {
        let mut domain = LineDomain::new(clustered(1000)).with_min_width(1e-4);
        let a = svt_quadtree(&mut domain, 10.0, 2.0, 1 << 16, &mut seeded(3)).unwrap();
        let b = svt_quadtree(&mut domain, 10.0, 2.0, 1 << 16, &mut seeded(3)).unwrap();
        assert_eq!(a.len(), b.len());
    }
}
