//! Differentially private quantile estimation.
//!
//! The paper (footnote 2, citing Zeng et al. \[54\]) picks the sequence-length
//! bound `l⊤` as a DP estimate of the 90–95% quantile of sequence lengths.
//! We implement the standard exponential-mechanism quantile (Smith 2011):
//! intervals between consecutive order statistics are candidates, the
//! utility of an interval is minus its rank distance to the target rank,
//! and an interval is drawn with probability ∝ length · exp(ε·u/2); the
//! released value is uniform within the chosen interval.

use rand::{Rng, RngExt};

use crate::budget::Epsilon;
use crate::exponential::weighted_exponential_mechanism;
use crate::{DpError, Result};

/// A DP estimate of the `q`-quantile of `values`, which must lie within
/// `[lo, hi]` (a data-independent range; values outside are clamped).
///
/// Rank sensitivity is 1 (adding a tuple shifts each rank by at most one),
/// so the utility sensitivity passed to the exponential mechanism is 1.
pub fn dp_quantile<R: Rng + ?Sized>(
    values: &[f64],
    q: f64,
    lo: f64,
    hi: f64,
    epsilon: Epsilon,
    rng: &mut R,
) -> Result<f64> {
    if !(0.0..=1.0).contains(&q) {
        return Err(DpError::InvalidQuantile(q));
    }
    if values.is_empty() || lo >= hi {
        return Err(DpError::InvalidQuantile(q));
    }
    let mut xs: Vec<f64> = values.iter().map(|v| v.clamp(lo, hi)).collect();
    xs.sort_by(|a, b| a.partial_cmp(b).expect("clamped values are comparable"));
    let n = xs.len();
    let target = q * n as f64;

    // interval i spans [bound(i), bound(i+1)] where bound(0)=lo,
    // bound(n+1)=hi and bound(i)=x_(i) otherwise; its utility is -|i - target|
    let mut utilities = Vec::with_capacity(n + 1);
    let mut lengths = Vec::with_capacity(n + 1);
    for i in 0..=n {
        let left = if i == 0 { lo } else { xs[i - 1] };
        let right = if i == n { hi } else { xs[i] };
        utilities.push(-((i as f64) - target).abs());
        lengths.push((right - left).max(0.0));
    }
    // Degenerate data (all points equal to lo or hi) can zero out every
    // interval; fall back to uniform interval weights in that case.
    if lengths.iter().all(|l| *l == 0.0) {
        lengths.iter_mut().for_each(|l| *l = 1.0);
    }
    let i = weighted_exponential_mechanism(&utilities, &lengths, epsilon, 1.0, rng)?;
    let left = if i == 0 { lo } else { xs[i - 1] };
    let right = if i == n { hi } else { xs[i] };
    if right > left {
        Ok(left + rng.random::<f64>() * (right - left))
    } else {
        Ok(left)
    }
}

/// DP quantile specialized to integer-valued data (e.g. sequence lengths).
/// Returns the released value rounded up to an integer, which is the shape
/// `l⊤` takes in Section 4.2.
pub fn dp_quantile_int<R: Rng + ?Sized>(
    values: &[u32],
    q: f64,
    max_value: u32,
    epsilon: Epsilon,
    rng: &mut R,
) -> Result<u32> {
    let xs: Vec<f64> = values.iter().map(|v| *v as f64).collect();
    let est = dp_quantile(&xs, q, 0.0, max_value as f64, epsilon, rng)?;
    Ok(est.ceil().clamp(1.0, max_value as f64) as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;

    #[test]
    fn rejects_bad_input() {
        let mut rng = seeded(0);
        let e = Epsilon::new(1.0).unwrap();
        assert!(dp_quantile(&[], 0.5, 0.0, 1.0, e, &mut rng).is_err());
        assert!(dp_quantile(&[1.0], 1.5, 0.0, 1.0, e, &mut rng).is_err());
        assert!(dp_quantile(&[1.0], 0.5, 1.0, 0.0, e, &mut rng).is_err());
    }

    #[test]
    fn concentrates_near_true_quantile() {
        let mut rng = seeded(5);
        let values: Vec<f64> = (0..10_000).map(|i| i as f64 / 100.0).collect(); // uniform 0..100
        let e = Epsilon::new(1.0).unwrap();
        let mut errs = Vec::new();
        for rep in 0..50 {
            let _ = rep;
            let est = dp_quantile(&values, 0.95, 0.0, 100.0, e, &mut rng).unwrap();
            errs.push((est - 95.0).abs());
        }
        errs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median_err = errs[errs.len() / 2];
        assert!(median_err < 2.0, "median error = {median_err}");
    }

    #[test]
    fn output_stays_in_range() {
        let mut rng = seeded(8);
        let values = vec![50.0; 100];
        let e = Epsilon::new(0.1).unwrap();
        for _ in 0..100 {
            let est = dp_quantile(&values, 0.5, 0.0, 100.0, e, &mut rng).unwrap();
            assert!((0.0..=100.0).contains(&est));
        }
    }

    #[test]
    fn degenerate_all_equal_to_bound() {
        let mut rng = seeded(8);
        let values = vec![0.0; 10];
        let e = Epsilon::new(1.0).unwrap();
        let est = dp_quantile(&values, 0.5, 0.0, 0.5, e, &mut rng);
        assert!(est.is_ok());
    }

    #[test]
    fn integer_variant_for_sequence_lengths() {
        let mut rng = seeded(13);
        // lengths mostly ≤ 20, tail to 60 — like msnbc
        let mut lengths: Vec<u32> = (0..1000).map(|i| (i % 20) + 1).collect();
        lengths.extend(std::iter::repeat_n(60, 20));
        let e = Epsilon::new(2.0).unwrap();
        let l_top = dp_quantile_int(&lengths, 0.95, 100, e, &mut rng).unwrap();
        assert!((15..=30).contains(&l_top), "l_top = {l_top}");
    }
}
