//! Seedable RNG plumbing.
//!
//! Every randomized routine in the workspace takes `&mut impl Rng`; the
//! experiment harness constructs one [`SeededRng`] per (experiment,
//! repetition) pair so results are reproducible and repetitions are
//! independent.

use rand::SeedableRng;

/// The RNG used by all experiments (ChaCha12 behind `rand`'s `StdRng`).
pub type SeededRng = rand::rngs::StdRng;

/// Construct a deterministic RNG from a `u64` seed.
pub fn seeded(seed: u64) -> SeededRng {
    SeededRng::seed_from_u64(seed)
}

/// Derive a child seed from a parent seed and a stream index.
///
/// Uses SplitMix64 so that nearby `(seed, stream)` pairs produce unrelated
/// child seeds; handy for giving each repetition / dataset / method its own
/// independent stream.
pub fn derive_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    #[test]
    fn same_seed_same_stream() {
        let mut a = seeded(5);
        let mut b = seeded(5);
        for _ in 0..32 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn derived_seeds_differ() {
        let s = 12345;
        let children: Vec<u64> = (0..100).map(|i| derive_seed(s, i)).collect();
        let mut sorted = children.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), children.len(), "collision in derived seeds");
    }

    #[test]
    fn derive_is_sensitive_to_both_args() {
        assert_ne!(derive_seed(1, 0), derive_seed(2, 0));
        assert_ne!(derive_seed(1, 0), derive_seed(1, 1));
    }
}
