//! Differential-privacy primitives used throughout the PrivTree reproduction.
//!
//! This crate implements, from scratch, everything the paper's Section 2.1
//! relies on:
//!
//! * the [`Laplace`] distribution (density, CDF, survival function, inverse
//!   CDF sampling) and the Laplace mechanism ([`LaplaceMechanism`]);
//! * privacy budgets and sequential composition ([`Epsilon`], [`Budget`]);
//! * the exponential mechanism ([`exponential`]) and a DP quantile built on
//!   it ([`quantile`]), used to pick the sequence-length bound `l⊤`
//!   (footnote 2 of the paper);
//! * the privacy-risk function `ρ(x)` of Eq. (5) and its upper bound
//!   `ρ⊤(x)` of Eq. (7) / Lemma 3.1, plus the Theorem 3.1 / Corollary 1
//!   noise-scale formulas ([`mod@rho`]).
//!
//! All randomness flows through caller-provided [`rand::Rng`] instances so
//! every experiment in the workspace is reproducible from a `u64` seed (see
//! [`rng::seeded`]).

pub mod budget;
pub mod exponential;
pub mod geometric;
pub mod laplace;
pub mod mechanism;
pub mod quantile;
pub mod rho;
pub mod rng;

pub use budget::{Budget, Epsilon};
pub use exponential::exponential_mechanism;
pub use geometric::TwoSidedGeometric;
pub use laplace::Laplace;
pub use mechanism::LaplaceMechanism;
pub use quantile::dp_quantile;
pub use rho::{
    delta_for_fanout, privacy_cost_bound, privtree_scale_for_fanout, privtree_scale_for_gamma, rho,
    rho_upper,
};
pub use rng::{seeded, SeededRng};

/// Errors produced by DP primitives.
#[derive(Debug, Clone, PartialEq)]
pub enum DpError {
    /// The privacy parameter ε must be strictly positive and finite.
    InvalidEpsilon(f64),
    /// A noise scale must be strictly positive and finite.
    InvalidScale(f64),
    /// A sensitivity bound must be strictly positive and finite.
    InvalidSensitivity(f64),
    /// The exponential mechanism needs at least one candidate.
    EmptyCandidates,
    /// A budget split requested more privacy than remains.
    BudgetExhausted { requested: f64, remaining: f64 },
    /// Quantile must lie in \[0, 1\] and the input must be non-empty.
    InvalidQuantile(f64),
}

impl std::fmt::Display for DpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DpError::InvalidEpsilon(e) => write!(f, "invalid privacy budget epsilon = {e}"),
            DpError::InvalidScale(s) => write!(f, "invalid Laplace scale = {s}"),
            DpError::InvalidSensitivity(s) => write!(f, "invalid sensitivity = {s}"),
            DpError::EmptyCandidates => write!(f, "exponential mechanism given no candidates"),
            DpError::BudgetExhausted {
                requested,
                remaining,
            } => write!(
                f,
                "privacy budget exhausted: requested {requested}, remaining {remaining}"
            ),
            DpError::InvalidQuantile(q) => write!(f, "invalid quantile request: {q}"),
        }
    }
}

impl std::error::Error for DpError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, DpError>;
