//! Privacy budgets and sequential composition (Lemma 2.1 of the paper).

use crate::{DpError, Result};

/// A validated privacy parameter ε > 0.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Epsilon(f64);

impl Epsilon {
    /// Wrap a finite, strictly positive ε.
    pub fn new(eps: f64) -> Result<Self> {
        if eps.is_finite() && eps > 0.0 {
            Ok(Self(eps))
        } else {
            Err(DpError::InvalidEpsilon(eps))
        }
    }

    /// The raw value.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }

    /// Split this ε into parts proportional to `weights` (sequential
    /// composition in reverse: the parts sum back to the whole).
    pub fn split(self, weights: &[f64]) -> Result<Vec<Epsilon>> {
        let total: f64 = weights.iter().sum();
        if !(total.is_finite() && total > 0.0) || weights.iter().any(|w| *w <= 0.0) {
            return Err(DpError::InvalidEpsilon(total));
        }
        weights
            .iter()
            .map(|w| Epsilon::new(self.0 * w / total))
            .collect()
    }

    /// Convenience: split into two parts `(frac, 1 - frac)`.
    pub fn split_two(self, frac: f64) -> Result<(Epsilon, Epsilon)> {
        if !(0.0..1.0).contains(&frac) || frac == 0.0 {
            return Err(DpError::InvalidEpsilon(frac));
        }
        Ok((
            Epsilon::new(self.0 * frac)?,
            Epsilon::new(self.0 * (1.0 - frac))?,
        ))
    }
}

impl std::fmt::Display for Epsilon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ε={}", self.0)
    }
}

impl TryFrom<f64> for Epsilon {
    type Error = DpError;
    fn try_from(v: f64) -> Result<Self> {
        Epsilon::new(v)
    }
}

/// A sequential-composition accountant.
///
/// An algorithm made of components A₁,…,A_k that consume ε₁,…,ε_k satisfies
/// (Σεᵢ)-DP (Lemma 2.1). The accountant hands out pieces of a fixed total
/// and refuses to oversubscribe, making budget mistakes loud in tests.
#[derive(Debug, Clone)]
pub struct Budget {
    total: f64,
    spent: f64,
    log: Vec<(String, f64)>,
}

impl Budget {
    /// A fresh budget with the given total ε.
    pub fn new(total: Epsilon) -> Self {
        Self {
            total: total.get(),
            spent: 0.0,
            log: Vec::new(),
        }
    }

    /// Total budget.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Budget consumed so far.
    pub fn spent(&self) -> f64 {
        self.spent
    }

    /// Budget still available.
    pub fn remaining(&self) -> f64 {
        (self.total - self.spent).max(0.0)
    }

    /// Consume `eps` for a named component, returning it as a validated
    /// [`Epsilon`]. Fails if the budget would be exceeded (with a 1e-9
    /// tolerance for float drift).
    pub fn spend(&mut self, label: &str, eps: f64) -> Result<Epsilon> {
        let e = Epsilon::new(eps)?;
        if self.spent + eps > self.total + 1e-9 {
            return Err(DpError::BudgetExhausted {
                requested: eps,
                remaining: self.remaining(),
            });
        }
        self.spent += eps;
        self.log.push((label.to_string(), eps));
        Ok(e)
    }

    /// Consume a fraction of the *total* budget.
    pub fn spend_fraction(&mut self, label: &str, frac: f64) -> Result<Epsilon> {
        self.spend(label, self.total * frac)
    }

    /// Consume everything that remains.
    pub fn spend_rest(&mut self, label: &str) -> Result<Epsilon> {
        let rest = self.remaining();
        self.spend(label, rest)
    }

    /// The ledger of `(component, ε)` expenditures, in order.
    pub fn ledger(&self) -> &[(String, f64)] {
        &self.log
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epsilon_validation() {
        assert!(Epsilon::new(0.1).is_ok());
        assert!(Epsilon::new(0.0).is_err());
        assert!(Epsilon::new(-1.0).is_err());
        assert!(Epsilon::new(f64::NAN).is_err());
        assert!(Epsilon::new(f64::INFINITY).is_err());
    }

    #[test]
    fn split_sums_to_whole() {
        let e = Epsilon::new(1.0).unwrap();
        let parts = e.split(&[1.0, 3.0]).unwrap();
        assert_eq!(parts.len(), 2);
        assert!((parts[0].get() - 0.25).abs() < 1e-12);
        assert!((parts[1].get() - 0.75).abs() < 1e-12);
        let sum: f64 = parts.iter().map(|p| p.get()).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn split_rejects_bad_weights() {
        let e = Epsilon::new(1.0).unwrap();
        assert!(e.split(&[1.0, -1.0]).is_err());
        assert!(e.split(&[0.0]).is_err());
    }

    #[test]
    fn split_two_budget_for_spatial_pipeline() {
        // Section 3.4: tree gets ε/2, leaf counts get ε/2.
        let (tree, counts) = Epsilon::new(0.8).unwrap().split_two(0.5).unwrap();
        assert!((tree.get() - 0.4).abs() < 1e-12);
        assert!((counts.get() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn budget_accounting() {
        let mut b = Budget::new(Epsilon::new(1.0).unwrap());
        let t = b.spend("tree", 0.5).unwrap();
        assert!((t.get() - 0.5).abs() < 1e-12);
        assert!((b.remaining() - 0.5).abs() < 1e-12);
        let c = b.spend_rest("counts").unwrap();
        assert!((c.get() - 0.5).abs() < 1e-12);
        assert!(b.spend("extra", 0.01).is_err());
        assert_eq!(b.ledger().len(), 2);
        assert_eq!(b.ledger()[0].0, "tree");
    }

    #[test]
    fn sequence_budget_split_matches_section_4_2() {
        // PrivTree gets ε/β, postprocessing gets ε(β−1)/β.
        let beta = 8.0;
        let e = Epsilon::new(1.6).unwrap();
        let parts = e.split(&[1.0, beta - 1.0]).unwrap();
        assert!((parts[0].get() - 1.6 / beta).abs() < 1e-12);
        assert!((parts[1].get() - 1.6 * (beta - 1.0) / beta).abs() < 1e-12);
    }
}
