//! The geometric mechanism (two-sided geometric / discrete Laplace
//! noise), the integer-valued counterpart of the Laplace mechanism.
//!
//! For integer counting queries, adding noise `η` with
//! `Pr[η = k] = (1−α)/(1+α)·α^{|k|}` and `α = exp(−ε/Δ)` is ε-DP for
//! sensitivity-Δ queries, and the released values stay integers — handy
//! when downstream consumers reject fractional counts. PrivTree's own
//! analysis is specific to the continuous Laplace distribution, so the
//! tree construction keeps using [`crate::laplace`]; this mechanism is
//! offered for count postprocessing.

use rand::{Rng, RngExt};

use crate::budget::Epsilon;
use crate::{DpError, Result};

/// Two-sided geometric noise with decay `alpha ∈ (0, 1)`.
#[derive(Debug, Clone, Copy)]
pub struct TwoSidedGeometric {
    alpha: f64,
}

impl TwoSidedGeometric {
    /// Noise calibrated for ε-DP release of integer queries with the
    /// given L1 `sensitivity`: `α = exp(−ε/Δ)`.
    pub fn new(epsilon: Epsilon, sensitivity: f64) -> Result<Self> {
        if !(sensitivity.is_finite() && sensitivity > 0.0) {
            return Err(DpError::InvalidSensitivity(sensitivity));
        }
        Ok(Self {
            alpha: (-epsilon.get() / sensitivity).exp(),
        })
    }

    /// Construct from the decay parameter directly.
    pub fn with_alpha(alpha: f64) -> Result<Self> {
        if !(alpha > 0.0 && alpha < 1.0) {
            return Err(DpError::InvalidScale(alpha));
        }
        Ok(Self { alpha })
    }

    /// The decay parameter α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Probability mass at `k`.
    pub fn pmf(&self, k: i64) -> f64 {
        (1.0 - self.alpha) / (1.0 + self.alpha) * self.alpha.powi(k.unsigned_abs() as i32)
    }

    /// Variance: `2α/(1−α)²`.
    pub fn variance(&self) -> f64 {
        2.0 * self.alpha / ((1.0 - self.alpha) * (1.0 - self.alpha))
    }

    /// Draw one noise value as the difference of two geometric variables
    /// (each counting failures with success probability `1 − α`).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> i64 {
        let g1 = self.sample_geometric(rng);
        let g2 = self.sample_geometric(rng);
        g1 - g2
    }

    fn sample_geometric<R: Rng + ?Sized>(&self, rng: &mut R) -> i64 {
        // inverse CDF: G = floor(ln U / ln α), capped to keep i64 sane
        let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
        ((u.ln() / self.alpha.ln()).floor() as i64).min(1 << 40)
    }

    /// Release an integer count.
    pub fn randomize<R: Rng + ?Sized>(&self, count: i64, rng: &mut R) -> i64 {
        count + self.sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;

    #[test]
    fn pmf_sums_to_one() {
        let g = TwoSidedGeometric::with_alpha(0.7).unwrap();
        let total: f64 = (-300..=300).map(|k| g.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9, "total = {total}");
    }

    #[test]
    fn calibration_from_epsilon() {
        let g = TwoSidedGeometric::new(Epsilon::new(1.0).unwrap(), 2.0).unwrap();
        assert!((g.alpha() - (-0.5f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(TwoSidedGeometric::with_alpha(0.0).is_err());
        assert!(TwoSidedGeometric::with_alpha(1.0).is_err());
        assert!(TwoSidedGeometric::new(Epsilon::new(1.0).unwrap(), -1.0).is_err());
    }

    /// The defining DP property: pmf ratios between neighboring shifts
    /// are bounded by e^{ε}.
    #[test]
    fn pmf_ratio_bounded() {
        let eps = 0.8;
        let g = TwoSidedGeometric::new(Epsilon::new(eps).unwrap(), 1.0).unwrap();
        for out in -20i64..=20 {
            // output `out` when count is 3 vs 4
            let p0 = g.pmf(out - 3);
            let p1 = g.pmf(out - 4);
            let ratio = (p0 / p1).ln().abs();
            assert!(ratio <= eps + 1e-12, "out = {out}: ratio {ratio}");
        }
    }

    #[test]
    fn sample_moments() {
        let g = TwoSidedGeometric::with_alpha(0.6).unwrap();
        let mut rng = seeded(1);
        let n = 200_000;
        let samples: Vec<i64> = (0..n).map(|_| g.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<i64>() as f64 / n as f64;
        let var = samples
            .iter()
            .map(|&s| (s as f64 - mean) * (s as f64 - mean))
            .sum::<f64>()
            / n as f64;
        assert!(mean.abs() < 0.05, "mean = {mean}");
        assert!(
            (var - g.variance()).abs() / g.variance() < 0.05,
            "var = {var} vs {}",
            g.variance()
        );
    }

    #[test]
    fn outputs_are_integers_and_deterministic() {
        let g = TwoSidedGeometric::with_alpha(0.5).unwrap();
        let a: Vec<i64> = {
            let mut rng = seeded(2);
            (0..10).map(|_| g.randomize(100, &mut rng)).collect()
        };
        let b: Vec<i64> = {
            let mut rng = seeded(2);
            (0..10).map(|_| g.randomize(100, &mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
