//! The privacy-risk function `ρ(x)` (Eq. 5), its upper bound `ρ⊤(x)`
//! (Eq. 7, Lemma 3.1), and the Theorem 3.1 / Corollary 1 noise-scale
//! formulas.
//!
//! `ρ(x)` is the log ratio of the probabilities that a node with biased
//! count `x` versus `x − 1` is split at threshold `θ` with `Lap(λ)` noise:
//!
//! ```text
//! ρ(x) = ln( Pr[x + Lap(λ) > θ] / Pr[x − 1 + Lap(λ) > θ] )
//! ```
//!
//! Its key property (Fig. 2 of the paper) is exponential decay for
//! `x ≥ θ + 1`, which is what lets PrivTree use constant noise over
//! unbounded recursion depths.

use crate::laplace::Laplace;

/// `ρ(x)` of Eq. (5), evaluated in log space so deep tails stay exact.
pub fn rho(x: f64, theta: f64, lambda: f64) -> f64 {
    let lap = Laplace::centered(lambda).expect("lambda validated by caller");
    // Pr[x + Lap > θ] = SF(θ − x)
    lap.ln_sf(theta - x) - lap.ln_sf(theta - x + 1.0)
}

/// `ρ⊤(x)` of Eq. (7): the closed-form upper bound from Lemma 3.1.
pub fn rho_upper(x: f64, theta: f64, lambda: f64) -> f64 {
    if x < theta + 1.0 {
        1.0 / lambda
    } else {
        (1.0 / lambda) * ((theta + 1.0 - x) / lambda).exp()
    }
}

/// Theorem 3.1: the smallest noise scale for ε-DP with decay ratio
/// `γ = δ/λ`:  `λ = (2e^γ − 1)/(e^γ − 1) · 1/ε`.
pub fn privtree_scale_for_gamma(epsilon: f64, gamma: f64) -> f64 {
    assert!(epsilon > 0.0 && gamma > 0.0);
    let eg = gamma.exp();
    (2.0 * eg - 1.0) / (eg - 1.0) / epsilon
}

/// Corollary 1: with `γ = ln β` the Theorem 3.1 scale becomes
/// `λ = (2β − 1)/(β − 1) · 1/ε`.
pub fn privtree_scale_for_fanout(epsilon: f64, beta: usize) -> f64 {
    assert!(epsilon > 0.0 && beta >= 2);
    let b = beta as f64;
    (2.0 * b - 1.0) / (b - 1.0) / epsilon
}

/// The decaying factor `δ = λ·ln β` of Section 3.4 (chosen so a node at the
/// floor `b(v) = θ − δ` splits with probability exactly `1/(2β)`).
pub fn delta_for_fanout(lambda: f64, beta: usize) -> f64 {
    assert!(lambda > 0.0 && beta >= 2);
    lambda * (beta as f64).ln()
}

/// The total path privacy-cost bound from the proof of Theorem 3.1:
/// `Σ ρ(b(vᵢ)) ≤ (1/λ)·(2e^γ − 1)/(e^γ − 1)` when consecutive biased
/// counts decrease by at least `δ = γλ`.
pub fn privacy_cost_bound(lambda: f64, gamma: f64) -> f64 {
    assert!(lambda > 0.0 && gamma > 0.0);
    let eg = gamma.exp();
    (2.0 * eg - 1.0) / (eg - 1.0) / lambda
}

/// The probability that a node at the biased-count floor `b(v) = θ − δ`
/// splits: `Pr[Lap(λ) > δ]`. With `δ = λ ln β` this is `1/(2β)` — the
/// driver of Lemma 3.2's `E[|T|] ≤ 2|T*|` bound.
pub fn floor_split_probability(lambda: f64, delta: f64) -> f64 {
    Laplace::centered(lambda)
        .expect("lambda validated by caller")
        .sf(delta)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rho_below_threshold_is_one_over_lambda() {
        // Eq. (3): for x ≤ θ the ratio is exactly 1/λ.
        let (theta, lambda) = (10.0, 2.0);
        for x in [-50.0, -3.0, 0.0, 5.0, 9.0, 10.0] {
            let r = rho(x, theta, lambda);
            assert!((r - 1.0 / lambda).abs() < 1e-12, "x = {x}, rho = {r}");
        }
    }

    #[test]
    fn rho_decays_exponentially_above_threshold() {
        let (theta, lambda) = (0.0, 1.0);
        // For large x, ρ(x) ≈ (1/λ)(e^{1/λ} - 1)/... it decays like exp(-x/λ)
        let r20 = rho(20.0, theta, lambda);
        let r21 = rho(21.0, theta, lambda);
        let ratio = r21 / r20;
        assert!(
            (ratio - (-1.0f64 / lambda).exp()).abs() < 1e-6,
            "decay ratio = {ratio}"
        );
    }

    #[test]
    fn lemma_3_1_rho_bounded_by_rho_upper() {
        for &lambda in &[0.3, 1.0, 2.5, 10.0] {
            for &theta in &[-5.0, 0.0, 7.0] {
                let mut x = theta - 30.0;
                while x <= theta + 60.0 {
                    let r = rho(x, theta, lambda);
                    let ru = rho_upper(x, theta, lambda);
                    assert!(
                        r <= ru + 1e-12,
                        "rho({x}) = {r} > rho_upper = {ru} (θ={theta}, λ={lambda})"
                    );
                    x += 0.37;
                }
            }
        }
    }

    #[test]
    fn rho_is_nonnegative_and_monotone_decreasing() {
        let (theta, lambda) = (0.0, 1.5);
        let mut prev = f64::INFINITY;
        let mut x = -10.0;
        while x < 40.0 {
            let r = rho(x, theta, lambda);
            assert!(r >= 0.0);
            assert!(r <= prev + 1e-12, "rho not monotone at x = {x}");
            prev = r;
            x += 0.25;
        }
    }

    #[test]
    fn corollary_1_matches_theorem_3_1_at_gamma_ln_beta() {
        for beta in [2usize, 4, 8, 16] {
            for eps in [0.05, 0.4, 1.6] {
                let a = privtree_scale_for_fanout(eps, beta);
                let b = privtree_scale_for_gamma(eps, (beta as f64).ln());
                assert!((a - b).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn quadtree_scale_example() {
        // β = 4, ε = 1: λ = 7/3
        let l = privtree_scale_for_fanout(1.0, 4);
        assert!((l - 7.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn floor_split_probability_is_half_beta_inverse() {
        // Lemma 3.2 setup: δ = λ ln β ⇒ Pr[split at floor] = 1/(2β).
        for beta in [2usize, 4, 16] {
            let lambda = 1.7;
            let delta = delta_for_fanout(lambda, beta);
            let p = floor_split_probability(lambda, delta);
            assert!(
                (p - 1.0 / (2.0 * beta as f64)).abs() < 1e-12,
                "beta = {beta}, p = {p}"
            );
        }
    }

    #[test]
    fn geometric_series_bound_dominates_worst_case_path() {
        // Re-derive the Theorem 3.1 proof numerically: take a worst-case
        // path whose biased counts step down by exactly δ from a huge value
        // to θ − δ, sum ρ over it, and verify the closed-form bound.
        let beta = 4usize;
        let eps = 0.5;
        let lambda = privtree_scale_for_fanout(eps, beta);
        let delta = delta_for_fanout(lambda, beta);
        let theta = 0.0;
        let mut total = 0.0;
        let mut b = theta + 200.0 * delta;
        while b >= theta - delta {
            total += rho(b, theta, lambda);
            b -= delta;
        }
        let bound = privacy_cost_bound(lambda, delta / lambda);
        assert!(
            total <= bound + 1e-9,
            "path cost {total} exceeds bound {bound}"
        );
        // and the bound equals ε by construction of λ
        assert!((bound - eps).abs() < 1e-9);
    }
}
