//! The Laplace distribution `Lap(µ, λ)` (Eq. (1) of the paper).
//!
//! The paper writes `Lap(λ)` for the zero-mean distribution with density
//! `Pr[η = x] = exp(-|x|/λ) / (2λ)`; its standard deviation is `√2·λ`.

use rand::{Rng, RngExt};

use crate::{DpError, Result};

/// A Laplace distribution with location `mu` and scale `lambda`.
///
/// Sampling uses the inverse-CDF method driven by a caller-provided RNG,
/// which keeps every consumer of this crate reproducible from a seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Laplace {
    mu: f64,
    lambda: f64,
}

impl Laplace {
    /// Zero-mean Laplace noise of the given scale, the `Lap(λ)` of the paper.
    pub fn centered(lambda: f64) -> Result<Self> {
        Self::new(0.0, lambda)
    }

    /// Laplace distribution with location `mu` and scale `lambda > 0`.
    pub fn new(mu: f64, lambda: f64) -> Result<Self> {
        if !(lambda.is_finite() && lambda > 0.0) {
            return Err(DpError::InvalidScale(lambda));
        }
        if !mu.is_finite() {
            return Err(DpError::InvalidScale(mu));
        }
        Ok(Self { mu, lambda })
    }

    /// The location parameter (mean and median).
    #[inline]
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// The scale parameter λ.
    #[inline]
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Variance, `2λ²`.
    #[inline]
    pub fn variance(&self) -> f64 {
        2.0 * self.lambda * self.lambda
    }

    /// Probability density at `x`.
    #[inline]
    pub fn pdf(&self, x: f64) -> f64 {
        (-(x - self.mu).abs() / self.lambda).exp() / (2.0 * self.lambda)
    }

    /// Natural log of the density at `x`; avoids underflow far in the tails.
    #[inline]
    pub fn ln_pdf(&self, x: f64) -> f64 {
        -(x - self.mu).abs() / self.lambda - (2.0 * self.lambda).ln()
    }

    /// Cumulative distribution function `Pr[X ≤ x]`.
    #[inline]
    pub fn cdf(&self, x: f64) -> f64 {
        let z = (x - self.mu) / self.lambda;
        if z < 0.0 {
            0.5 * z.exp()
        } else {
            1.0 - 0.5 * (-z).exp()
        }
    }

    /// Survival function `Pr[X > x] = 1 - cdf(x)`, computed without
    /// catastrophic cancellation in the upper tail.
    #[inline]
    pub fn sf(&self, x: f64) -> f64 {
        let z = (x - self.mu) / self.lambda;
        if z < 0.0 {
            1.0 - 0.5 * z.exp()
        } else {
            0.5 * (-z).exp()
        }
    }

    /// `ln Pr[X > x]`; exact even when the survival probability underflows.
    #[inline]
    pub fn ln_sf(&self, x: f64) -> f64 {
        let z = (x - self.mu) / self.lambda;
        if z < 0.0 {
            (1.0 - 0.5 * z.exp()).ln()
        } else {
            (0.5f64).ln() - z
        }
    }

    /// `ln Pr[X ≤ x]`; exact even when the probability underflows.
    #[inline]
    pub fn ln_cdf(&self, x: f64) -> f64 {
        let z = (x - self.mu) / self.lambda;
        if z < 0.0 {
            (0.5f64).ln() + z
        } else {
            (1.0 - 0.5 * (-z).exp()).ln()
        }
    }

    /// Inverse CDF (quantile function) for `p ∈ (0, 1)`.
    #[inline]
    pub fn inverse_cdf(&self, p: f64) -> f64 {
        debug_assert!(p > 0.0 && p < 1.0, "quantile argument must be in (0,1)");
        if p < 0.5 {
            self.mu + self.lambda * (2.0 * p).ln()
        } else {
            self.mu - self.lambda * (2.0 * (1.0 - p)).ln()
        }
    }

    /// Draw one sample.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // u is uniform on [-0.5, 0.5); reflect the half-open endpoint so the
        // log never sees zero. ln_1p keeps precision near u = 0.
        let mut u: f64 = rng.random::<f64>() - 0.5;
        if u == -0.5 {
            u = 0.5 - f64::EPSILON;
        }
        self.mu - self.lambda * u.signum() * (-2.0 * u.abs()).ln_1p()
    }

    /// Draw `n` samples into a fresh vector.
    pub fn sample_n<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;

    #[test]
    fn rejects_bad_scale() {
        assert!(Laplace::centered(0.0).is_err());
        assert!(Laplace::centered(-1.0).is_err());
        assert!(Laplace::centered(f64::NAN).is_err());
        assert!(Laplace::centered(f64::INFINITY).is_err());
        assert!(Laplace::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn pdf_integrates_to_one() {
        let d = Laplace::new(1.5, 2.0).unwrap();
        // trapezoid over [-60, 60]
        let (a, b, n) = (-60.0f64, 60.0f64, 200_000usize);
        let h = (b - a) / n as f64;
        let mut total = 0.5 * (d.pdf(a) + d.pdf(b));
        for i in 1..n {
            total += d.pdf(a + h * i as f64);
        }
        total *= h;
        // trapezoid error is dominated by the density kink at µ
        assert!((total - 1.0).abs() < 1e-6, "integral = {total}");
    }

    #[test]
    fn cdf_sf_complement() {
        let d = Laplace::new(-0.7, 0.9).unwrap();
        for x in [-10.0, -1.0, -0.7, 0.0, 0.3, 5.0, 40.0] {
            assert!((d.cdf(x) + d.sf(x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn cdf_matches_pdf_derivative() {
        let d = Laplace::new(0.0, 1.3).unwrap();
        let h = 1e-6;
        for x in [-3.0, -0.5, 0.5, 2.0] {
            let num = (d.cdf(x + h) - d.cdf(x - h)) / (2.0 * h);
            assert!((num - d.pdf(x)).abs() < 1e-6);
        }
    }

    #[test]
    fn inverse_cdf_round_trip() {
        let d = Laplace::new(3.0, 0.5).unwrap();
        for p in [0.001, 0.1, 0.25, 0.5, 0.75, 0.9, 0.999] {
            let x = d.inverse_cdf(p);
            assert!((d.cdf(x) - p).abs() < 1e-10, "p = {p}");
        }
    }

    #[test]
    fn ln_sf_matches_sf() {
        let d = Laplace::centered(2.0).unwrap();
        for x in [-5.0, 0.0, 1.0, 10.0] {
            assert!((d.ln_sf(x) - d.sf(x).ln()).abs() < 1e-12);
            assert!((d.ln_cdf(x) - d.cdf(x).ln()).abs() < 1e-12);
        }
        // deep tail where sf underflows to subnormal territory
        assert!((d.ln_sf(1500.0) - ((0.5f64).ln() - 750.0)).abs() < 1e-9);
    }

    #[test]
    fn sample_moments() {
        let d = Laplace::new(2.0, 3.0).unwrap();
        let mut rng = seeded(42);
        let n = 200_000;
        let xs = d.sample_n(&mut rng, n);
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean = {mean}");
        assert!(
            (var - d.variance()).abs() / d.variance() < 0.03,
            "var = {var}"
        );
    }

    #[test]
    fn sample_tail_probabilities() {
        // Pr[Lap(λ) > t] = 0.5 exp(-t/λ); check empirically at t = λ.
        let d = Laplace::centered(1.0).unwrap();
        let mut rng = seeded(7);
        let n = 100_000;
        let hits = (0..n).filter(|_| d.sample(&mut rng) > 1.0).count();
        let p_hat = hits as f64 / n as f64;
        let p = d.sf(1.0);
        assert!((p_hat - p).abs() < 0.006, "p_hat = {p_hat}, p = {p}");
    }

    #[test]
    fn deterministic_given_seed() {
        let d = Laplace::centered(1.0).unwrap();
        let a = d.sample_n(&mut seeded(99), 16);
        let b = d.sample_n(&mut seeded(99), 16);
        assert_eq!(a, b);
    }
}
