//! The exponential mechanism (McSherry & Talwar \[38\]).
//!
//! Selects a candidate `i` with probability proportional to
//! `exp(ε·u(i) / (2·Δu))`, where `u` is the utility function and `Δu` its
//! sensitivity. Used by the `EM` baseline for top-k frequent-string mining
//! (§6.2) and by the DP quantile in [`crate::quantile`].

use rand::{Rng, RngExt};

use crate::budget::Epsilon;
use crate::{DpError, Result};

/// Select one index from `utilities` with the exponential mechanism.
///
/// `sensitivity` is the L1 sensitivity Δu of the utility function. The
/// implementation subtracts the maximum utility before exponentiating, so
/// arbitrarily large utility magnitudes cannot overflow.
pub fn exponential_mechanism<R: Rng + ?Sized>(
    utilities: &[f64],
    epsilon: Epsilon,
    sensitivity: f64,
    rng: &mut R,
) -> Result<usize> {
    if utilities.is_empty() {
        return Err(DpError::EmptyCandidates);
    }
    if !(sensitivity.is_finite() && sensitivity > 0.0) {
        return Err(DpError::InvalidSensitivity(sensitivity));
    }
    let coef = epsilon.get() / (2.0 * sensitivity);
    let max_u = utilities.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if !max_u.is_finite() {
        return Err(DpError::EmptyCandidates);
    }
    let weights: Vec<f64> = utilities
        .iter()
        .map(|u| (coef * (u - max_u)).exp())
        .collect();
    Ok(sample_discrete(&weights, rng))
}

/// Weighted exponential mechanism: candidate `i` is selected with
/// probability proportional to `w_i · exp(ε·u_i/(2Δu))`. The weights must be
/// data-independent (they encode candidate multiplicity, e.g. interval
/// lengths in the DP quantile).
pub fn weighted_exponential_mechanism<R: Rng + ?Sized>(
    utilities: &[f64],
    base_weights: &[f64],
    epsilon: Epsilon,
    sensitivity: f64,
    rng: &mut R,
) -> Result<usize> {
    if utilities.is_empty() || utilities.len() != base_weights.len() {
        return Err(DpError::EmptyCandidates);
    }
    if !(sensitivity.is_finite() && sensitivity > 0.0) {
        return Err(DpError::InvalidSensitivity(sensitivity));
    }
    let coef = epsilon.get() / (2.0 * sensitivity);
    // work in log space: log w_i + coef·u_i, then normalize by the max
    let logs: Vec<f64> = utilities
        .iter()
        .zip(base_weights)
        .map(|(u, w)| {
            if *w > 0.0 {
                w.ln() + coef * u
            } else {
                f64::NEG_INFINITY
            }
        })
        .collect();
    let max_l = logs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if !max_l.is_finite() {
        return Err(DpError::EmptyCandidates);
    }
    let weights: Vec<f64> = logs.iter().map(|l| (l - max_l).exp()).collect();
    Ok(sample_discrete(&weights, rng))
}

/// Sample an index proportional to non-negative `weights` (at least one of
/// which is positive).
fn sample_discrete<R: Rng + ?Sized>(weights: &[f64], rng: &mut R) -> usize {
    let total: f64 = weights.iter().sum();
    debug_assert!(total > 0.0);
    let mut t = rng.random::<f64>() * total;
    for (i, w) in weights.iter().enumerate() {
        t -= w;
        if t <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;

    #[test]
    fn empty_candidates_rejected() {
        let mut rng = seeded(0);
        assert_eq!(
            exponential_mechanism(&[], Epsilon::new(1.0).unwrap(), 1.0, &mut rng),
            Err(DpError::EmptyCandidates)
        );
    }

    #[test]
    fn selection_frequencies_match_theory() {
        // two candidates with utility gap g: odds should be exp(ε g / 2)
        let eps = 2.0;
        let utils = [5.0, 3.0];
        let mut rng = seeded(11);
        let n = 200_000;
        let mut first = 0usize;
        for _ in 0..n {
            if exponential_mechanism(&utils, Epsilon::new(eps).unwrap(), 1.0, &mut rng).unwrap()
                == 0
            {
                first += 1;
            }
        }
        let odds = first as f64 / (n - first) as f64;
        let expect = (eps * (utils[0] - utils[1]) / 2.0).exp();
        assert!(
            (odds / expect - 1.0).abs() < 0.05,
            "odds = {odds}, expect = {expect}"
        );
    }

    #[test]
    fn huge_utilities_do_not_overflow() {
        let mut rng = seeded(1);
        let utils = [1e300, 1e300 - 1.0, -1e300];
        let i = exponential_mechanism(&utils, Epsilon::new(0.1).unwrap(), 1.0, &mut rng).unwrap();
        assert!(i < 3);
    }

    #[test]
    fn weighted_version_respects_base_weights() {
        // equal utilities: selection should follow the base weights
        let mut rng = seeded(4);
        let utils = [0.0, 0.0];
        let weights = [1.0, 3.0];
        let n = 100_000;
        let mut second = 0usize;
        for _ in 0..n {
            if weighted_exponential_mechanism(
                &utils,
                &weights,
                Epsilon::new(1.0).unwrap(),
                1.0,
                &mut rng,
            )
            .unwrap()
                == 1
            {
                second += 1;
            }
        }
        let frac = second as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.01, "frac = {frac}");
    }

    #[test]
    fn zero_weight_candidates_never_selected() {
        let mut rng = seeded(9);
        for _ in 0..1000 {
            let i = weighted_exponential_mechanism(
                &[100.0, 0.0],
                &[0.0, 1.0],
                Epsilon::new(1.0).unwrap(),
                1.0,
                &mut rng,
            )
            .unwrap();
            assert_eq!(i, 1);
        }
    }
}
