//! The Laplace mechanism (Dwork et al. \[17\], as summarized in §2.1).
//!
//! To release `f(D)` with ε-DP, add i.i.d. `Lap(S(f)/ε)` noise to each
//! coordinate, where `S(f)` is the L1 sensitivity of `f`
//! (Definition 2.3).

use rand::Rng;

use crate::budget::Epsilon;
use crate::laplace::Laplace;
use crate::{DpError, Result};

/// The Laplace mechanism with a fixed noise scale.
#[derive(Debug, Clone, Copy)]
pub struct LaplaceMechanism {
    noise: Laplace,
}

impl LaplaceMechanism {
    /// Mechanism calibrated for `epsilon`-DP release of a query with the
    /// given L1 `sensitivity`: noise scale λ = sensitivity / ε.
    pub fn new(epsilon: Epsilon, sensitivity: f64) -> Result<Self> {
        if !(sensitivity.is_finite() && sensitivity > 0.0) {
            return Err(DpError::InvalidSensitivity(sensitivity));
        }
        Ok(Self {
            noise: Laplace::centered(sensitivity / epsilon.get())?,
        })
    }

    /// Mechanism with an explicit noise scale λ (used where the paper
    /// prescribes a scale directly, e.g. Theorem 3.1).
    pub fn with_scale(lambda: f64) -> Result<Self> {
        Ok(Self {
            noise: Laplace::centered(lambda)?,
        })
    }

    /// The noise scale λ in use.
    #[inline]
    pub fn scale(&self) -> f64 {
        self.noise.lambda()
    }

    /// Release a single value.
    #[inline]
    pub fn randomize<R: Rng + ?Sized>(&self, value: f64, rng: &mut R) -> f64 {
        value + self.noise.sample(rng)
    }

    /// Release a vector of values with i.i.d. noise.
    pub fn randomize_vec<R: Rng + ?Sized>(&self, values: &[f64], rng: &mut R) -> Vec<f64> {
        values.iter().map(|v| self.randomize(*v, rng)).collect()
    }

    /// Release counts; callers that need non-negative outputs should clamp
    /// afterwards (the paper clamps PST histogram counts at zero, §4.2).
    pub fn randomize_counts<R: Rng + ?Sized>(&self, counts: &[u64], rng: &mut R) -> Vec<f64> {
        counts
            .iter()
            .map(|c| self.randomize(*c as f64, rng))
            .collect()
    }

    /// The underlying noise distribution.
    #[inline]
    pub fn distribution(&self) -> Laplace {
        self.noise
    }
}

/// The noise scale the plain Laplace mechanism needs: `sensitivity / ε`.
pub fn laplace_scale(epsilon: Epsilon, sensitivity: f64) -> Result<f64> {
    if !(sensitivity.is_finite() && sensitivity > 0.0) {
        return Err(DpError::InvalidSensitivity(sensitivity));
    }
    Ok(sensitivity / epsilon.get())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;

    #[test]
    fn scale_is_sensitivity_over_epsilon() {
        let m = LaplaceMechanism::new(Epsilon::new(0.5).unwrap(), 2.0).unwrap();
        assert!((m.scale() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_sensitivity() {
        let e = Epsilon::new(1.0).unwrap();
        assert!(LaplaceMechanism::new(e, 0.0).is_err());
        assert!(LaplaceMechanism::new(e, -1.0).is_err());
        assert!(LaplaceMechanism::new(e, f64::INFINITY).is_err());
    }

    #[test]
    fn noisy_counts_are_unbiased() {
        let m = LaplaceMechanism::new(Epsilon::new(1.0).unwrap(), 1.0).unwrap();
        let mut rng = seeded(3);
        let n = 100_000;
        let noisy = m.randomize_counts(&vec![10u64; n], &mut rng);
        let mean = noisy.iter().sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.02, "mean = {mean}");
    }

    #[test]
    fn vector_release_length() {
        let m = LaplaceMechanism::with_scale(1.0).unwrap();
        let mut rng = seeded(0);
        assert_eq!(m.randomize_vec(&[1.0, 2.0, 3.0], &mut rng).len(), 3);
    }

    /// Empirical sanity check of the ε-DP guarantee: the log density ratio
    /// for outputs of neighboring counts (differing by the sensitivity)
    /// never exceeds ε.
    #[test]
    fn density_ratio_bounded_by_epsilon() {
        let eps = 0.7;
        let sens = 1.0;
        let m = LaplaceMechanism::new(Epsilon::new(eps).unwrap(), sens).unwrap();
        let d = m.distribution();
        for out in [-4.0, -1.0, 0.0, 0.5, 1.0, 3.0, 10.0] {
            // densities of output `out` when the true count is 5 vs 6
            let l0 = d.ln_pdf(out - 5.0);
            let l1 = d.ln_pdf(out - 6.0);
            assert!((l0 - l1).abs() <= eps + 1e-12);
        }
    }
}
