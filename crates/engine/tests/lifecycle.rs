//! Epoch lifecycle invariants: any add/swap/retire history answers like a
//! from-scratch build of the surviving shard set, and published snapshots
//! are immutable.
//!
//! The store's determinism contract (see the `privtree-engine` crate
//! docs) is that the catalog is canonicalized by key, so the *history* of
//! mutations can never leak into answers: only the surviving set matters.
//! These tests drive arbitrary operation sequences against real PrivTree
//! releases — with and without per-shard grids — and compare every
//! answer **bitwise** against `ShardedSynopsis::from_releases` of the
//! survivors. The incremental-rebuild instrumentation ([`SwapReport`])
//! is pinned as well: one swap builds one grid and one routing arena,
//! and every untouched shard is shared by `Arc` pointer.

use std::collections::BTreeMap;
use std::sync::Arc;

use privtree_dp::budget::Epsilon;
use privtree_dp::rng::seeded;
use privtree_engine::{EngineError, ReleaseStore, SwapReport};
use privtree_spatial::dataset::PointSet;
use privtree_spatial::geom::Rect;
use privtree_spatial::quadtree::SplitConfig;
use privtree_spatial::query::{RangeCountSynopsis, RangeQuery};
use privtree_spatial::sharded::ShardedSynopsis;
use privtree_spatial::FrozenSynopsis;
use proptest::prelude::*;
use rand::RngExt;

const REGIONS: usize = 4;

/// Vertical strip `i` of the unit square.
fn region(i: usize) -> Rect {
    Rect::new(&[i as f64 * 0.25, 0.0], &[(i as f64 + 1.0) * 0.25, 1.0])
}

/// A real PrivTree release over strip `i`, varying with `seed` (epoch).
fn release(i: usize, seed: u64, points: usize) -> FrozenSynopsis {
    let r = region(i);
    let mut rng = seeded(seed.wrapping_mul(31).wrapping_add(i as u64));
    let mut ps = PointSet::new(2);
    for _ in 0..points {
        ps.push(&[
            r.lo()[0] + rng.random::<f64>() * r.side(0),
            rng.random::<f64>().powi(2), // denser near y = 0
        ]);
    }
    privtree_synopsis_frozen(&ps, r, seed)
}

fn privtree_synopsis_frozen(ps: &PointSet, domain: Rect, seed: u64) -> FrozenSynopsis {
    privtree_spatial::synopsis::privtree_synopsis(
        ps,
        domain,
        SplitConfig::full(2),
        Epsilon::new(1.0).unwrap(),
        &mut seeded(seed ^ 0x9e3779b9),
    )
    .unwrap()
    .freeze()
}

fn workload(n: usize, seed: u64) -> Vec<RangeQuery> {
    let mut rng = seeded(seed);
    (0..n)
        .map(|_| {
            let (a, b) = (rng.random::<f64>(), rng.random::<f64>());
            let (c, d) = (rng.random::<f64>(), rng.random::<f64>());
            RangeQuery::new(Rect::new(&[a.min(b), c.min(d)], &[a.max(b), c.max(d)]))
        })
        .collect()
}

/// Rebuild the surviving shard set from scratch, in the store's canonical
/// (sorted key) order.
fn fresh_rebuild(model: &BTreeMap<String, FrozenSynopsis>, gridded: bool) -> ShardedSynopsis {
    let sharded = ShardedSynopsis::from_releases(model.values().cloned().collect()).unwrap();
    if gridded {
        sharded.with_shard_grids().unwrap()
    } else {
        sharded
    }
}

proptest! {
    /// Any add/swap/retire sequence answers bit-identically to a fresh
    /// `from_releases` of the surviving shard set — ungridded and gridded.
    #[test]
    fn histories_answer_like_fresh_builds(
        ops in collection::vec(0u64..100_000, 1..7),
        gridded in 0u8..2,
        qseed in 0u64..1000,
    ) {
        let gridded = gridded == 1;
        let points = 150;
        let mut model: BTreeMap<String, FrozenSynopsis> = BTreeMap::new();
        let mut initial: Vec<(String, FrozenSynopsis)> = Vec::new();
        for i in 0..2 {
            let rel = release(i, 1, points);
            model.insert(format!("r{i}"), rel.clone());
            initial.push((format!("r{i}"), rel));
        }
        let store = if gridded {
            ReleaseStore::open_gridded(initial)
        } else {
            ReleaseStore::open(initial)
        }
        .unwrap();

        for &op in &ops {
            let kind = op % 3;
            let i = (op as usize / 3) % REGIONS;
            let epoch = op / 12;
            let key = format!("r{i}");
            match kind {
                // 0/1: install a fresh epoch for region i (add or swap,
                // whichever the catalog state calls for)
                0 | 1 => {
                    let rel = release(i, epoch, points);
                    let report = if model.contains_key(&key) {
                        store.swap(&key, rel.clone())
                    } else {
                        store.add(&key, rel.clone())
                    };
                    report.unwrap();
                    model.insert(key, rel);
                }
                // 2: retire region i when possible
                _ => {
                    if model.len() > 1 && model.contains_key(&key) {
                        store.retire(&key).unwrap();
                        model.remove(&key);
                    } else if !model.contains_key(&key) {
                        prop_assert_eq!(
                            store.retire(&key).unwrap_err(),
                            EngineError::UnknownKey(key)
                        );
                    } else {
                        prop_assert_eq!(
                            store.retire(&key).unwrap_err(),
                            EngineError::WouldBeEmpty
                        );
                    }
                }
            }
        }

        let snap = store.snapshot();
        let keys: Vec<&str> = model.keys().map(|k| k.as_str()).collect();
        prop_assert_eq!(snap.keys().iter().map(|k| k.as_str()).collect::<Vec<_>>(), keys);
        let fresh = fresh_rebuild(&model, gridded);
        for q in workload(60, qseed) {
            let a = snap.answer(&q);
            let b = fresh.answer(&q);
            prop_assert!(
                a.to_bits() == b.to_bits(),
                "history diverged from fresh build: {} vs {} on {} (gridded={})",
                a,
                b,
                q.rect,
                gridded
            );
        }
        // batch path agrees with the single-query path bitwise
        let queries = workload(60, qseed ^ 1);
        let batch = snap.answer_batch(&queries);
        for (q, got) in queries.iter().zip(&batch) {
            prop_assert_eq!(snap.answer(q).to_bits(), got.to_bits());
        }
    }

    /// A snapshot taken before a swap keeps answering the old epoch's
    /// exact bits afterwards, while new snapshots serve the new epoch.
    #[test]
    fn old_snapshots_survive_swaps_unchanged(
        epoch in 1u64..500,
        gridded in 0u8..2,
        qseed in 0u64..1000,
    ) {
        let gridded = gridded == 1;
        let initial: Vec<(String, FrozenSynopsis)> = (0..3)
            .map(|i| (format!("r{i}"), release(i, 0, 150)))
            .collect();
        let store = if gridded {
            ReleaseStore::open_gridded(initial)
        } else {
            ReleaseStore::open(initial)
        }
        .unwrap();
        let queries = workload(50, qseed);
        let before = store.snapshot();
        let before_answers: Vec<u64> =
            queries.iter().map(|q| before.answer(q).to_bits()).collect();
        store.swap("r1", release(1, epoch, 150)).unwrap();
        store.retire("r2").unwrap();
        for (q, &expect) in queries.iter().zip(&before_answers) {
            prop_assert!(
                before.answer(q).to_bits() == expect,
                "retained snapshot changed after swap/retire"
            );
        }
        let after = store.snapshot();
        prop_assert_eq!(after.version(), before.version() + 2);
        prop_assert_eq!(after.shard_count(), 2);
    }
}

/// One swap in a gridded 4-shard store rebuilds exactly one grid and one
/// `shards + 1`-node routing arena; every other shard — arena *and* grid —
/// is adopted by pointer. This is the incremental-swap acceptance proof.
#[test]
fn swap_rebuilds_only_the_touched_shard() {
    let store =
        ReleaseStore::open_gridded((0..REGIONS).map(|i| (format!("r{i}"), release(i, 0, 400))))
            .unwrap();
    let opened = store.stats();
    assert_eq!(opened.grids_built as usize, REGIONS);

    let before = store.snapshot();
    let replacement = release(2, 7, 400);
    let report: SwapReport = store.swap("r2", replacement).unwrap();

    // instrumentation: one grid, one small routing arena, three reuses
    assert_eq!(report.grids_built, 1, "only the swapped shard's grid");
    assert_eq!(report.routing_nodes_rebuilt, REGIONS + 1);
    assert_eq!(report.shards_reused, REGIONS - 1);
    assert_eq!(store.stats().grids_built as usize, REGIONS + 1);
    let after = store.snapshot();
    let swapped = after.keys().iter().position(|k| k == "r2").unwrap();
    assert_eq!(
        report.grid_cells_built,
        after.synopsis().shards()[swapped].grid().unwrap().cells(),
        "cells built == the swapped shard's grid, nothing more"
    );

    // pointer proof: untouched shards share arenas and grids
    for (i, key) in after.keys().iter().enumerate() {
        let j = before.keys().iter().position(|k| k == key).unwrap();
        let (old, new) = (
            &before.synopsis().shards()[j],
            &after.synopsis().shards()[i],
        );
        if key == "r2" {
            assert!(!Arc::ptr_eq(old.arena_arc(), new.arena_arc()));
        } else {
            assert!(Arc::ptr_eq(old.arena_arc(), new.arena_arc()));
            assert!(Arc::ptr_eq(old.grid().unwrap(), new.grid().unwrap()));
        }
    }

    // and the incrementally swapped snapshot still equals a from-scratch
    // gridded rebuild, bit for bit
    let model: BTreeMap<String, FrozenSynopsis> = after
        .keys()
        .iter()
        .enumerate()
        .map(|(i, k)| (k.clone(), after.synopsis().shards()[i].arena().clone()))
        .collect();
    let fresh = fresh_rebuild(&model, true);
    for q in workload(300, 99) {
        assert_eq!(
            after.answer(&q).to_bits(),
            fresh.answer(&q).to_bits(),
            "incremental swap diverged from scratch rebuild on {}",
            q.rect
        );
    }
}

/// Ungriddable releases (inconsistent counts) are rejected by a gridded
/// store without disturbing the published snapshot.
#[test]
fn gridded_store_rejects_ungriddable_releases() {
    use privtree_core::tree::Tree;
    let store =
        ReleaseStore::open_gridded((0..2).map(|i| (format!("r{i}"), release(i, 0, 200)))).unwrap();
    let before = store.snapshot();
    // a two-level release whose root count disagrees with its children
    let mut tree = Tree::with_root(region(2));
    let kids = region(2).bisect(&[0, 1]);
    tree.add_children(tree.root(), kids);
    let inconsistent =
        FrozenSynopsis::from_tree(&tree, &[100.0, 1.0, 1.0, 1.0, 1.0], "inconsistent");
    match store.add("r2", inconsistent) {
        Err(EngineError::Grid(_)) => {}
        other => panic!("expected a grid error, got {other:?}"),
    }
    let after = store.snapshot();
    assert_eq!(after.version(), before.version());
    assert_eq!(after.shard_count(), 2);
}
