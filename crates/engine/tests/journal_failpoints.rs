//! The PR's crash contract, proven at every IO step (requires
//! `--features failpoints`): a scripted add/swap/retire/checkpoint
//! history runs against a **journaled** catalog through the engine's
//! journal-before-ack mutation path, a crash is injected at every
//! single failpoint traversal in turn, and after each crash the
//! reopened store must be **bit-identical to a fresh build of the
//! acked prefix** — plus, at the steps where the write-ahead record
//! itself landed before the crash, the one in-flight op (standard WAL
//! atomicity: a record either took effect or it did not; nothing in
//! between). Alongside the state check: no residue files survive
//! recovery, and the GC never unlinked a file a current or retained
//! generation still references. A property test drives random
//! histories through random injection points under random retention.

#![cfg(feature = "failpoints")]

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, OnceLock};

use privtree_dp::budget::Epsilon;
use privtree_dp::rng::seeded;
use privtree_engine::{EngineError, ReleaseStore};
use privtree_runtime::failpoints::{self, FailAction};
use privtree_spatial::dataset::PointSet;
use privtree_spatial::geom::Rect;
use privtree_spatial::quadtree::SplitConfig;
use privtree_spatial::sharded::ShardHandle;
use privtree_spatial::FrozenSynopsis;
use privtree_store::format::crc32;
use privtree_store::{Catalog, FsyncPolicy, ReleaseFormat};
use proptest::prelude::*;
use rand::RngExt;

/// The failpoint registry is process-global: every test that arms
/// triggers serializes on this lock.
static LOCK: Mutex<()> = Mutex::new(());

fn sample_release(domain: Rect, seed: u64) -> FrozenSynopsis {
    let mut rng = seeded(seed);
    let mut ps = PointSet::new(2);
    for _ in 0..160 {
        ps.push(&[
            domain.lo()[0] + rng.random::<f64>() * domain.side(0),
            domain.lo()[1] + rng.random::<f64>() * domain.side(1),
        ]);
    }
    privtree_spatial::synopsis::privtree_synopsis(
        &ps,
        domain,
        SplitConfig::full(2),
        Epsilon::new(1.0).unwrap(),
        &mut seeded(seed ^ 0x7a31),
    )
    .unwrap()
    .freeze()
}

const KEYS: [&str; 3] = ["alpha", "beta", "gamma"];

fn key_idx(key: &str) -> usize {
    KEYS.iter().position(|k| *k == key).expect("known key")
}

/// Shards in a store tile disjoint regions, so each key owns a fixed
/// x-strip of the unit square; swapping a key moves between variants
/// of that strip. Three variants per key, built once (PrivTree runs
/// are the slow part; the crash sweep reuses them at every step).
fn releases() -> &'static [[FrozenSynopsis; 3]; 3] {
    static RELEASES: OnceLock<[[FrozenSynopsis; 3]; 3]> = OnceLock::new();
    RELEASES.get_or_init(|| {
        std::array::from_fn(|k| {
            let lo = k as f64 / 3.0;
            let strip = Rect::new(&[lo, 0.0], &[lo + 1.0 / 3.0, 1.0]);
            std::array::from_fn(|v| sample_release(strip, (k * 3 + v + 1) as u64))
        })
    })
}

/// The release a key serves at `variant`.
fn rel(key: &str, variant: usize) -> &'static FrozenSynopsis {
    &releases()[key_idx(key)][variant]
}

fn bits(arena: &FrozenSynopsis) -> Vec<u64> {
    arena.counts().iter().map(|c| c.to_bits()).collect()
}

/// A scratch directory that cleans up after itself.
struct TempDir(PathBuf);

impl TempDir {
    fn new(name: &str) -> Self {
        let path =
            std::env::temp_dir().join(format!("privtree-jnlfp-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        Self(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// One protocol-level mutation, as the serve layer would issue it.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Op {
    Add(&'static str, usize),
    Swap(&'static str, usize),
    Retire(&'static str),
    Checkpoint,
}

/// The scripted history the crash sweep replays: adds, replacing
/// swaps, a retire, and checkpoints (journal rotations) interleaved.
/// Starts from a seeded catalog serving `alpha` at release 0.
const HISTORY: &[Op] = &[
    Op::Add("beta", 1),
    Op::Swap("alpha", 2),
    Op::Checkpoint,
    Op::Add("gamma", 0),
    Op::Retire("beta"),
    Op::Swap("gamma", 1),
    Op::Checkpoint,
    Op::Swap("alpha", 1),
];

/// The key -> release-index map after applying `ops` on the seeded
/// initial state (`alpha` at release 0).
fn expected_state(ops: &[Op]) -> BTreeMap<&'static str, usize> {
    let mut state = BTreeMap::from([("alpha", 0usize)]);
    for op in ops {
        match *op {
            Op::Add(key, r) | Op::Swap(key, r) => {
                state.insert(key, r);
            }
            Op::Retire(key) => {
                state.remove(key);
            }
            Op::Checkpoint => {}
        }
    }
    state
}

/// A journaled catalog seeded with `alpha` (release 0) and
/// checkpointed, built with fault injection disarmed.
fn seeded_dir(dir: &Path, keep: usize) -> Catalog {
    failpoints::reset();
    let mut catalog = Catalog::open_or_create(dir).unwrap();
    catalog.set_retention(keep);
    catalog.enable_journal(FsyncPolicy::Always).unwrap();
    catalog
        .save("alpha", rel("alpha", 0), None, ReleaseFormat::Binary)
        .unwrap();
    catalog.checkpoint().unwrap();
    catalog
}

/// Boot a store from the catalog exactly like the serving binary does
/// (strict load — this test never damages files, it kills writers).
fn boot_store(catalog: &Catalog) -> ReleaseStore {
    let releases = catalog.load_all().unwrap();
    ReleaseStore::open(
        releases
            .into_iter()
            .map(|(key, arena, grid)| (key, ShardHandle::from_release(arena, grid))),
    )
    .unwrap()
}

/// Apply one op through the engine's journal-before-ack path — the
/// same staging the serve layer's dispatch uses.
fn apply(store: &ReleaseStore, catalog: &mut Catalog, op: Op) -> Result<(), String> {
    fn persist_upsert(
        catalog: &mut Catalog,
        key: &str,
        next: &BTreeMap<String, ShardHandle>,
    ) -> Result<(), EngineError> {
        let shard = next.get(key).expect("staged");
        let bytes = privtree_store::encode_release(shard.arena(), shard.grid().map(|g| g.as_ref()));
        catalog
            .import(key, &bytes, ReleaseFormat::Binary)
            .map(|_| ())
            .map_err(EngineError::Store)
    }
    match op {
        Op::Add(key, r) => store
            .add_with(
                key,
                ShardHandle::from_release(rel(key, r).clone(), None),
                |next| persist_upsert(catalog, key, next),
            )
            .map(|_| ())
            .map_err(|e| e.to_string()),
        Op::Swap(key, r) => store
            .swap_with(
                key,
                ShardHandle::from_release(rel(key, r).clone(), None),
                |next| persist_upsert(catalog, key, next),
            )
            .map(|_| ())
            .map_err(|e| e.to_string()),
        Op::Retire(key) => store
            .retire_with(key, |_| catalog.remove(key).map_err(EngineError::Store))
            .map(|_| ())
            .map_err(|e| e.to_string()),
        Op::Checkpoint => catalog.checkpoint().map(|_| ()).map_err(|e| e.to_string()),
    }
}

/// Count the failpoint traversals of one clean scripted run.
fn history_step_count(keep: usize) -> u64 {
    let dir = TempDir::new(&format!("count-{keep}"));
    let mut catalog = seeded_dir(&dir.0, keep);
    let store = boot_store(&catalog);
    failpoints::reset();
    for &op in HISTORY {
        apply(&store, &mut catalog, op).unwrap();
    }
    let steps = failpoints::hits();
    failpoints::reset();
    steps
}

/// Everything the recovered directory is allowed to contain: the
/// manifest, the active journal segment, and one file per live
/// (current or retained) generation.
fn assert_no_residue(dir: &Path, catalog: &Catalog) {
    let mut allowed: BTreeSet<String> = BTreeSet::from(["catalog.toml".to_string()]);
    if let Some(segment) = catalog.journal_segment() {
        allowed.insert(segment.to_string());
    }
    for key in catalog.keys().map(str::to_string).collect::<Vec<_>>() {
        allowed.insert(catalog.entry(&key).unwrap().file.clone());
    }
    for (_, entry) in catalog.retained_entries() {
        allowed.insert(entry.file.clone());
    }
    let on_disk: BTreeSet<String> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok()?.file_name().into_string().ok())
        .collect();
    assert_eq!(
        on_disk, allowed,
        "recovered directory must hold exactly the live files"
    );
}

/// The GC half of the contract: every file a current **or retained**
/// generation references exists and matches its recorded checksum.
fn assert_generations_intact(dir: &Path, catalog: &Catalog) {
    let check = |label: &str, entry: &privtree_store::CatalogEntry| {
        let bytes = std::fs::read(dir.join(&entry.file))
            .unwrap_or_else(|e| panic!("{label} generation file {} lost: {e}", entry.file));
        assert_eq!(
            crc32(&bytes),
            entry.checksum,
            "{label} generation file {} torn",
            entry.file
        );
    };
    for key in catalog.keys().map(str::to_string).collect::<Vec<_>>() {
        check("current", catalog.entry(&key).unwrap());
    }
    for (key, entry) in catalog.retained_entries() {
        check(&format!("retained[{key}]"), entry);
    }
}

/// Reopen after a crash and pin the recovered state to the acked
/// prefix — or the acked prefix plus the one in-flight op whose
/// write-ahead record landed before the crash.
fn assert_recovers_to_acked_prefix(dir: &Path, acked: &[Op], in_flight: Option<Op>, ctx: &str) {
    let catalog = Catalog::open(dir).unwrap_or_else(|e| panic!("{ctx}: must reopen, got {e}"));
    assert_no_residue(dir, &catalog);
    assert_generations_intact(dir, &catalog);

    let candidates: Vec<BTreeMap<&'static str, usize>> = {
        let mut c = vec![expected_state(acked)];
        if let Some(op) = in_flight {
            let mut with: Vec<Op> = acked.to_vec();
            with.push(op);
            let state = expected_state(&with);
            if !c.contains(&state) {
                c.push(state);
            }
        }
        c
    };
    let loaded = catalog
        .load_all()
        .unwrap_or_else(|e| panic!("{ctx}: every recovered entry must load, got {e}"));
    let recovered: BTreeMap<&str, Vec<u64>> = loaded
        .iter()
        .map(|(key, arena, _)| (key.as_str(), bits(arena)))
        .collect();
    let matched = candidates.iter().any(|state| {
        state.len() == recovered.len()
            && state
                .iter()
                .all(|(key, &r)| recovered.get(*key) == Some(&bits(rel(key, r))))
    });
    assert!(
        matched,
        "{ctx}: recovered keys {:?} match neither the acked prefix nor prefix+in-flight \
         (acked {acked:?}, in-flight {in_flight:?})",
        recovered.keys().collect::<Vec<_>>()
    );

    // and the recovered catalog must boot a serving store: the answers
    // of a fresh build of this state are, by construction, the answers
    // of the recovered one (bit-identical per-shard counts + structure)
    let store = boot_store(&catalog);
    assert_eq!(store.keys().len(), recovered.len(), "{ctx}: store boots");
}

/// The tentpole: crash the scripted history at every failpoint step —
/// journal appends and fsyncs, data-file writes, manifest rewrites,
/// segment rotations, GC unlinks — and prove exact acked-prefix
/// recovery after each.
#[test]
fn scripted_history_crashed_at_every_step_recovers_the_acked_prefix() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    for keep in [1usize, 2] {
        let steps = history_step_count(keep);
        assert!(
            steps >= 40,
            "expected a rich failpoint surface over the history, got {steps}"
        );
        for step in 1..=steps {
            let dir = TempDir::new(&format!("crash-k{keep}-s{step}"));
            let mut catalog = seeded_dir(&dir.0, keep);
            let store = boot_store(&catalog);
            failpoints::reset();
            failpoints::arm_global(step, FailAction::Crash);
            let mut acked = 0;
            let mut crashed = None;
            for (i, &op) in HISTORY.iter().enumerate() {
                match apply(&store, &mut catalog, op) {
                    Ok(()) => acked = i + 1,
                    Err(_) => {
                        crashed = Some(op);
                        break; // the process died mid-op
                    }
                }
            }
            let crashed = crashed.unwrap_or_else(|| {
                panic!("step {step}/{steps} keep={keep}: injected crash never fired")
            });
            drop(store);
            drop(catalog);
            failpoints::reset();
            assert_recovers_to_acked_prefix(
                &dir.0,
                &HISTORY[..acked],
                Some(crashed),
                &format!("keep={keep} step={step}/{steps}"),
            );
        }
    }
}

/// Injected *errors* (syscall fails, process lives): the op reports
/// failure, the live store keeps serving the pre-op state, and after
/// disarming, the remainder of the history applies cleanly to the
/// exact final state — an operator can always retry past a transient
/// disk error.
#[test]
fn errored_history_retries_to_the_final_state() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let steps = history_step_count(2);
    // probe a spread of steps (every step is covered by the crash
    // sweep; the error sweep checks the retry path at each phase)
    for step in (1..=steps).step_by(3) {
        let dir = TempDir::new(&format!("err-{step}"));
        let mut catalog = seeded_dir(&dir.0, 2);
        let store = boot_store(&catalog);
        failpoints::reset();
        failpoints::arm_global(step, FailAction::Error);
        let mut failed = None;
        for (i, &op) in HISTORY.iter().enumerate() {
            if let Err(e) = apply(&store, &mut catalog, op) {
                failed = Some((i, op, e));
                break;
            }
        }
        let (at, op, e) = failed.unwrap_or_else(|| panic!("step {step}: error never fired"));
        assert!(
            e.contains("injected"),
            "step {step}: only the injection may fail here, got {e}"
        );
        failpoints::reset();
        // retry the failed op, then run the rest of the history
        apply(&store, &mut catalog, op)
            .unwrap_or_else(|e| panic!("step {step}: retry of {op:?} must succeed, got {e}"));
        for &op in &HISTORY[at + 1..] {
            apply(&store, &mut catalog, op).unwrap();
        }
        drop(store);
        drop(catalog);
        assert_recovers_to_acked_prefix(&dir.0, HISTORY, None, &format!("error step={step}"));
    }
}

/// After a graceful run of the whole history, a restart replays the
/// journal to the exact final state — and a checkpoint-then-restart
/// reaches the same state with zero replayed ops.
#[test]
fn full_history_replays_and_checkpoints_to_the_same_state() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let dir = TempDir::new("graceful");
    let mut catalog = seeded_dir(&dir.0, 2);
    let store = boot_store(&catalog);
    failpoints::reset();
    for &op in HISTORY {
        apply(&store, &mut catalog, op).unwrap();
    }
    drop(store);
    drop(catalog);
    assert_recovers_to_acked_prefix(&dir.0, HISTORY, None, "graceful restart");

    // the post-restart catalog replayed the ops after the last
    // checkpoint; a fresh checkpoint folds them away
    let mut catalog = Catalog::open(&dir.0).unwrap();
    assert!(
        catalog.replayed_ops() > 0,
        "the tail of the history replays"
    );
    catalog.checkpoint().unwrap();
    drop(catalog);
    let catalog = Catalog::open(&dir.0).unwrap();
    assert_eq!(catalog.replayed_ops(), 0, "checkpoint folded the journal");
    drop(catalog);
    assert_recovers_to_acked_prefix(&dir.0, HISTORY, None, "post-checkpoint restart");
}

proptest! {
    /// Random histories, random retention, random injection step: the
    /// acked prefix (plus at most the one in-flight op) always
    /// recovers, with no residue and no GC'd live generation. Op codes
    /// pack a key (`code % 3`) and a kind (`code / 3`: add-or-swap at
    /// two different releases, retire, checkpoint).
    #[test]
    fn random_interrupted_histories_recover_the_acked_prefix(
        codes in proptest::collection::vec(0usize..12, 1..6),
        keep in 1usize..3,
        step in 1u64..80,
    ) {
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let dir = TempDir::new("prop");
        let mut catalog = seeded_dir(&dir.0, keep);
        let store = boot_store(&catalog);
        failpoints::reset();
        failpoints::arm_global(step, FailAction::Crash);
        let keys = ["alpha", "beta", "gamma"];
        let mut acked: Vec<Op> = Vec::new();
        let mut serving: BTreeSet<&str> = BTreeSet::from(["alpha"]);
        let mut crashed = None;
        for &code in &codes {
            let key = keys[code % 3];
            let op = match code / 3 {
                0 => {
                    if serving.contains(key) { Op::Swap(key, code % 3) } else { Op::Add(key, code % 3) }
                }
                1 => {
                    if serving.contains(key) { Op::Swap(key, (code + 1) % 3) } else { Op::Add(key, (code + 1) % 3) }
                }
                2 => {
                    // retiring the last key is refused before any IO;
                    // skip instead of burning a history slot on a no-op
                    if serving.len() < 2 || !serving.contains(key) { continue } else { Op::Retire(key) }
                }
                _ => Op::Checkpoint,
            };
            match apply(&store, &mut catalog, op) {
                Ok(()) => {
                    match op {
                        Op::Add(k, _) | Op::Swap(k, _) => { serving.insert(k); }
                        Op::Retire(k) => { serving.remove(k); }
                        Op::Checkpoint => {}
                    }
                    acked.push(op);
                }
                Err(_) => { crashed = Some(op); break; }
            }
        }
        drop(store);
        drop(catalog);
        failpoints::reset();
        // the armed step may lie beyond the history's traversals — a
        // clean run recovers to the full history, which `crashed =
        // None` encodes
        assert_recovers_to_acked_prefix(
            &dir.0,
            &acked,
            crashed,
            &format!("prop keep={keep} step={step}"),
        );
    }
}
