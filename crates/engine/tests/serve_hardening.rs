//! Connection-lifecycle guards on the serving protocol: oversized
//! lines answer `err line too long` and resync (never unbounded
//! buffering), stalled and hostile peers are shed or evicted without
//! perturbing a concurrent well-behaved client (bit-exact answers
//! throughout), the connection cap answers `err busy`, panicking verbs
//! are isolated per command, and a drain finishes inside its deadline.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use privtree_dp::budget::Epsilon;
use privtree_dp::rng::seeded;
use privtree_engine::serve::{
    serve_lines, spawn_tcp, spawn_tcp_with, ServeContext, ServeOptions, MAX_LINE,
};
use privtree_engine::ReleaseStore;
use privtree_runtime::ShutdownSignal;
use privtree_spatial::dataset::PointSet;
use privtree_spatial::geom::Rect;
use privtree_spatial::quadtree::SplitConfig;
use privtree_spatial::query::{RangeCountSynopsis, RangeQuery};
use privtree_spatial::FrozenSynopsis;
use rand::RngExt;

fn sample_release(seed: u64, points: usize) -> FrozenSynopsis {
    let mut rng = seeded(seed);
    let mut ps = PointSet::new(2);
    for _ in 0..points {
        ps.push(&[rng.random::<f64>(), rng.random::<f64>().powi(2)]);
    }
    privtree_spatial::synopsis::privtree_synopsis(
        &ps,
        Rect::unit(2),
        SplitConfig::full(2),
        Epsilon::new(1.0).unwrap(),
        &mut seeded(seed ^ 0x7777),
    )
    .unwrap()
    .freeze()
}

fn workload(n: usize, seed: u64) -> Vec<RangeQuery> {
    let mut rng = seeded(seed);
    (0..n)
        .map(|_| {
            let (a, b) = (rng.random::<f64>(), rng.random::<f64>());
            let (c, d) = (rng.random::<f64>(), rng.random::<f64>());
            RangeQuery::new(Rect::new(&[a.min(b), c.min(d)], &[a.max(b), c.max(d)]))
        })
        .collect()
}

fn query_line(q: &RangeQuery) -> String {
    let csv = |c: &[f64]| {
        c.iter()
            .map(|x| format!("{x:.17e}"))
            .collect::<Vec<_>>()
            .join(",")
    };
    format!("{} {}", csv(q.rect.lo()), csv(q.rect.hi()))
}

fn test_context(seed: u64) -> Arc<ServeContext> {
    let store = ReleaseStore::open([("main", sample_release(seed, 800))]).unwrap();
    Arc::new(ServeContext::new(store))
}

/// Run a script through the stdin-style protocol loop, returning the
/// reply lines.
fn run_lines(ctx: &ServeContext, input: &[u8]) -> Vec<String> {
    let mut out = Vec::new();
    serve_lines(ctx, std::io::Cursor::new(input), &mut out).unwrap();
    String::from_utf8(out)
        .unwrap()
        .lines()
        .map(str::to_string)
        .collect()
}

/// A multi-megabyte line answers one `err line too long` reply, the
/// stream resyncs at its newline, and the connection keeps serving —
/// with bounded memory (the buffer caps at `max_line`, pinned by the
/// fact this test's 8 MiB of garbage would otherwise all be buffered).
#[test]
fn oversized_line_answers_err_and_resyncs() {
    let ctx = test_context(101);
    let mut input = Vec::new();
    input.extend_from_slice(b"keys\n");
    input.extend_from_slice(&vec![b'x'; 8 << 20]);
    input.extend_from_slice(b"\nkeys\n");
    let replies = run_lines(&ctx, &input);
    assert_eq!(replies.len(), 3);
    assert_eq!(replies[0], "keys main");
    assert_eq!(
        replies[1],
        format!("err line too long (max {MAX_LINE} bytes)")
    );
    assert_eq!(replies[2], "keys main", "stream resynced past the flood");
}

/// A line of exactly the cap still parses; one byte past it does not.
#[test]
fn line_cap_boundary_is_exact() {
    let ctx = test_context(102);
    // pad an unknown command up to exactly MAX_LINE bytes
    let exact = format!("nosuch{}", "y".repeat(MAX_LINE - 6));
    assert_eq!(exact.len(), MAX_LINE);
    let over = format!("{exact}y");
    let input = format!("{exact}\n{over}\nkeys\n");
    let replies = run_lines(&ctx, input.as_bytes());
    assert_eq!(replies.len(), 3);
    assert!(
        replies[0].starts_with("err unknown command"),
        "at-cap line parses: {}",
        replies[0]
    );
    assert_eq!(
        replies[1],
        format!("err line too long (max {MAX_LINE} bytes)")
    );
    assert_eq!(replies[2], "keys main");
}

/// An oversized line *inside* a batch: exactly one `err` reply, every
/// batch line drained, and the stream stays aligned on the next
/// command.
#[test]
fn oversized_batch_line_keeps_the_stream_aligned() {
    let ctx = test_context(103);
    let q = query_line(&workload(1, 5)[0]);
    let mut input = Vec::new();
    input.extend_from_slice(format!("batch 3\n{q}\n").as_bytes());
    input.extend_from_slice(&vec![b'z'; 3 << 20]);
    input.extend_from_slice(format!("\n{q}\nkeys\n").as_bytes());
    let replies = run_lines(&ctx, &input);
    assert_eq!(replies.len(), 2, "one err for the batch, then keys");
    assert_eq!(
        replies[0],
        format!("err line too long (max {MAX_LINE} bytes)")
    );
    assert_eq!(replies[1], "keys main");
}

/// Beyond `max_conns`, a new connection is answered `err busy` and
/// closed; once a slot frees, connections are accepted again.
#[test]
fn connection_cap_sheds_with_err_busy() {
    let ctx = test_context(104);
    let server = spawn_tcp_with(
        ctx,
        "127.0.0.1:0",
        ServeOptions {
            max_conns: 1,
            ..ServeOptions::default()
        },
        ShutdownSignal::new(),
    )
    .unwrap();
    let addr = server.addr();

    let first = TcpStream::connect(addr).unwrap();
    let mut first_reader = BufReader::new(first.try_clone().unwrap());
    let mut first_writer = first;
    first_writer.write_all(b"keys\n").unwrap();
    let mut reply = String::new();
    first_reader.read_line(&mut reply).unwrap();
    assert_eq!(reply.trim_end(), "keys main");

    // the slot is held: the second connection is shed
    let second = TcpStream::connect(addr).unwrap();
    second
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut second_reader = BufReader::new(second);
    reply.clear();
    second_reader.read_line(&mut reply).unwrap();
    assert_eq!(
        reply.trim_end(),
        "err busy (connection cap reached, retry shortly)",
        "shed reply carries the retry hint"
    );
    reply.clear();
    assert_eq!(
        second_reader.read_line(&mut reply).unwrap(),
        0,
        "shed connection is closed"
    );

    // free the slot; a fresh connection is served again
    first_writer.write_all(b"quit\n").unwrap();
    drop(first_writer);
    drop(first_reader);
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let third = TcpStream::connect(addr).unwrap();
        third
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut third_reader = BufReader::new(third.try_clone().unwrap());
        let mut third_writer = third;
        third_writer.write_all(b"keys\n").unwrap();
        reply.clear();
        third_reader.read_line(&mut reply).unwrap();
        if reply.trim_end() == "keys main" {
            break;
        }
        assert!(
            reply.starts_with("err busy"),
            "unexpected reply while the slot is held: {reply}"
        );
        assert!(
            Instant::now() < deadline,
            "slot never freed after the first client quit"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(server.drain(Duration::from_secs(5)));
}

/// A stalled (slowloris) peer and a flood-of-garbage peer run
/// concurrently with a well-behaved client; the client's answers stay
/// bit-exact against the library path, the stalled peer is evicted by
/// the read deadline, and the flooder only ever hurts itself.
#[test]
fn hostile_peers_cannot_perturb_a_normal_client() {
    let ctx = test_context(105);
    let snap = ctx.store.snapshot();
    let queries = workload(60, 9);
    let expected: Vec<String> = queries
        .iter()
        .map(|q| format!("{:.17e}", snap.answer(q)))
        .collect();
    let server = spawn_tcp_with(
        Arc::clone(&ctx),
        "127.0.0.1:0",
        ServeOptions {
            max_conns: 8,
            read_timeout: Some(Duration::from_millis(400)),
            ..ServeOptions::default()
        },
        ShutdownSignal::new(),
    )
    .unwrap();
    let addr = server.addr();

    // peer 1: connects and never sends a byte (slowloris)
    let stalled = TcpStream::connect(addr).unwrap();
    stalled
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();

    // peer 2: floods multi-megabyte lines in a background thread
    let flooder = std::thread::spawn(move || {
        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        let garbage = vec![b'g'; 3 << 20];
        let mut reply = String::new();
        for _ in 0..3 {
            writer.write_all(&garbage).unwrap();
            writer.write_all(b"\n").unwrap();
            writer.flush().unwrap();
            reply.clear();
            reader.read_line(&mut reply).unwrap();
            assert!(
                reply.starts_with("err line too long"),
                "flooder got: {reply}"
            );
        }
    });

    // the well-behaved client, concurrent with both: every answer must
    // be bit-exact
    let client = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(client.try_clone().unwrap());
    let mut writer = client;
    let mut reply = String::new();
    for (q, want) in queries.iter().zip(&expected) {
        writer
            .write_all(format!("count {}\n", query_line(q)).as_bytes())
            .unwrap();
        reply.clear();
        reader.read_line(&mut reply).unwrap();
        assert_eq!(reply.trim_end(), want, "answer diverged under attack");
    }
    writer.write_all(b"quit\n").unwrap();
    flooder.join().unwrap();

    // the stalled peer is evicted by the 400ms read deadline: its
    // socket reaches EOF well inside the generous 10s client timeout
    let mut sink = [0u8; 16];
    let evicted_at = Instant::now();
    let n = (&stalled).read(&mut sink).unwrap();
    assert_eq!(n, 0, "server must close the stalled connection");
    assert!(
        evicted_at.elapsed() < Duration::from_secs(8),
        "eviction took too long"
    );
    assert!(server.drain(Duration::from_secs(5)), "drain after attack");
}

/// Drain stops the accept loop, finishes in-flight replies, closes
/// idle connections at the next poll tick, and reports completion
/// inside the deadline.
#[test]
fn drain_completes_within_deadline() {
    let ctx = test_context(106);
    let server = spawn_tcp(ctx, "127.0.0.1:0").unwrap();
    let addr = server.addr();

    let client = TcpStream::connect(addr).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut reader = BufReader::new(client.try_clone().unwrap());
    let mut writer = client;
    writer.write_all(b"keys\n").unwrap();
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    assert_eq!(reply.trim_end(), "keys main");

    // the client is idle (blocked in its own read); drain must still
    // complete promptly — idle connections notice at the poll tick
    let started = Instant::now();
    assert!(server.drain(Duration::from_secs(5)), "drain timed out");
    assert!(
        started.elapsed() < Duration::from_secs(3),
        "drain of an idle connection should take ~one poll tick"
    );
    reply.clear();
    assert_eq!(
        reader.read_line(&mut reply).unwrap(),
        0,
        "drained server closes idle connections"
    );
    // and the listener is gone: a fresh connect is refused
    assert!(
        TcpStream::connect(addr).is_err(),
        "accept loop must be stopped after drain"
    );
}

// Fault-injection-driven regressions (panic isolation, lock-poison
// recovery, injected connection IO errors) live in their own test
// binary — `tests/serve_failpoints.rs` — because the failpoint
// registry is process-global and these tests must not share a process
// with the concurrent TCP tests above.
