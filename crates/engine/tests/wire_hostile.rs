//! Hostile input against the `privtree-wire v1` decoder, through a
//! live listener: truncated frames, forged oversized lengths, corrupt
//! checksums, bad preambles, unknown tags, and malformed query
//! payloads must each answer a typed `ERRF` frame (or close cleanly)
//! with bounded memory — never a panic, never a dead listener, and
//! never a perturbed neighbor. The mirror of the store crate's decoder
//! fuzz suite (`crates/store/tests/fuzz_decode.rs`), aimed at the
//! stream framing instead of the file format.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use privtree_dp::budget::Epsilon;
use privtree_dp::rng::seeded;
use privtree_engine::serve::{spawn_tcp_with, ServeContext, ServeOptions, ServerHandle};
use privtree_engine::wire;
use privtree_engine::ReleaseStore;
use privtree_runtime::ShutdownSignal;
use privtree_spatial::dataset::PointSet;
use privtree_spatial::geom::Rect;
use privtree_spatial::quadtree::SplitConfig;
use privtree_spatial::query::{RangeCountSynopsis, RangeQuery};
use privtree_spatial::FrozenSynopsis;
use privtree_store::frame::{encode_frame, parse_header, payload, FRAME_HEADER_LEN};
use rand::RngExt;

fn sample_release(seed: u64, points: usize) -> FrozenSynopsis {
    let mut rng = seeded(seed);
    let mut ps = PointSet::new(2);
    for _ in 0..points {
        ps.push(&[rng.random::<f64>(), rng.random::<f64>().powi(2)]);
    }
    privtree_spatial::synopsis::privtree_synopsis(
        &ps,
        Rect::unit(2),
        SplitConfig::full(2),
        Epsilon::new(1.0).unwrap(),
        &mut seeded(seed ^ 0x7777),
    )
    .unwrap()
    .freeze()
}

fn spawn(seed: u64, opts: ServeOptions) -> (Arc<ServeContext>, ServerHandle) {
    let store = ReleaseStore::open([("main", sample_release(seed, 600))]).unwrap();
    let ctx = Arc::new(ServeContext::new(store));
    let server =
        spawn_tcp_with(Arc::clone(&ctx), "127.0.0.1:0", opts, ShutdownSignal::new()).unwrap();
    (ctx, server)
}

/// Open a raw binary-protocol connection: preamble sent, `HELO`
/// consumed and validated, socket returned with a generous read
/// timeout so a wedged server fails the test instead of hanging it.
fn open_wire(server: &ServerHandle) -> TcpStream {
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(&wire::PREAMBLE).unwrap();
    let (tag, body) = read_frame(&mut stream);
    assert_eq!(tag, wire::TAG_HELLO);
    let (version, dims) = wire::decode_hello_payload(&body).unwrap();
    assert_eq!(version, wire::WIRE_VERSION);
    assert_eq!(dims, 2);
    stream
}

/// Read one complete frame off a raw socket.
fn read_frame(stream: &mut TcpStream) -> ([u8; 4], Vec<u8>) {
    let mut head = [0u8; FRAME_HEADER_LEN];
    stream.read_exact(&mut head).unwrap();
    let header = parse_header(&head, wire::MAX_FRAME).unwrap().unwrap();
    let mut frame = vec![0u8; header.total_len()];
    frame[..FRAME_HEADER_LEN].copy_from_slice(&head);
    stream.read_exact(&mut frame[FRAME_HEADER_LEN..]).unwrap();
    let body = payload(&header, &frame).unwrap().to_vec();
    (header.tag, body)
}

/// EOF probe: the next read returns zero bytes (clean close).
fn assert_closed(stream: &mut TcpStream) {
    let mut sink = [0u8; 64];
    let mut n = stream.read(&mut sink).unwrap();
    // tolerate a final drained frame already asserted by the caller
    while n != 0 {
        n = stream.read(&mut sink).unwrap();
    }
}

fn queries(n: usize, seed: u64) -> Vec<RangeQuery> {
    let mut rng = seeded(seed);
    (0..n)
        .map(|_| {
            let (a, b) = (rng.random::<f64>(), rng.random::<f64>());
            let (c, d) = (rng.random::<f64>(), rng.random::<f64>());
            RangeQuery::new(Rect::new(&[a.min(b), c.min(d)], &[a.max(b), c.max(d)]))
        })
        .collect()
}

/// A frame cut off mid-payload (peer hangs up) closes the connection
/// cleanly — no reply target exists for half a frame — and the
/// listener keeps serving other clients.
#[test]
fn truncated_frame_closes_cleanly_and_listener_survives() {
    let (ctx, server) = spawn(301, ServeOptions::default());
    let mut stream = open_wire(&server);
    let frame = wire::encode_query_frame(&queries(8, 1), 2, false);
    stream.write_all(&frame[..frame.len() / 2]).unwrap();
    // half-close: the server sees EOF with a partial frame buffered
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    assert_closed(&mut stream);

    // the listener is unharmed: a fresh client round-trips bit-exactly
    let snap = ctx.store.snapshot();
    let mut client = wire::WireClient::connect(server.addr()).unwrap();
    let qs = queries(16, 2);
    let answers = client.query(&qs).unwrap();
    for (q, a) in qs.iter().zip(&answers) {
        assert_eq!(a.to_bits(), snap.answer(q).to_bits());
    }
    client.quit().unwrap();
    assert!(server.drain(Duration::from_secs(5)));
}

/// A header declaring a payload beyond the frame cap answers
/// `ERRF` code 2 **before buffering a single payload byte**, then
/// closes — a forged length cannot make the server allocate.
#[test]
fn oversized_frame_answers_typed_err_and_closes() {
    let (_ctx, server) = spawn(
        302,
        ServeOptions {
            max_frame: 4096,
            ..ServeOptions::default()
        },
    );
    let mut stream = open_wire(&server);
    let mut head = Vec::new();
    head.extend_from_slice(&wire::TAG_QUERY);
    head.extend_from_slice(&[0u8; 4]); // flags + reserved
    head.extend_from_slice(&(u32::MAX).to_le_bytes()); // forged length
    stream.write_all(&head).unwrap();
    let (tag, body) = read_frame(&mut stream);
    assert_eq!(tag, wire::TAG_ERR);
    let (code, message) = wire::decode_err_payload(&body);
    assert_eq!(code, wire::ERR_OVERSIZED);
    assert!(message.contains("4096"), "names the cap: {message}");
    assert_closed(&mut stream);
    assert!(server.drain(Duration::from_secs(5)));
}

/// A corrupted CRC answers `ERRF` code 3 and the connection
/// **continues** — the full frame was consumed, so the stream is still
/// aligned and the next (valid) frame answers normally.
#[test]
fn bad_crc_answers_err_and_the_stream_continues() {
    let (ctx, server) = spawn(303, ServeOptions::default());
    let mut stream = open_wire(&server);
    let qs = queries(5, 3);
    let mut frame = wire::encode_query_frame(&qs, 2, true);
    let last = frame.len() - 1;
    frame[last] ^= 0xFF; // corrupt the CRC trailer
    stream.write_all(&frame).unwrap();
    let (tag, body) = read_frame(&mut stream);
    assert_eq!(tag, wire::TAG_ERR);
    let (code, _) = wire::decode_err_payload(&body);
    assert_eq!(code, wire::ERR_CHECKSUM);

    // same socket, valid frame: answers arrive, CRC'd like the request
    let snap = ctx.store.snapshot();
    stream
        .write_all(&wire::encode_query_frame(&qs, 2, true))
        .unwrap();
    let (tag, body) = read_frame(&mut stream);
    assert_eq!(tag, wire::TAG_ANSWERS);
    let answers = wire::decode_answer_payload(&body).unwrap();
    for (q, a) in qs.iter().zip(&answers) {
        assert_eq!(a.to_bits(), snap.answer(q).to_bits());
    }
    stream
        .write_all(&encode_frame(wire::TAG_QUIT, &[], false))
        .unwrap();
    assert_closed(&mut stream);
    assert!(server.drain(Duration::from_secs(5)));
}

/// A first byte of `0xB7` promises the binary preamble; delivering
/// anything else is `ERRF` code 1 and a close. A first byte that is
/// ordinary text routes to the text protocol, where garbage answers
/// the text `err` line — the negotiation byte can never wedge either
/// decoder.
#[test]
fn bad_preamble_and_garbage_magic_take_their_protocols_error_paths() {
    let (_ctx, server) = spawn(304, ServeOptions::default());

    // 0xB7 then the wrong suffix: typed bad-frame error, closed
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(&[wire::PREAMBLE[0], b'X', b'Y', b'Z'])
        .unwrap();
    let (tag, body) = read_frame(&mut stream);
    assert_eq!(tag, wire::TAG_ERR);
    let (code, _) = wire::decode_err_payload(&body);
    assert_eq!(code, wire::ERR_BAD_FRAME);
    assert_closed(&mut stream);

    // printable garbage negotiates as text and gets the text err line
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(b"GET / HTTP/1.1\n").unwrap();
    let mut reply = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        stream.read_exact(&mut byte).unwrap();
        if byte[0] == b'\n' {
            break;
        }
        reply.push(byte[0]);
    }
    let reply = String::from_utf8(reply).unwrap();
    assert!(
        reply.starts_with("err unknown command"),
        "text path answers: {reply}"
    );
    assert!(server.drain(Duration::from_secs(5)));
}

/// A well-framed query payload that fails validation (count over the
/// batch cap, length mismatch, `lo > hi`) answers `ERRF` code 4 with
/// the text protocol's error wording, and the connection continues.
#[test]
fn malformed_query_payloads_answer_err_and_continue() {
    let (ctx, server) = spawn(305, ServeOptions::default());
    let mut stream = open_wire(&server);

    // declared count disagrees with the byte count
    let mut body = Vec::new();
    body.extend_from_slice(&7u32.to_le_bytes());
    body.extend_from_slice(&[0u8; 32]); // one 2-d box, not seven
    stream
        .write_all(&encode_frame(wire::TAG_QUERY, &body, false))
        .unwrap();
    let (tag, b) = read_frame(&mut stream);
    assert_eq!(tag, wire::TAG_ERR);
    let (code, message) = wire::decode_err_payload(&b);
    assert_eq!(code, wire::ERR_BAD_QUERY);
    assert!(message.contains("7 boxes"), "{message}");

    // an inverted box mirrors the text parser's wording
    let inverted = [1.0f64, 1.0, 0.0, 0.0];
    let mut body = Vec::new();
    body.extend_from_slice(&1u32.to_le_bytes());
    for c in inverted {
        body.extend_from_slice(&c.to_le_bytes());
    }
    stream
        .write_all(&encode_frame(wire::TAG_QUERY, &body, false))
        .unwrap();
    let (tag, b) = read_frame(&mut stream);
    assert_eq!(tag, wire::TAG_ERR);
    let (code, message) = wire::decode_err_payload(&b);
    assert_eq!(code, wire::ERR_BAD_QUERY);
    assert!(message.contains("lo > hi"), "{message}");

    // an unknown tag is a framing violation: code 1, closed
    stream
        .write_all(&encode_frame(*b"NOPE", &[1, 2, 3], false))
        .unwrap();
    let (tag, b) = read_frame(&mut stream);
    assert_eq!(tag, wire::TAG_ERR);
    let (code, _) = wire::decode_err_payload(&b);
    assert_eq!(code, wire::ERR_BAD_FRAME);
    assert_closed(&mut stream);

    // through it all, a fresh client still answers bit-exactly
    let snap = ctx.store.snapshot();
    let mut client = wire::WireClient::connect(server.addr()).unwrap();
    let qs = queries(9, 5);
    let answers = client.query(&qs).unwrap();
    for (q, a) in qs.iter().zip(&answers) {
        assert_eq!(a.to_bits(), snap.answer(q).to_bits());
    }
    client.quit().unwrap();
    assert!(server.drain(Duration::from_secs(5)));
}

/// The connection cap sheds binary-intending clients with the same
/// pre-negotiation text `err busy` line the text protocol gets, and
/// [`wire::WireClient`] surfaces it as a readable error.
#[test]
fn connection_cap_sheds_binary_clients_with_err_busy() {
    let (_ctx, server) = spawn(
        306,
        ServeOptions {
            max_conns: 1,
            ..ServeOptions::default()
        },
    );
    let held = open_wire(&server);
    let refused = wire::WireClient::connect(server.addr());
    let err = refused.expect_err("the cap must shed the second client");
    assert!(
        err.to_string().contains("err busy"),
        "shed error names busy: {err}"
    );
    drop(held);
    assert!(server.drain(Duration::from_secs(5)));
}
