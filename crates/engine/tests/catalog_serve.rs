//! The binary-format serving lane: a text release is converted to
//! `privtree-bin v1`, published into an on-disk catalog, warm-started
//! through the `privtree-serve` binary via `--catalog`, and every
//! answer is diffed against the **text-loaded** library path — the
//! formats must be indistinguishable at the query level. Also drives
//! the `save`/`load` protocol verbs and the library-level
//! `open_catalog`/`persist_catalog` round trip.

use std::io::Write;
use std::process::{Command, Stdio};

use privtree_dp::budget::Epsilon;
use privtree_dp::rng::seeded;
use privtree_engine::ReleaseStore;
use privtree_spatial::dataset::PointSet;
use privtree_spatial::geom::Rect;
use privtree_spatial::quadtree::SplitConfig;
use privtree_spatial::query::{RangeCountSynopsis, RangeQuery};
use privtree_spatial::serialize::{grid_routed_to_text, release_from_text};
use privtree_spatial::{FrozenSynopsis, GridRoutedSynopsis};
use privtree_store::{text_to_binary, Catalog, ReleaseFormat};
use rand::RngExt;

const BIN: &str = env!("CARGO_BIN_EXE_privtree-serve");

/// Storage mode under test: CI runs this suite twice, once with
/// `PRIVTREE_SERVE_MMAP=0` (owned decodes) and once without (zero-copy
/// mapped opens, the default) — the answers must be identical in both.
fn mmap_mode() -> bool {
    std::env::var("PRIVTREE_SERVE_MMAP").map_or(true, |v| v != "0")
}

/// The `privtree-serve` flag for the mode under test.
fn mmap_flag() -> &'static str {
    if mmap_mode() {
        "--mmap"
    } else {
        "--no-mmap"
    }
}

fn sample_release(domain: Rect, seed: u64, n: usize) -> FrozenSynopsis {
    let mut rng = seeded(seed);
    let mut ps = PointSet::new(2);
    for _ in 0..n {
        ps.push(&[
            domain.lo()[0] + rng.random::<f64>() * domain.side(0),
            domain.lo()[1] + rng.random::<f64>().powi(2) * domain.side(1),
        ]);
    }
    privtree_spatial::synopsis::privtree_synopsis(
        &ps,
        domain,
        SplitConfig::full(2),
        Epsilon::new(1.0).unwrap(),
        &mut seeded(seed ^ 0xabcd),
    )
    .unwrap()
    .freeze()
}

fn workload(n: usize, seed: u64) -> Vec<RangeQuery> {
    let mut rng = seeded(seed);
    (0..n)
        .map(|_| {
            let (a, b) = (rng.random::<f64>(), rng.random::<f64>());
            let (c, d) = (rng.random::<f64>(), rng.random::<f64>());
            RangeQuery::new(Rect::new(&[a.min(b), c.min(d)], &[a.max(b), c.max(d)]))
        })
        .collect()
}

fn query_line(q: &RangeQuery) -> String {
    let csv = |c: &[f64]| {
        c.iter()
            .map(|x| format!("{x:.17e}"))
            .collect::<Vec<_>>()
            .join(",")
    };
    format!("{} {}", csv(q.rect.lo()), csv(q.rect.hi()))
}

/// A scratch directory that cleans up after itself.
struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(name: &str) -> Self {
        let path = std::env::temp_dir().join(format!(
            "privtree-catalog-serve-{}-{name}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&path);
        Self(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The CI lane: text → binary → catalog → `privtree-serve --catalog`,
/// every answer diffed against the text-loaded library path (gridded
/// release, so the grid ships through the binary format too).
#[test]
fn catalog_served_binary_matches_text_loaded_library() {
    let frozen = sample_release(Rect::unit(2), 61, 4000);
    let engine = GridRoutedSynopsis::build(frozen).unwrap();
    let text = grid_routed_to_text(&engine);

    // the reference: the text path, loaded exactly as the library would
    let (ref_arena, ref_grid) = release_from_text(&text).unwrap();
    let reference =
        GridRoutedSynopsis::from_prebuilt(ref_arena, ref_grid.expect("grid section shipped"));

    // the lane under test: text → binary → catalog (validated import)
    let dir = TempDir::new("lane");
    let binary = text_to_binary(&text).expect("text converts to binary");
    let mut catalog = Catalog::open_or_create(&dir.0).unwrap();
    catalog
        .import("epoch0", &binary, ReleaseFormat::Binary)
        .expect("binary imports");
    drop(catalog);

    let queries = workload(150, 62);
    let mut input = String::new();
    for q in &queries[..40] {
        input.push_str(&format!("count {}\n", query_line(q)));
    }
    input.push_str(&format!("batch {}\n", queries.len()));
    for q in &queries {
        input.push_str(&query_line(q));
        input.push('\n');
    }
    input.push_str("keys\nquit\n");

    let output = Command::new(BIN)
        .args(["--catalog", dir.0.to_str().unwrap(), mmap_flag()])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .and_then(|mut child| {
            child
                .stdin
                .take()
                .expect("piped stdin")
                .write_all(input.as_bytes())?;
            child.wait_with_output()
        })
        .expect("run privtree-serve");
    assert!(
        output.status.success(),
        "privtree-serve failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8(output.stdout).expect("utf-8 answers");
    let mut lines = stdout.lines();
    // single-shard stores route straight into the shard's grid-routed
    // descent, so the binary's answers must equal the text-loaded
    // grid-routed engine exactly — same %.17e bits
    for q in queries[..40].iter().chain(&queries) {
        let expect = format!("{:.17e}", reference.answer(q));
        assert_eq!(lines.next(), Some(expect.as_str()), "query {}", q.rect);
    }
    assert_eq!(lines.next(), Some("keys epoch0"));
    assert_eq!(lines.next(), None);
}

/// `save` persists a serving release into the catalog and `load` brings
/// one back (add-or-swap), over one stdin session.
#[test]
fn save_and_load_verbs_round_trip_through_the_catalog() {
    let left = Rect::new(&[0.0, 0.0], &[0.5, 1.0]);
    let right = Rect::new(&[0.5, 0.0], &[1.0, 1.0]);
    let west = sample_release(left, 71, 2500);
    let east = sample_release(right, 72, 2500);
    let q_west = RangeQuery::new(Rect::new(&[0.05, 0.1], &[0.45, 0.9]));

    let dir = TempDir::new("verbs");
    let mut catalog = Catalog::open_or_create(&dir.0).unwrap();
    catalog
        .save("west", &west, None, ReleaseFormat::Binary)
        .unwrap();
    drop(catalog);

    // east arrives as a key=path text file beside the cataloged west
    let east_path = dir.0.join("east-input.txt");
    std::fs::write(
        &east_path,
        privtree_spatial::serialize::frozen_to_text(&east),
    )
    .unwrap();

    let input = format!(
        "keys\n\
         save east\n\
         retire east\n\
         keys\n\
         load east\n\
         keys\n\
         count {west_q}\n\
         quit\n",
        west_q = query_line(&q_west),
    );
    let output = Command::new(BIN)
        .args([
            "--catalog",
            dir.0.to_str().unwrap(),
            mmap_flag(),
            &format!("east={}", east_path.display()),
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .and_then(|mut child| {
            child
                .stdin
                .take()
                .expect("piped stdin")
                .write_all(input.as_bytes())?;
            child.wait_with_output()
        })
        .expect("run privtree-serve");
    assert!(
        output.status.success(),
        "privtree-serve failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8(output.stdout).expect("utf-8");
    let mut lines = stdout.lines();
    assert_eq!(lines.next(), Some("keys east west"));
    let saved = lines.next().expect("save reply");
    assert!(
        saved.starts_with("ok saved key=east") && saved.contains("format=binary"),
        "save reply: {saved}"
    );
    assert!(lines
        .next()
        .expect("retire reply")
        .starts_with("ok version=2"));
    assert_eq!(lines.next(), Some("keys west"));
    let loaded = lines.next().expect("load reply");
    assert!(loaded.starts_with("ok version=3"), "load reply: {loaded}");
    assert_eq!(lines.next(), Some("keys east west"));
    // a query strictly inside west is answered by that shard alone
    assert_eq!(
        lines.next(),
        Some(format!("{:.17e}", west.answer(&q_west)).as_str())
    );
    assert_eq!(lines.next(), None);

    // the catalog on disk now holds both releases (east was saved)
    let reopened = Catalog::open(&dir.0).unwrap();
    assert_eq!(reopened.keys().collect::<Vec<_>>(), ["east", "west"]);
}

/// Library-level warm start: persist a gridded store, reopen it from
/// the catalog, and require bit-identical answers — grids adopted from
/// disk, not rebuilt.
#[test]
fn open_catalog_reproduces_a_persisted_store_exactly() {
    let strips: Vec<(String, FrozenSynopsis)> = (0..3)
        .map(|i| {
            let lo = i as f64 / 3.0;
            let region = Rect::new(&[lo, 0.0], &[lo + 1.0 / 3.0, 1.0]);
            (format!("strip{i}"), sample_release(region, 80 + i, 1500))
        })
        .collect();
    let store = ReleaseStore::open_gridded(strips).unwrap();
    let queries = workload(200, 81);
    let reference = store.snapshot().synopsis().answer_batch(&queries);

    let dir = TempDir::new("warm");
    let mut catalog = Catalog::open_or_create(&dir.0).unwrap();
    assert_eq!(store.persist_catalog(&mut catalog).unwrap(), 3);

    // reopen purely from disk, in the storage mode under test
    let reopened_catalog = Catalog::open(&dir.0).unwrap();
    let warm = ReleaseStore::open_catalog_with(&reopened_catalog, true, mmap_mode()).unwrap();
    let snap = warm.snapshot();
    assert_eq!(snap.keys(), store.snapshot().keys());
    // grids shipped with the releases: the warm open built none
    assert_eq!(warm.stats().grids_built, 0, "grids must come from disk");
    if mmap_mode() && cfg!(all(unix, feature = "mmap")) {
        for shard in snap.synopsis().shards() {
            assert!(shard.is_mapped(), "catalog shards should be mapped");
        }
    }
    let got = snap.synopsis().answer_batch(&queries);
    for (a, b) in reference.iter().zip(&got) {
        assert_eq!(a.to_bits(), b.to_bits(), "warm-start answers diverged");
    }
    // answering assembled any staged grids lazily — still not "built"
    assert_eq!(warm.stats().grids_built, 0, "lazy assembly is not a build");
}

/// Zero-copy swap safety: snapshots borrowed from a mapped store keep
/// answering — bit-identically — through swaps, retires, and even the
/// removal of the release files themselves (the mapping pins the
/// unlinked inodes until the last snapshot drops).
#[test]
fn mapped_snapshots_survive_swap_retire_and_file_removal() {
    let strips: Vec<(String, FrozenSynopsis)> = (0..2)
        .map(|i| {
            let lo = i as f64 / 2.0;
            let region = Rect::new(&[lo, 0.0], &[lo + 0.5, 1.0]);
            (format!("strip{i}"), sample_release(region, 90 + i, 1500))
        })
        .collect();
    let dir = TempDir::new("unlink");
    let mut catalog = Catalog::open_or_create(&dir.0).unwrap();
    for (key, arena) in &strips {
        catalog
            .save(key, arena, None, ReleaseFormat::Binary)
            .unwrap();
    }
    let warm = ReleaseStore::open_catalog_with(&catalog, true, true).unwrap();
    let queries = workload(120, 91);
    let old_snap = warm.snapshot();
    let reference = old_snap.synopsis().answer_batch(&queries);

    // swap one shard, retire nothing yet — then delete every release
    // file from under the store
    let fresh = sample_release(Rect::new(&[0.0, 0.0], &[0.5, 1.0]), 97, 1500);
    warm.swap("strip0", fresh).unwrap();
    catalog.remove("strip0").unwrap();
    catalog.remove("strip1").unwrap();
    drop(catalog);
    let _ = std::fs::remove_dir_all(&dir.0);

    // the pre-swap snapshot still answers from the (unlinked) mappings
    let again = old_snap.synopsis().answer_batch(&queries);
    for (a, b) in reference.iter().zip(&again) {
        assert_eq!(a.to_bits(), b.to_bits(), "old snapshot diverged");
    }
    // and the post-swap snapshot serves the surviving mapped shard plus
    // the fresh owned one
    let new_snap = warm.snapshot();
    assert_eq!(new_snap.version(), 2);
    let whole = RangeQuery::new(Rect::unit(2));
    assert!(new_snap.answer(&whole).is_finite());
}
