//! End-to-end journal recovery through the real `privtree-serve`
//! binary: boot with `--journal`, mutate over the wire, then restart —
//! once after a graceful `quit` and once after a mid-session SIGKILL —
//! and require every **acked** mutation to come back, with answers
//! bit-identical to an in-process store built fresh from the same
//! releases. No failpoints feature needed: the kill is a real signal.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};

use privtree_dp::budget::Epsilon;
use privtree_dp::rng::seeded;
use privtree_engine::ReleaseStore;
use privtree_spatial::dataset::PointSet;
use privtree_spatial::geom::Rect;
use privtree_spatial::quadtree::SplitConfig;
use privtree_spatial::query::RangeQuery;
use privtree_spatial::sharded::ShardHandle;
use privtree_spatial::{FrozenSynopsis, RangeCountSynopsis};
use privtree_store::{encode_release, Catalog, ReleaseFormat};
use rand::RngExt;

const BIN: &str = env!("CARGO_BIN_EXE_privtree-serve");

fn sample_release(domain: Rect, seed: u64) -> FrozenSynopsis {
    let mut rng = seeded(seed);
    let mut ps = PointSet::new(2);
    for _ in 0..200 {
        ps.push(&[
            domain.lo()[0] + rng.random::<f64>() * domain.side(0),
            domain.lo()[1] + rng.random::<f64>() * domain.side(1),
        ]);
    }
    privtree_spatial::synopsis::privtree_synopsis(
        &ps,
        domain,
        SplitConfig::full(2),
        Epsilon::new(1.0).unwrap(),
        &mut seeded(seed ^ 0x3d2f),
    )
    .unwrap()
    .freeze()
}

/// Each serving key owns a fixed x-strip (shards must tile disjoint
/// regions); variants within a strip are what swaps move between.
fn strip(k: usize) -> Rect {
    let lo = k as f64 / 3.0;
    Rect::new(&[lo, 0.0], &[lo + 1.0 / 3.0, 1.0])
}

/// A scratch directory that cleans up after itself.
struct TempDir(PathBuf);

impl TempDir {
    fn new(name: &str) -> Self {
        let path =
            std::env::temp_dir().join(format!("privtree-jnlrt-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).unwrap();
        Self(path)
    }

    fn file(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// An interactive line-protocol session against the serve binary,
/// killed on drop so a failing assert cannot leak a process.
struct Session {
    child: Child,
    stdin: ChildStdin,
    stdout: BufReader<ChildStdout>,
}

impl Session {
    fn spawn(catalog_dir: &Path, extra: &[&str]) -> Self {
        let mut child = Command::new(BIN)
            .arg("--catalog")
            .arg(catalog_dir)
            .args(extra)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn privtree-serve");
        let stdin = child.stdin.take().unwrap();
        let stdout = BufReader::new(child.stdout.take().unwrap());
        Self {
            child,
            stdin,
            stdout,
        }
    }

    /// Send one command line, read its one reply line.
    fn send(&mut self, line: &str) -> String {
        writeln!(self.stdin, "{line}").expect("serve stdin open");
        self.stdin.flush().unwrap();
        let mut reply = String::new();
        self.stdout.read_line(&mut reply).expect("serve reply");
        assert!(!reply.is_empty(), "serve hung up on {line:?}");
        reply.trim_end().to_string()
    }

    /// Send one command line and require an `ok`-prefixed reply.
    fn ok(&mut self, line: &str) -> String {
        let reply = self.send(line);
        assert!(reply.starts_with("ok"), "{line:?} failed: {reply}");
        reply
    }

    /// Graceful shutdown: `quit` and reap.
    fn quit(mut self) {
        let _ = writeln!(self.stdin, "quit");
        let _ = self.stdin.flush();
        let _ = self.child.wait();
    }

    /// Kill the serving process mid-session with SIGKILL — no flush,
    /// no shutdown hook, exactly like a crash or an OOM kill.
    fn kill(mut self) {
        self.child.kill().expect("SIGKILL serve");
        let _ = self.child.wait();
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn query_line(q: &RangeQuery) -> String {
    let csv = |c: &[f64]| {
        c.iter()
            .map(|x| format!("{x:.17e}"))
            .collect::<Vec<_>>()
            .join(",")
    };
    format!("count {} {}", csv(q.rect.lo()), csv(q.rect.hi()))
}

/// Probe queries spanning strip boundaries and interiors.
fn probes() -> Vec<RangeQuery> {
    vec![
        RangeQuery::new(Rect::new(&[0.05, 0.1], &[0.95, 0.9])),
        RangeQuery::new(Rect::new(&[0.0, 0.0], &[0.4, 1.0])),
        RangeQuery::new(Rect::new(&[0.3, 0.2], &[0.7, 0.8])),
        RangeQuery::new(Rect::new(&[0.66, 0.5], &[1.0, 1.0])),
    ]
}

/// Assert the restarted server answers every probe bit-identically to
/// an in-process store built fresh from `state`.
fn assert_serves_state(session: &mut Session, state: &BTreeMap<&str, &FrozenSynopsis>) {
    let keys = session.send("keys");
    let keys = keys
        .strip_prefix("keys ")
        .unwrap_or_else(|| panic!("malformed keys reply: {keys}"));
    let mut served: Vec<&str> = keys.split_whitespace().collect();
    served.sort_unstable();
    let expected: Vec<&str> = state.keys().copied().collect();
    assert_eq!(
        served, expected,
        "restart must serve exactly the acked keys"
    );

    let fresh = ReleaseStore::open(
        state
            .iter()
            .map(|(key, arena)| (*key, ShardHandle::from_release((*arena).clone(), None))),
    )
    .unwrap();
    let snap = fresh.snapshot();
    for q in probes() {
        let got = session.send(&query_line(&q));
        let want = format!("{:.17e}", snap.answer(&q));
        assert_eq!(got, want, "recovered answers must be bit-identical");
    }
}

fn seed_alpha(dir: &Path, alpha: &FrozenSynopsis) {
    let mut catalog = Catalog::open_or_create(dir).unwrap();
    catalog
        .save("alpha", alpha, None, ReleaseFormat::Binary)
        .unwrap();
}

fn write_release(dir: &TempDir, name: &str, arena: &FrozenSynopsis) -> String {
    let path = dir.file(name);
    std::fs::write(&path, encode_release(arena, None)).unwrap();
    path.display().to_string()
}

#[test]
fn journaled_mutations_survive_a_graceful_restart() {
    let work = TempDir::new("graceful");
    let store_dir = work.file("catalog");
    std::fs::create_dir_all(&store_dir).unwrap();

    let alpha0 = sample_release(strip(0), 11);
    let alpha1 = sample_release(strip(0), 12);
    let beta0 = sample_release(strip(1), 21);
    let gamma0 = sample_release(strip(2), 31);
    seed_alpha(&store_dir, &alpha0);
    let beta_path = write_release(&work, "beta0.ptbin", &beta0);
    let alpha_path = write_release(&work, "alpha1.ptbin", &alpha1);
    let gamma_path = write_release(&work, "gamma0.ptbin", &gamma0);

    let mut s = Session::spawn(
        &store_dir,
        &["--journal", "--fsync", "always", "--keep-generations", "2"],
    );
    s.ok(&format!("add beta {beta_path}"));
    s.ok(&format!("swap alpha {alpha_path}"));
    let stats = s.send("stats");
    assert!(
        stats.contains(" journal=1 "),
        "stats must report journaling on: {stats}"
    );
    assert!(
        stats.contains(" keep=2 "),
        "stats must report the retention depth: {stats}"
    );
    assert!(
        stats.contains(" journal_seq="),
        "stats must report the journal sequence: {stats}"
    );
    assert!(
        stats.contains(" fsync=always"),
        "stats must report the fsync policy: {stats}"
    );
    let cp = s.ok("checkpoint");
    assert!(
        cp.starts_with("ok checkpoint journal_seq="),
        "checkpoint reports the folded sequence: {cp}"
    );
    s.ok(&format!("add gamma {gamma_path}"));
    s.quit();

    // restart: the checkpointed state plus the journaled tail (gamma)
    // must come back
    let mut s = Session::spawn(&store_dir, &["--journal"]);
    let stats = s.send("stats");
    assert!(
        stats.contains(" replayed=1 "),
        "one op after the checkpoint must replay: {stats}"
    );
    assert_serves_state(
        &mut s,
        &BTreeMap::from([("alpha", &alpha1), ("beta", &beta0), ("gamma", &gamma0)]),
    );
    s.quit();
}

#[test]
fn journaled_mutations_survive_sigkill() {
    let work = TempDir::new("sigkill");
    let store_dir = work.file("catalog");
    std::fs::create_dir_all(&store_dir).unwrap();

    let alpha0 = sample_release(strip(0), 41);
    let alpha1 = sample_release(strip(0), 42);
    let beta0 = sample_release(strip(1), 51);
    seed_alpha(&store_dir, &alpha0);
    let beta_path = write_release(&work, "beta0.ptbin", &beta0);
    let alpha_path = write_release(&work, "alpha1.ptbin", &alpha1);

    let mut s = Session::spawn(&store_dir, &["--journal", "--fsync", "always"]);
    // both mutations are ACKED over the wire before the kill — with
    // --fsync always the ack means the record is durable
    s.ok(&format!("add beta {beta_path}"));
    s.ok(&format!("swap alpha {alpha_path}"));
    s.kill();

    let mut s = Session::spawn(&store_dir, &["--journal"]);
    let stats = s.send("stats");
    assert!(
        stats.contains(" replayed=2 "),
        "both acked mutations must replay after SIGKILL: {stats}"
    );
    assert_serves_state(
        &mut s,
        &BTreeMap::from([("alpha", &alpha1), ("beta", &beta0)]),
    );
    s.quit();

    // a third boot replays the same ops again (nothing checkpointed
    // them away) and still serves the same state
    let mut s = Session::spawn(&store_dir, &["--journal"]);
    s.ok("checkpoint");
    s.quit();
    let mut s = Session::spawn(&store_dir, &["--journal"]);
    let stats = s.send("stats");
    assert!(
        stats.contains(" replayed=0 "),
        "the checkpoint folds the journal tail: {stats}"
    );
    assert_serves_state(
        &mut s,
        &BTreeMap::from([("alpha", &alpha1), ("beta", &beta0)]),
    );
    s.quit();
}
