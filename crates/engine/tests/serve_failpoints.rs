//! Fault-injection regressions on the serve layer (require
//! `--features failpoints`; a separate test binary because the
//! failpoint registry is process-global): a verb that panics
//! mid-command — while holding the catalog lock — answers
//! `err internal` and the *next* command on the same shared context
//! succeeds (panic isolation plus lock-poison recovery), and an
//! injected connection-read failure ends only its own session.

#![cfg(feature = "failpoints")]

use std::sync::Mutex;

use privtree_dp::budget::Epsilon;
use privtree_dp::rng::seeded;
use privtree_engine::serve::{serve_lines, ServeContext};
use privtree_engine::ReleaseStore;
use privtree_runtime::failpoints::{self, FailAction};
use privtree_spatial::dataset::PointSet;
use privtree_spatial::geom::Rect;
use privtree_spatial::quadtree::SplitConfig;
use privtree_spatial::FrozenSynopsis;
use privtree_store::Catalog;
use rand::RngExt;

/// The failpoint registry is process-global: serialize these tests.
static LOCK: Mutex<()> = Mutex::new(());

fn sample_release(seed: u64, points: usize) -> FrozenSynopsis {
    let mut rng = seeded(seed);
    let mut ps = PointSet::new(2);
    for _ in 0..points {
        ps.push(&[rng.random::<f64>(), rng.random::<f64>().powi(2)]);
    }
    privtree_spatial::synopsis::privtree_synopsis(
        &ps,
        Rect::unit(2),
        SplitConfig::full(2),
        Epsilon::new(1.0).unwrap(),
        &mut seeded(seed ^ 0x7777),
    )
    .unwrap()
    .freeze()
}

fn run_lines(ctx: &ServeContext, input: &[u8]) -> Vec<String> {
    let mut out = Vec::new();
    serve_lines(ctx, std::io::Cursor::new(input), &mut out).unwrap();
    String::from_utf8(out)
        .unwrap()
        .lines()
        .map(str::to_string)
        .collect()
}

/// A scratch directory that cleans up after itself.
struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(name: &str) -> Self {
        let path = std::env::temp_dir().join(format!(
            "privtree-serve-failpt-{}-{name}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&path);
        Self(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn panicking_save_is_isolated_and_the_catalog_lock_recovers() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    failpoints::reset();
    let dir = TempDir::new("poison");
    let catalog = Catalog::open_or_create(&dir.0).unwrap();
    let store = ReleaseStore::open([("main", sample_release(107, 500))]).unwrap();
    let ctx = ServeContext::with_catalog(store, catalog);

    // the first save panics at the data file's create step — while the
    // verb holds the catalog mutex
    failpoints::arm("catalog.data.create", FailAction::Panic, 1);
    let replies = run_lines(&ctx, b"save main\nsave main\nkeys\n");
    failpoints::reset();
    assert_eq!(replies.len(), 3, "got {replies:?}");
    assert!(
        replies[0].starts_with("err internal:"),
        "panic answers err internal, got: {}",
        replies[0]
    );
    assert!(
        replies[1].starts_with("ok saved key=main"),
        "the poisoned lock must recover, got: {}",
        replies[1]
    );
    assert_eq!(replies[2], "keys main", "session kept serving");
}

#[test]
fn injected_connection_read_error_ends_only_that_session() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    failpoints::reset();
    let store = ReleaseStore::open([("main", sample_release(108, 500))]).unwrap();
    let ctx = ServeContext::new(store);
    // the 2nd read of this session fails like a dropped socket
    failpoints::arm("serve.read", FailAction::Error, 2);
    let mut out = Vec::new();
    let result = serve_lines(&ctx, std::io::Cursor::new(b"keys\nkeys\n"), &mut out);
    failpoints::reset();
    assert!(result.is_err(), "injected IO error must end the session");
    let replies = String::from_utf8(out).unwrap();
    assert_eq!(replies, "keys main\n", "first command was served");
    // the shared context is untouched: a fresh session serves fine
    let replies = run_lines(&ctx, b"keys\n");
    assert_eq!(replies, ["keys main"]);
}

#[test]
fn injected_write_failure_ends_the_session_not_the_store() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    failpoints::reset();
    let store = ReleaseStore::open([("main", sample_release(109, 500))]).unwrap();
    let ctx = ServeContext::new(store);
    failpoints::arm("serve.write", FailAction::Error, 1);
    let mut out = Vec::new();
    let result = serve_lines(&ctx, std::io::Cursor::new(b"keys\n"), &mut out);
    failpoints::reset();
    assert!(result.is_err(), "injected write failure must surface");
    let replies = run_lines(&ctx, b"keys\n");
    assert_eq!(replies, ["keys main"], "the shared store keeps serving");
}
