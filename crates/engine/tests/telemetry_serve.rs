//! Telemetry end-to-end over the serving protocols: the sorted `stats`
//! key set (a regression net over every pre-registry counter), the
//! `metrics` exposition (sorted, deterministic, same key set over text
//! and binary), the slow-query log with shard attribution, quarantine
//! gauges with free-text reasons, and the journal's append/fsync
//! distribution.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use privtree_dp::budget::Epsilon;
use privtree_dp::rng::seeded;
use privtree_engine::serve::{exposition_lines, serve_lines, spawn_tcp, ServeContext};
use privtree_engine::wire::WireClient;
use privtree_engine::ReleaseStore;
use privtree_spatial::dataset::PointSet;
use privtree_spatial::geom::Rect;
use privtree_spatial::quadtree::SplitConfig;
use privtree_spatial::query::RangeQuery;
use privtree_spatial::FrozenSynopsis;
use privtree_store::{Catalog, FsyncPolicy};
use rand::RngExt;

fn sample_release(seed: u64, points: usize) -> FrozenSynopsis {
    let mut rng = seeded(seed);
    let mut ps = PointSet::new(2);
    for _ in 0..points {
        ps.push(&[rng.random::<f64>(), rng.random::<f64>()]);
    }
    privtree_spatial::synopsis::privtree_synopsis(
        &ps,
        Rect::unit(2),
        SplitConfig::full(2),
        Epsilon::new(1.0).unwrap(),
        &mut seeded(seed ^ 0x5a5a),
    )
    .unwrap()
    .freeze()
}

fn workload(n: usize, seed: u64) -> Vec<RangeQuery> {
    let mut rng = seeded(seed);
    (0..n)
        .map(|_| {
            let (a, b) = (rng.random::<f64>(), rng.random::<f64>());
            let (c, d) = (rng.random::<f64>(), rng.random::<f64>());
            RangeQuery::new(Rect::new(&[a.min(b), c.min(d)], &[a.max(b), c.max(d)]))
        })
        .collect()
}

fn query_line(q: &RangeQuery) -> String {
    let csv = |c: &[f64]| {
        c.iter()
            .map(|x| format!("{x:.17e}"))
            .collect::<Vec<_>>()
            .join(",")
    };
    format!("{} {}", csv(q.rect.lo()), csv(q.rect.hi()))
}

fn test_context(seed: u64) -> ServeContext {
    let store = ReleaseStore::open([("main", sample_release(seed, 800))]).unwrap();
    ServeContext::new(store)
}

/// Run a script through the stdin-style protocol loop, returning the
/// reply lines.
fn run_lines(ctx: &ServeContext, input: &[u8]) -> Vec<String> {
    let mut out = Vec::new();
    serve_lines(ctx, std::io::Cursor::new(input), &mut out).unwrap();
    String::from_utf8(out)
        .unwrap()
        .lines()
        .map(str::to_string)
        .collect()
}

struct TempDir(PathBuf);

impl TempDir {
    fn new(name: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("privtree-telemetry-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Parse one `metrics <n>` scrape out of a reply-line iterator.
fn parse_scrape<'a>(it: &mut impl Iterator<Item = &'a String>) -> Vec<String> {
    let header = it.next().expect("metrics header");
    let n: usize = header
        .strip_prefix("metrics ")
        .unwrap_or_else(|| panic!("bad metrics header: {header}"))
        .parse()
        .expect("metric count");
    (0..n)
        .map(|_| it.next().expect("exposition line").clone())
        .collect()
}

/// The metric key of an exposition line (everything before the value).
fn key_of(line: &str) -> &str {
    line.rsplit_once(' ').expect("key value").0
}

fn assert_sorted(lines: &[String], what: &str) {
    assert!(
        lines.windows(2).all(|w| w[0] <= w[1]),
        "{what} not sorted: {lines:#?}"
    );
}

/// `stats` answers one deterministically sorted line whose key set is
/// pinned exactly — a counter renamed, dropped, or re-keyed by the
/// registry refactor fails here, not in a downstream scrape.
#[test]
fn stats_tokens_are_sorted_and_cover_the_full_key_set() {
    let ctx = test_context(901);
    let replies = run_lines(&ctx, b"stats\n");
    assert_eq!(replies.len(), 1);
    let tokens: Vec<&str> = replies[0]
        .strip_prefix("stats ")
        .expect("stats prefix")
        .split(' ')
        .collect();
    let mut sorted = tokens.clone();
    sorted.sort_unstable();
    assert_eq!(tokens, sorted, "stats tokens must be sorted");
    let keys: Vec<&str> = tokens
        .iter()
        .map(|t| t.split('=').next().unwrap())
        .collect();
    assert_eq!(
        keys,
        [
            "coalesced_dispatches",
            "coalesced_queries",
            "coalesced_spans",
            "conns_text",
            "conns_wire",
            "dims",
            "gridded",
            "grids_built",
            "journal",
            "mapped_bytes",
            "nodes",
            "publishes",
            "quarantined",
            "shards",
            "storage.main",
            "version",
            "wire_frames_in",
            "wire_frames_out",
        ],
        "stats key set changed: {}",
        replies[0]
    );
}

/// The `metrics` verb over the line protocol: a `metrics <n>` header,
/// n sorted lines, latency quantiles visible after queries ran, every
/// reactor stage histogram present (even untouched), and two scrapes
/// of identical state identical modulo the clock gauges.
#[test]
fn metrics_exposition_is_sorted_deterministic_and_complete() {
    let ctx = test_context(902);
    let mut input = String::new();
    for q in &workload(3, 903) {
        input.push_str(&format!("count {}\n", query_line(q)));
    }
    input.push_str("metrics\nmetrics\n");
    let replies = run_lines(&ctx, input.as_bytes());
    let mut it = replies.iter();
    for _ in 0..3 {
        it.next().expect("count answer");
    }
    let first = parse_scrape(&mut it);
    let second = parse_scrape(&mut it);
    assert!(it.next().is_none(), "no trailing output");

    assert_sorted(&first, "exposition");
    let stable = |lines: &[String]| -> Vec<String> {
        lines
            .iter()
            .filter(|l| {
                !l.starts_with("uptime_seconds ") && !l.starts_with("snapshot_age_seconds ")
            })
            .cloned()
            .collect()
    };
    assert_eq!(
        stable(&first),
        stable(&second),
        "identical state must scrape identically (modulo clock gauges)"
    );

    // the three stdin `count`s landed in the text latency histogram:
    // p50/p99 are visible
    assert!(
        first.contains(&r#"request_us_count{proto="text"} 3"#.to_string()),
        "text request histogram count: {first:#?}"
    );
    for q in ["0.5", "0.99"] {
        assert!(
            first
                .iter()
                .any(|l| l.starts_with(&format!(r#"request_us{{proto="text",quantile="{q}"}} "#))),
            "missing request_us p{q} line"
        );
    }
    // every stage histogram is registered from the first scrape, even
    // with no reactor running
    for stage in ["decode", "coalesce", "dispatch", "scatter", "flush"] {
        assert!(
            first.contains(&format!(r#"reactor_stage_us_count{{stage="{stage}"}} 0"#)),
            "missing stage histogram for {stage}"
        );
    }
    for want in [
        r#"conns{proto="text"} 0"#,
        r#"conns{proto="wire"} 0"#,
        "store_shards 1",
        "store_version 1",
        "checkpoint_us_count 0",
        "slow_queries_total 0",
    ] {
        assert!(first.contains(&want.to_string()), "missing line: {want}");
    }
    assert!(
        first.iter().any(|l| l.starts_with("uptime_seconds ")),
        "missing uptime gauge"
    );
}

/// Both front ends serve the same exposition: the text `metrics` verb
/// and the binary `METR` frame scrape one registry, so their key sets
/// are identical and both are sorted.
#[test]
fn metrics_over_text_and_wire_share_one_key_set() {
    let ctx = Arc::new(test_context(904));
    let server = spawn_tcp(Arc::clone(&ctx), "127.0.0.1:0").unwrap();
    let addr = server.addr();

    // connect both clients first so each scrape sees both connections
    let mut wire = WireClient::connect(addr).expect("connect binary");
    assert_eq!(wire.dims(), 2);
    let stream = TcpStream::connect(addr).expect("connect text");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;

    writeln!(writer, "metrics").expect("send metrics");
    let mut header = String::new();
    reader.read_line(&mut header).expect("metrics header");
    let n: usize = header
        .trim()
        .strip_prefix("metrics ")
        .unwrap_or_else(|| panic!("bad header: {header}"))
        .parse()
        .expect("metric count");
    let mut text_lines = Vec::new();
    for _ in 0..n {
        let mut line = String::new();
        reader.read_line(&mut line).expect("exposition line");
        text_lines.push(line.trim_end().to_string());
    }

    let body = wire.metrics().expect("METR frame");
    assert!(
        body.ends_with('\n'),
        "wire exposition is newline-terminated"
    );
    let wire_lines: Vec<String> = body.lines().map(str::to_string).collect();

    assert_sorted(&text_lines, "text exposition");
    assert_sorted(&wire_lines, "wire exposition");
    let keys =
        |lines: &[String]| -> Vec<String> { lines.iter().map(|l| key_of(l).to_string()).collect() };
    assert_eq!(
        keys(&text_lines),
        keys(&wire_lines),
        "both protocols must expose the same metric key set"
    );
    for lines in [&text_lines, &wire_lines] {
        assert!(
            lines.contains(&r#"conns{proto="text"} 1"#.to_string()),
            "text connection visible: {lines:#?}"
        );
        assert!(
            lines.contains(&r#"conns{proto="wire"} 1"#.to_string()),
            "wire connection visible: {lines:#?}"
        );
        assert!(lines.contains(&"store_shards 1".to_string()));
    }

    writeln!(writer, "quit").expect("quit");
    wire.quit().expect("quit frame");
    drop((reader, writer));
    server.shutdown_signal().trigger();
}

/// Armed via [`ServeContext::with_slow_query_log`], a slow batch is
/// recorded with its protocol, query count, shard attribution, and
/// box; disarmed contexts answer the hint instead.
#[test]
fn slowlog_records_slow_queries_with_shard_attribution() {
    let disarmed = test_context(905);
    assert_eq!(
        run_lines(&disarmed, b"slowlog\n"),
        ["slowlog 0 (disarmed; start with --slow-query-log MS)"]
    );

    let store = ReleaseStore::open([("main", sample_release(906, 800))]).unwrap();
    let ctx = ServeContext::new(store).with_slow_query_log(Duration::from_micros(1));
    // a 64-query batch is comfortably past a 1µs threshold; its first
    // box covers the whole domain, so shard attribution hits `main`
    let mut queries = vec![RangeQuery::new(Rect::unit(2))];
    queries.extend(workload(63, 907));
    let mut input = format!("batch {}\n", queries.len());
    for q in &queries {
        input.push_str(&query_line(q));
        input.push('\n');
    }
    input.push_str("slowlog\nmetrics\n");
    let replies = run_lines(&ctx, input.as_bytes());
    let mut it = replies.iter();
    for _ in 0..queries.len() {
        it.next().expect("batch answer");
    }
    let header = it.next().expect("slowlog header");
    assert_eq!(header, "slowlog 1", "one batch job crossed the threshold");
    let entry = it.next().expect("slowlog entry");
    assert!(entry.starts_with("t=+"), "entry: {entry}");
    for want in [
        " proto=text ",
        " queries=64 ",
        " wait_us=0 ",
        " shards=main ",
    ] {
        assert!(entry.contains(want), "entry missing `{want}`: {entry}");
    }
    assert!(entry.ends_with(" box=0,0 1,1"), "entry: {entry}");
    let scrape = parse_scrape(&mut it);
    assert!(
        scrape.contains(&"slow_queries_total 1".to_string()),
        "slow query counted: {scrape:#?}"
    );
}

/// A lossy warm start's quarantined keys surface as
/// `quarantined{key,reason}` gauges — reasons are free text, escaped
/// into the label — alongside the `stats` summary count.
#[test]
fn quarantined_keys_surface_in_exposition_with_reasons() {
    let store = ReleaseStore::open([("main", sample_release(908, 600))]).unwrap();
    let ctx = ServeContext::new(store).with_quarantined(vec![("ghost".into(), "bad crc".into())]);
    let lines = exposition_lines(&ctx);
    assert!(
        lines.contains(&r#"quarantined{key="ghost",reason="bad crc"} 1"#.to_string()),
        "quarantine gauge with reason: {lines:#?}"
    );
    let stats = &run_lines(&ctx, b"stats\n")[0];
    assert!(stats.contains(" quarantined=1 "), "stats: {stats}");
    assert!(stats.contains(" quarantined.ghost=1 "), "stats: {stats}");
}

/// With a journaling catalog attached, a journaled mutation lands in
/// the append/fsync histograms and counters the exposition serves.
#[test]
fn journal_append_and_fsync_land_in_the_exposition() {
    let dir = TempDir::new("journal");
    let mut catalog = Catalog::open_or_create(&dir.0).unwrap();
    catalog.enable_journal(FsyncPolicy::Always).unwrap();
    let store = ReleaseStore::open([("main", sample_release(909, 800))]).unwrap();
    let ctx = ServeContext::with_catalog(store, catalog);

    let replies = run_lines(&ctx, b"save main\nmetrics\n");
    assert!(
        replies[0].starts_with("ok "),
        "save must succeed: {}",
        replies[0]
    );
    let mut it = replies.iter();
    it.next();
    let scrape = parse_scrape(&mut it);
    let value = |name: &str| -> u64 {
        scrape
            .iter()
            .find_map(|l| l.strip_prefix(&format!("{name} ")))
            .unwrap_or_else(|| panic!("missing {name}: {scrape:#?}"))
            .parse()
            .expect("integer value")
    };
    assert!(value("journal_appends_total") >= 1, "append counted");
    assert!(value("journal_fsyncs_total") >= 1, "fsync counted");
    assert!(
        value("journal_append_us_count") >= 1,
        "append latency observed"
    );
    assert!(
        value("journal_fsync_us_count") >= 1,
        "fsync latency observed"
    );
    assert_eq!(value("journal_replayed_ops_total"), 0, "fresh catalog");
    assert_eq!(value("catalog_checkpoints_total"), 0);
}
