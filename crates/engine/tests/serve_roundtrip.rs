//! End-to-end round trip through the `privtree-serve` binary: a
//! serialized release goes in, a stdin line-protocol workload streams
//! through, and every answer must equal the library's
//! `FrozenSynopsis::answer` output exactly (same `%.17e` rendering, which
//! round-trips `f64` bit-exactly). This is the CI smoke lane for the
//! serving binary; it also exercises the TCP mode and the runtime epoch
//! operations.

use std::io::{BufRead, BufReader, Write};
use std::process::{Child, Command, Stdio};

use privtree_dp::budget::Epsilon;
use privtree_dp::rng::seeded;
use privtree_spatial::dataset::PointSet;
use privtree_spatial::geom::Rect;
use privtree_spatial::quadtree::SplitConfig;
use privtree_spatial::query::{RangeCountSynopsis, RangeQuery};
use privtree_spatial::serialize::frozen_to_text;
use privtree_spatial::synopsis::privtree_synopsis;
use privtree_spatial::FrozenSynopsis;
use rand::RngExt;

/// The binary under test (cargo builds and points at it for integration
/// tests of this crate).
const BIN: &str = env!("CARGO_BIN_EXE_privtree-serve");

fn sample_release(domain: Rect, seed: u64, n: usize) -> FrozenSynopsis {
    let mut rng = seeded(seed);
    let mut ps = PointSet::new(2);
    for _ in 0..n {
        ps.push(&[
            domain.lo()[0] + rng.random::<f64>() * domain.side(0),
            domain.lo()[1] + rng.random::<f64>().powi(2) * domain.side(1),
        ]);
    }
    privtree_synopsis(
        &ps,
        domain,
        SplitConfig::full(2),
        Epsilon::new(1.0).unwrap(),
        &mut seeded(seed ^ 0xabcd),
    )
    .unwrap()
    .freeze()
}

fn workload(n: usize, seed: u64) -> Vec<RangeQuery> {
    let mut rng = seeded(seed);
    (0..n)
        .map(|_| {
            let (a, b) = (rng.random::<f64>(), rng.random::<f64>());
            let (c, d) = (rng.random::<f64>(), rng.random::<f64>());
            RangeQuery::new(Rect::new(&[a.min(b), c.min(d)], &[a.max(b), c.max(d)]))
        })
        .collect()
}

/// A scratch file that cleans up after itself.
struct TempFile(std::path::PathBuf);

impl TempFile {
    fn write(name: &str, contents: &str) -> Self {
        let path =
            std::env::temp_dir().join(format!("privtree-serve-test-{}-{name}", std::process::id()));
        std::fs::write(&path, contents).expect("write temp release");
        Self(path)
    }

    fn path(&self) -> &str {
        self.0.to_str().expect("utf-8 temp path")
    }
}

impl Drop for TempFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

fn query_line(q: &RangeQuery) -> String {
    let csv = |c: &[f64]| {
        c.iter()
            .map(|x| format!("{x:.17e}"))
            .collect::<Vec<_>>()
            .join(",")
    };
    format!("{} {}", csv(q.rect.lo()), csv(q.rect.hi()))
}

/// Kill the child on drop so a failing assert cannot leak a process.
struct Reaper(Child);

impl Drop for Reaper {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

#[test]
fn stdin_round_trip_matches_library_answers() {
    let frozen = sample_release(Rect::unit(2), 5, 4000);
    let release_file = TempFile::write("release.txt", &frozen_to_text(&frozen));
    let queries = workload(200, 6);

    // workload: singles, one batch, and a stats probe
    let mut input = String::new();
    for q in &queries[..50] {
        input.push_str(&format!("count {}\n", query_line(q)));
    }
    input.push_str(&format!("batch {}\n", queries.len()));
    for q in &queries {
        input.push_str(&query_line(q));
        input.push('\n');
    }
    input.push_str("keys\nstats\nquit\n");

    let output = Command::new(BIN)
        .arg(format!("epoch0={}", release_file.path()))
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .and_then(|mut child| {
            child
                .stdin
                .take()
                .expect("piped stdin")
                .write_all(input.as_bytes())?;
            child.wait_with_output()
        })
        .expect("run privtree-serve");
    assert!(
        output.status.success(),
        "privtree-serve failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );

    let stdout = String::from_utf8(output.stdout).expect("utf-8 answers");
    let mut lines = stdout.lines();
    // the diff against the library path: every answer line must be the
    // exact %.17e rendering of FrozenSynopsis::answer
    for q in &queries[..50] {
        let expect = format!("{:.17e}", frozen.answer(q));
        assert_eq!(
            lines.next(),
            Some(expect.as_str()),
            "single query {}",
            q.rect
        );
    }
    for q in &queries {
        let expect = format!("{:.17e}", frozen.answer(q));
        assert_eq!(
            lines.next(),
            Some(expect.as_str()),
            "batched query {}",
            q.rect
        );
    }
    assert_eq!(lines.next(), Some("keys epoch0"));
    let stats = lines.next().expect("stats line");
    assert!(stats.starts_with("stats "), "stats line: {stats}");
    assert!(stats.contains(" shards=1 "), "stats line: {stats}");
    assert!(stats.contains("version=1"), "stats line: {stats}");
    // key=path loads decode into process memory: storage reports owned
    assert!(stats.contains(" mapped_bytes=0"), "stats line: {stats}");
    assert!(
        stats.contains(" storage.epoch0=owned"),
        "stats line: {stats}"
    );
    assert_eq!(lines.next(), None, "no unexpected trailing output");
}

/// The `stats` verb reports each release's storage mode: `mapped:<n>`
/// (with the mapping's byte count) for zero-copy catalog opens, `owned`
/// for copying loads — and `--no-mmap` forces everything owned.
#[test]
fn stats_reports_per_release_storage_mode() {
    use privtree_store::{Catalog, ReleaseFormat};

    let dir = std::env::temp_dir().join(format!("privtree-serve-storage-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut catalog = Catalog::open_or_create(&dir).unwrap();
    let frozen = sample_release(Rect::unit(2), 45, 2000);
    catalog
        .save("epoch0", &frozen, None, ReleaseFormat::Binary)
        .unwrap();
    let file_len = std::fs::metadata(dir.join(&catalog.entry("epoch0").unwrap().file))
        .unwrap()
        .len();
    drop(catalog);

    let run = |flag: &str| -> String {
        let output = Command::new(BIN)
            .args(["--catalog", dir.to_str().unwrap(), flag])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .and_then(|mut child| {
                child
                    .stdin
                    .take()
                    .expect("piped stdin")
                    .write_all(b"stats\nquit\n")?;
                child.wait_with_output()
            })
            .expect("run privtree-serve");
        assert!(
            output.status.success(),
            "privtree-serve {flag} failed: {}",
            String::from_utf8_lossy(&output.stderr)
        );
        String::from_utf8(output.stdout)
            .expect("utf-8")
            .trim()
            .to_string()
    };

    let mapped_stats = run("--mmap");
    if cfg!(all(unix, feature = "mmap")) {
        assert!(
            mapped_stats.contains(&format!(" mapped_bytes={file_len}")),
            "mapped stats: {mapped_stats}"
        );
        assert!(
            mapped_stats.contains(&format!(" storage.epoch0=mapped:{file_len}")),
            "mapped stats: {mapped_stats}"
        );
    }

    let owned_stats = run("--no-mmap");
    assert!(
        owned_stats.contains(" mapped_bytes=0"),
        "owned stats: {owned_stats}"
    );
    assert!(
        owned_stats.contains(" storage.epoch0=owned"),
        "owned stats: {owned_stats}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A failed batch replies exactly one error line and leaves the stream
/// aligned: the remaining batch lines are drained, never re-parsed as
/// commands, and the next real command answers normally.
#[test]
fn bad_batch_line_does_not_desynchronize_the_protocol() {
    let frozen = sample_release(Rect::unit(2), 31, 1500);
    let release_file = TempFile::write("align-release.txt", &frozen_to_text(&frozen));
    let q = RangeQuery::new(Rect::new(&[0.1, 0.2], &[0.5, 0.6]));
    let input = format!(
        "batch 3\n\
         0.1,0.1 0.2,0.2\n\
         garbage line\n\
         0.3,0.3 0.4,0.4\n\
         count {}\n\
         batch 999999999999\n\
         quit\n",
        query_line(&q)
    );
    let output = Command::new(BIN)
        .arg(format!("epoch0={}", release_file.path()))
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .and_then(|mut child| {
            child
                .stdin
                .take()
                .expect("piped stdin")
                .write_all(input.as_bytes())?;
            child.wait_with_output()
        })
        .expect("run privtree-serve");
    assert!(output.status.success());
    let stdout = String::from_utf8(output.stdout).expect("utf-8");
    let mut lines = stdout.lines();
    let batch_err = lines.next().expect("batch error");
    assert!(batch_err.starts_with("err "), "batch reply: {batch_err}");
    assert_eq!(
        lines.next(),
        Some(format!("{:.17e}", frozen.answer(&q)).as_str()),
        "the command after a failed batch must answer normally"
    );
    let cap_err = lines.next().expect("cap error");
    assert!(
        cap_err.starts_with("err ") && cap_err.contains("cap"),
        "oversized batch reply: {cap_err}"
    );
    assert_eq!(lines.next(), None);
}

/// The liveness contract: malformed commands, bad arguments, failed
/// epoch operations, and even lines that are not valid UTF-8 must each
/// answer exactly one `err <reason>` line and leave the connection
/// serving — the stream only ends at EOF, `quit`, or a real I/O
/// failure. (Regression: `BufRead::lines` used to surface invalid UTF-8
/// as an `InvalidData` I/O error that tore the connection down.)
#[test]
fn protocol_errors_never_terminate_the_connection() {
    let frozen = sample_release(Rect::unit(2), 47, 1500);
    let release_file = TempFile::write("errs-release.txt", &frozen_to_text(&frozen));
    let q = RangeQuery::new(Rect::new(&[0.2, 0.1], &[0.6, 0.5]));

    // one connection, a gauntlet of malformed traffic, then a real query
    let mut input: Vec<u8> = Vec::new();
    input.extend_from_slice(b"definitely-not-a-command 1 2 3\n");
    input.extend_from_slice(b"count\n"); // missing arguments
    input.extend_from_slice(b"count 0.1,0.1 zz,0.9\n"); // bad coordinate
    input.extend_from_slice(b"count 0.5,0.5 0.1,0.1\n"); // lo > hi
    input.extend_from_slice(b"count inf,0.0 1.0,1.0\n"); // non-finite
    input.extend_from_slice(b"\xff\xfe garbage bytes\n"); // not UTF-8
    input.extend_from_slice(b"add broken /no/such/file.txt\n"); // failed add
    input.extend_from_slice(b"swap missing ");
    input.extend_from_slice(release_file.path().as_bytes()); // unknown key
    input.extend_from_slice(b"\nretire epoch0\n"); // last shard
    input.extend_from_slice(b"save epoch0\n"); // no catalog attached
    input.extend_from_slice(b"load epoch0\n"); // no catalog attached
    input.extend_from_slice(format!("count {}\nquit\n", query_line(&q)).as_bytes());

    let output = Command::new(BIN)
        .arg(format!("epoch0={}", release_file.path()))
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .and_then(|mut child| {
            child.stdin.take().expect("piped stdin").write_all(&input)?;
            child.wait_with_output()
        })
        .expect("run privtree-serve");
    assert!(output.status.success(), "the process must exit cleanly");
    let stdout = String::from_utf8(output.stdout).expect("utf-8");
    let mut lines = stdout.lines();
    for expected in [
        "unknown command",
        "count needs",
        "bad coordinate",
        "lo > hi",
        "non-finite",
        "utf-8",
        "no/such/file",
        "no release named missing",
        "refusing to retire",
        "no catalog",
        "no catalog",
    ] {
        let reply = lines
            .next()
            .unwrap_or_else(|| panic!("missing err for {expected:?}"));
        assert!(
            reply.starts_with("err ") && reply.contains(expected),
            "expected an err mentioning {expected:?}, got: {reply}"
        );
    }
    assert_eq!(
        lines.next(),
        Some(format!("{:.17e}", frozen.answer(&q)).as_str()),
        "the connection must still answer after every err"
    );
    assert_eq!(lines.next(), None);
}

#[test]
fn epoch_operations_swap_releases_mid_stream() {
    let left = Rect::new(&[0.0, 0.0], &[0.5, 1.0]);
    let right = Rect::new(&[0.5, 0.0], &[1.0, 1.0]);
    let epoch_a = sample_release(left, 11, 2500);
    let epoch_b = sample_release(left, 12, 2500);
    let other = sample_release(right, 13, 2500);
    // the store runs with --grids, so a query inside the left region is
    // answered by that shard's grid-routed descent (entered with a zero
    // accumulator) — bit-identical to the standalone grid-routed engine
    // over the same release at the default resolution
    let grid_a = privtree_spatial::GridRoutedSynopsis::build(epoch_a.clone()).unwrap();
    let grid_b = privtree_spatial::GridRoutedSynopsis::build(epoch_b.clone()).unwrap();
    let file_a = TempFile::write("epoch-a.txt", &frozen_to_text(&epoch_a));
    let file_b = TempFile::write("epoch-b.txt", &frozen_to_text(&epoch_b));
    let file_other = TempFile::write("other.txt", &frozen_to_text(&other));

    // a query strictly inside the left region is answered by that shard
    // alone, so the stream must see epoch A bits, then epoch B bits
    let q = RangeQuery::new(Rect::new(&[0.05, 0.1], &[0.4, 0.8]));
    let input = format!(
        "count {line}\n\
         add other {file_other}\n\
         swap left {file_b}\n\
         count {line}\n\
         retire other\n\
         keys\n\
         retire left\n\
         quit\n",
        line = query_line(&q),
        file_other = file_other.path(),
        file_b = file_b.path(),
    );
    let output = Command::new(BIN)
        .args(["--grids", &format!("left={}", file_a.path())])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .and_then(|mut child| {
            child
                .stdin
                .take()
                .expect("piped stdin")
                .write_all(input.as_bytes())?;
            child.wait_with_output()
        })
        .expect("run privtree-serve");
    assert!(output.status.success());
    let stdout = String::from_utf8(output.stdout).expect("utf-8");
    let mut lines = stdout.lines();
    assert_eq!(
        lines.next(),
        Some(format!("{:.17e}", grid_a.answer(&q)).as_str()),
        "pre-swap answer serves epoch A"
    );
    let add_line = lines.next().expect("add reply");
    assert!(
        add_line.starts_with("ok version=2") && add_line.contains("grids_built=1"),
        "add reply: {add_line}"
    );
    let swap_line = lines.next().expect("swap reply");
    assert!(
        swap_line.starts_with("ok version=3")
            && swap_line.contains("grids_built=1")
            && swap_line.contains("shards_reused=1"),
        "swap reply: {swap_line}"
    );
    assert_eq!(
        lines.next(),
        Some(format!("{:.17e}", grid_b.answer(&q)).as_str()),
        "post-swap answer serves epoch B"
    );
    assert!(lines
        .next()
        .expect("retire reply")
        .starts_with("ok version=4"));
    assert_eq!(lines.next(), Some("keys left"));
    let refuse = lines.next().expect("refusal");
    assert!(refuse.starts_with("err "), "last-shard retire: {refuse}");
}

#[test]
fn tcp_mode_serves_connections() {
    let frozen = sample_release(Rect::unit(2), 21, 2000);
    let release_file = TempFile::write("tcp-release.txt", &frozen_to_text(&frozen));
    let child = Command::new(BIN)
        .args([
            "--listen",
            "127.0.0.1:0",
            &format!("epoch0={}", release_file.path()),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn privtree-serve");
    let mut child = Reaper(child);
    let mut announce = String::new();
    BufReader::new(child.0.stdout.take().expect("piped stdout"))
        .read_line(&mut announce)
        .expect("read listen announcement");
    let addr = announce
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected announcement: {announce}"));

    let queries = workload(40, 22);
    for round in 0..2 {
        let stream = std::net::TcpStream::connect(addr).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
        let mut writer = stream;
        for q in &queries {
            writeln!(writer, "count {}", query_line(q)).expect("send");
            let mut reply = String::new();
            reader.read_line(&mut reply).expect("receive");
            assert_eq!(
                reply.trim(),
                format!("{:.17e}", frozen.answer(q)),
                "round {round}, query {}",
                q.rect
            );
        }
        writeln!(writer, "quit").expect("send quit");
    }
}

/// One listener, both protocols at once: text clients stream
/// `count`/`batch` lines while binary clients stream `QRYB` frames on
/// concurrent connections. Every answer — parsed text or packed `f64`
/// — must be **bit-identical** to the library path, so coalesced
/// cross-connection dispatches are invisible at the answer level.
#[test]
fn mixed_text_and_binary_clients_answer_bit_exact() {
    use privtree_engine::wire::WireClient;

    let frozen = sample_release(Rect::unit(2), 61, 2500);
    let release_file = TempFile::write("mixed-release.txt", &frozen_to_text(&frozen));
    let child = Command::new(BIN)
        .args([
            "--listen",
            "127.0.0.1:0",
            &format!("epoch0={}", release_file.path()),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn privtree-serve");
    let mut child = Reaper(child);
    let mut announce = String::new();
    BufReader::new(child.0.stdout.take().expect("piped stdout"))
        .read_line(&mut announce)
        .expect("read listen announcement");
    let addr = announce
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected announcement: {announce}"))
        .to_string();

    let frozen = std::sync::Arc::new(frozen);
    let mut workers = Vec::new();
    // two text + two binary clients, interleaved on the same reactor
    for t in 0..2u64 {
        let addr = addr.clone();
        let frozen = std::sync::Arc::clone(&frozen);
        workers.push(std::thread::spawn(move || {
            let queries = workload(60, 100 + t);
            let stream = std::net::TcpStream::connect(&addr).expect("connect text");
            let mut reader = BufReader::new(stream.try_clone().expect("clone"));
            let mut writer = stream;
            // singles, then one batch over the same workload
            for q in &queries[..20] {
                writeln!(writer, "count {}", query_line(q)).expect("send");
                let mut reply = String::new();
                reader.read_line(&mut reply).expect("receive");
                assert_eq!(reply.trim(), format!("{:.17e}", frozen.answer(q)));
            }
            writeln!(writer, "batch {}", queries.len()).expect("send batch");
            for q in &queries {
                writeln!(writer, "{}", query_line(q)).expect("send line");
            }
            for q in &queries {
                let mut reply = String::new();
                reader.read_line(&mut reply).expect("batch answer");
                assert_eq!(
                    reply.trim(),
                    format!("{:.17e}", frozen.answer(q)),
                    "text batch answer diverged"
                );
            }
            writeln!(writer, "quit").expect("quit");
        }));
    }
    for t in 0..2u64 {
        let addr = addr.clone();
        let frozen = std::sync::Arc::clone(&frozen);
        workers.push(std::thread::spawn(move || {
            let queries = workload(60, 200 + t);
            let mut client = WireClient::connect(&addr)
                .expect("connect binary")
                .with_crc(t == 0); // one client CRC'd, one bare
            assert_eq!(client.dims(), 2);
            for chunk in queries.chunks(15) {
                let answers = client.query(chunk).expect("query frame");
                for (q, a) in chunk.iter().zip(&answers) {
                    assert_eq!(
                        a.to_bits(),
                        frozen.answer(q).to_bits(),
                        "binary answer diverged for {}",
                        q.rect
                    );
                }
            }
            client.quit().expect("quit frame");
        }));
    }
    for worker in workers {
        worker.join().expect("client thread");
    }
}

/// The `stats` verb reports the reactor's per-protocol telemetry:
/// current text/binary connection counts, frames decoded and written,
/// and the coalescing counters that prove queries ride pooled
/// dispatches.
#[test]
fn stats_reports_protocol_and_coalescing_counters() {
    use privtree_engine::wire::WireClient;

    let frozen = sample_release(Rect::unit(2), 71, 1500);
    let release_file = TempFile::write("stats-release.txt", &frozen_to_text(&frozen));
    let child = Command::new(BIN)
        .args([
            "--listen",
            "127.0.0.1:0",
            &format!("epoch0={}", release_file.path()),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn privtree-serve");
    let mut child = Reaper(child);
    let mut announce = String::new();
    BufReader::new(child.0.stdout.take().expect("piped stdout"))
        .read_line(&mut announce)
        .expect("read listen announcement");
    let addr = announce
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected announcement: {announce}"));

    // a binary client answers two frames and stays connected
    let queries = workload(24, 72);
    let mut wire_client = WireClient::connect(addr).expect("connect binary");
    wire_client.query(&queries[..12]).expect("first frame");
    wire_client.query(&queries[12..]).expect("second frame");

    // a text client probes stats on its own (counted) connection
    let stream = std::net::TcpStream::connect(addr).expect("connect text");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    writeln!(writer, "stats").expect("send stats");
    let mut stats = String::new();
    reader.read_line(&mut stats).expect("stats line");

    fn field(stats: &str, key: &str) -> u64 {
        stats
            .split_whitespace()
            .find_map(|kv| kv.strip_prefix(&format!("{key}=")))
            .unwrap_or_else(|| panic!("stats missing {key}: {stats}"))
            .parse()
            .unwrap_or_else(|_| panic!("non-numeric {key}: {stats}"))
    }
    assert_eq!(field(&stats, "conns_text"), 1, "the stats probe itself");
    assert_eq!(field(&stats, "conns_wire"), 1, "the resident binary client");
    assert_eq!(
        field(&stats, "wire_frames_in"),
        2,
        "two QRYB frames decoded"
    );
    assert_eq!(
        field(&stats, "wire_frames_out"),
        3,
        "one HELO and two ANSV frames written"
    );
    assert!(
        field(&stats, "coalesced_dispatches") >= 2,
        "each query frame rode a pooled dispatch: {stats}"
    );
    assert_eq!(
        field(&stats, "coalesced_queries"),
        24,
        "every query dispatched"
    );
    assert!(field(&stats, "coalesced_spans") >= 2, "stats: {stats}");

    // closing the binary client drops its connection count
    wire_client.quit().expect("quit frame");
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        writeln!(writer, "stats").expect("send stats");
        stats.clear();
        reader.read_line(&mut stats).expect("stats line");
        if field(&stats, "conns_wire") == 0 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "wire connection never released: {stats}"
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    writeln!(writer, "quit").expect("quit");
}
