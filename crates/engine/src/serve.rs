//! The serving protocols as a library: the line protocol the
//! `privtree-serve` binary speaks and the `privtree-wire v1` binary
//! protocol (see [`crate::wire`]), embeddable in tests and benchmarks
//! (the concurrent-TCP benchmark lane drives [`spawn_tcp`] in-process).
//! One listener serves both protocols: a connection whose first byte is
//! the wire preamble's `0xB7` speaks binary frames, anything else
//! speaks the text protocol below. TCP connections are multiplexed
//! onto a fixed reactor thread (see [`crate::reactor`]) that coalesces
//! concurrently-arriving queries into single pooled batch dispatches.
//!
//! Text protocol (one command per line; one reply line per command,
//! except `batch` which replies with `n` answer lines):
//!
//! ```text
//! count <lo0,lo1,..> <hi0,hi1,..>   -> answer as %.17e
//! batch <n>                         -> reads n `<lo> <hi>` lines, then
//!                                      n answer lines (pooled batch)
//! add <key> <path>                  -> ok version=.. grids_built=.. ...
//! swap <key> <path>                 -> ok version=.. grids_built=.. ...
//! retire <key>                      -> ok version=.. ...
//! save <key>                        -> ok saved key=.. file=.. (catalog)
//! load <key>                        -> ok version=.. (add-or-swap from
//!                                      the catalog)
//! checkpoint                        -> ok checkpoint journal_seq=..
//!                                      (fold journal into the manifest)
//! keys                              -> keys <k1> <k2> ...
//! stats                             -> stats shards=.. nodes=.. ...
//! quit                              -> closes the stream
//! ```
//!
//! With a **journaled catalog** (`--journal`), every `add`/`swap`/
//! `retire` persists a catalog generation and appends a write-ahead
//! record *before* the ok line is written — an acked mutation survives
//! a crash. See `crates/engine/README.md` for the full protocol
//! reference, every `err <reason>` string, and the journal-related
//! `stats` keys.
//!
//! **Errors never kill the stream**: every failed command — malformed
//! line, unparseable query, missing file, rejected `add`/`swap`, even a
//! line that is not valid UTF-8 — answers `err <reason>` and the
//! connection keeps serving. Only a real I/O failure (or EOF / `quit`)
//! ends a session. `crates/engine/tests/serve_roundtrip.rs` pins this.
//!
//! # Limits and lifecycle guards
//!
//! A listener is only as robust as its worst-behaved peer, so every
//! connection runs under [`ServeOptions`]:
//!
//! * **Line cap** — a protocol line longer than
//!   [`ServeOptions::max_line`] bytes (default [`MAX_LINE`], 64 KiB)
//!   answers `err line too long ...` and the stream **resyncs to the
//!   next newline**; memory per connection stays bounded no matter
//!   what the peer sends.
//! * **Read deadline** — [`ServeOptions::read_timeout`] bounds the
//!   silence between bytes. A peer that connects and trickles (or
//!   stalls entirely — the slowloris pattern) is evicted when the
//!   deadline passes; it can never pin a connection slot open.
//! * **Connection cap** — at most [`ServeOptions::max_conns`]
//!   concurrent connections; an accept beyond the cap is answered
//!   `err busy (connection cap reached, retry shortly)` and closed
//!   immediately instead of queueing unboundedly.
//! * **Frame cap** — a binary-protocol frame declaring a payload
//!   longer than [`ServeOptions::max_frame`] bytes is answered with a
//!   typed `ERRF` frame and the connection closes, before a single
//!   payload byte is buffered — the line cap's contract, scaled to
//!   framed batches.
//! * **Panic isolation** — each command dispatch runs under
//!   `catch_unwind`: a panicking verb answers `err internal ...` and
//!   the connection (and every other connection) keeps serving.
//!   Shared state stays usable because every lock in the stack
//!   recovers from poisoning via `into_inner`.
//! * **Graceful drain** — [`spawn_tcp`] returns a [`ServerHandle`]
//!   whose [`ServerHandle::drain`] trips a [`ShutdownSignal`]: the
//!   reactor stops accepting (the listener closes), in-flight commands
//!   finish their replies, idle connections close at the next poll
//!   tick, and `drain` reports whether everything wound down inside
//!   the deadline.

use std::collections::BTreeMap;
use std::io::{self, BufRead, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use privtree_runtime::{failpoints, ShutdownSignal};
use privtree_spatial::query::{RangeCountSynopsis, RangeQuery};
use privtree_spatial::serialize::release_from_text;
use privtree_spatial::sharded::ShardHandle;
use privtree_spatial::Rect;
use privtree_store::catalog::looks_binary;
use privtree_store::{decode_release, encode_release, Catalog, ReleaseFormat, StoreError};

use crate::{EngineError, ReleaseStore, SwapReport};

/// Largest accepted `batch <n>`: bounds the per-batch allocation against
/// hostile or mistyped counts (1M queries ≈ 70 MB of boxes — plenty for
/// a line protocol; stream several batches for more).
pub const MAX_BATCH: usize = 1 << 20;

/// Default hard cap on one protocol line, in bytes (64 KiB). The widest
/// legitimate line is a `count`/batch query — two corners of
/// 17-significant-digit coordinates — which stays under a kilobyte even
/// at the format's maximum dimensionality, so 64 KiB is three orders of
/// magnitude of headroom. Anything longer answers
/// `err line too long ...` and the stream resyncs at the next newline.
pub const MAX_LINE: usize = 64 * 1024;

/// How often [`ServerHandle::join_then_drain`] polls for the shutdown
/// flag while parked.
const ACCEPT_TICK: Duration = Duration::from_millis(15);

/// Per-connection lifecycle limits. `Default` is the embedder profile —
/// no read deadline (a quiet REPL or test driver is not a slowloris) —
/// while the `privtree-serve` binary layers its flag defaults on top
/// (`--read-timeout 30`, `--max-conns 1024`).
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Most concurrent connections before new accepts answer
    /// `err busy` and close.
    pub max_conns: usize,
    /// Longest silence between bytes before an idle connection is
    /// evicted (`None`: never).
    pub read_timeout: Option<Duration>,
    /// Longest a reply write may sit stalled on a peer that stopped
    /// reading before the connection is evicted (`None`: never). Only
    /// that connection's buffered replies are affected — the reactor
    /// keeps serving everyone else either way.
    pub write_timeout: Option<Duration>,
    /// Hard cap on one protocol line, in bytes.
    pub max_line: usize,
    /// Hard cap on one binary-protocol frame payload, in bytes. A
    /// frame declaring more is answered with a typed `ERRF` frame and
    /// the connection closes — before any payload byte is buffered.
    pub max_frame: u32,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            max_conns: 1024,
            read_timeout: None,
            write_timeout: None,
            max_line: MAX_LINE,
            max_frame: crate::wire::MAX_FRAME,
        }
    }
}

/// Monotone per-listener protocol telemetry, surfaced by the `stats`
/// verb: how many connections each protocol currently holds, how many
/// binary frames have crossed the wire, and how the reactor is
/// coalescing concurrent queries into pooled dispatches
/// (`coalesced_spans / coalesced_dispatches` > 1 means queries from
/// different connections are riding the same batch).
#[derive(Debug, Default)]
pub struct ProtocolCounters {
    /// Text-protocol connections currently open (TCP listener only).
    pub text_conns: AtomicU64,
    /// Binary-protocol connections currently open.
    pub wire_conns: AtomicU64,
    /// Binary frames decoded off the wire (including refused ones).
    pub wire_frames_in: AtomicU64,
    /// Binary frames written to the wire (`HELO`/`ANSV`/`ERRF`).
    pub wire_frames_out: AtomicU64,
    /// Pooled batch dispatches the reactor has issued.
    pub coalesced_dispatches: AtomicU64,
    /// Queries answered through those dispatches.
    pub coalesced_queries: AtomicU64,
    /// Per-connection query jobs folded into those dispatches.
    pub coalesced_spans: AtomicU64,
}

/// Everything one serving process shares across its connections: the
/// epoch store plus, when warm-started from disk, the catalog the
/// `save`/`load` verbs operate on.
#[derive(Debug)]
pub struct ServeContext {
    /// The epoch-aware release store answering queries.
    pub store: ReleaseStore,
    /// The attached on-disk catalog, if any (`--catalog DIR`). Guarded:
    /// `save`/`load` may arrive on any connection thread.
    pub catalog: Option<Mutex<Catalog>>,
    /// Whether runtime `load` verbs open catalog releases zero-copy
    /// (memory-mapped, staged grids) instead of decoding into owned
    /// buffers. Defaults on; `--no-mmap` turns it off.
    pub mmap: bool,
    /// Catalog keys a lossy warm start quarantined (key, reason).
    /// Surfaced through `stats` so an operator can see at the protocol
    /// level that the process booted degraded.
    pub quarantined: Vec<(String, String)>,
    /// Per-protocol connection/frame/coalescing telemetry, updated by
    /// the TCP reactor and surfaced through `stats`.
    pub counters: ProtocolCounters,
    /// Whether the attached catalog journals mutations — captured at
    /// construction (the flag never flips mid-flight), so the hot
    /// `add`/`swap`/`retire` dispatch can branch without taking the
    /// catalog lock first.
    journal: bool,
}

impl ServeContext {
    /// A context without an attached catalog (`save`/`load` answer
    /// `err`).
    pub fn new(store: ReleaseStore) -> Self {
        Self {
            store,
            catalog: None,
            mmap: true,
            quarantined: Vec::new(),
            counters: ProtocolCounters::default(),
            journal: false,
        }
    }

    /// A context with an attached catalog. When the catalog journals
    /// (see `Catalog::enable_journal`), every `add`/`swap`/`retire`
    /// verb persists its mutation through the catalog **before**
    /// acking.
    pub fn with_catalog(store: ReleaseStore, catalog: Catalog) -> Self {
        let journal = catalog.journaling();
        Self {
            store,
            catalog: Some(Mutex::new(catalog)),
            mmap: true,
            quarantined: Vec::new(),
            counters: ProtocolCounters::default(),
            journal,
        }
    }

    /// Whether mutations are journaled through the attached catalog.
    pub fn journaled(&self) -> bool {
        self.journal
    }

    /// Set whether catalog `load` verbs open releases zero-copy.
    pub fn with_mmap(mut self, mmap: bool) -> Self {
        self.mmap = mmap;
        self
    }

    /// Record the keys a lossy warm start had to quarantine.
    pub fn with_quarantined(mut self, quarantined: Vec<(String, String)>) -> Self {
        self.quarantined = quarantined;
        self
    }

    /// The attached catalog, poison-recovered: a verb that panicked
    /// while holding the lock (the catalog mutates in place, so its
    /// state is whatever the last completed step left — always
    /// consistent, because every on-disk step is atomic) must not lock
    /// out every later `save`/`load`.
    fn lock_catalog(&self) -> Option<MutexGuard<'_, Catalog>> {
        self.catalog
            .as_ref()
            .map(|m| m.lock().unwrap_or_else(|e| e.into_inner()))
    }
}

/// Load a release file as a shard handle, **sniffing the format**: a
/// `privtree-bin` magic means one-pass binary decode, anything else
/// parses as the text format. Either way a shipped grid section arrives
/// prebuilt.
pub fn load_release(path: &str) -> Result<ShardHandle, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    let (arena, grid) = if looks_binary(&bytes) {
        decode_release(&bytes).map_err(|e| format!("{path}: {e}"))?
    } else {
        let text = std::str::from_utf8(&bytes)
            .map_err(|_| format!("{path}: neither privtree-bin nor UTF-8 text"))?;
        release_from_text(text).map_err(|e| format!("{path}: {e}"))?
    };
    Ok(ShardHandle::from_release(arena, grid))
}

/// Parse `<lo0,lo1,..> <hi0,hi1,..>` into a range query over `dims`
/// dimensions.
pub fn parse_query(dims: usize, lo: &str, hi: &str) -> Result<RangeQuery, String> {
    let parse_coords = |csv: &str| -> Result<Vec<f64>, String> {
        csv.split(',')
            .map(|x| {
                x.parse::<f64>()
                    .map_err(|_| format!("bad coordinate {x}"))
                    .and_then(|v| {
                        v.is_finite()
                            .then_some(v)
                            .ok_or_else(|| format!("non-finite coordinate {x}"))
                    })
            })
            .collect()
    };
    let lo = parse_coords(lo)?;
    let hi = parse_coords(hi)?;
    if lo.len() != dims || hi.len() != dims {
        return Err(format!(
            "expected {dims} coordinates per corner, got {}/{}",
            lo.len(),
            hi.len()
        ));
    }
    for k in 0..dims {
        if lo[k] > hi[k] {
            return Err(format!("lo > hi along dimension {k}"));
        }
    }
    Ok(RangeQuery::new(Rect::new(&lo, &hi)))
}

/// Render a mutation report as the protocol's `ok` reply.
pub fn report_line(r: &SwapReport) -> String {
    format!(
        "ok version={} shards={} routing_nodes_rebuilt={} grids_built={} \
         grid_cells_built={} shards_reused={}",
        r.version,
        r.shard_count,
        r.routing_nodes_rebuilt,
        r.grids_built,
        r.grid_cells_built,
        r.shards_reused
    )
}

/// What [`read_raw_line`] found on the stream.
enum RawLine {
    /// End of input before any byte of a new line.
    Eof,
    /// A complete line (stripped of `\r\n`) is in the buffer.
    Line,
    /// The line exceeded the cap; the stream is already resynced past
    /// its terminating newline (or at EOF) and the buffer is empty.
    TooLong,
}

/// Read one raw line (stripped of `\r\n`) into `buf`, refusing to
/// buffer more than `max_line` bytes. Raw bytes, not `str`: a line that
/// is not valid UTF-8 must reach the protocol loop so it can answer
/// `err` instead of poisoning the stream the way `BufRead::lines`'
/// `InvalidData` error would. An oversized line is consumed up to and
/// including its newline — so the next read starts on the next command
/// — while the buffer stays capped at `max_line` bytes.
fn read_raw_line(
    input: &mut impl BufRead,
    buf: &mut Vec<u8>,
    max_line: usize,
) -> io::Result<RawLine> {
    if let Err(failure) = failpoints::check("serve.read") {
        return Err(io::Error::other(failure.to_string()));
    }
    buf.clear();
    let mut overflowed = false;
    loop {
        let available = input.fill_buf()?;
        if available.is_empty() {
            // EOF: an unterminated final line still counts as a line
            if overflowed {
                return Ok(RawLine::TooLong);
            }
            if buf.is_empty() {
                return Ok(RawLine::Eof);
            }
            break;
        }
        match available.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                if !overflowed && buf.len() + pos > max_line {
                    overflowed = true;
                    buf.clear();
                }
                if !overflowed {
                    buf.extend_from_slice(&available[..pos]);
                }
                input.consume(pos + 1);
                if overflowed {
                    return Ok(RawLine::TooLong);
                }
                break;
            }
            None => {
                let n = available.len();
                if !overflowed && buf.len() + n > max_line {
                    overflowed = true;
                    buf.clear();
                }
                if !overflowed {
                    buf.extend_from_slice(available);
                }
                input.consume(n);
            }
        }
    }
    while matches!(buf.last(), Some(b'\r')) {
        buf.pop();
    }
    Ok(RawLine::Line)
}

/// Write one reply line and flush it to the peer.
fn reply(out: &mut dyn Write, text: &str) -> io::Result<()> {
    if let Err(failure) = failpoints::check("serve.write") {
        return Err(io::Error::other(failure.to_string()));
    }
    out.write_all(text.as_bytes())?;
    out.write_all(b"\n")?;
    out.flush()
}

/// Persist the serving release `key` into the attached catalog.
fn save_verb(ctx: &ServeContext, key: &str) -> Result<String, String> {
    let snap = ctx.store.snapshot();
    let idx = snap
        .keys()
        .iter()
        .position(|k| k == key)
        .ok_or_else(|| format!("no release named {key}"))?;
    let shard = &snap.synopsis().shards()[idx];
    let mut catalog = ctx
        .lock_catalog()
        .ok_or("no catalog attached (start with --catalog DIR)")?;
    let entry = catalog
        .save(
            key,
            shard.arena(),
            shard.grid().map(|g| g.as_ref()),
            ReleaseFormat::Binary,
        )
        .map_err(|e| e.to_string())?;
    Ok(format!(
        "ok saved key={key} file={} format={} checksum=crc32:{:08x}",
        entry.file, entry.format, entry.checksum
    ))
}

/// Load `key` from the attached catalog and add-or-swap it into the
/// store.
fn load_verb(ctx: &ServeContext, key: &str) -> Result<SwapReport, String> {
    let handle = {
        let catalog = ctx
            .lock_catalog()
            .ok_or("no catalog attached (start with --catalog DIR)")?;
        if ctx.mmap {
            catalog
                .load_mapped(key)
                .map_err(|e| e.to_string())?
                .into_handle()
        } else {
            let (arena, grid) = catalog.load(key).map_err(|e| e.to_string())?;
            ShardHandle::from_release(arena, grid)
        }
    };
    let serving = ctx.store.snapshot().keys().iter().any(|k| k == key);
    let op = if serving {
        ctx.store.swap(key, handle)
    } else {
        ctx.store.add(key, handle)
    };
    op.map_err(|e| e.to_string())
}

/// Whether the protocol loop keeps reading after a command.
enum Flow {
    Continue,
    Quit,
}

/// Best-effort description of a panic payload for the `err internal`
/// reply.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Dispatch one already-read command line. Reads further lines from
/// `input` only for `batch`. Every failure answers `err ...`; only a
/// real I/O error propagates.
fn dispatch(
    ctx: &ServeContext,
    line: &str,
    input: &mut impl BufRead,
    out: &mut dyn Write,
    qraw: &mut Vec<u8>,
    opts: &ServeOptions,
) -> io::Result<Flow> {
    let mut fields = line.split_whitespace();
    let command = fields.next().unwrap_or_default();
    match command {
        "count" => {
            let snap = ctx.store.snapshot();
            match (fields.next(), fields.next()) {
                (Some(lo), Some(hi)) => match parse_query(snap.dims(), lo, hi) {
                    Ok(q) => reply(out, &format!("{:.17e}", snap.answer(&q)))?,
                    Err(e) => reply(out, &format!("err {e}"))?,
                },
                _ => reply(out, "err count needs <lo> <hi>")?,
            }
        }
        "batch" => {
            let snap = ctx.store.snapshot();
            let n: usize = match fields.next().and_then(|v| v.parse().ok()) {
                Some(n) if n <= MAX_BATCH => n,
                Some(n) => {
                    reply(
                        out,
                        &format!("err batch of {n} exceeds the {MAX_BATCH}-query cap"),
                    )?;
                    return Ok(Flow::Continue);
                }
                None => {
                    reply(out, "err batch needs a query count")?;
                    return Ok(Flow::Continue);
                }
            };
            // always drain all n lines, even past a bad one — a batch
            // failure must reply exactly one err line and leave the
            // stream aligned on the next command
            let mut queries = Vec::with_capacity(n);
            let mut problem: Option<String> = None;
            for _ in 0..n {
                match read_raw_line(input, qraw, opts.max_line)? {
                    RawLine::Eof => {
                        problem = Some("unexpected end of input inside batch".into());
                        break;
                    }
                    RawLine::TooLong => {
                        if problem.is_none() {
                            problem = Some(format!("line too long (max {} bytes)", opts.max_line));
                        }
                        continue;
                    }
                    RawLine::Line => {}
                }
                if problem.is_some() {
                    continue;
                }
                let Ok(qline) = std::str::from_utf8(qraw) else {
                    problem = Some("batch line is not valid utf-8".into());
                    continue;
                };
                let mut parts = qline.split_whitespace();
                match (parts.next(), parts.next()) {
                    (Some(lo), Some(hi)) => match parse_query(snap.dims(), lo, hi) {
                        Ok(q) => queries.push(q),
                        Err(e) => problem = Some(e),
                    },
                    _ => problem = Some(format!("bad batch line: {qline}")),
                }
            }
            match problem {
                Some(e) => reply(out, &format!("err {e}"))?,
                None => {
                    // the pooled / Morton-batched read path; the whole
                    // reply is rendered into one buffer and written in
                    // a single call — a million answers used to be a
                    // million small writes through the BufWriter
                    let answers = snap.answer_batch(&queries);
                    let mut rendered = String::with_capacity(answers.len() * 26);
                    for a in answers {
                        use std::fmt::Write as _;
                        let _ = writeln!(rendered, "{a:.17e}");
                    }
                    out.write_all(rendered.as_bytes())?;
                    out.flush()?;
                }
            }
        }
        "quit" => return Ok(Flow::Quit),
        _ => reply(out, &control_reply(ctx, line))?,
    }
    Ok(Flow::Continue)
}

/// Execute one control verb — everything except the stream-coupled
/// `count`/`batch`/`quit` — and render its reply line. Shared by the
/// stdin protocol loop and the TCP reactor, so mutations keep the
/// identical journal-before-ack ordering on both front ends: the
/// returned `ok` line exists only after the catalog persist inside the
/// store op has completed.
pub(crate) fn control_reply(ctx: &ServeContext, line: &str) -> String {
    let mut fields = line.split_whitespace();
    let command = fields.next().unwrap_or_default();
    match command {
        "add" | "swap" => match (fields.next(), fields.next()) {
            (Some(key), Some(path)) => {
                let outcome = load_release(path).and_then(|handle| {
                    let op = if ctx.journaled() {
                        // journal-before-ack: persist the staged shard
                        // into the catalog (one generation + one
                        // write-ahead record) as the mutation's last
                        // fallible step — the handle is re-encoded
                        // after the snapshot build so a shipped grid
                        // lands in the catalog too
                        let persist = |next: &BTreeMap<String, ShardHandle>| {
                            let shard = next.get(key).expect("the op staged this key");
                            let bytes =
                                encode_release(shard.arena(), shard.grid().map(|g| g.as_ref()));
                            let mut catalog =
                                ctx.lock_catalog().expect("journaling implies a catalog");
                            catalog
                                .import(key, &bytes, ReleaseFormat::Binary)
                                .map(|_| ())
                                .map_err(EngineError::Store)
                        };
                        if command == "add" {
                            ctx.store.add_with(key, handle, persist)
                        } else {
                            ctx.store.swap_with(key, handle, persist)
                        }
                    } else if command == "add" {
                        ctx.store.add(key, handle)
                    } else {
                        ctx.store.swap(key, handle)
                    };
                    op.map_err(|e| e.to_string())
                });
                match outcome {
                    Ok(report) => report_line(&report),
                    Err(e) => format!("err {e}"),
                }
            }
            _ => format!("err {command} needs <key> <path>"),
        },
        "retire" => match fields.next() {
            Some(key) => {
                let op = if ctx.journaled() {
                    ctx.store.retire_with(key, |_| {
                        let mut catalog = ctx.lock_catalog().expect("journaling implies a catalog");
                        match catalog.remove(key) {
                            // a key the catalog never held (nothing was
                            // journaled for it) has nothing to retire
                            // durably — recovery won't resurrect it
                            Ok(()) | Err(StoreError::UnknownKey { .. }) => Ok(()),
                            Err(e) => Err(EngineError::Store(e)),
                        }
                    })
                } else {
                    ctx.store.retire(key)
                };
                match op {
                    Ok(report) => report_line(&report),
                    Err(e) => format!("err {e}"),
                }
            }
            None => "err retire needs <key>".into(),
        },
        "save" => match fields.next() {
            Some(key) => match save_verb(ctx, key) {
                Ok(ok) => ok,
                Err(e) => format!("err {e}"),
            },
            None => "err save needs <key>".into(),
        },
        "load" => match fields.next() {
            Some(key) => match load_verb(ctx, key) {
                Ok(report) => report_line(&report),
                Err(e) => format!("err {e}"),
            },
            None => "err load needs <key>".into(),
        },
        "checkpoint" => match ctx.lock_catalog() {
            None => "err no catalog attached (start with --catalog DIR)".into(),
            Some(mut catalog) => {
                if catalog.journaling() {
                    // journaled mutations already persisted every
                    // serving release; fold the journal into the
                    // manifest and rotate the segment
                    match catalog.checkpoint() {
                        Ok(seq) => format!("ok checkpoint journal_seq={seq}"),
                        Err(e) => format!("err {e}"),
                    }
                } else {
                    // no journal: a checkpoint is a full persist of the
                    // serving snapshot (the manifest rewrites per save)
                    match ctx.store.persist_catalog(&mut catalog) {
                        Ok(saved) => format!("ok checkpoint saved={saved}"),
                        Err(e) => format!("err {e}"),
                    }
                }
            }
        },
        "keys" => {
            let snap = ctx.store.snapshot();
            format!("keys {}", snap.keys().join(" "))
        }
        "stats" => {
            let snap = ctx.store.snapshot();
            let stats = ctx.store.stats();
            let shards = snap.synopsis().shards();
            let mapped_bytes: usize = shards.iter().map(|s| s.mapped_bytes()).sum();
            let storage: String = snap
                .keys()
                .iter()
                .zip(shards)
                .map(|(key, shard)| {
                    if shard.is_mapped() {
                        format!(" storage.{key}=mapped:{}", shard.mapped_bytes())
                    } else {
                        format!(" storage.{key}=owned")
                    }
                })
                .collect();
            // a degraded boot is visible at the protocol level: how
            // many catalog keys the lossy warm start quarantined, and
            // which (reasons go to the startup log — they have spaces)
            let quarantined: String = if ctx.quarantined.is_empty() {
                String::new()
            } else {
                ctx.quarantined
                    .iter()
                    .map(|(key, _)| format!(" quarantined.{key}=1"))
                    .collect()
            };
            // durability posture: whether mutations are journaled, how
            // far the journal has advanced, how much of the boot came
            // from replay, and how many older generations are retained
            let journal: String = match ctx.lock_catalog() {
                None => " journal=0".into(),
                Some(catalog) => {
                    let mut s = format!(
                        " journal={} keep={} retained={}",
                        u8::from(catalog.journaling()),
                        catalog.keep_generations(),
                        catalog.retained_total(),
                    );
                    if catalog.journaling() {
                        s.push_str(&format!(
                            " journal_seq={} checkpoint_seq={} replayed={} fsync={}",
                            catalog.journal_seq(),
                            catalog.checkpoint_seq(),
                            catalog.replayed_ops(),
                            catalog.fsync_policy().expect("journaling"),
                        ));
                    }
                    s
                }
            };
            let c = &ctx.counters;
            format!(
                "stats shards={} nodes={} dims={} version={} gridded={} \
                 publishes={} grids_built={} mapped_bytes={mapped_bytes} \
                 quarantined={} conns_text={} conns_wire={} wire_frames_in={} \
                 wire_frames_out={} coalesced_dispatches={} \
                 coalesced_queries={} coalesced_spans={}\
                 {journal}{storage}{quarantined}",
                snap.shard_count(),
                snap.node_count(),
                snap.dims(),
                snap.version(),
                ctx.store.gridded(),
                stats.publishes,
                stats.grids_built,
                ctx.quarantined.len(),
                c.text_conns.load(Ordering::Relaxed),
                c.wire_conns.load(Ordering::Relaxed),
                c.wire_frames_in.load(Ordering::Relaxed),
                c.wire_frames_out.load(Ordering::Relaxed),
                c.coalesced_dispatches.load(Ordering::Relaxed),
                c.coalesced_queries.load(Ordering::Relaxed),
                c.coalesced_spans.load(Ordering::Relaxed),
            )
        }
        other => format!("err unknown command {other}"),
    }
}

/// Run the line protocol over one input/output pair until EOF or `quit`,
/// with default options (no deadlines, [`MAX_LINE`] line cap) and no
/// shutdown signal.
pub fn serve_lines(ctx: &ServeContext, input: impl BufRead, out: impl Write) -> io::Result<()> {
    serve_lines_with(ctx, input, out, &ServeOptions::default(), None)
}

/// Run the line protocol over one input/output pair until EOF, `quit`,
/// an I/O failure, or — checked between commands — a tripped shutdown
/// signal. Oversized lines answer `err line too long ...` and resync; a
/// command that panics answers `err internal ...` and the session keeps
/// serving.
pub fn serve_lines_with(
    ctx: &ServeContext,
    mut input: impl BufRead,
    out: impl Write,
    opts: &ServeOptions,
    shutdown: Option<&ShutdownSignal>,
) -> io::Result<()> {
    // buffer the writes: replies flush at command boundaries, so a batch
    // of a million answers costs a handful of write syscalls instead of
    // one per line (stdout's LineWriter and raw TcpStreams both would)
    let mut out = io::BufWriter::new(out);
    let mut raw = Vec::new();
    let mut qraw = Vec::new();
    loop {
        if shutdown.is_some_and(|s| s.is_triggered()) {
            break;
        }
        match read_raw_line(&mut input, &mut raw, opts.max_line)? {
            RawLine::Eof => break,
            RawLine::TooLong => {
                reply(
                    &mut out,
                    &format!("err line too long (max {} bytes)", opts.max_line),
                )?;
                continue;
            }
            RawLine::Line => {}
        }
        let Ok(line) = std::str::from_utf8(&raw) else {
            reply(&mut out, "err line is not valid utf-8")?;
            continue;
        };
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        // panic isolation: a bug in one verb answers `err internal` and
        // the session keeps serving. (A panic inside `batch`'s query
        // reads could leave unread batch lines on the stream; the peer
        // sees them answered as unknown commands — still `err`, never a
        // dead stream.)
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            dispatch(ctx, line, &mut input, &mut out, &mut qraw, opts)
        }));
        match outcome {
            Ok(flow) => match flow? {
                Flow::Continue => {}
                Flow::Quit => break,
            },
            Err(payload) => reply(
                &mut out,
                &format!("err internal: {}", panic_message(payload.as_ref())),
            )?,
        }
    }
    Ok(())
}

/// A running TCP listener: its bound address (resolving an OS-assigned
/// `:0` port), the reactor thread, and the drain machinery. Embedders
/// (the TCP benchmark lane, tests) can hold the handle for the life of
/// the process; the binary parks on [`ServerHandle::join_then_drain`]
/// and drains when a termination signal lands.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    join: std::thread::JoinHandle<()>,
    shutdown: ShutdownSignal,
    active: Arc<AtomicUsize>,
    /// Tripped by a timed-out [`ServerHandle::drain`]: tells the
    /// reactor to drop every remaining connection instead of waiting
    /// for their in-flight replies.
    abort: Arc<AtomicBool>,
}

impl ServerHandle {
    /// The address the listener actually bound.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A clone of the shutdown signal driving this listener; trip it
    /// (directly, or via `install_termination_handler`) to start a
    /// drain.
    pub fn shutdown_signal(&self) -> ShutdownSignal {
        self.shutdown.clone()
    }

    /// Connections currently being served.
    pub fn active_connections(&self) -> usize {
        self.active.load(Ordering::SeqCst)
    }

    /// Block until the shutdown signal trips, then drain (see
    /// [`ServerHandle::drain`]).
    pub fn join_then_drain(self, deadline: Duration) -> bool {
        while !self.shutdown.is_triggered() {
            std::thread::sleep(ACCEPT_TICK);
        }
        self.drain(deadline)
    }

    /// Graceful shutdown: trip the signal (idempotent), stop accepting,
    /// let in-flight commands finish their replies, and wait up to
    /// `deadline` for every connection to close. Returns whether the
    /// drain completed inside the deadline (`false`: some connection
    /// was still mid-command; its socket is dropped without waiting for
    /// its reply).
    pub fn drain(self, deadline: Duration) -> bool {
        self.shutdown.trigger();
        let start = Instant::now();
        // the reactor notices the flag within one poll tick, closes the
        // listener, and winds connections down as their replies finish
        let mut completed = true;
        while self.active.load(Ordering::SeqCst) > 0 {
            if start.elapsed() >= deadline {
                completed = false;
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        if !completed {
            // past the deadline: tell the reactor to drop whatever is
            // left so the join below cannot hang on a stuck peer
            self.abort.store(true, Ordering::SeqCst);
        }
        let _ = self.join.join();
        completed
    }
}

/// Bind `addr` and serve connections on the reactor thread (sharing
/// `ctx`) with default [`ServeOptions`].
pub fn spawn_tcp(ctx: Arc<ServeContext>, addr: &str) -> Result<ServerHandle, String> {
    spawn_tcp_with(ctx, addr, ServeOptions::default(), ShutdownSignal::new())
}

/// Bind `addr` and serve connections under the given lifecycle options,
/// draining when `shutdown` trips. All connections — text and binary —
/// are multiplexed onto one reactor thread (see [`crate::reactor`])
/// that enforces [`ServeOptions::max_conns`] (excess accepts answer
/// `err busy` and close), evicts deadline violators, and coalesces
/// concurrently-arriving queries into pooled batch dispatches.
pub fn spawn_tcp_with(
    ctx: Arc<ServeContext>,
    addr: &str,
    opts: ServeOptions,
    shutdown: ShutdownSignal,
) -> Result<ServerHandle, String> {
    let listener = TcpListener::bind(addr).map_err(|e| format!("cannot listen on {addr}: {e}"))?;
    let local = listener
        .local_addr()
        .map_err(|e| format!("no local address: {e}"))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("cannot poll listener: {e}"))?;
    let active = Arc::new(AtomicUsize::new(0));
    let abort = Arc::new(AtomicBool::new(false));
    let reactor_active = Arc::clone(&active);
    let reactor_abort = Arc::clone(&abort);
    let reactor_shutdown = shutdown.clone();
    let join = std::thread::spawn(move || {
        crate::reactor::run_reactor(
            listener,
            ctx,
            opts,
            reactor_shutdown,
            reactor_active,
            reactor_abort,
        );
    });
    Ok(ServerHandle {
        addr: local,
        join,
        shutdown,
        active,
        abort,
    })
}

/// Answer `err busy` (with a retry hint — the cap is a transient
/// condition, not a protocol error) and close: load shedding at the
/// connection cap. The reply is the text line whatever protocol the
/// peer intended — shedding happens before the first byte arrives, so
/// negotiation never ran (a binary client recognizes the `err ` prefix
/// where its fixed-size preamble reply would be). Best-effort — one
/// small write, bounded by a short timeout so a hostile peer cannot
/// stall the reactor.
pub(crate) fn shed(mut stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let _ = stream.write_all(b"err busy (connection cap reached, retry shortly)\n");
}
