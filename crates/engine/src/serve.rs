//! The serving protocols as a library: the line protocol the
//! `privtree-serve` binary speaks and the `privtree-wire v1` binary
//! protocol (see [`crate::wire`]), embeddable in tests and benchmarks
//! (the concurrent-TCP benchmark lane drives [`spawn_tcp`] in-process).
//! One listener serves both protocols: a connection whose first byte is
//! the wire preamble's `0xB7` speaks binary frames, anything else
//! speaks the text protocol below. TCP connections are multiplexed
//! onto a fixed reactor thread (see [`crate::reactor`]) that coalesces
//! concurrently-arriving queries into single pooled batch dispatches.
//!
//! Text protocol (one command per line; one reply line per command,
//! except `batch` which replies with `n` answer lines):
//!
//! ```text
//! count <lo0,lo1,..> <hi0,hi1,..>   -> answer as %.17e
//! batch <n>                         -> reads n `<lo> <hi>` lines, then
//!                                      n answer lines (pooled batch)
//! add <key> <path>                  -> ok version=.. grids_built=.. ...
//! swap <key> <path>                 -> ok version=.. grids_built=.. ...
//! retire <key>                      -> ok version=.. ...
//! save <key>                        -> ok saved key=.. file=.. (catalog)
//! load <key>                        -> ok version=.. (add-or-swap from
//!                                      the catalog)
//! checkpoint                        -> ok checkpoint journal_seq=..
//!                                      (fold journal into the manifest)
//! keys                              -> keys <k1> <k2> ...
//! stats                             -> stats <key=value ...> (sorted)
//! metrics                           -> metrics <n>, then n sorted
//!                                      name{label="v"} value lines
//! slowlog                           -> slowlog <n>, then n slow-query
//!                                      lines (--slow-query-log MS)
//! quit                              -> closes the stream
//! ```
//!
//! With a **journaled catalog** (`--journal`), every `add`/`swap`/
//! `retire` persists a catalog generation and appends a write-ahead
//! record *before* the ok line is written — an acked mutation survives
//! a crash. See `crates/engine/README.md` for the full protocol
//! reference, every `err <reason>` string, and the journal-related
//! `stats` keys.
//!
//! **Errors never kill the stream**: every failed command — malformed
//! line, unparseable query, missing file, rejected `add`/`swap`, even a
//! line that is not valid UTF-8 — answers `err <reason>` and the
//! connection keeps serving. Only a real I/O failure (or EOF / `quit`)
//! ends a session. `crates/engine/tests/serve_roundtrip.rs` pins this.
//!
//! # Limits and lifecycle guards
//!
//! A listener is only as robust as its worst-behaved peer, so every
//! connection runs under [`ServeOptions`]:
//!
//! * **Line cap** — a protocol line longer than
//!   [`ServeOptions::max_line`] bytes (default [`MAX_LINE`], 64 KiB)
//!   answers `err line too long ...` and the stream **resyncs to the
//!   next newline**; memory per connection stays bounded no matter
//!   what the peer sends.
//! * **Read deadline** — [`ServeOptions::read_timeout`] bounds the
//!   silence between bytes. A peer that connects and trickles (or
//!   stalls entirely — the slowloris pattern) is evicted when the
//!   deadline passes; it can never pin a connection slot open.
//! * **Connection cap** — at most [`ServeOptions::max_conns`]
//!   concurrent connections; an accept beyond the cap is answered
//!   `err busy (connection cap reached, retry shortly)` and closed
//!   immediately instead of queueing unboundedly.
//! * **Frame cap** — a binary-protocol frame declaring a payload
//!   longer than [`ServeOptions::max_frame`] bytes is answered with a
//!   typed `ERRF` frame and the connection closes, before a single
//!   payload byte is buffered — the line cap's contract, scaled to
//!   framed batches.
//! * **Panic isolation** — each command dispatch runs under
//!   `catch_unwind`: a panicking verb answers `err internal ...` and
//!   the connection (and every other connection) keeps serving.
//!   Shared state stays usable because every lock in the stack
//!   recovers from poisoning via `into_inner`.
//! * **Graceful drain** — [`spawn_tcp`] returns a [`ServerHandle`]
//!   whose [`ServerHandle::drain`] trips a [`ShutdownSignal`]: the
//!   reactor stops accepting (the listener closes), in-flight commands
//!   finish their replies, idle connections close at the next poll
//!   tick, and `drain` reports whether everything wound down inside
//!   the deadline.

use std::collections::{BTreeMap, VecDeque};
use std::io::{self, BufRead, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use privtree_runtime::telemetry::{self, Counter, Gauge, Histogram, Registry, STAGES};
use privtree_runtime::{failpoints, ShutdownSignal};
use privtree_spatial::query::{RangeCountSynopsis, RangeQuery};
use privtree_spatial::serialize::release_from_text;
use privtree_spatial::sharded::ShardHandle;
use privtree_spatial::Rect;
use privtree_store::catalog::looks_binary;
use privtree_store::{
    decode_release, encode_release, Catalog, CatalogMetrics, ReleaseFormat, StoreError,
};

use crate::{EngineError, EngineMetrics, ReleaseStore, Snapshot, SwapReport};

/// Largest accepted `batch <n>`: bounds the per-batch allocation against
/// hostile or mistyped counts (1M queries ≈ 70 MB of boxes — plenty for
/// a line protocol; stream several batches for more).
pub const MAX_BATCH: usize = 1 << 20;

/// Default hard cap on one protocol line, in bytes (64 KiB). The widest
/// legitimate line is a `count`/batch query — two corners of
/// 17-significant-digit coordinates — which stays under a kilobyte even
/// at the format's maximum dimensionality, so 64 KiB is three orders of
/// magnitude of headroom. Anything longer answers
/// `err line too long ...` and the stream resyncs at the next newline.
pub const MAX_LINE: usize = 64 * 1024;

/// How often [`ServerHandle::join_then_drain`] polls for the shutdown
/// flag while parked.
const ACCEPT_TICK: Duration = Duration::from_millis(15);

/// Per-connection lifecycle limits. `Default` is the embedder profile —
/// no read deadline (a quiet REPL or test driver is not a slowloris) —
/// while the `privtree-serve` binary layers its flag defaults on top
/// (`--read-timeout 30`, `--max-conns 1024`).
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Most concurrent connections before new accepts answer
    /// `err busy` and close.
    pub max_conns: usize,
    /// Longest silence between bytes before an idle connection is
    /// evicted (`None`: never).
    pub read_timeout: Option<Duration>,
    /// Longest a reply write may sit stalled on a peer that stopped
    /// reading before the connection is evicted (`None`: never). Only
    /// that connection's buffered replies are affected — the reactor
    /// keeps serving everyone else either way.
    pub write_timeout: Option<Duration>,
    /// Hard cap on one protocol line, in bytes.
    pub max_line: usize,
    /// Hard cap on one binary-protocol frame payload, in bytes. A
    /// frame declaring more is answered with a typed `ERRF` frame and
    /// the connection closes — before any payload byte is buffered.
    pub max_frame: u32,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            max_conns: 1024,
            read_timeout: None,
            write_timeout: None,
            max_line: MAX_LINE,
            max_frame: crate::wire::MAX_FRAME,
        }
    }
}

/// Every metric one serving process records, registered in (and
/// rendered through) one per-context [`Registry`] — the `metrics` verb
/// is `registry.render()` plus a handful of gauges refreshed at scrape
/// time, and the `stats` verb is a sorted key=value view over the same
/// handles. Counters and gauges record unconditionally (they are one
/// atomic op); only latency clocks honor the [`telemetry::enabled`]
/// kill switch.
#[derive(Debug)]
pub struct ServeMetrics {
    /// The registry every handle below lives in. Per-context, not
    /// process-global: parallel in-process listeners (tests, embedders)
    /// must not see each other's counts.
    pub registry: Arc<Registry>,
    /// Text-protocol connections currently open (`conns{proto="text"}`).
    pub conns_text: Arc<Gauge>,
    /// Binary-protocol connections currently open (`conns{proto="wire"}`).
    pub conns_wire: Arc<Gauge>,
    /// Binary frames decoded off the wire, including refused ones
    /// (`wire_frames_total{dir="in"}`).
    pub wire_frames_in: Arc<Counter>,
    /// Binary frames written to the wire (`wire_frames_total{dir="out"}`).
    pub wire_frames_out: Arc<Counter>,
    /// Payload bytes read off sockets (`reactor_bytes_total{dir="in"}`).
    pub bytes_in: Arc<Counter>,
    /// Reply bytes written to sockets (`reactor_bytes_total{dir="out"}`).
    pub bytes_out: Arc<Counter>,
    /// Pooled batch dispatches the reactor has issued.
    pub coalesced_dispatches: Arc<Counter>,
    /// Queries answered through those dispatches.
    pub coalesced_queries: Arc<Counter>,
    /// Per-connection query jobs folded into those dispatches.
    pub coalesced_spans: Arc<Counter>,
    /// Accepts refused with `err busy` at the connection cap.
    pub conns_shed: Arc<Counter>,
    /// Connections evicted by a read or write deadline.
    pub conns_evicted: Arc<Counter>,
    /// Oversized lines discarded through their newline (the line cap's
    /// resync path).
    pub line_resyncs: Arc<Counter>,
    /// Jobs queued across every connection, sampled once per reactor
    /// tick after decode.
    pub queue_depth: Arc<Gauge>,
    /// Text-protocol query latency, decode to reply rendered, µs
    /// (`request_us{proto="text"}`).
    pub request_us_text: Arc<Histogram>,
    /// Binary-protocol query latency, µs (`request_us{proto="wire"}`).
    pub request_us_wire: Arc<Histogram>,
    /// Per-tick reactor stage wall time, µs, indexed like
    /// [`STAGES`] (`reactor_stage_us{stage=...}`).
    pub stage_us: [Arc<Histogram>; STAGES.len()],
    /// `checkpoint` verb wall time, µs.
    pub checkpoint_us: Arc<Histogram>,
    /// Queries that crossed the slow-query threshold.
    pub slow_queries: Arc<Counter>,
    /// Seconds since the context was built; refreshed at scrape time.
    pub uptime_seconds: Arc<Gauge>,
    /// Seconds since the store last published a snapshot; refreshed at
    /// scrape time.
    pub snapshot_age_seconds: Arc<Gauge>,
    /// Serving releases; refreshed at scrape time.
    pub store_shards: Arc<Gauge>,
    /// Synopsis nodes across every serving release; refreshed at
    /// scrape time.
    pub store_nodes: Arc<Gauge>,
    /// Bytes served borrowed from memory mappings; refreshed at scrape
    /// time.
    pub store_mapped_bytes: Arc<Gauge>,
    /// Snapshot version; refreshed at scrape time.
    pub store_version: Arc<Gauge>,
    /// The engine-side handles ([`ReleaseStore::attach_metrics`]):
    /// swap latency, publishes, grids built.
    pub engine: Arc<EngineMetrics>,
}

impl ServeMetrics {
    /// Register every serving metric in `registry` (names are listed in
    /// `crates/engine/README.md` under *Telemetry*).
    pub fn register(registry: Arc<Registry>) -> Self {
        let stage_us =
            STAGES.map(|s| registry.histogram("reactor_stage_us", &[("stage", s.name())]));
        Self {
            conns_text: registry.gauge("conns", &[("proto", "text")]),
            conns_wire: registry.gauge("conns", &[("proto", "wire")]),
            wire_frames_in: registry.counter("wire_frames_total", &[("dir", "in")]),
            wire_frames_out: registry.counter("wire_frames_total", &[("dir", "out")]),
            bytes_in: registry.counter("reactor_bytes_total", &[("dir", "in")]),
            bytes_out: registry.counter("reactor_bytes_total", &[("dir", "out")]),
            coalesced_dispatches: registry.counter("coalesced_dispatches_total", &[]),
            coalesced_queries: registry.counter("coalesced_queries_total", &[]),
            coalesced_spans: registry.counter("coalesced_spans_total", &[]),
            conns_shed: registry.counter("conns_shed_total", &[]),
            conns_evicted: registry.counter("conns_evicted_total", &[]),
            line_resyncs: registry.counter("line_resyncs_total", &[]),
            queue_depth: registry.gauge("reactor_queue_depth", &[]),
            request_us_text: registry.histogram("request_us", &[("proto", "text")]),
            request_us_wire: registry.histogram("request_us", &[("proto", "wire")]),
            stage_us,
            checkpoint_us: registry.histogram("checkpoint_us", &[]),
            slow_queries: registry.counter("slow_queries_total", &[]),
            uptime_seconds: registry.gauge("uptime_seconds", &[]),
            snapshot_age_seconds: registry.gauge("snapshot_age_seconds", &[]),
            store_shards: registry.gauge("store_shards", &[]),
            store_nodes: registry.gauge("store_nodes", &[]),
            store_mapped_bytes: registry.gauge("store_mapped_bytes", &[]),
            store_version: registry.gauge("store_version", &[]),
            engine: EngineMetrics::register(&registry),
            registry,
        }
    }
}

/// Slow-query entries retained (a ring: the newest
/// [`SLOWLOG_CAPACITY`] survive).
pub const SLOWLOG_CAPACITY: usize = 64;

/// One query the slow-query log caught: when it ran (seconds since the
/// context was built), which protocol carried it, how the time split
/// between waiting for its dispatch and the pooled batch itself, which
/// serving shards its box touched, and the box.
#[derive(Debug, Clone)]
pub struct SlowEntry {
    /// Seconds between context construction and the reply, ms
    /// precision.
    pub at_secs: f64,
    /// `"text"` or `"wire"`.
    pub proto: &'static str,
    /// Queries in the job (the box below is the first).
    pub queries: usize,
    /// Decode-to-reply wall time, µs.
    pub total_us: u64,
    /// Time before the pooled dispatch started, µs (queueing +
    /// coalescing).
    pub wait_us: u64,
    /// The pooled batch dispatch itself, µs.
    pub dispatch_us: u64,
    /// Serving keys whose shard box the query intersects (`-` if
    /// none).
    pub shards: String,
    /// The first query box, `lo0,lo1 hi0,hi1`.
    pub box_text: String,
}

impl SlowEntry {
    /// One `slowlog` reply line.
    fn render(&self) -> String {
        format!(
            "t=+{:.3}s proto={} queries={} total_us={} wait_us={} dispatch_us={} \
             shards={} box={}",
            self.at_secs,
            self.proto,
            self.queries,
            self.total_us,
            self.wait_us,
            self.dispatch_us,
            self.shards,
            self.box_text,
        )
    }
}

/// The slow-query ring: armed with a threshold (`--slow-query-log MS`
/// or [`ServeContext::with_slow_query_log`]), every query job whose
/// decode-to-reply time crosses it is recorded; the `slowlog` verb
/// dumps the newest [`SLOWLOG_CAPACITY`] oldest-first. Disarmed (the
/// default) it is one relaxed load per dispatch.
#[derive(Debug, Default)]
pub struct SlowLog {
    /// Threshold in µs; 0 means disarmed.
    threshold_us: AtomicU64,
    entries: Mutex<VecDeque<SlowEntry>>,
}

impl SlowLog {
    /// Threshold in µs, 0 when disarmed.
    pub fn threshold_us(&self) -> u64 {
        self.threshold_us.load(Ordering::Relaxed)
    }

    /// Arm (or re-arm) the log.
    pub fn set_threshold(&self, threshold: Duration) {
        self.threshold_us
            .store(threshold.as_micros().max(1) as u64, Ordering::Relaxed);
    }

    /// Record one slow query, evicting the oldest past capacity.
    pub fn record(&self, entry: SlowEntry) {
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        if entries.len() >= SLOWLOG_CAPACITY {
            entries.pop_front();
        }
        entries.push_back(entry);
    }

    /// Rendered entries, oldest first.
    pub fn render(&self) -> Vec<String> {
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        entries.iter().map(SlowEntry::render).collect()
    }
}

/// Everything one serving process shares across its connections: the
/// epoch store plus, when warm-started from disk, the catalog the
/// `save`/`load` verbs operate on.
#[derive(Debug)]
pub struct ServeContext {
    /// The epoch-aware release store answering queries.
    pub store: ReleaseStore,
    /// The attached on-disk catalog, if any (`--catalog DIR`). Guarded:
    /// `save`/`load` may arrive on any connection thread.
    pub catalog: Option<Mutex<Catalog>>,
    /// Whether runtime `load` verbs open catalog releases zero-copy
    /// (memory-mapped, staged grids) instead of decoding into owned
    /// buffers. Defaults on; `--no-mmap` turns it off.
    pub mmap: bool,
    /// Catalog keys a lossy warm start quarantined (key, reason).
    /// Surfaced through `stats` so an operator can see at the protocol
    /// level that the process booted degraded.
    pub quarantined: Vec<(String, String)>,
    /// Every metric this process records — protocol counters, latency
    /// histograms, reactor stage timings — in one per-context registry,
    /// surfaced by the `metrics` verb (and, as a sorted key=value view,
    /// by `stats`).
    pub metrics: ServeMetrics,
    /// The slow-query ring the `slowlog` verb dumps; disarmed unless
    /// [`ServeContext::with_slow_query_log`] armed it.
    pub slowlog: SlowLog,
    /// When the context was built (`uptime_seconds`, slowlog
    /// timestamps).
    started: Instant,
    /// Whether the attached catalog journals mutations — captured at
    /// construction (the flag never flips mid-flight), so the hot
    /// `add`/`swap`/`retire` dispatch can branch without taking the
    /// catalog lock first.
    journal: bool,
}

impl ServeContext {
    /// A context without an attached catalog (`save`/`load` answer
    /// `err`).
    pub fn new(store: ReleaseStore) -> Self {
        let metrics = ServeMetrics::register(Arc::new(Registry::new()));
        store.attach_metrics(Arc::clone(&metrics.engine));
        Self {
            store,
            catalog: None,
            mmap: true,
            quarantined: Vec::new(),
            metrics,
            slowlog: SlowLog::default(),
            started: Instant::now(),
            journal: false,
        }
    }

    /// A context with an attached catalog. When the catalog journals
    /// (see `Catalog::enable_journal`), every `add`/`swap`/`retire`
    /// verb persists its mutation through the catalog **before**
    /// acking.
    pub fn with_catalog(store: ReleaseStore, mut catalog: Catalog) -> Self {
        let journal = catalog.journaling();
        let metrics = ServeMetrics::register(Arc::new(Registry::new()));
        store.attach_metrics(Arc::clone(&metrics.engine));
        catalog.attach_metrics(CatalogMetrics::register(&metrics.registry));
        Self {
            store,
            catalog: Some(Mutex::new(catalog)),
            mmap: true,
            quarantined: Vec::new(),
            metrics,
            slowlog: SlowLog::default(),
            started: Instant::now(),
            journal,
        }
    }

    /// Whether mutations are journaled through the attached catalog.
    pub fn journaled(&self) -> bool {
        self.journal
    }

    /// Set whether catalog `load` verbs open releases zero-copy.
    pub fn with_mmap(mut self, mmap: bool) -> Self {
        self.mmap = mmap;
        self
    }

    /// Record the keys a lossy warm start had to quarantine. Each key
    /// also registers a `quarantined{key="...",reason="..."} 1` gauge
    /// so the degraded boot — and why — is visible in the `metrics`
    /// exposition (reasons are free text; label escaping keeps the
    /// line format intact).
    pub fn with_quarantined(mut self, quarantined: Vec<(String, String)>) -> Self {
        for (key, reason) in &quarantined {
            self.metrics
                .registry
                .gauge("quarantined", &[("key", key), ("reason", reason)])
                .set(1);
        }
        self.quarantined = quarantined;
        self
    }

    /// Arm the slow-query log: any query job whose decode-to-reply
    /// time reaches `threshold` is recorded (box, touched shards,
    /// wait/dispatch split) in the ring the `slowlog` verb dumps.
    pub fn with_slow_query_log(self, threshold: Duration) -> Self {
        self.slowlog.set_threshold(threshold);
        self
    }

    /// Whether query paths need the clock: telemetry is on, or the
    /// slow-query log is armed (an explicit opt-in that must keep
    /// timing even when the telemetry switch is off).
    pub(crate) fn clocked(&self) -> bool {
        telemetry::enabled() || self.slowlog.threshold_us() > 0
    }

    /// Observe one finished query job: latency into the per-protocol
    /// histogram, and — past the armed threshold — a slow-query entry
    /// with shard attribution.
    pub(crate) fn observe_request(
        &self,
        snap: &Snapshot,
        proto: &'static str,
        queries: &[RangeQuery],
        total_us: u64,
        dispatch_us: u64,
    ) {
        let hist = match proto {
            "wire" => &self.metrics.request_us_wire,
            _ => &self.metrics.request_us_text,
        };
        hist.observe(total_us);
        let threshold = self.slowlog.threshold_us();
        if threshold == 0 || total_us < threshold {
            return;
        }
        self.metrics.slow_queries.inc();
        let (shards, box_text) = match queries.first() {
            Some(q) => (shard_keys_for(snap, q), rect_text(&q.rect)),
            None => ("-".into(), "-".into()),
        };
        self.slowlog.record(SlowEntry {
            at_secs: self.started.elapsed().as_millis() as f64 / 1000.0,
            proto,
            queries: queries.len(),
            total_us,
            wait_us: total_us.saturating_sub(dispatch_us),
            dispatch_us,
            shards,
            box_text,
        });
    }

    /// The attached catalog, poison-recovered: a verb that panicked
    /// while holding the lock (the catalog mutates in place, so its
    /// state is whatever the last completed step left — always
    /// consistent, because every on-disk step is atomic) must not lock
    /// out every later `save`/`load`.
    fn lock_catalog(&self) -> Option<MutexGuard<'_, Catalog>> {
        self.catalog
            .as_ref()
            .map(|m| m.lock().unwrap_or_else(|e| e.into_inner()))
    }
}

/// Serving keys whose shard box the query intersects, comma-joined
/// (`-` when it clears every shard): the slow-query log's shard
/// attribution. Runs only for queries already past the slow threshold.
fn shard_keys_for(snap: &Snapshot, q: &RangeQuery) -> String {
    let mut hit: Vec<&str> = Vec::new();
    for (key, shard) in snap.keys().iter().zip(snap.synopsis().shards()) {
        let arena = shard.arena();
        if arena.node_count() == 0 {
            continue;
        }
        let root = Rect::new(arena.node_lo(0), arena.node_hi(0));
        if q.rect.intersects(&root) {
            hit.push(key);
        }
    }
    if hit.is_empty() {
        "-".into()
    } else {
        hit.join(",")
    }
}

/// `lo0,lo1 hi0,hi1` — the slowlog's box rendering.
fn rect_text(rect: &Rect) -> String {
    let join = |cs: &[f64]| {
        cs.iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join(",")
    };
    format!("{} {}", join(rect.lo()), join(rect.hi()))
}

/// The full Prometheus-style exposition the `metrics` verb serves on
/// both protocols: scrape-time gauges (uptime, snapshot age, store
/// shape) are refreshed, then the registry renders every metric as
/// sorted `name{label="v"} value` lines — two scrapes of identical
/// state are byte-identical.
pub fn exposition_lines(ctx: &ServeContext) -> Vec<String> {
    let m = &ctx.metrics;
    m.uptime_seconds.set(ctx.started.elapsed().as_secs());
    m.snapshot_age_seconds
        .set(ctx.store.snapshot_age().as_secs());
    let snap = ctx.store.snapshot();
    m.store_shards.set(snap.shard_count() as u64);
    m.store_nodes.set(snap.node_count() as u64);
    m.store_version.set(snap.version());
    let mapped: usize = snap
        .synopsis()
        .shards()
        .iter()
        .map(|s| s.mapped_bytes())
        .sum();
    m.store_mapped_bytes.set(mapped as u64);
    m.registry.render()
}

/// Load a release file as a shard handle, **sniffing the format**: a
/// `privtree-bin` magic means one-pass binary decode, anything else
/// parses as the text format. Either way a shipped grid section arrives
/// prebuilt.
pub fn load_release(path: &str) -> Result<ShardHandle, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    let (arena, grid) = if looks_binary(&bytes) {
        decode_release(&bytes).map_err(|e| format!("{path}: {e}"))?
    } else {
        let text = std::str::from_utf8(&bytes)
            .map_err(|_| format!("{path}: neither privtree-bin nor UTF-8 text"))?;
        release_from_text(text).map_err(|e| format!("{path}: {e}"))?
    };
    Ok(ShardHandle::from_release(arena, grid))
}

/// Parse `<lo0,lo1,..> <hi0,hi1,..>` into a range query over `dims`
/// dimensions.
pub fn parse_query(dims: usize, lo: &str, hi: &str) -> Result<RangeQuery, String> {
    let parse_coords = |csv: &str| -> Result<Vec<f64>, String> {
        csv.split(',')
            .map(|x| {
                x.parse::<f64>()
                    .map_err(|_| format!("bad coordinate {x}"))
                    .and_then(|v| {
                        v.is_finite()
                            .then_some(v)
                            .ok_or_else(|| format!("non-finite coordinate {x}"))
                    })
            })
            .collect()
    };
    let lo = parse_coords(lo)?;
    let hi = parse_coords(hi)?;
    if lo.len() != dims || hi.len() != dims {
        return Err(format!(
            "expected {dims} coordinates per corner, got {}/{}",
            lo.len(),
            hi.len()
        ));
    }
    for k in 0..dims {
        if lo[k] > hi[k] {
            return Err(format!("lo > hi along dimension {k}"));
        }
    }
    Ok(RangeQuery::new(Rect::new(&lo, &hi)))
}

/// Render a mutation report as the protocol's `ok` reply.
pub fn report_line(r: &SwapReport) -> String {
    format!(
        "ok version={} shards={} routing_nodes_rebuilt={} grids_built={} \
         grid_cells_built={} shards_reused={}",
        r.version,
        r.shard_count,
        r.routing_nodes_rebuilt,
        r.grids_built,
        r.grid_cells_built,
        r.shards_reused
    )
}

/// What [`read_raw_line`] found on the stream.
enum RawLine {
    /// End of input before any byte of a new line.
    Eof,
    /// A complete line (stripped of `\r\n`) is in the buffer.
    Line,
    /// The line exceeded the cap; the stream is already resynced past
    /// its terminating newline (or at EOF) and the buffer is empty.
    TooLong,
}

/// Read one raw line (stripped of `\r\n`) into `buf`, refusing to
/// buffer more than `max_line` bytes. Raw bytes, not `str`: a line that
/// is not valid UTF-8 must reach the protocol loop so it can answer
/// `err` instead of poisoning the stream the way `BufRead::lines`'
/// `InvalidData` error would. An oversized line is consumed up to and
/// including its newline — so the next read starts on the next command
/// — while the buffer stays capped at `max_line` bytes.
fn read_raw_line(
    input: &mut impl BufRead,
    buf: &mut Vec<u8>,
    max_line: usize,
) -> io::Result<RawLine> {
    if let Err(failure) = failpoints::check("serve.read") {
        return Err(io::Error::other(failure.to_string()));
    }
    buf.clear();
    let mut overflowed = false;
    loop {
        let available = input.fill_buf()?;
        if available.is_empty() {
            // EOF: an unterminated final line still counts as a line
            if overflowed {
                return Ok(RawLine::TooLong);
            }
            if buf.is_empty() {
                return Ok(RawLine::Eof);
            }
            break;
        }
        match available.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                if !overflowed && buf.len() + pos > max_line {
                    overflowed = true;
                    buf.clear();
                }
                if !overflowed {
                    buf.extend_from_slice(&available[..pos]);
                }
                input.consume(pos + 1);
                if overflowed {
                    return Ok(RawLine::TooLong);
                }
                break;
            }
            None => {
                let n = available.len();
                if !overflowed && buf.len() + n > max_line {
                    overflowed = true;
                    buf.clear();
                }
                if !overflowed {
                    buf.extend_from_slice(available);
                }
                input.consume(n);
            }
        }
    }
    while matches!(buf.last(), Some(b'\r')) {
        buf.pop();
    }
    Ok(RawLine::Line)
}

/// Write one reply line and flush it to the peer.
fn reply(out: &mut dyn Write, text: &str) -> io::Result<()> {
    if let Err(failure) = failpoints::check("serve.write") {
        return Err(io::Error::other(failure.to_string()));
    }
    out.write_all(text.as_bytes())?;
    out.write_all(b"\n")?;
    out.flush()
}

/// Persist the serving release `key` into the attached catalog.
fn save_verb(ctx: &ServeContext, key: &str) -> Result<String, String> {
    let snap = ctx.store.snapshot();
    let idx = snap
        .keys()
        .iter()
        .position(|k| k == key)
        .ok_or_else(|| format!("no release named {key}"))?;
    let shard = &snap.synopsis().shards()[idx];
    let mut catalog = ctx
        .lock_catalog()
        .ok_or("no catalog attached (start with --catalog DIR)")?;
    let entry = catalog
        .save(
            key,
            shard.arena(),
            shard.grid().map(|g| g.as_ref()),
            ReleaseFormat::Binary,
        )
        .map_err(|e| e.to_string())?;
    Ok(format!(
        "ok saved key={key} file={} format={} checksum=crc32:{:08x}",
        entry.file, entry.format, entry.checksum
    ))
}

/// Load `key` from the attached catalog and add-or-swap it into the
/// store.
fn load_verb(ctx: &ServeContext, key: &str) -> Result<SwapReport, String> {
    let handle = {
        let catalog = ctx
            .lock_catalog()
            .ok_or("no catalog attached (start with --catalog DIR)")?;
        if ctx.mmap {
            catalog
                .load_mapped(key)
                .map_err(|e| e.to_string())?
                .into_handle()
        } else {
            let (arena, grid) = catalog.load(key).map_err(|e| e.to_string())?;
            ShardHandle::from_release(arena, grid)
        }
    };
    let serving = ctx.store.snapshot().keys().iter().any(|k| k == key);
    let op = if serving {
        ctx.store.swap(key, handle)
    } else {
        ctx.store.add(key, handle)
    };
    op.map_err(|e| e.to_string())
}

/// Whether the protocol loop keeps reading after a command.
enum Flow {
    Continue,
    Quit,
}

/// Best-effort description of a panic payload for the `err internal`
/// reply.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Dispatch one already-read command line. Reads further lines from
/// `input` only for `batch`. Every failure answers `err ...`; only a
/// real I/O error propagates.
fn dispatch(
    ctx: &ServeContext,
    line: &str,
    input: &mut impl BufRead,
    out: &mut dyn Write,
    qraw: &mut Vec<u8>,
    opts: &ServeOptions,
) -> io::Result<Flow> {
    let mut fields = line.split_whitespace();
    let command = fields.next().unwrap_or_default();
    match command {
        "count" => {
            let snap = ctx.store.snapshot();
            match (fields.next(), fields.next()) {
                (Some(lo), Some(hi)) => match parse_query(snap.dims(), lo, hi) {
                    Ok(q) => {
                        let start = ctx.clocked().then(Instant::now);
                        let answer = snap.answer(&q);
                        if let Some(t) = start {
                            let us = t.elapsed().as_micros() as u64;
                            ctx.observe_request(&snap, "text", std::slice::from_ref(&q), us, us);
                        }
                        reply(out, &format!("{answer:.17e}"))?
                    }
                    Err(e) => reply(out, &format!("err {e}"))?,
                },
                _ => reply(out, "err count needs <lo> <hi>")?,
            }
        }
        "batch" => {
            let snap = ctx.store.snapshot();
            let n: usize = match fields.next().and_then(|v| v.parse().ok()) {
                Some(n) if n <= MAX_BATCH => n,
                Some(n) => {
                    reply(
                        out,
                        &format!("err batch of {n} exceeds the {MAX_BATCH}-query cap"),
                    )?;
                    return Ok(Flow::Continue);
                }
                None => {
                    reply(out, "err batch needs a query count")?;
                    return Ok(Flow::Continue);
                }
            };
            // always drain all n lines, even past a bad one — a batch
            // failure must reply exactly one err line and leave the
            // stream aligned on the next command
            let mut queries = Vec::with_capacity(n);
            let mut problem: Option<String> = None;
            for _ in 0..n {
                match read_raw_line(input, qraw, opts.max_line)? {
                    RawLine::Eof => {
                        problem = Some("unexpected end of input inside batch".into());
                        break;
                    }
                    RawLine::TooLong => {
                        ctx.metrics.line_resyncs.inc();
                        if problem.is_none() {
                            problem = Some(format!("line too long (max {} bytes)", opts.max_line));
                        }
                        continue;
                    }
                    RawLine::Line => {}
                }
                if problem.is_some() {
                    continue;
                }
                let Ok(qline) = std::str::from_utf8(qraw) else {
                    problem = Some("batch line is not valid utf-8".into());
                    continue;
                };
                let mut parts = qline.split_whitespace();
                match (parts.next(), parts.next()) {
                    (Some(lo), Some(hi)) => match parse_query(snap.dims(), lo, hi) {
                        Ok(q) => queries.push(q),
                        Err(e) => problem = Some(e),
                    },
                    _ => problem = Some(format!("bad batch line: {qline}")),
                }
            }
            match problem {
                Some(e) => reply(out, &format!("err {e}"))?,
                None => {
                    // the pooled / Morton-batched read path; the whole
                    // reply is rendered into one buffer and written in
                    // a single call — a million answers used to be a
                    // million small writes through the BufWriter
                    let start = ctx.clocked().then(Instant::now);
                    let answers = snap.answer_batch(&queries);
                    if let Some(t) = start {
                        let us = t.elapsed().as_micros() as u64;
                        ctx.observe_request(&snap, "text", &queries, us, us);
                    }
                    let mut rendered = String::with_capacity(answers.len() * 26);
                    for a in answers {
                        use std::fmt::Write as _;
                        let _ = writeln!(rendered, "{a:.17e}");
                    }
                    out.write_all(rendered.as_bytes())?;
                    out.flush()?;
                }
            }
        }
        "quit" => return Ok(Flow::Quit),
        _ => reply(out, &control_reply(ctx, line))?,
    }
    Ok(Flow::Continue)
}

/// Execute one control verb — everything except the stream-coupled
/// `count`/`batch`/`quit` — and render its reply line. Shared by the
/// stdin protocol loop and the TCP reactor, so mutations keep the
/// identical journal-before-ack ordering on both front ends: the
/// returned `ok` line exists only after the catalog persist inside the
/// store op has completed.
pub(crate) fn control_reply(ctx: &ServeContext, line: &str) -> String {
    let mut fields = line.split_whitespace();
    let command = fields.next().unwrap_or_default();
    match command {
        "add" | "swap" => match (fields.next(), fields.next()) {
            (Some(key), Some(path)) => {
                let outcome = load_release(path).and_then(|handle| {
                    let op = if ctx.journaled() {
                        // journal-before-ack: persist the staged shard
                        // into the catalog (one generation + one
                        // write-ahead record) as the mutation's last
                        // fallible step — the handle is re-encoded
                        // after the snapshot build so a shipped grid
                        // lands in the catalog too
                        let persist = |next: &BTreeMap<String, ShardHandle>| {
                            let shard = next.get(key).expect("the op staged this key");
                            let bytes =
                                encode_release(shard.arena(), shard.grid().map(|g| g.as_ref()));
                            let mut catalog =
                                ctx.lock_catalog().expect("journaling implies a catalog");
                            catalog
                                .import(key, &bytes, ReleaseFormat::Binary)
                                .map(|_| ())
                                .map_err(EngineError::Store)
                        };
                        if command == "add" {
                            ctx.store.add_with(key, handle, persist)
                        } else {
                            ctx.store.swap_with(key, handle, persist)
                        }
                    } else if command == "add" {
                        ctx.store.add(key, handle)
                    } else {
                        ctx.store.swap(key, handle)
                    };
                    op.map_err(|e| e.to_string())
                });
                match outcome {
                    Ok(report) => report_line(&report),
                    Err(e) => format!("err {e}"),
                }
            }
            _ => format!("err {command} needs <key> <path>"),
        },
        "retire" => match fields.next() {
            Some(key) => {
                let op = if ctx.journaled() {
                    ctx.store.retire_with(key, |_| {
                        let mut catalog = ctx.lock_catalog().expect("journaling implies a catalog");
                        match catalog.remove(key) {
                            // a key the catalog never held (nothing was
                            // journaled for it) has nothing to retire
                            // durably — recovery won't resurrect it
                            Ok(()) | Err(StoreError::UnknownKey { .. }) => Ok(()),
                            Err(e) => Err(EngineError::Store(e)),
                        }
                    })
                } else {
                    ctx.store.retire(key)
                };
                match op {
                    Ok(report) => report_line(&report),
                    Err(e) => format!("err {e}"),
                }
            }
            None => "err retire needs <key>".into(),
        },
        "save" => match fields.next() {
            Some(key) => match save_verb(ctx, key) {
                Ok(ok) => ok,
                Err(e) => format!("err {e}"),
            },
            None => "err save needs <key>".into(),
        },
        "load" => match fields.next() {
            Some(key) => match load_verb(ctx, key) {
                Ok(report) => report_line(&report),
                Err(e) => format!("err {e}"),
            },
            None => "err load needs <key>".into(),
        },
        "checkpoint" => match ctx.lock_catalog() {
            None => "err no catalog attached (start with --catalog DIR)".into(),
            Some(mut catalog) => {
                let start = telemetry::enabled().then(Instant::now);
                let outcome = if catalog.journaling() {
                    // journaled mutations already persisted every
                    // serving release; fold the journal into the
                    // manifest and rotate the segment
                    match catalog.checkpoint() {
                        Ok(seq) => format!("ok checkpoint journal_seq={seq}"),
                        Err(e) => format!("err {e}"),
                    }
                } else {
                    // no journal: a checkpoint is a full persist of the
                    // serving snapshot (the manifest rewrites per save)
                    match ctx.store.persist_catalog(&mut catalog) {
                        Ok(saved) => format!("ok checkpoint saved={saved}"),
                        Err(e) => format!("err {e}"),
                    }
                };
                if let Some(t) = start {
                    ctx.metrics
                        .checkpoint_us
                        .observe(t.elapsed().as_micros() as u64);
                }
                outcome
            }
        },
        "keys" => {
            let snap = ctx.store.snapshot();
            format!("keys {}", snap.keys().join(" "))
        }
        "stats" => {
            // a thin, deterministically sorted view over the registry
            // (plus store-shape and durability-posture reads): the
            // counters come from the same handles the reactor records
            // into, so no pre-registry key can drift or regress
            let snap = ctx.store.snapshot();
            let m = &ctx.metrics;
            let shards = snap.synopsis().shards();
            let mapped_bytes: usize = shards.iter().map(|s| s.mapped_bytes()).sum();
            let mut pairs = vec![
                format!("shards={}", snap.shard_count()),
                format!("nodes={}", snap.node_count()),
                format!("dims={}", snap.dims()),
                format!("version={}", snap.version()),
                format!("gridded={}", ctx.store.gridded()),
                format!("publishes={}", m.engine.publishes.get()),
                format!("grids_built={}", m.engine.grids_built.get()),
                format!("mapped_bytes={mapped_bytes}"),
                format!("quarantined={}", ctx.quarantined.len()),
                format!("conns_text={}", m.conns_text.get()),
                format!("conns_wire={}", m.conns_wire.get()),
                format!("wire_frames_in={}", m.wire_frames_in.get()),
                format!("wire_frames_out={}", m.wire_frames_out.get()),
                format!("coalesced_dispatches={}", m.coalesced_dispatches.get()),
                format!("coalesced_queries={}", m.coalesced_queries.get()),
                format!("coalesced_spans={}", m.coalesced_spans.get()),
            ];
            for (key, shard) in snap.keys().iter().zip(shards) {
                pairs.push(if shard.is_mapped() {
                    format!("storage.{key}=mapped:{}", shard.mapped_bytes())
                } else {
                    format!("storage.{key}=owned")
                });
            }
            // a degraded boot is visible at the protocol level: how
            // many catalog keys the lossy warm start quarantined, and
            // which (reasons go to the startup log and the `metrics`
            // exposition — they have spaces)
            for (key, _) in &ctx.quarantined {
                pairs.push(format!("quarantined.{key}=1"));
            }
            // durability posture: whether mutations are journaled, how
            // far the journal has advanced, how much of the boot came
            // from replay, and how many older generations are retained
            match ctx.lock_catalog() {
                None => pairs.push("journal=0".into()),
                Some(catalog) => {
                    pairs.push(format!("journal={}", u8::from(catalog.journaling())));
                    pairs.push(format!("keep={}", catalog.keep_generations()));
                    pairs.push(format!("retained={}", catalog.retained_total()));
                    if catalog.journaling() {
                        pairs.push(format!("journal_seq={}", catalog.journal_seq()));
                        pairs.push(format!("checkpoint_seq={}", catalog.checkpoint_seq()));
                        pairs.push(format!("replayed={}", catalog.replayed_ops()));
                        pairs.push(format!(
                            "fsync={}",
                            catalog.fsync_policy().expect("journaling")
                        ));
                    }
                }
            }
            pairs.sort();
            format!("stats {}", pairs.join(" "))
        }
        "metrics" => {
            // the full exposition rides the line protocol the way a
            // batch reply does: a `metrics <n>` header, then n
            // `name{label="v"} value` lines
            let lines = exposition_lines(ctx);
            format!("metrics {}\n{}", lines.len(), lines.join("\n"))
        }
        "slowlog" => {
            let lines = ctx.slowlog.render();
            if ctx.slowlog.threshold_us() == 0 {
                "slowlog 0 (disarmed; start with --slow-query-log MS)".into()
            } else if lines.is_empty() {
                "slowlog 0".into()
            } else {
                format!("slowlog {}\n{}", lines.len(), lines.join("\n"))
            }
        }
        other => format!("err unknown command {other}"),
    }
}

/// Run the line protocol over one input/output pair until EOF or `quit`,
/// with default options (no deadlines, [`MAX_LINE`] line cap) and no
/// shutdown signal.
pub fn serve_lines(ctx: &ServeContext, input: impl BufRead, out: impl Write) -> io::Result<()> {
    serve_lines_with(ctx, input, out, &ServeOptions::default(), None)
}

/// Run the line protocol over one input/output pair until EOF, `quit`,
/// an I/O failure, or — checked between commands — a tripped shutdown
/// signal. Oversized lines answer `err line too long ...` and resync; a
/// command that panics answers `err internal ...` and the session keeps
/// serving.
pub fn serve_lines_with(
    ctx: &ServeContext,
    mut input: impl BufRead,
    out: impl Write,
    opts: &ServeOptions,
    shutdown: Option<&ShutdownSignal>,
) -> io::Result<()> {
    // buffer the writes: replies flush at command boundaries, so a batch
    // of a million answers costs a handful of write syscalls instead of
    // one per line (stdout's LineWriter and raw TcpStreams both would)
    let mut out = io::BufWriter::new(out);
    let mut raw = Vec::new();
    let mut qraw = Vec::new();
    loop {
        if shutdown.is_some_and(|s| s.is_triggered()) {
            break;
        }
        match read_raw_line(&mut input, &mut raw, opts.max_line)? {
            RawLine::Eof => break,
            RawLine::TooLong => {
                ctx.metrics.line_resyncs.inc();
                reply(
                    &mut out,
                    &format!("err line too long (max {} bytes)", opts.max_line),
                )?;
                continue;
            }
            RawLine::Line => {}
        }
        let Ok(line) = std::str::from_utf8(&raw) else {
            reply(&mut out, "err line is not valid utf-8")?;
            continue;
        };
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        // panic isolation: a bug in one verb answers `err internal` and
        // the session keeps serving. (A panic inside `batch`'s query
        // reads could leave unread batch lines on the stream; the peer
        // sees them answered as unknown commands — still `err`, never a
        // dead stream.)
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            dispatch(ctx, line, &mut input, &mut out, &mut qraw, opts)
        }));
        match outcome {
            Ok(flow) => match flow? {
                Flow::Continue => {}
                Flow::Quit => break,
            },
            Err(payload) => reply(
                &mut out,
                &format!("err internal: {}", panic_message(payload.as_ref())),
            )?,
        }
    }
    Ok(())
}

/// A running TCP listener: its bound address (resolving an OS-assigned
/// `:0` port), the reactor thread, and the drain machinery. Embedders
/// (the TCP benchmark lane, tests) can hold the handle for the life of
/// the process; the binary parks on [`ServerHandle::join_then_drain`]
/// and drains when a termination signal lands.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    join: std::thread::JoinHandle<()>,
    shutdown: ShutdownSignal,
    active: Arc<AtomicUsize>,
    /// Tripped by a timed-out [`ServerHandle::drain`]: tells the
    /// reactor to drop every remaining connection instead of waiting
    /// for their in-flight replies.
    abort: Arc<AtomicBool>,
}

impl ServerHandle {
    /// The address the listener actually bound.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A clone of the shutdown signal driving this listener; trip it
    /// (directly, or via `install_termination_handler`) to start a
    /// drain.
    pub fn shutdown_signal(&self) -> ShutdownSignal {
        self.shutdown.clone()
    }

    /// Connections currently being served.
    pub fn active_connections(&self) -> usize {
        self.active.load(Ordering::SeqCst)
    }

    /// Block until the shutdown signal trips, then drain (see
    /// [`ServerHandle::drain`]).
    pub fn join_then_drain(self, deadline: Duration) -> bool {
        while !self.shutdown.is_triggered() {
            std::thread::sleep(ACCEPT_TICK);
        }
        self.drain(deadline)
    }

    /// Graceful shutdown: trip the signal (idempotent), stop accepting,
    /// let in-flight commands finish their replies, and wait up to
    /// `deadline` for every connection to close. Returns whether the
    /// drain completed inside the deadline (`false`: some connection
    /// was still mid-command; its socket is dropped without waiting for
    /// its reply).
    pub fn drain(self, deadline: Duration) -> bool {
        self.shutdown.trigger();
        let start = Instant::now();
        // the reactor notices the flag within one poll tick, closes the
        // listener, and winds connections down as their replies finish
        let mut completed = true;
        while self.active.load(Ordering::SeqCst) > 0 {
            if start.elapsed() >= deadline {
                completed = false;
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        if !completed {
            // past the deadline: tell the reactor to drop whatever is
            // left so the join below cannot hang on a stuck peer
            self.abort.store(true, Ordering::SeqCst);
        }
        let _ = self.join.join();
        completed
    }
}

/// Bind `addr` and serve connections on the reactor thread (sharing
/// `ctx`) with default [`ServeOptions`].
pub fn spawn_tcp(ctx: Arc<ServeContext>, addr: &str) -> Result<ServerHandle, String> {
    spawn_tcp_with(ctx, addr, ServeOptions::default(), ShutdownSignal::new())
}

/// Bind `addr` and serve connections under the given lifecycle options,
/// draining when `shutdown` trips. All connections — text and binary —
/// are multiplexed onto one reactor thread (see [`crate::reactor`])
/// that enforces [`ServeOptions::max_conns`] (excess accepts answer
/// `err busy` and close), evicts deadline violators, and coalesces
/// concurrently-arriving queries into pooled batch dispatches.
pub fn spawn_tcp_with(
    ctx: Arc<ServeContext>,
    addr: &str,
    opts: ServeOptions,
    shutdown: ShutdownSignal,
) -> Result<ServerHandle, String> {
    let listener = TcpListener::bind(addr).map_err(|e| format!("cannot listen on {addr}: {e}"))?;
    let local = listener
        .local_addr()
        .map_err(|e| format!("no local address: {e}"))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("cannot poll listener: {e}"))?;
    let active = Arc::new(AtomicUsize::new(0));
    let abort = Arc::new(AtomicBool::new(false));
    let reactor_active = Arc::clone(&active);
    let reactor_abort = Arc::clone(&abort);
    let reactor_shutdown = shutdown.clone();
    let join = std::thread::spawn(move || {
        crate::reactor::run_reactor(
            listener,
            ctx,
            opts,
            reactor_shutdown,
            reactor_active,
            reactor_abort,
        );
    });
    Ok(ServerHandle {
        addr: local,
        join,
        shutdown,
        active,
        abort,
    })
}

/// Answer `err busy` (with a retry hint — the cap is a transient
/// condition, not a protocol error) and close: load shedding at the
/// connection cap. The reply is the text line whatever protocol the
/// peer intended — shedding happens before the first byte arrives, so
/// negotiation never ran (a binary client recognizes the `err ` prefix
/// where its fixed-size preamble reply would be). Best-effort — one
/// small write, bounded by a short timeout so a hostile peer cannot
/// stall the reactor.
pub(crate) fn shed(mut stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let _ = stream.write_all(b"err busy (connection cap reached, retry shortly)\n");
}
