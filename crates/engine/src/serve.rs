//! The serving protocol as a library: the line protocol the
//! `privtree-serve` binary speaks, embeddable in tests and benchmarks
//! (the concurrent-TCP benchmark lane drives [`spawn_tcp`] in-process).
//!
//! Protocol (one command per line; one reply line per command, except
//! `batch` which replies with `n` answer lines):
//!
//! ```text
//! count <lo0,lo1,..> <hi0,hi1,..>   -> answer as %.17e
//! batch <n>                         -> reads n `<lo> <hi>` lines, then
//!                                      n answer lines (pooled batch)
//! add <key> <path>                  -> ok version=.. grids_built=.. ...
//! swap <key> <path>                 -> ok version=.. grids_built=.. ...
//! retire <key>                      -> ok version=.. ...
//! save <key>                        -> ok saved key=.. file=.. (catalog)
//! load <key>                        -> ok version=.. (add-or-swap from
//!                                      the catalog)
//! keys                              -> keys <k1> <k2> ...
//! stats                             -> stats shards=.. nodes=.. ...
//! quit                              -> closes the stream
//! ```
//!
//! **Errors never kill the stream**: every failed command — malformed
//! line, unparseable query, missing file, rejected `add`/`swap`, even a
//! line that is not valid UTF-8 — answers `err <reason>` and the
//! connection keeps serving. Only a real I/O failure (or EOF / `quit`)
//! ends a session. `crates/engine/tests/serve_roundtrip.rs` pins this.

use std::io::{self, BufRead, Write};
use std::net::{SocketAddr, TcpListener};
use std::sync::{Arc, Mutex};

use privtree_spatial::query::{RangeCountSynopsis, RangeQuery};
use privtree_spatial::serialize::release_from_text;
use privtree_spatial::sharded::ShardHandle;
use privtree_spatial::Rect;
use privtree_store::catalog::looks_binary;
use privtree_store::{decode_release, Catalog, ReleaseFormat};

use crate::{ReleaseStore, SwapReport};

/// Largest accepted `batch <n>`: bounds the per-batch allocation against
/// hostile or mistyped counts (1M queries ≈ 70 MB of boxes — plenty for
/// a line protocol; stream several batches for more).
pub const MAX_BATCH: usize = 1 << 20;

/// Everything one serving process shares across its connections: the
/// epoch store plus, when warm-started from disk, the catalog the
/// `save`/`load` verbs operate on.
#[derive(Debug)]
pub struct ServeContext {
    /// The epoch-aware release store answering queries.
    pub store: ReleaseStore,
    /// The attached on-disk catalog, if any (`--catalog DIR`). Guarded:
    /// `save`/`load` may arrive on any connection thread.
    pub catalog: Option<Mutex<Catalog>>,
    /// Whether runtime `load` verbs open catalog releases zero-copy
    /// (memory-mapped, staged grids) instead of decoding into owned
    /// buffers. Defaults on; `--no-mmap` turns it off.
    pub mmap: bool,
}

impl ServeContext {
    /// A context without an attached catalog (`save`/`load` answer
    /// `err`).
    pub fn new(store: ReleaseStore) -> Self {
        Self {
            store,
            catalog: None,
            mmap: true,
        }
    }

    /// A context with an attached catalog.
    pub fn with_catalog(store: ReleaseStore, catalog: Catalog) -> Self {
        Self {
            store,
            catalog: Some(Mutex::new(catalog)),
            mmap: true,
        }
    }

    /// Set whether catalog `load` verbs open releases zero-copy.
    pub fn with_mmap(mut self, mmap: bool) -> Self {
        self.mmap = mmap;
        self
    }
}

/// Load a release file as a shard handle, **sniffing the format**: a
/// `privtree-bin` magic means one-pass binary decode, anything else
/// parses as the text format. Either way a shipped grid section arrives
/// prebuilt.
pub fn load_release(path: &str) -> Result<ShardHandle, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    let (arena, grid) = if looks_binary(&bytes) {
        decode_release(&bytes).map_err(|e| format!("{path}: {e}"))?
    } else {
        let text = std::str::from_utf8(&bytes)
            .map_err(|_| format!("{path}: neither privtree-bin nor UTF-8 text"))?;
        release_from_text(text).map_err(|e| format!("{path}: {e}"))?
    };
    Ok(ShardHandle::from_release(arena, grid))
}

/// Parse `<lo0,lo1,..> <hi0,hi1,..>` into a range query over `dims`
/// dimensions.
pub fn parse_query(dims: usize, lo: &str, hi: &str) -> Result<RangeQuery, String> {
    let parse_coords = |csv: &str| -> Result<Vec<f64>, String> {
        csv.split(',')
            .map(|x| {
                x.parse::<f64>()
                    .map_err(|_| format!("bad coordinate {x}"))
                    .and_then(|v| {
                        v.is_finite()
                            .then_some(v)
                            .ok_or_else(|| format!("non-finite coordinate {x}"))
                    })
            })
            .collect()
    };
    let lo = parse_coords(lo)?;
    let hi = parse_coords(hi)?;
    if lo.len() != dims || hi.len() != dims {
        return Err(format!(
            "expected {dims} coordinates per corner, got {}/{}",
            lo.len(),
            hi.len()
        ));
    }
    for k in 0..dims {
        if lo[k] > hi[k] {
            return Err(format!("lo > hi along dimension {k}"));
        }
    }
    Ok(RangeQuery::new(Rect::new(&lo, &hi)))
}

/// Render a mutation report as the protocol's `ok` reply.
pub fn report_line(r: &SwapReport) -> String {
    format!(
        "ok version={} shards={} routing_nodes_rebuilt={} grids_built={} \
         grid_cells_built={} shards_reused={}",
        r.version,
        r.shard_count,
        r.routing_nodes_rebuilt,
        r.grids_built,
        r.grid_cells_built,
        r.shards_reused
    )
}

/// Read one raw line (stripped of `\r\n`) into `buf`. `Ok(false)` at
/// EOF. Raw bytes, not `str`: a line that is not valid UTF-8 must reach
/// the protocol loop so it can answer `err` instead of poisoning the
/// stream the way `BufRead::lines`' `InvalidData` error would.
fn read_raw_line(input: &mut impl BufRead, buf: &mut Vec<u8>) -> io::Result<bool> {
    buf.clear();
    if input.read_until(b'\n', buf)? == 0 {
        return Ok(false);
    }
    while matches!(buf.last(), Some(b'\n' | b'\r')) {
        buf.pop();
    }
    Ok(true)
}

/// Persist the serving release `key` into the attached catalog.
fn save_verb(ctx: &ServeContext, key: &str) -> Result<String, String> {
    let catalog = ctx
        .catalog
        .as_ref()
        .ok_or("no catalog attached (start with --catalog DIR)")?;
    let snap = ctx.store.snapshot();
    let idx = snap
        .keys()
        .iter()
        .position(|k| k == key)
        .ok_or_else(|| format!("no release named {key}"))?;
    let shard = &snap.synopsis().shards()[idx];
    let mut catalog = catalog.lock().unwrap_or_else(|e| e.into_inner());
    let entry = catalog
        .save(
            key,
            shard.arena(),
            shard.grid().map(|g| g.as_ref()),
            ReleaseFormat::Binary,
        )
        .map_err(|e| e.to_string())?;
    Ok(format!(
        "ok saved key={key} file={} format={} checksum=crc32:{:08x}",
        entry.file, entry.format, entry.checksum
    ))
}

/// Load `key` from the attached catalog and add-or-swap it into the
/// store.
fn load_verb(ctx: &ServeContext, key: &str) -> Result<SwapReport, String> {
    let catalog = ctx
        .catalog
        .as_ref()
        .ok_or("no catalog attached (start with --catalog DIR)")?;
    let handle = {
        let catalog = catalog.lock().unwrap_or_else(|e| e.into_inner());
        if ctx.mmap {
            catalog
                .load_mapped(key)
                .map_err(|e| e.to_string())?
                .into_handle()
        } else {
            let (arena, grid) = catalog.load(key).map_err(|e| e.to_string())?;
            ShardHandle::from_release(arena, grid)
        }
    };
    let serving = ctx.store.snapshot().keys().iter().any(|k| k == key);
    let op = if serving {
        ctx.store.swap(key, handle)
    } else {
        ctx.store.add(key, handle)
    };
    op.map_err(|e| e.to_string())
}

/// Run the line protocol over one input/output pair until EOF or `quit`.
pub fn serve_lines(ctx: &ServeContext, mut input: impl BufRead, out: impl Write) -> io::Result<()> {
    // buffer the writes: replies flush at command boundaries, so a batch
    // of a million answers costs a handful of write syscalls instead of
    // one per line (stdout's LineWriter and raw TcpStreams both would)
    let mut out = io::BufWriter::new(out);
    let mut raw = Vec::new();
    let mut qraw = Vec::new();
    while read_raw_line(&mut input, &mut raw)? {
        let reply = |out: &mut dyn Write, text: String| -> io::Result<()> {
            out.write_all(text.as_bytes())?;
            out.write_all(b"\n")?;
            out.flush()
        };
        let Ok(line) = std::str::from_utf8(&raw) else {
            reply(&mut out, "err line is not valid utf-8".into())?;
            continue;
        };
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut fields = line.split_whitespace();
        let command = fields.next().unwrap_or_default();
        match command {
            "count" => {
                let snap = ctx.store.snapshot();
                match (fields.next(), fields.next()) {
                    (Some(lo), Some(hi)) => match parse_query(snap.dims(), lo, hi) {
                        Ok(q) => reply(&mut out, format!("{:.17e}", snap.answer(&q)))?,
                        Err(e) => reply(&mut out, format!("err {e}"))?,
                    },
                    _ => reply(&mut out, "err count needs <lo> <hi>".into())?,
                }
            }
            "batch" => {
                let snap = ctx.store.snapshot();
                let n: usize = match fields.next().and_then(|v| v.parse().ok()) {
                    Some(n) if n <= MAX_BATCH => n,
                    Some(n) => {
                        reply(
                            &mut out,
                            format!("err batch of {n} exceeds the {MAX_BATCH}-query cap"),
                        )?;
                        continue;
                    }
                    None => {
                        reply(&mut out, "err batch needs a query count".into())?;
                        continue;
                    }
                };
                // always drain all n lines, even past a bad one — a batch
                // failure must reply exactly one err line and leave the
                // stream aligned on the next command
                let mut queries = Vec::with_capacity(n);
                let mut problem: Option<String> = None;
                for _ in 0..n {
                    if !read_raw_line(&mut input, &mut qraw)? {
                        problem = Some("unexpected end of input inside batch".into());
                        break;
                    }
                    if problem.is_some() {
                        continue;
                    }
                    let Ok(qline) = std::str::from_utf8(&qraw) else {
                        problem = Some("batch line is not valid utf-8".into());
                        continue;
                    };
                    let mut parts = qline.split_whitespace();
                    match (parts.next(), parts.next()) {
                        (Some(lo), Some(hi)) => match parse_query(snap.dims(), lo, hi) {
                            Ok(q) => queries.push(q),
                            Err(e) => problem = Some(e),
                        },
                        _ => problem = Some(format!("bad batch line: {qline}")),
                    }
                }
                match problem {
                    Some(e) => reply(&mut out, format!("err {e}"))?,
                    None => {
                        // the pooled / Morton-batched read path
                        for a in snap.answer_batch(&queries) {
                            out.write_all(format!("{a:.17e}\n").as_bytes())?;
                        }
                        out.flush()?;
                    }
                }
            }
            "add" | "swap" => match (fields.next(), fields.next()) {
                (Some(key), Some(path)) => {
                    let outcome = load_release(path).and_then(|handle| {
                        let op = if command == "add" {
                            ctx.store.add(key, handle)
                        } else {
                            ctx.store.swap(key, handle)
                        };
                        op.map_err(|e| e.to_string())
                    });
                    match outcome {
                        Ok(report) => reply(&mut out, report_line(&report))?,
                        Err(e) => reply(&mut out, format!("err {e}"))?,
                    }
                }
                _ => reply(&mut out, format!("err {command} needs <key> <path>"))?,
            },
            "retire" => match fields.next() {
                Some(key) => match ctx.store.retire(key) {
                    Ok(report) => reply(&mut out, report_line(&report))?,
                    Err(e) => reply(&mut out, format!("err {e}"))?,
                },
                None => reply(&mut out, "err retire needs <key>".into())?,
            },
            "save" => match fields.next() {
                Some(key) => match save_verb(ctx, key) {
                    Ok(ok) => reply(&mut out, ok)?,
                    Err(e) => reply(&mut out, format!("err {e}"))?,
                },
                None => reply(&mut out, "err save needs <key>".into())?,
            },
            "load" => match fields.next() {
                Some(key) => match load_verb(ctx, key) {
                    Ok(report) => reply(&mut out, report_line(&report))?,
                    Err(e) => reply(&mut out, format!("err {e}"))?,
                },
                None => reply(&mut out, "err load needs <key>".into())?,
            },
            "keys" => {
                let snap = ctx.store.snapshot();
                reply(&mut out, format!("keys {}", snap.keys().join(" ")))?;
            }
            "stats" => {
                let snap = ctx.store.snapshot();
                let stats = ctx.store.stats();
                let shards = snap.synopsis().shards();
                let mapped_bytes: usize = shards.iter().map(|s| s.mapped_bytes()).sum();
                let storage: String = snap
                    .keys()
                    .iter()
                    .zip(shards)
                    .map(|(key, shard)| {
                        if shard.is_mapped() {
                            format!(" storage.{key}=mapped:{}", shard.mapped_bytes())
                        } else {
                            format!(" storage.{key}=owned")
                        }
                    })
                    .collect();
                reply(
                    &mut out,
                    format!(
                        "stats shards={} nodes={} dims={} version={} gridded={} \
                         publishes={} grids_built={} mapped_bytes={mapped_bytes}{storage}",
                        snap.shard_count(),
                        snap.node_count(),
                        snap.dims(),
                        snap.version(),
                        ctx.store.gridded(),
                        stats.publishes,
                        stats.grids_built
                    ),
                )?;
            }
            "quit" => break,
            other => reply(&mut out, format!("err unknown command {other}"))?,
        }
    }
    Ok(())
}

/// Bind `addr` and serve connections in background threads (one per
/// connection, sharing `ctx`). Returns the bound address — which
/// resolves an OS-assigned `:0` port — plus the accept-loop handle.
/// Embedders (the TCP benchmark lane, tests) can drop the handle and
/// keep the listener running for the life of the process; the binary
/// joins it.
pub fn spawn_tcp(
    ctx: Arc<ServeContext>,
    addr: &str,
) -> Result<(SocketAddr, std::thread::JoinHandle<()>), String> {
    let listener = TcpListener::bind(addr).map_err(|e| format!("cannot listen on {addr}: {e}"))?;
    let local = listener
        .local_addr()
        .map_err(|e| format!("no local address: {e}"))?;
    let handle = std::thread::spawn(move || {
        for conn in listener.incoming() {
            match conn {
                Ok(stream) => {
                    let ctx = Arc::clone(&ctx);
                    std::thread::spawn(move || {
                        let reader = match stream.try_clone() {
                            Ok(read_half) => io::BufReader::new(read_half),
                            Err(e) => {
                                eprintln!("privtree-serve: cannot clone connection: {e}");
                                return;
                            }
                        };
                        // a dropped connection is normal client behaviour
                        let _ = serve_lines(&ctx, reader, stream);
                    });
                }
                Err(e) => eprintln!("privtree-serve: failed connection: {e}"),
            }
        }
    });
    Ok((local, handle))
}
