//! The serving protocol as a library: the line protocol the
//! `privtree-serve` binary speaks, embeddable in tests and benchmarks
//! (the concurrent-TCP benchmark lane drives [`spawn_tcp`] in-process).
//!
//! Protocol (one command per line; one reply line per command, except
//! `batch` which replies with `n` answer lines):
//!
//! ```text
//! count <lo0,lo1,..> <hi0,hi1,..>   -> answer as %.17e
//! batch <n>                         -> reads n `<lo> <hi>` lines, then
//!                                      n answer lines (pooled batch)
//! add <key> <path>                  -> ok version=.. grids_built=.. ...
//! swap <key> <path>                 -> ok version=.. grids_built=.. ...
//! retire <key>                      -> ok version=.. ...
//! save <key>                        -> ok saved key=.. file=.. (catalog)
//! load <key>                        -> ok version=.. (add-or-swap from
//!                                      the catalog)
//! checkpoint                        -> ok checkpoint journal_seq=..
//!                                      (fold journal into the manifest)
//! keys                              -> keys <k1> <k2> ...
//! stats                             -> stats shards=.. nodes=.. ...
//! quit                              -> closes the stream
//! ```
//!
//! With a **journaled catalog** (`--journal`), every `add`/`swap`/
//! `retire` persists a catalog generation and appends a write-ahead
//! record *before* the ok line is written — an acked mutation survives
//! a crash. See `crates/engine/README.md` for the full protocol
//! reference, every `err <reason>` string, and the journal-related
//! `stats` keys.
//!
//! **Errors never kill the stream**: every failed command — malformed
//! line, unparseable query, missing file, rejected `add`/`swap`, even a
//! line that is not valid UTF-8 — answers `err <reason>` and the
//! connection keeps serving. Only a real I/O failure (or EOF / `quit`)
//! ends a session. `crates/engine/tests/serve_roundtrip.rs` pins this.
//!
//! # Limits and lifecycle guards
//!
//! A listener is only as robust as its worst-behaved peer, so every
//! connection runs under [`ServeOptions`]:
//!
//! * **Line cap** — a protocol line longer than
//!   [`ServeOptions::max_line`] bytes (default [`MAX_LINE`], 64 KiB)
//!   answers `err line too long ...` and the stream **resyncs to the
//!   next newline**; memory per connection stays bounded no matter
//!   what the peer sends.
//! * **Read deadline** — [`ServeOptions::read_timeout`] bounds the
//!   silence between bytes. A peer that connects and trickles (or
//!   stalls entirely — the slowloris pattern) is evicted when the
//!   deadline passes; it can never pin a connection slot open.
//! * **Connection cap** — at most [`ServeOptions::max_conns`]
//!   concurrent connections; an accept beyond the cap is answered
//!   `err busy (connection cap reached, retry shortly)` and closed
//!   immediately instead of queueing unboundedly.
//! * **Panic isolation** — each command dispatch runs under
//!   `catch_unwind`: a panicking verb answers `err internal ...` and
//!   the connection (and every other connection) keeps serving.
//!   Shared state stays usable because every lock in the stack
//!   recovers from poisoning via `into_inner`.
//! * **Graceful drain** — [`spawn_tcp`] returns a [`ServerHandle`]
//!   whose [`ServerHandle::drain`] trips a [`ShutdownSignal`]: the
//!   accept loop stops, in-flight commands finish their replies, idle
//!   connections close at the next poll tick, and `drain` reports
//!   whether everything wound down inside the deadline.

use std::collections::BTreeMap;
use std::io::{self, BufRead, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use privtree_runtime::{failpoints, ShutdownSignal};
use privtree_spatial::query::{RangeCountSynopsis, RangeQuery};
use privtree_spatial::serialize::release_from_text;
use privtree_spatial::sharded::ShardHandle;
use privtree_spatial::Rect;
use privtree_store::catalog::looks_binary;
use privtree_store::{decode_release, encode_release, Catalog, ReleaseFormat, StoreError};

use crate::{EngineError, ReleaseStore, SwapReport};

/// Largest accepted `batch <n>`: bounds the per-batch allocation against
/// hostile or mistyped counts (1M queries ≈ 70 MB of boxes — plenty for
/// a line protocol; stream several batches for more).
pub const MAX_BATCH: usize = 1 << 20;

/// Default hard cap on one protocol line, in bytes (64 KiB). The widest
/// legitimate line is a `count`/batch query — two corners of
/// 17-significant-digit coordinates — which stays under a kilobyte even
/// at the format's maximum dimensionality, so 64 KiB is three orders of
/// magnitude of headroom. Anything longer answers
/// `err line too long ...` and the stream resyncs at the next newline.
pub const MAX_LINE: usize = 64 * 1024;

/// How often a guarded connection read wakes up to check deadlines and
/// the shutdown flag while the peer is silent.
const POLL_TICK: Duration = Duration::from_millis(100);

/// How often the accept loop polls for the shutdown flag between
/// connections.
const ACCEPT_TICK: Duration = Duration::from_millis(15);

/// Per-connection lifecycle limits. `Default` is the embedder profile —
/// no read deadline (a quiet REPL or test driver is not a slowloris) —
/// while the `privtree-serve` binary layers its flag defaults on top
/// (`--read-timeout 30`, `--max-conns 1024`).
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Most concurrent connections before new accepts answer
    /// `err busy` and close.
    pub max_conns: usize,
    /// Longest silence between bytes before an idle connection is
    /// evicted (`None`: never).
    pub read_timeout: Option<Duration>,
    /// Socket write timeout for replies (`None`: never). A peer that
    /// stops reading its replies stalls only its own connection thread
    /// until this fires.
    pub write_timeout: Option<Duration>,
    /// Hard cap on one protocol line, in bytes.
    pub max_line: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            max_conns: 1024,
            read_timeout: None,
            write_timeout: None,
            max_line: MAX_LINE,
        }
    }
}

/// Everything one serving process shares across its connections: the
/// epoch store plus, when warm-started from disk, the catalog the
/// `save`/`load` verbs operate on.
#[derive(Debug)]
pub struct ServeContext {
    /// The epoch-aware release store answering queries.
    pub store: ReleaseStore,
    /// The attached on-disk catalog, if any (`--catalog DIR`). Guarded:
    /// `save`/`load` may arrive on any connection thread.
    pub catalog: Option<Mutex<Catalog>>,
    /// Whether runtime `load` verbs open catalog releases zero-copy
    /// (memory-mapped, staged grids) instead of decoding into owned
    /// buffers. Defaults on; `--no-mmap` turns it off.
    pub mmap: bool,
    /// Catalog keys a lossy warm start quarantined (key, reason).
    /// Surfaced through `stats` so an operator can see at the protocol
    /// level that the process booted degraded.
    pub quarantined: Vec<(String, String)>,
    /// Whether the attached catalog journals mutations — captured at
    /// construction (the flag never flips mid-flight), so the hot
    /// `add`/`swap`/`retire` dispatch can branch without taking the
    /// catalog lock first.
    journal: bool,
}

impl ServeContext {
    /// A context without an attached catalog (`save`/`load` answer
    /// `err`).
    pub fn new(store: ReleaseStore) -> Self {
        Self {
            store,
            catalog: None,
            mmap: true,
            quarantined: Vec::new(),
            journal: false,
        }
    }

    /// A context with an attached catalog. When the catalog journals
    /// (see `Catalog::enable_journal`), every `add`/`swap`/`retire`
    /// verb persists its mutation through the catalog **before**
    /// acking.
    pub fn with_catalog(store: ReleaseStore, catalog: Catalog) -> Self {
        let journal = catalog.journaling();
        Self {
            store,
            catalog: Some(Mutex::new(catalog)),
            mmap: true,
            quarantined: Vec::new(),
            journal,
        }
    }

    /// Whether mutations are journaled through the attached catalog.
    pub fn journaled(&self) -> bool {
        self.journal
    }

    /// Set whether catalog `load` verbs open releases zero-copy.
    pub fn with_mmap(mut self, mmap: bool) -> Self {
        self.mmap = mmap;
        self
    }

    /// Record the keys a lossy warm start had to quarantine.
    pub fn with_quarantined(mut self, quarantined: Vec<(String, String)>) -> Self {
        self.quarantined = quarantined;
        self
    }

    /// The attached catalog, poison-recovered: a verb that panicked
    /// while holding the lock (the catalog mutates in place, so its
    /// state is whatever the last completed step left — always
    /// consistent, because every on-disk step is atomic) must not lock
    /// out every later `save`/`load`.
    fn lock_catalog(&self) -> Option<MutexGuard<'_, Catalog>> {
        self.catalog
            .as_ref()
            .map(|m| m.lock().unwrap_or_else(|e| e.into_inner()))
    }
}

/// Load a release file as a shard handle, **sniffing the format**: a
/// `privtree-bin` magic means one-pass binary decode, anything else
/// parses as the text format. Either way a shipped grid section arrives
/// prebuilt.
pub fn load_release(path: &str) -> Result<ShardHandle, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    let (arena, grid) = if looks_binary(&bytes) {
        decode_release(&bytes).map_err(|e| format!("{path}: {e}"))?
    } else {
        let text = std::str::from_utf8(&bytes)
            .map_err(|_| format!("{path}: neither privtree-bin nor UTF-8 text"))?;
        release_from_text(text).map_err(|e| format!("{path}: {e}"))?
    };
    Ok(ShardHandle::from_release(arena, grid))
}

/// Parse `<lo0,lo1,..> <hi0,hi1,..>` into a range query over `dims`
/// dimensions.
pub fn parse_query(dims: usize, lo: &str, hi: &str) -> Result<RangeQuery, String> {
    let parse_coords = |csv: &str| -> Result<Vec<f64>, String> {
        csv.split(',')
            .map(|x| {
                x.parse::<f64>()
                    .map_err(|_| format!("bad coordinate {x}"))
                    .and_then(|v| {
                        v.is_finite()
                            .then_some(v)
                            .ok_or_else(|| format!("non-finite coordinate {x}"))
                    })
            })
            .collect()
    };
    let lo = parse_coords(lo)?;
    let hi = parse_coords(hi)?;
    if lo.len() != dims || hi.len() != dims {
        return Err(format!(
            "expected {dims} coordinates per corner, got {}/{}",
            lo.len(),
            hi.len()
        ));
    }
    for k in 0..dims {
        if lo[k] > hi[k] {
            return Err(format!("lo > hi along dimension {k}"));
        }
    }
    Ok(RangeQuery::new(Rect::new(&lo, &hi)))
}

/// Render a mutation report as the protocol's `ok` reply.
pub fn report_line(r: &SwapReport) -> String {
    format!(
        "ok version={} shards={} routing_nodes_rebuilt={} grids_built={} \
         grid_cells_built={} shards_reused={}",
        r.version,
        r.shard_count,
        r.routing_nodes_rebuilt,
        r.grids_built,
        r.grid_cells_built,
        r.shards_reused
    )
}

/// What [`read_raw_line`] found on the stream.
enum RawLine {
    /// End of input before any byte of a new line.
    Eof,
    /// A complete line (stripped of `\r\n`) is in the buffer.
    Line,
    /// The line exceeded the cap; the stream is already resynced past
    /// its terminating newline (or at EOF) and the buffer is empty.
    TooLong,
}

/// Read one raw line (stripped of `\r\n`) into `buf`, refusing to
/// buffer more than `max_line` bytes. Raw bytes, not `str`: a line that
/// is not valid UTF-8 must reach the protocol loop so it can answer
/// `err` instead of poisoning the stream the way `BufRead::lines`'
/// `InvalidData` error would. An oversized line is consumed up to and
/// including its newline — so the next read starts on the next command
/// — while the buffer stays capped at `max_line` bytes.
fn read_raw_line(
    input: &mut impl BufRead,
    buf: &mut Vec<u8>,
    max_line: usize,
) -> io::Result<RawLine> {
    if let Err(failure) = failpoints::check("serve.read") {
        return Err(io::Error::other(failure.to_string()));
    }
    buf.clear();
    let mut overflowed = false;
    loop {
        let available = input.fill_buf()?;
        if available.is_empty() {
            // EOF: an unterminated final line still counts as a line
            if overflowed {
                return Ok(RawLine::TooLong);
            }
            if buf.is_empty() {
                return Ok(RawLine::Eof);
            }
            break;
        }
        match available.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                if !overflowed && buf.len() + pos > max_line {
                    overflowed = true;
                    buf.clear();
                }
                if !overflowed {
                    buf.extend_from_slice(&available[..pos]);
                }
                input.consume(pos + 1);
                if overflowed {
                    return Ok(RawLine::TooLong);
                }
                break;
            }
            None => {
                let n = available.len();
                if !overflowed && buf.len() + n > max_line {
                    overflowed = true;
                    buf.clear();
                }
                if !overflowed {
                    buf.extend_from_slice(available);
                }
                input.consume(n);
            }
        }
    }
    while matches!(buf.last(), Some(b'\r')) {
        buf.pop();
    }
    Ok(RawLine::Line)
}

/// Write one reply line and flush it to the peer.
fn reply(out: &mut dyn Write, text: &str) -> io::Result<()> {
    if let Err(failure) = failpoints::check("serve.write") {
        return Err(io::Error::other(failure.to_string()));
    }
    out.write_all(text.as_bytes())?;
    out.write_all(b"\n")?;
    out.flush()
}

/// Persist the serving release `key` into the attached catalog.
fn save_verb(ctx: &ServeContext, key: &str) -> Result<String, String> {
    let snap = ctx.store.snapshot();
    let idx = snap
        .keys()
        .iter()
        .position(|k| k == key)
        .ok_or_else(|| format!("no release named {key}"))?;
    let shard = &snap.synopsis().shards()[idx];
    let mut catalog = ctx
        .lock_catalog()
        .ok_or("no catalog attached (start with --catalog DIR)")?;
    let entry = catalog
        .save(
            key,
            shard.arena(),
            shard.grid().map(|g| g.as_ref()),
            ReleaseFormat::Binary,
        )
        .map_err(|e| e.to_string())?;
    Ok(format!(
        "ok saved key={key} file={} format={} checksum=crc32:{:08x}",
        entry.file, entry.format, entry.checksum
    ))
}

/// Load `key` from the attached catalog and add-or-swap it into the
/// store.
fn load_verb(ctx: &ServeContext, key: &str) -> Result<SwapReport, String> {
    let handle = {
        let catalog = ctx
            .lock_catalog()
            .ok_or("no catalog attached (start with --catalog DIR)")?;
        if ctx.mmap {
            catalog
                .load_mapped(key)
                .map_err(|e| e.to_string())?
                .into_handle()
        } else {
            let (arena, grid) = catalog.load(key).map_err(|e| e.to_string())?;
            ShardHandle::from_release(arena, grid)
        }
    };
    let serving = ctx.store.snapshot().keys().iter().any(|k| k == key);
    let op = if serving {
        ctx.store.swap(key, handle)
    } else {
        ctx.store.add(key, handle)
    };
    op.map_err(|e| e.to_string())
}

/// Whether the protocol loop keeps reading after a command.
enum Flow {
    Continue,
    Quit,
}

/// Best-effort description of a panic payload for the `err internal`
/// reply.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Dispatch one already-read command line. Reads further lines from
/// `input` only for `batch`. Every failure answers `err ...`; only a
/// real I/O error propagates.
fn dispatch(
    ctx: &ServeContext,
    line: &str,
    input: &mut impl BufRead,
    out: &mut dyn Write,
    qraw: &mut Vec<u8>,
    opts: &ServeOptions,
) -> io::Result<Flow> {
    let mut fields = line.split_whitespace();
    let command = fields.next().unwrap_or_default();
    match command {
        "count" => {
            let snap = ctx.store.snapshot();
            match (fields.next(), fields.next()) {
                (Some(lo), Some(hi)) => match parse_query(snap.dims(), lo, hi) {
                    Ok(q) => reply(out, &format!("{:.17e}", snap.answer(&q)))?,
                    Err(e) => reply(out, &format!("err {e}"))?,
                },
                _ => reply(out, "err count needs <lo> <hi>")?,
            }
        }
        "batch" => {
            let snap = ctx.store.snapshot();
            let n: usize = match fields.next().and_then(|v| v.parse().ok()) {
                Some(n) if n <= MAX_BATCH => n,
                Some(n) => {
                    reply(
                        out,
                        &format!("err batch of {n} exceeds the {MAX_BATCH}-query cap"),
                    )?;
                    return Ok(Flow::Continue);
                }
                None => {
                    reply(out, "err batch needs a query count")?;
                    return Ok(Flow::Continue);
                }
            };
            // always drain all n lines, even past a bad one — a batch
            // failure must reply exactly one err line and leave the
            // stream aligned on the next command
            let mut queries = Vec::with_capacity(n);
            let mut problem: Option<String> = None;
            for _ in 0..n {
                match read_raw_line(input, qraw, opts.max_line)? {
                    RawLine::Eof => {
                        problem = Some("unexpected end of input inside batch".into());
                        break;
                    }
                    RawLine::TooLong => {
                        if problem.is_none() {
                            problem = Some(format!("line too long (max {} bytes)", opts.max_line));
                        }
                        continue;
                    }
                    RawLine::Line => {}
                }
                if problem.is_some() {
                    continue;
                }
                let Ok(qline) = std::str::from_utf8(qraw) else {
                    problem = Some("batch line is not valid utf-8".into());
                    continue;
                };
                let mut parts = qline.split_whitespace();
                match (parts.next(), parts.next()) {
                    (Some(lo), Some(hi)) => match parse_query(snap.dims(), lo, hi) {
                        Ok(q) => queries.push(q),
                        Err(e) => problem = Some(e),
                    },
                    _ => problem = Some(format!("bad batch line: {qline}")),
                }
            }
            match problem {
                Some(e) => reply(out, &format!("err {e}"))?,
                None => {
                    // the pooled / Morton-batched read path
                    for a in snap.answer_batch(&queries) {
                        out.write_all(format!("{a:.17e}\n").as_bytes())?;
                    }
                    out.flush()?;
                }
            }
        }
        "add" | "swap" => match (fields.next(), fields.next()) {
            (Some(key), Some(path)) => {
                let outcome = load_release(path).and_then(|handle| {
                    let op = if ctx.journaled() {
                        // journal-before-ack: persist the staged shard
                        // into the catalog (one generation + one
                        // write-ahead record) as the mutation's last
                        // fallible step — the handle is re-encoded
                        // after the snapshot build so a shipped grid
                        // lands in the catalog too
                        let persist = |next: &BTreeMap<String, ShardHandle>| {
                            let shard = next.get(key).expect("the op staged this key");
                            let bytes =
                                encode_release(shard.arena(), shard.grid().map(|g| g.as_ref()));
                            let mut catalog =
                                ctx.lock_catalog().expect("journaling implies a catalog");
                            catalog
                                .import(key, &bytes, ReleaseFormat::Binary)
                                .map(|_| ())
                                .map_err(EngineError::Store)
                        };
                        if command == "add" {
                            ctx.store.add_with(key, handle, persist)
                        } else {
                            ctx.store.swap_with(key, handle, persist)
                        }
                    } else if command == "add" {
                        ctx.store.add(key, handle)
                    } else {
                        ctx.store.swap(key, handle)
                    };
                    op.map_err(|e| e.to_string())
                });
                match outcome {
                    Ok(report) => reply(out, &report_line(&report))?,
                    Err(e) => reply(out, &format!("err {e}"))?,
                }
            }
            _ => reply(out, &format!("err {command} needs <key> <path>"))?,
        },
        "retire" => match fields.next() {
            Some(key) => {
                let op = if ctx.journaled() {
                    ctx.store.retire_with(key, |_| {
                        let mut catalog = ctx.lock_catalog().expect("journaling implies a catalog");
                        match catalog.remove(key) {
                            // a key the catalog never held (nothing was
                            // journaled for it) has nothing to retire
                            // durably — recovery won't resurrect it
                            Ok(()) | Err(StoreError::UnknownKey { .. }) => Ok(()),
                            Err(e) => Err(EngineError::Store(e)),
                        }
                    })
                } else {
                    ctx.store.retire(key)
                };
                match op {
                    Ok(report) => reply(out, &report_line(&report))?,
                    Err(e) => reply(out, &format!("err {e}"))?,
                }
            }
            None => reply(out, "err retire needs <key>")?,
        },
        "save" => match fields.next() {
            Some(key) => match save_verb(ctx, key) {
                Ok(ok) => reply(out, &ok)?,
                Err(e) => reply(out, &format!("err {e}"))?,
            },
            None => reply(out, "err save needs <key>")?,
        },
        "load" => match fields.next() {
            Some(key) => match load_verb(ctx, key) {
                Ok(report) => reply(out, &report_line(&report))?,
                Err(e) => reply(out, &format!("err {e}"))?,
            },
            None => reply(out, "err load needs <key>")?,
        },
        "checkpoint" => match ctx.lock_catalog() {
            None => reply(out, "err no catalog attached (start with --catalog DIR)")?,
            Some(mut catalog) => {
                if catalog.journaling() {
                    // journaled mutations already persisted every
                    // serving release; fold the journal into the
                    // manifest and rotate the segment
                    match catalog.checkpoint() {
                        Ok(seq) => reply(out, &format!("ok checkpoint journal_seq={seq}"))?,
                        Err(e) => reply(out, &format!("err {e}"))?,
                    }
                } else {
                    // no journal: a checkpoint is a full persist of the
                    // serving snapshot (the manifest rewrites per save)
                    match ctx.store.persist_catalog(&mut catalog) {
                        Ok(saved) => reply(out, &format!("ok checkpoint saved={saved}"))?,
                        Err(e) => reply(out, &format!("err {e}"))?,
                    }
                }
            }
        },
        "keys" => {
            let snap = ctx.store.snapshot();
            reply(out, &format!("keys {}", snap.keys().join(" ")))?;
        }
        "stats" => {
            let snap = ctx.store.snapshot();
            let stats = ctx.store.stats();
            let shards = snap.synopsis().shards();
            let mapped_bytes: usize = shards.iter().map(|s| s.mapped_bytes()).sum();
            let storage: String = snap
                .keys()
                .iter()
                .zip(shards)
                .map(|(key, shard)| {
                    if shard.is_mapped() {
                        format!(" storage.{key}=mapped:{}", shard.mapped_bytes())
                    } else {
                        format!(" storage.{key}=owned")
                    }
                })
                .collect();
            // a degraded boot is visible at the protocol level: how
            // many catalog keys the lossy warm start quarantined, and
            // which (reasons go to the startup log — they have spaces)
            let quarantined: String = if ctx.quarantined.is_empty() {
                String::new()
            } else {
                ctx.quarantined
                    .iter()
                    .map(|(key, _)| format!(" quarantined.{key}=1"))
                    .collect()
            };
            // durability posture: whether mutations are journaled, how
            // far the journal has advanced, how much of the boot came
            // from replay, and how many older generations are retained
            let journal: String = match ctx.lock_catalog() {
                None => " journal=0".into(),
                Some(catalog) => {
                    let mut s = format!(
                        " journal={} keep={} retained={}",
                        u8::from(catalog.journaling()),
                        catalog.keep_generations(),
                        catalog.retained_total(),
                    );
                    if catalog.journaling() {
                        s.push_str(&format!(
                            " journal_seq={} checkpoint_seq={} replayed={} fsync={}",
                            catalog.journal_seq(),
                            catalog.checkpoint_seq(),
                            catalog.replayed_ops(),
                            catalog.fsync_policy().expect("journaling"),
                        ));
                    }
                    s
                }
            };
            reply(
                out,
                &format!(
                    "stats shards={} nodes={} dims={} version={} gridded={} \
                     publishes={} grids_built={} mapped_bytes={mapped_bytes} \
                     quarantined={}{journal}{storage}{quarantined}",
                    snap.shard_count(),
                    snap.node_count(),
                    snap.dims(),
                    snap.version(),
                    ctx.store.gridded(),
                    stats.publishes,
                    stats.grids_built,
                    ctx.quarantined.len(),
                ),
            )?;
        }
        "quit" => return Ok(Flow::Quit),
        other => reply(out, &format!("err unknown command {other}"))?,
    }
    Ok(Flow::Continue)
}

/// Run the line protocol over one input/output pair until EOF or `quit`,
/// with default options (no deadlines, [`MAX_LINE`] line cap) and no
/// shutdown signal.
pub fn serve_lines(ctx: &ServeContext, input: impl BufRead, out: impl Write) -> io::Result<()> {
    serve_lines_with(ctx, input, out, &ServeOptions::default(), None)
}

/// Run the line protocol over one input/output pair until EOF, `quit`,
/// an I/O failure, or — checked between commands — a tripped shutdown
/// signal. Oversized lines answer `err line too long ...` and resync; a
/// command that panics answers `err internal ...` and the session keeps
/// serving.
pub fn serve_lines_with(
    ctx: &ServeContext,
    mut input: impl BufRead,
    out: impl Write,
    opts: &ServeOptions,
    shutdown: Option<&ShutdownSignal>,
) -> io::Result<()> {
    // buffer the writes: replies flush at command boundaries, so a batch
    // of a million answers costs a handful of write syscalls instead of
    // one per line (stdout's LineWriter and raw TcpStreams both would)
    let mut out = io::BufWriter::new(out);
    let mut raw = Vec::new();
    let mut qraw = Vec::new();
    loop {
        if shutdown.is_some_and(|s| s.is_triggered()) {
            break;
        }
        match read_raw_line(&mut input, &mut raw, opts.max_line)? {
            RawLine::Eof => break,
            RawLine::TooLong => {
                reply(
                    &mut out,
                    &format!("err line too long (max {} bytes)", opts.max_line),
                )?;
                continue;
            }
            RawLine::Line => {}
        }
        let Ok(line) = std::str::from_utf8(&raw) else {
            reply(&mut out, "err line is not valid utf-8")?;
            continue;
        };
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        // panic isolation: a bug in one verb answers `err internal` and
        // the session keeps serving. (A panic inside `batch`'s query
        // reads could leave unread batch lines on the stream; the peer
        // sees them answered as unknown commands — still `err`, never a
        // dead stream.)
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            dispatch(ctx, line, &mut input, &mut out, &mut qraw, opts)
        }));
        match outcome {
            Ok(flow) => match flow? {
                Flow::Continue => {}
                Flow::Quit => break,
            },
            Err(payload) => reply(
                &mut out,
                &format!("err internal: {}", panic_message(payload.as_ref())),
            )?,
        }
    }
    Ok(())
}

/// Decrements the live-connection counter when a connection thread
/// exits — however it exits (EOF, `quit`, deadline eviction, panic).
struct ConnSlot(Arc<AtomicUsize>);

impl Drop for ConnSlot {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A connection read half that turns the socket's short read timeout
/// into a poll tick: every tick it checks the shutdown flag and the
/// idle deadline, so a silent peer can be evicted and a draining server
/// never waits on one.
struct GuardedRead {
    stream: TcpStream,
    shutdown: ShutdownSignal,
    /// Longest allowed silence between bytes (`None`: forever).
    deadline: Option<Duration>,
}

impl Read for GuardedRead {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let start = Instant::now();
        loop {
            match self.stream.read(buf) {
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    if self.shutdown.is_triggered() {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "server is draining",
                        ));
                    }
                    if let Some(deadline) = self.deadline {
                        if start.elapsed() >= deadline {
                            return Err(io::Error::new(
                                io::ErrorKind::TimedOut,
                                "read deadline exceeded",
                            ));
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                other => return other,
            }
        }
    }
}

/// A running TCP listener: its bound address (resolving an OS-assigned
/// `:0` port), the accept-loop thread, and the drain machinery.
/// Embedders (the TCP benchmark lane, tests) can hold the handle for
/// the life of the process; the binary parks on [`ServerHandle::join`]
/// and calls [`ServerHandle::drain`] when a termination signal lands.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    join: std::thread::JoinHandle<()>,
    shutdown: ShutdownSignal,
    active: Arc<AtomicUsize>,
}

impl ServerHandle {
    /// The address the listener actually bound.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A clone of the shutdown signal driving this listener; trip it
    /// (directly, or via `install_termination_handler`) to start a
    /// drain.
    pub fn shutdown_signal(&self) -> ShutdownSignal {
        self.shutdown.clone()
    }

    /// Connections currently being served.
    pub fn active_connections(&self) -> usize {
        self.active.load(Ordering::SeqCst)
    }

    /// Block until the shutdown signal trips, then drain (see
    /// [`ServerHandle::drain`]).
    pub fn join_then_drain(self, deadline: Duration) -> bool {
        while !self.shutdown.is_triggered() {
            std::thread::sleep(ACCEPT_TICK);
        }
        self.drain(deadline)
    }

    /// Graceful shutdown: trip the signal (idempotent), stop accepting,
    /// let in-flight commands finish their replies, and wait up to
    /// `deadline` for every connection to close. Returns whether the
    /// drain completed inside the deadline (`false`: some connection
    /// was still mid-command; the process may still exit — the sockets
    /// die with it).
    pub fn drain(self, deadline: Duration) -> bool {
        self.shutdown.trigger();
        let start = Instant::now();
        // the accept loop notices the flag within one poll tick
        let _ = self.join.join();
        while self.active.load(Ordering::SeqCst) > 0 {
            if start.elapsed() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        true
    }
}

/// Bind `addr` and serve connections in background threads (one per
/// connection, sharing `ctx`) with default [`ServeOptions`].
pub fn spawn_tcp(ctx: Arc<ServeContext>, addr: &str) -> Result<ServerHandle, String> {
    spawn_tcp_with(ctx, addr, ServeOptions::default(), ShutdownSignal::new())
}

/// Bind `addr` and serve connections under the given lifecycle options,
/// draining when `shutdown` trips. The accept loop enforces
/// [`ServeOptions::max_conns`] (excess accepts answer `err busy` and
/// close) and polls the shutdown flag between accepts.
pub fn spawn_tcp_with(
    ctx: Arc<ServeContext>,
    addr: &str,
    opts: ServeOptions,
    shutdown: ShutdownSignal,
) -> Result<ServerHandle, String> {
    let listener = TcpListener::bind(addr).map_err(|e| format!("cannot listen on {addr}: {e}"))?;
    let local = listener
        .local_addr()
        .map_err(|e| format!("no local address: {e}"))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("cannot poll listener: {e}"))?;
    let active = Arc::new(AtomicUsize::new(0));
    let accept_active = Arc::clone(&active);
    let accept_shutdown = shutdown.clone();
    let join = std::thread::spawn(move || {
        accept_loop(listener, ctx, opts, accept_shutdown, accept_active);
    });
    Ok(ServerHandle {
        addr: local,
        join,
        shutdown,
        active,
    })
}

fn accept_loop(
    listener: TcpListener,
    ctx: Arc<ServeContext>,
    opts: ServeOptions,
    shutdown: ShutdownSignal,
    active: Arc<AtomicUsize>,
) {
    loop {
        if shutdown.is_triggered() {
            return;
        }
        let stream = match listener.accept() {
            Ok((stream, _peer)) => stream,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                std::thread::sleep(ACCEPT_TICK);
                continue;
            }
            Err(e) => {
                eprintln!("privtree-serve: failed connection: {e}");
                continue;
            }
        };
        // claim a slot before spawning, so a burst of accepts can never
        // overshoot the cap while threads are still starting
        if active.fetch_add(1, Ordering::SeqCst) >= opts.max_conns {
            active.fetch_sub(1, Ordering::SeqCst);
            shed(stream);
            continue;
        }
        let slot = ConnSlot(Arc::clone(&active));
        let ctx = Arc::clone(&ctx);
        let opts = opts.clone();
        let shutdown = shutdown.clone();
        std::thread::spawn(move || {
            let _slot = slot; // freed on every exit path
            serve_connection(ctx, stream, opts, shutdown);
        });
    }
}

/// Answer `err busy` (with a retry hint — the cap is a transient
/// condition, not a protocol error) and close: load shedding at the
/// connection cap. Best-effort — the reply is one small write, bounded
/// by a short timeout so a hostile peer cannot stall the accept loop.
fn shed(mut stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let _ = stream.write_all(b"err busy (connection cap reached, retry shortly)\n");
}

fn serve_connection(
    ctx: Arc<ServeContext>,
    stream: TcpStream,
    opts: ServeOptions,
    shutdown: ShutdownSignal,
) {
    let read_half = match stream.try_clone() {
        Ok(half) => half,
        Err(e) => {
            eprintln!("privtree-serve: cannot clone connection: {e}");
            return;
        }
    };
    // the socket's read timeout is the guard's poll tick — short enough
    // that drains and deadline evictions land promptly
    let tick = match opts.read_timeout {
        Some(deadline) => deadline.min(POLL_TICK),
        None => POLL_TICK,
    };
    let _ = read_half.set_read_timeout(Some(tick.max(Duration::from_millis(1))));
    let _ = stream.set_write_timeout(opts.write_timeout);
    let reader = io::BufReader::new(GuardedRead {
        stream: read_half,
        shutdown: shutdown.clone(),
        deadline: opts.read_timeout,
    });
    // a dropped connection (or a deadline eviction) is normal peer
    // behaviour; the outer catch_unwind keeps a pathological panic in
    // the reply path from tearing down the whole thread with noise
    let _ = catch_unwind(AssertUnwindSafe(|| {
        let _ = serve_lines_with(&ctx, reader, stream, &opts, Some(&shutdown));
    }));
}
