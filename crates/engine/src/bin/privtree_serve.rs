//! `privtree-serve` — the PrivTree read path as a process.
//!
//! Loads one or more serialized releases — the `privtree-spatial`
//! `serialize` text format or the `privtree-store` binary format, told
//! apart by magic sniffing; a grid section, when present, ships the
//! precomputed cell grid so no rebuild happens at load time — into an
//! epoch-aware [`privtree_engine::ReleaseStore`], then answers a
//! line-protocol query workload over **stdin** (default) or a **TCP
//! socket** (`--listen ADDR`). Batches go through the pooled /
//! Morton-reordered grid-routed read path; epoch operations
//! (`add`/`swap`/`retire`) rebuild only the routing arena and the
//! touched release's grid while in-flight readers keep their snapshot.
//!
//! ```text
//! privtree-serve [--grids] [--listen ADDR] [--catalog DIR]
//!                [--mmap|--no-mmap] <key=release>...
//! ```
//!
//! With `--catalog DIR` the process **warm-starts** from an on-disk
//! release catalog (every cataloged release is served under its key,
//! alongside any `key=path` arguments) and gains the `save <key>` /
//! `load <key>` protocol verbs, which persist a serving release to the
//! catalog and add-or-swap one back from it. Catalog opens default to
//! **zero-copy**: binary releases are memory-mapped straight out of the
//! page cache, columns borrow the mapping, and shipped grids assemble
//! lazily on first use — `--no-mmap` restores owned copying decodes
//! (answers are bit-identical either way).
//!
//! The protocol itself lives in [`privtree_engine::serve`] (one command
//! per line; a failed command answers `err <reason>` and the connection
//! keeps serving). See `examples/epoch_serving.rs` for an end-to-end
//! walkthrough.

use std::io::{self, Write};
use std::sync::Arc;

use privtree_engine::serve::{load_release, serve_lines, spawn_tcp, ServeContext};
use privtree_engine::ReleaseStore;
use privtree_spatial::sharded::ShardHandle;
use privtree_store::Catalog;

const USAGE: &str = "usage: privtree-serve [--grids] [--listen ADDR] [--catalog DIR]\n\
                     [--mmap|--no-mmap] <key=release>...\n\
                     releases are privtree-synopsis v1 text files or privtree-bin v1\n\
                     binary files (sniffed; an attached grid section is loaded instead\n\
                     of rebuilt); queries arrive over stdin, or over TCP with --listen;\n\
                     --catalog warm-starts from (and enables save/load against) an\n\
                     on-disk release catalog; --mmap (the default) serves catalog\n\
                     releases zero-copy from a memory mapping, --no-mmap decodes them\n\
                     into owned buffers";

fn run() -> Result<(), String> {
    let mut grids = false;
    let mut listen: Option<String> = None;
    let mut catalog_dir: Option<String> = None;
    let mut mmap = true;
    let mut releases: Vec<(String, ShardHandle)> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--grids" => grids = true,
            "--listen" => {
                listen = Some(args.next().ok_or("--listen needs an address")?);
            }
            "--catalog" => {
                catalog_dir = Some(args.next().ok_or("--catalog needs a directory")?);
            }
            "--mmap" => mmap = true,
            "--no-mmap" => mmap = false,
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(());
            }
            spec => {
                let (key, path) = spec
                    .split_once('=')
                    .ok_or_else(|| format!("expected key=path, got {spec}\n{USAGE}"))?;
                releases.push((key.to_string(), load_release(path)?));
            }
        }
    }
    let catalog = match &catalog_dir {
        Some(dir) => {
            let catalog = Catalog::open_or_create(dir).map_err(|e| e.to_string())?;
            // cataloged releases first; explicit key=path arguments may
            // not collide (the store refuses duplicates)
            if mmap {
                for (key, loaded) in catalog.load_all_mapped().map_err(|e| e.to_string())? {
                    releases.push((key, loaded.into_handle()));
                }
            } else {
                for (key, arena, grid) in catalog.load_all().map_err(|e| e.to_string())? {
                    releases.push((key, ShardHandle::from_release(arena, grid)));
                }
            }
            Some(catalog)
        }
        None => None,
    };
    if releases.is_empty() {
        return Err(format!("no releases given\n{USAGE}"));
    }
    let store = if grids {
        ReleaseStore::open_gridded(releases)
    } else {
        ReleaseStore::open(releases)
    }
    .map_err(|e| e.to_string())?;
    let snap = store.snapshot();
    eprintln!(
        "privtree-serve: {} release(s), {} nodes, dims={}, gridded={}{}",
        snap.shard_count(),
        snap.node_count(),
        snap.dims(),
        store.gridded(),
        match &catalog_dir {
            Some(dir) => format!(", catalog={dir}"),
            None => String::new(),
        }
    );
    let ctx = match catalog {
        Some(catalog) => ServeContext::with_catalog(store, catalog),
        None => ServeContext::new(store),
    }
    .with_mmap(mmap);
    match listen {
        Some(addr) => {
            let (local, handle) = spawn_tcp(Arc::new(ctx), &addr)?;
            // announced on stdout so scripts (and the integration tests)
            // can discover an OS-assigned port
            println!("listening on {local}");
            io::stdout().flush().ok();
            handle.join().map_err(|_| "accept loop panicked".into())
        }
        None => {
            let stdin = io::stdin();
            serve_lines(&ctx, stdin.lock(), io::stdout())
                .map_err(|e| format!("stdin protocol failed: {e}"))
        }
    }
}

fn main() {
    if let Err(e) = run() {
        eprintln!("privtree-serve: {e}");
        std::process::exit(1);
    }
}
