//! `privtree-serve` — the PrivTree read path as a process.
//!
//! Loads one or more serialized releases — the `privtree-spatial`
//! `serialize` text format or the `privtree-store` binary format, told
//! apart by magic sniffing; a grid section, when present, ships the
//! precomputed cell grid so no rebuild happens at load time — into an
//! epoch-aware [`privtree_engine::ReleaseStore`], then answers a
//! line-protocol query workload over **stdin** (default) or a **TCP
//! socket** (`--listen ADDR`). Batches go through the pooled /
//! Morton-reordered grid-routed read path; epoch operations
//! (`add`/`swap`/`retire`) rebuild only the routing arena and the
//! touched release's grid while in-flight readers keep their snapshot.
//!
//! ```text
//! privtree-serve [--grids] [--listen ADDR] [--catalog DIR]
//!                [--journal] [--fsync always|never|every:N]
//!                [--keep-generations N] [--mmap|--no-mmap]
//!                [--max-conns N] [--read-timeout S]
//!                [--drain-timeout S] [--slow-query-log MS]
//!                <key=release>...
//! ```
//!
//! With `--catalog DIR` the process **warm-starts** from an on-disk
//! release catalog (every cataloged release is served under its key,
//! alongside any `key=path` arguments) and gains the `save <key>` /
//! `load <key>` protocol verbs, which persist a serving release to the
//! catalog and add-or-swap one back from it. The warm start is
//! **lossy**: a key whose file is missing, torn, or corrupt is
//! quarantined (logged at startup, reported by `stats`) and every clean
//! release serves — a degraded boot beats no boot. Catalog opens
//! default to **zero-copy**: binary releases are memory-mapped straight
//! out of the page cache, columns borrow the mapping, and shipped grids
//! assemble lazily on first use — `--no-mmap` restores owned copying
//! decodes (answers are bit-identical either way).
//!
//! With `--journal` (requires `--catalog`), every `add`/`swap`/`retire`
//! appends a write-ahead record to the catalog's journal **before** the
//! ok line is written — an acked mutation survives a crash, and the
//! next boot replays the journal on top of the manifest. `--fsync`
//! picks the append durability (`always`, the default; `every:N`;
//! `never`), `--keep-generations N` retains the newest N generations
//! per key (GC never unlinks a file a retained generation still
//! references), and the `checkpoint` verb folds the journal into the
//! manifest and rotates the segment.
//!
//! In listen mode the process runs under lifecycle guards: at most
//! `--max-conns` concurrent connections (excess accepts answer
//! `err busy`), a `--read-timeout` idle deadline evicting stalled peers
//! (0 disables it), a 64 KiB protocol line cap, and per-command panic
//! isolation. `SIGTERM`/`SIGINT` — or EOF on stdin — start a **graceful
//! drain**: stop accepting, finish in-flight replies, and exit once
//! every connection closed or `--drain-timeout` passed. (An EOF that
//! arrives instantly means stdin was never attached, e.g. `< /dev/null`
//! under a supervisor, and is ignored.)
//!
//! The protocol itself lives in [`privtree_engine::serve`] (one command
//! per line; a failed command answers `err <reason>` and the connection
//! keeps serving). See `examples/epoch_serving.rs` for an end-to-end
//! walkthrough.

use std::io::{self, Read, Write};
use std::sync::Arc;
use std::time::Duration;

use privtree_engine::serve::{
    load_release, serve_lines, spawn_tcp_with, ServeContext, ServeOptions,
};
use privtree_engine::ReleaseStore;
use privtree_runtime::{install_termination_handler, ShutdownSignal};
use privtree_spatial::sharded::ShardHandle;
use privtree_store::{Catalog, FsyncPolicy};

const USAGE: &str = "usage: privtree-serve [--grids] [--listen ADDR] [--catalog DIR]\n\
                     [--journal] [--fsync always|never|every:N] [--keep-generations N]\n\
                     [--mmap|--no-mmap] [--max-conns N] [--read-timeout SECS]\n\
                     [--drain-timeout SECS] [--slow-query-log MS] <key=release>...\n\
                     releases are privtree-synopsis v1 text files or privtree-bin v1\n\
                     binary files (sniffed; an attached grid section is loaded instead\n\
                     of rebuilt); queries arrive over stdin, or over TCP with --listen;\n\
                     --catalog warm-starts from (and enables save/load against) an\n\
                     on-disk release catalog, quarantining damaged entries instead of\n\
                     refusing to boot; --journal (requires --catalog) makes every\n\
                     add/swap/retire durable via a write-ahead journal record before\n\
                     the ack, replayed on the next boot; --fsync (default always) picks\n\
                     the journal append durability; --keep-generations (default 1)\n\
                     retains the newest N generations per key; --mmap (the default)\n\
                     serves catalog releases zero-copy from a memory mapping, --no-mmap\n\
                     decodes them into owned buffers; --max-conns (default 1024) sheds\n\
                     excess connections with `err busy`; --read-timeout (default 30,\n\
                     0=off) evicts peers idle that long; SIGTERM/SIGINT or stdin EOF\n\
                     drain gracefully, waiting up to --drain-timeout (default 5) for\n\
                     in-flight replies; --slow-query-log records queries slower than MS\n\
                     milliseconds in a ring the `slowlog` verb dumps (the `metrics` verb\n\
                     serves the full telemetry exposition either way)";

fn parse_secs(flag: &str, value: Option<String>) -> Result<u64, String> {
    value
        .ok_or_else(|| format!("{flag} needs a number of seconds"))?
        .parse()
        .map_err(|_| format!("{flag} needs a number of seconds"))
}

fn run() -> Result<(), String> {
    let mut grids = false;
    let mut listen: Option<String> = None;
    let mut catalog_dir: Option<String> = None;
    let mut journal = false;
    let mut fsync = FsyncPolicy::Always;
    let mut keep_generations: usize = 1;
    let mut mmap = true;
    let mut max_conns: usize = 1024;
    let mut read_timeout_secs: u64 = 30;
    let mut drain_timeout_secs: u64 = 5;
    let mut slow_query_log_ms: Option<u64> = None;
    let mut releases: Vec<(String, ShardHandle)> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--grids" => grids = true,
            "--listen" => {
                listen = Some(args.next().ok_or("--listen needs an address")?);
            }
            "--catalog" => {
                catalog_dir = Some(args.next().ok_or("--catalog needs a directory")?);
            }
            "--journal" => journal = true,
            "--fsync" => {
                let spelling = args.next().ok_or("--fsync needs always|never|every:N")?;
                fsync = FsyncPolicy::parse(&spelling).ok_or_else(|| {
                    format!("--fsync: bad policy {spelling} (always|never|every:N)")
                })?;
            }
            "--keep-generations" => {
                keep_generations = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .ok_or("--keep-generations needs a positive count")?;
            }
            "--mmap" => mmap = true,
            "--no-mmap" => mmap = false,
            "--max-conns" => {
                max_conns = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .ok_or("--max-conns needs a positive count")?;
            }
            "--read-timeout" => {
                read_timeout_secs = parse_secs("--read-timeout", args.next())?;
            }
            "--drain-timeout" => {
                drain_timeout_secs = parse_secs("--drain-timeout", args.next())?;
            }
            "--slow-query-log" => {
                slow_query_log_ms = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n| n >= 1)
                        .ok_or("--slow-query-log needs a positive number of milliseconds")?,
                );
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(());
            }
            spec => {
                let (key, path) = spec
                    .split_once('=')
                    .ok_or_else(|| format!("expected key=path, got {spec}\n{USAGE}"))?;
                releases.push((key.to_string(), load_release(path)?));
            }
        }
    }
    if catalog_dir.is_none() {
        if journal {
            return Err(format!("--journal requires --catalog\n{USAGE}"));
        }
        if keep_generations != 1 {
            return Err(format!("--keep-generations requires --catalog\n{USAGE}"));
        }
    }
    let mut quarantined = Vec::new();
    let catalog = match &catalog_dir {
        Some(dir) => {
            // open replays any journal the manifest references; the
            // sweep runs after replay so journal-only generations are
            // never mistaken for orphans
            let mut catalog = Catalog::open_or_create(dir).map_err(|e| e.to_string())?;
            let sweep = catalog.recovery_sweep();
            if !sweep.is_clean() {
                eprintln!(
                    "privtree-serve: catalog recovery swept {} stale tmp file(s), \
                     {} orphan file(s), {} orphan journal segment(s)",
                    sweep.tmp_files, sweep.orphan_files, sweep.journal_files
                );
            }
            if catalog.replayed_ops() > 0 {
                eprintln!(
                    "privtree-serve: replayed {} journaled op(s) on top of the manifest \
                     (journal_seq={})",
                    catalog.replayed_ops(),
                    catalog.journal_seq()
                );
            }
            catalog.set_retention(keep_generations);
            if journal {
                catalog.enable_journal(fsync).map_err(|e| e.to_string())?;
            }
            // cataloged releases first; explicit key=path arguments may
            // not collide (the store refuses duplicates). Lossy: damaged
            // entries quarantine instead of refusing to boot.
            if mmap {
                let (loaded, bad) = catalog.load_all_mapped_lossy();
                for (key, loaded) in loaded {
                    releases.push((key, loaded.into_handle()));
                }
                quarantined = bad
                    .into_iter()
                    .map(|(key, e)| (key, e.to_string()))
                    .collect();
            } else {
                let (loaded, bad) = catalog.load_all_lossy();
                for (key, arena, grid) in loaded {
                    releases.push((key, ShardHandle::from_release(arena, grid)));
                }
                quarantined = bad
                    .into_iter()
                    .map(|(key, e)| (key, e.to_string()))
                    .collect();
            }
            Some(catalog)
        }
        None => None,
    };
    for (key, reason) in &quarantined {
        eprintln!("privtree-serve: quarantined catalog release {key}: {reason}");
    }
    if releases.is_empty() {
        return Err(format!("no releases given\n{USAGE}"));
    }
    let store = if grids {
        ReleaseStore::open_gridded(releases)
    } else {
        ReleaseStore::open(releases)
    }
    .map_err(|e| e.to_string())?;
    let snap = store.snapshot();
    eprintln!(
        "privtree-serve: {} release(s), {} nodes, dims={}, gridded={}{}{}{}",
        snap.shard_count(),
        snap.node_count(),
        snap.dims(),
        store.gridded(),
        match &catalog_dir {
            Some(dir) => format!(", catalog={dir}"),
            None => String::new(),
        },
        match journal {
            true => format!(", journal=on fsync={fsync} keep={keep_generations}"),
            false => String::new(),
        },
        match quarantined.len() {
            0 => String::new(),
            n => format!(", quarantined={n}"),
        }
    );
    let mut ctx = match catalog {
        Some(catalog) => ServeContext::with_catalog(store, catalog),
        None => ServeContext::new(store),
    }
    .with_mmap(mmap)
    .with_quarantined(quarantined);
    if let Some(ms) = slow_query_log_ms {
        ctx = ctx.with_slow_query_log(Duration::from_millis(ms));
    }
    match listen {
        Some(addr) => {
            let opts = ServeOptions {
                max_conns,
                read_timeout: (read_timeout_secs > 0)
                    .then(|| Duration::from_secs(read_timeout_secs)),
                ..ServeOptions::default()
            };
            let shutdown = ShutdownSignal::new();
            // SIGTERM / SIGINT drain instead of killing mid-reply
            install_termination_handler(&shutdown);
            // stdin EOF drains too: a supervisor closing our stdin (or
            // an operator's ctrl-d) winds the listener down cleanly. An
            // EOF that arrives instantly means stdin was never attached
            // (e.g. `< /dev/null`) — ignore it, or daemonized servers
            // would exit at startup.
            let stdin_shutdown = shutdown.clone();
            std::thread::spawn(move || {
                let started = std::time::Instant::now();
                let mut sink = [0u8; 256];
                let mut stdin = io::stdin().lock();
                loop {
                    match stdin.read(&mut sink) {
                        Ok(0) | Err(_) => break,
                        Ok(_) => {}
                    }
                }
                if started.elapsed() >= Duration::from_millis(200) {
                    stdin_shutdown.trigger();
                }
            });
            let server = spawn_tcp_with(Arc::new(ctx), &addr, opts, shutdown)?;
            // announced on stdout so scripts (and the integration tests)
            // can discover an OS-assigned port
            println!("listening on {}", server.addr());
            io::stdout().flush().ok();
            let drained = server.join_then_drain(Duration::from_secs(drain_timeout_secs));
            if drained {
                eprintln!("privtree-serve: drained, exiting");
                Ok(())
            } else {
                eprintln!(
                    "privtree-serve: drain deadline ({drain_timeout_secs}s) passed with \
                     connections still open, exiting"
                );
                Ok(())
            }
        }
        None => {
            let stdin = io::stdin();
            serve_lines(&ctx, stdin.lock(), io::stdout())
                .map_err(|e| format!("stdin protocol failed: {e}"))
        }
    }
}

fn main() {
    if let Err(e) = run() {
        eprintln!("privtree-serve: {e}");
        std::process::exit(1);
    }
}
