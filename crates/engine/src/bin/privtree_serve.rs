//! `privtree-serve` — the PrivTree read path as a process.
//!
//! Loads one or more serialized releases (the `privtree-spatial`
//! `serialize` text format; a `privtree-grid` section, when present,
//! ships the precomputed cell grid so no rebuild happens at load time)
//! into an epoch-aware [`ReleaseStore`], then answers a line-protocol
//! query workload over **stdin** (default) or a **TCP socket**
//! (`--listen ADDR`). Batches go through the pooled / Morton-reordered
//! grid-routed read path; epoch operations (`add`/`swap`/`retire`)
//! rebuild only the routing arena and the touched release's grid while
//! in-flight readers keep their snapshot.
//!
//! ```text
//! privtree-serve [--grids] [--listen ADDR] <key=release.txt>...
//! ```
//!
//! Protocol (one command per line; one reply line per command, except
//! `batch` which replies with `n` lines):
//!
//! ```text
//! count <lo0,lo1,..> <hi0,hi1,..>   -> answer as %.17e
//! batch <n>                         -> reads n `<lo> <hi>` lines, then
//!                                      n answer lines (pooled batch)
//! add <key> <path>                  -> ok version=.. grids_built=.. ...
//! swap <key> <path>                 -> ok version=.. grids_built=.. ...
//! retire <key>                      -> ok version=.. ...
//! keys                              -> keys <k1> <k2> ...
//! stats                             -> stats shards=.. nodes=.. ...
//! quit                              -> closes the stream
//! ```
//!
//! Errors never kill the stream: a failed command replies
//! `error: <reason>` and the next command proceeds. See
//! `examples/epoch_serving.rs` for an end-to-end walkthrough.

use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpListener;
use std::sync::Arc;

use privtree_engine::{ReleaseStore, SwapReport};
use privtree_spatial::query::{RangeCountSynopsis, RangeQuery};
use privtree_spatial::serialize::release_from_text;
use privtree_spatial::sharded::ShardHandle;
use privtree_spatial::Rect;

/// Largest accepted `batch <n>`: bounds the per-batch allocation against
/// hostile or mistyped counts (1M queries ≈ 70 MB of boxes — plenty for
/// a line protocol; stream several batches for more).
const MAX_BATCH: usize = 1 << 20;

const USAGE: &str = "usage: privtree-serve [--grids] [--listen ADDR] <key=release.txt>...\n\
                     releases are privtree-synopsis v1 text files (an attached \n\
                     privtree-grid section is loaded instead of rebuilt); queries \n\
                     arrive over stdin, or over TCP with --listen";

/// Load a serialized release as a shard handle. A file carrying a grid
/// section arrives pre-routed; anything else loads as a plain arena —
/// either way the file is scanned once.
fn load_release(path: &str) -> Result<ShardHandle, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let (arena, grid) = release_from_text(&text).map_err(|e| format!("{path}: {e}"))?;
    Ok(match grid {
        Some(grid) => ShardHandle::with_prebuilt_grid(arena, grid),
        None => ShardHandle::new(arena),
    })
}

/// Parse `<lo0,lo1,..> <hi0,hi1,..>` into a range query over `dims`
/// dimensions.
fn parse_query(dims: usize, lo: &str, hi: &str) -> Result<RangeQuery, String> {
    let parse_coords = |csv: &str| -> Result<Vec<f64>, String> {
        csv.split(',')
            .map(|x| {
                x.parse::<f64>()
                    .map_err(|_| format!("bad coordinate {x}"))
                    .and_then(|v| {
                        v.is_finite()
                            .then_some(v)
                            .ok_or_else(|| format!("non-finite coordinate {x}"))
                    })
            })
            .collect()
    };
    let lo = parse_coords(lo)?;
    let hi = parse_coords(hi)?;
    if lo.len() != dims || hi.len() != dims {
        return Err(format!(
            "expected {dims} coordinates per corner, got {}/{}",
            lo.len(),
            hi.len()
        ));
    }
    for k in 0..dims {
        if lo[k] > hi[k] {
            return Err(format!("lo > hi along dimension {k}"));
        }
    }
    Ok(RangeQuery::new(Rect::new(&lo, &hi)))
}

fn report_line(r: &SwapReport) -> String {
    format!(
        "ok version={} shards={} routing_nodes_rebuilt={} grids_built={} \
         grid_cells_built={} shards_reused={}",
        r.version,
        r.shard_count,
        r.routing_nodes_rebuilt,
        r.grids_built,
        r.grid_cells_built,
        r.shards_reused
    )
}

/// Run the line protocol over one input/output pair until EOF or `quit`.
fn serve_lines(store: &ReleaseStore, input: impl BufRead, out: impl Write) -> io::Result<()> {
    // buffer the writes: replies flush at command boundaries, so a batch
    // of a million answers costs a handful of write syscalls instead of
    // one per line (stdout's LineWriter and raw TcpStreams both would)
    let mut out = io::BufWriter::new(out);
    let mut lines = input.lines();
    while let Some(line) = lines.next() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut fields = line.split_whitespace();
        let command = fields.next().unwrap_or_default();
        let reply = |out: &mut dyn Write, text: String| -> io::Result<()> {
            out.write_all(text.as_bytes())?;
            out.write_all(b"\n")?;
            out.flush()
        };
        match command {
            "count" => {
                let snap = store.snapshot();
                match (fields.next(), fields.next()) {
                    (Some(lo), Some(hi)) => match parse_query(snap.dims(), lo, hi) {
                        Ok(q) => reply(&mut out, format!("{:.17e}", snap.answer(&q)))?,
                        Err(e) => reply(&mut out, format!("error: {e}"))?,
                    },
                    _ => reply(&mut out, "error: count needs <lo> <hi>".into())?,
                }
            }
            "batch" => {
                let snap = store.snapshot();
                let n: usize = match fields.next().and_then(|v| v.parse().ok()) {
                    Some(n) if n <= MAX_BATCH => n,
                    Some(n) => {
                        reply(
                            &mut out,
                            format!("error: batch of {n} exceeds the {MAX_BATCH}-query cap"),
                        )?;
                        continue;
                    }
                    None => {
                        reply(&mut out, "error: batch needs a query count".into())?;
                        continue;
                    }
                };
                // always drain all n lines, even past a bad one — a batch
                // failure must reply exactly one error line and leave the
                // stream aligned on the next command
                let mut queries = Vec::with_capacity(n);
                let mut problem: Option<String> = None;
                for _ in 0..n {
                    let Some(qline) = lines.next() else {
                        problem = Some("unexpected end of input inside batch".into());
                        break;
                    };
                    let qline = qline?;
                    if problem.is_some() {
                        continue;
                    }
                    let mut parts = qline.split_whitespace();
                    match (parts.next(), parts.next()) {
                        (Some(lo), Some(hi)) => match parse_query(snap.dims(), lo, hi) {
                            Ok(q) => queries.push(q),
                            Err(e) => problem = Some(e),
                        },
                        _ => problem = Some(format!("bad batch line: {qline}")),
                    }
                }
                match problem {
                    Some(e) => reply(&mut out, format!("error: {e}"))?,
                    None => {
                        // the pooled / Morton-batched read path
                        for a in snap.answer_batch(&queries) {
                            out.write_all(format!("{a:.17e}\n").as_bytes())?;
                        }
                        out.flush()?;
                    }
                }
            }
            "add" | "swap" => match (fields.next(), fields.next()) {
                (Some(key), Some(path)) => {
                    let outcome = load_release(path).and_then(|handle| {
                        let op = if command == "add" {
                            store.add(key, handle)
                        } else {
                            store.swap(key, handle)
                        };
                        op.map_err(|e| e.to_string())
                    });
                    match outcome {
                        Ok(report) => reply(&mut out, report_line(&report))?,
                        Err(e) => reply(&mut out, format!("error: {e}"))?,
                    }
                }
                _ => reply(&mut out, format!("error: {command} needs <key> <path>"))?,
            },
            "retire" => match fields.next() {
                Some(key) => match store.retire(key) {
                    Ok(report) => reply(&mut out, report_line(&report))?,
                    Err(e) => reply(&mut out, format!("error: {e}"))?,
                },
                None => reply(&mut out, "error: retire needs <key>".into())?,
            },
            "keys" => {
                let snap = store.snapshot();
                reply(&mut out, format!("keys {}", snap.keys().join(" ")))?;
            }
            "stats" => {
                let snap = store.snapshot();
                let stats = store.stats();
                reply(
                    &mut out,
                    format!(
                        "stats shards={} nodes={} dims={} version={} gridded={} \
                         publishes={} grids_built={}",
                        snap.shard_count(),
                        snap.node_count(),
                        snap.dims(),
                        snap.version(),
                        store.gridded(),
                        stats.publishes,
                        stats.grids_built
                    ),
                )?;
            }
            "quit" => break,
            other => reply(&mut out, format!("error: unknown command {other}"))?,
        }
    }
    Ok(())
}

fn serve_tcp(store: ReleaseStore, addr: &str) -> Result<(), String> {
    let listener = TcpListener::bind(addr).map_err(|e| format!("cannot listen on {addr}: {e}"))?;
    let local = listener
        .local_addr()
        .map_err(|e| format!("no local address: {e}"))?;
    // announced on stdout so scripts (and the integration tests) can
    // discover an OS-assigned port
    println!("listening on {local}");
    io::stdout().flush().ok();
    let store = Arc::new(store);
    for conn in listener.incoming() {
        match conn {
            Ok(stream) => {
                let store = Arc::clone(&store);
                std::thread::spawn(move || {
                    let reader = match stream.try_clone() {
                        Ok(read_half) => BufReader::new(read_half),
                        Err(e) => {
                            eprintln!("privtree-serve: cannot clone connection: {e}");
                            return;
                        }
                    };
                    // a dropped connection is normal client behaviour
                    let _ = serve_lines(&store, reader, stream);
                });
            }
            Err(e) => eprintln!("privtree-serve: failed connection: {e}"),
        }
    }
    Ok(())
}

fn run() -> Result<(), String> {
    let mut grids = false;
    let mut listen: Option<String> = None;
    let mut releases: Vec<(String, ShardHandle)> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--grids" => grids = true,
            "--listen" => {
                listen = Some(args.next().ok_or("--listen needs an address")?);
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(());
            }
            spec => {
                let (key, path) = spec
                    .split_once('=')
                    .ok_or_else(|| format!("expected key=path, got {spec}\n{USAGE}"))?;
                releases.push((key.to_string(), load_release(path)?));
            }
        }
    }
    if releases.is_empty() {
        return Err(format!("no releases given\n{USAGE}"));
    }
    let store = if grids {
        ReleaseStore::open_gridded(releases)
    } else {
        ReleaseStore::open(releases)
    }
    .map_err(|e| e.to_string())?;
    let snap = store.snapshot();
    eprintln!(
        "privtree-serve: {} release(s), {} nodes, dims={}, gridded={}",
        snap.shard_count(),
        snap.node_count(),
        snap.dims(),
        store.gridded()
    );
    match listen {
        Some(addr) => serve_tcp(store, &addr),
        None => {
            let stdin = io::stdin();
            serve_lines(&store, stdin.lock(), io::stdout())
                .map_err(|e| format!("stdin protocol failed: {e}"))
        }
    }
}

fn main() {
    if let Err(e) = run() {
        eprintln!("privtree-serve: {e}");
        std::process::exit(1);
    }
}
