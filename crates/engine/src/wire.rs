//! `privtree-wire v1`: the binary query protocol.
//!
//! The text protocol spends most of a query's budget on encoding —
//! rendering `%.17e` coordinates, parsing them back, one reply line per
//! answer. This protocol carries the same queries as packed
//! little-endian `f64` boxes and the same answers as packed `f64`
//! vectors, framed with the store crate's length-prefixed CRC frames
//! ([`privtree_store::frame`]), so a batch costs two frames instead of
//! thousands of formatted lines. Answers are the **same bits** the text
//! protocol renders — both sides of the serving stack read from the
//! identical snapshot path.
//!
//! A binary client identifies itself by its first byte: it opens the
//! connection with the 4-byte [`PREAMBLE`], whose leading `0xB7` can
//! never begin a text-protocol command (it is not valid UTF-8), so one
//! listener serves both protocols. The server answers with a `HELO`
//! frame carrying the store's dimensionality, then answers each `QRYB`
//! query frame with an `ANSV` frame (or a typed `ERRF` frame — hostile
//! frames get an error, never a dead listener). See
//! `crates/engine/README.md` for the byte-by-byte specification.
//!
//! [`WireClient`] is the reference client, used by the round-trip tests
//! and the `concurrent_tcp` benchmark lane.

use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

use privtree_spatial::query::RangeQuery;
use privtree_spatial::Rect;
use privtree_store::frame::{
    encode_frame, encode_frame_into, parse_header, payload, FrameHeader, FRAME_HEADER_LEN,
};

use crate::serve::MAX_BATCH;

/// The 4-byte connection preamble a binary client sends first:
/// `0xB7 'P' 'W' '1'`. The leading byte is outside ASCII (and not a
/// valid UTF-8 first byte), so no text-protocol line can ever start a
/// binary session by accident.
pub const PREAMBLE: [u8; 4] = [0xB7, b'P', b'W', b'1'];

/// Client → server: a batch of query boxes.
pub const TAG_QUERY: [u8; 4] = *b"QRYB";
/// Client → server: a metrics scrape (empty payload); the server
/// answers with a `METR` frame whose payload is the UTF-8 exposition —
/// the same sorted `name{label="v"} value` lines the text protocol's
/// `metrics` verb serves.
pub const TAG_METRICS: [u8; 4] = *b"METR";
/// Client → server: flush and close (the binary `quit`).
pub const TAG_QUIT: [u8; 4] = *b"QUIT";
/// Server → client: the negotiation reply (wire version, dims).
pub const TAG_HELLO: [u8; 4] = *b"HELO";
/// Server → client: a vector of answers, one `f64` per query.
pub const TAG_ANSWERS: [u8; 4] = *b"ANSV";
/// Server → client: a typed error.
pub const TAG_ERR: [u8; 4] = *b"ERRF";

/// The wire protocol version carried in the `HELO` frame.
pub const WIRE_VERSION: u32 = 1;

/// Default cap on one frame's payload (64 MiB): admits the
/// [`MAX_BATCH`]-query cap at typical dimensionalities while keeping a
/// forged length bounded — the same contract as the text protocol's
/// line cap, scaled to framed batches.
pub const MAX_FRAME: u32 = 64 << 20;

/// `ERRF` code: malformed frame (bad preamble, unknown tag or flags,
/// nonzero reserved bytes). The connection closes — the stream can no
/// longer be trusted to be aligned.
pub const ERR_BAD_FRAME: u16 = 1;
/// `ERRF` code: declared payload length above the frame cap. The
/// connection closes.
pub const ERR_OVERSIZED: u16 = 2;
/// `ERRF` code: payload failed its CRC-32. The connection continues
/// (the full frame was read, so the stream is still aligned).
pub const ERR_CHECKSUM: u16 = 3;
/// `ERRF` code: a well-framed query payload that does not decode
/// (count/length mismatch, over the batch cap, non-finite coordinate,
/// `lo > hi`). The connection continues.
pub const ERR_BAD_QUERY: u16 = 4;
/// `ERRF` code: the server hit an internal panic answering this frame;
/// the connection (and every other one) keeps serving.
pub const ERR_INTERNAL: u16 = 5;

/// Bytes per packed query box at `dims` dimensions: `lo` then `hi`
/// corner, `dims` little-endian `f64`s each.
pub fn query_stride(dims: usize) -> usize {
    dims * 2 * 8
}

/// Encode a complete `QRYB` frame: `count` as `u32`, then `count`
/// packed boxes.
pub fn encode_query_frame(queries: &[RangeQuery], dims: usize, with_crc: bool) -> Vec<u8> {
    let mut body = Vec::with_capacity(4 + queries.len() * query_stride(dims));
    body.extend_from_slice(&(queries.len() as u32).to_le_bytes());
    for q in queries {
        for c in q.rect.lo() {
            body.extend_from_slice(&c.to_le_bytes());
        }
        for c in q.rect.hi() {
            body.extend_from_slice(&c.to_le_bytes());
        }
    }
    encode_frame(TAG_QUERY, &body, with_crc)
}

/// Decode a `QRYB` payload into queries, validating **before**
/// constructing anything: the declared count against [`MAX_BATCH`], the
/// payload length against the count (exactly `4 + count * stride`
/// bytes), and every box against the same finite/`lo <= hi` rules the
/// text protocol's query parser enforces. The error strings mirror the
/// text protocol's `err` reasons.
pub fn decode_query_payload(body: &[u8], dims: usize) -> Result<Vec<RangeQuery>, String> {
    if body.len() < 4 {
        return Err("query frame shorter than its count field".into());
    }
    let count = u32::from_le_bytes(body[..4].try_into().expect("4 bytes")) as usize;
    if count > MAX_BATCH {
        return Err(format!(
            "batch of {count} exceeds the {MAX_BATCH}-query cap"
        ));
    }
    let stride = query_stride(dims);
    let expected = 4 + count as u64 * stride as u64;
    if body.len() as u64 != expected {
        return Err(format!(
            "query frame is {} bytes but {count} boxes at {dims} dims imply {expected}",
            body.len()
        ));
    }
    let mut queries = Vec::with_capacity(count);
    let mut lo = vec![0.0f64; dims];
    let mut hi = vec![0.0f64; dims];
    for (i, bx) in body[4..].chunks_exact(stride).enumerate() {
        for k in 0..dims {
            lo[k] = f64::from_le_bytes(bx[k * 8..k * 8 + 8].try_into().expect("8 bytes"));
            let at = (dims + k) * 8;
            hi[k] = f64::from_le_bytes(bx[at..at + 8].try_into().expect("8 bytes"));
        }
        for k in 0..dims {
            if !lo[k].is_finite() || !hi[k].is_finite() {
                return Err(format!("non-finite coordinate in box {i}"));
            }
            if lo[k] > hi[k] {
                return Err(format!("lo > hi along dimension {k} in box {i}"));
            }
        }
        queries.push(RangeQuery::new(Rect::new(&lo, &hi)));
    }
    Ok(queries)
}

/// Append a complete `ANSV` frame (packed `f64` answers) to `out`.
pub fn encode_answer_frame_into(out: &mut Vec<u8>, answers: &[f64], with_crc: bool) {
    let mut body = Vec::with_capacity(answers.len() * 8);
    for a in answers {
        body.extend_from_slice(&a.to_le_bytes());
    }
    encode_frame_into(out, TAG_ANSWERS, &body, with_crc);
}

/// Decode an `ANSV` payload (length must be a multiple of 8).
pub fn decode_answer_payload(body: &[u8]) -> Result<Vec<f64>, String> {
    if !body.len().is_multiple_of(8) {
        return Err(format!(
            "answer frame payload of {} bytes is not a whole number of f64s",
            body.len()
        ));
    }
    Ok(body
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")))
        .collect())
}

/// Append a complete `METR` reply frame (the UTF-8 exposition text) to
/// `out`, CRC'd iff the request frame was.
pub fn encode_metrics_frame_into(out: &mut Vec<u8>, text: &str, with_crc: bool) {
    encode_frame_into(out, TAG_METRICS, text.as_bytes(), with_crc);
}

/// Decode a `METR` reply payload into the exposition text.
pub fn decode_metrics_payload(body: &[u8]) -> Result<String, String> {
    String::from_utf8(body.to_vec()).map_err(|_| "metrics frame payload is not UTF-8".into())
}

/// Append a complete `ERRF` frame (`code` as `u16`, then the UTF-8
/// message) to `out`. Error frames never carry a CRC.
pub fn encode_err_frame_into(out: &mut Vec<u8>, code: u16, message: &str) {
    let mut body = Vec::with_capacity(2 + message.len());
    body.extend_from_slice(&code.to_le_bytes());
    body.extend_from_slice(message.as_bytes());
    encode_frame_into(out, TAG_ERR, &body, false);
}

/// Decode an `ERRF` payload into its code and message.
pub fn decode_err_payload(body: &[u8]) -> (u16, String) {
    if body.len() < 2 {
        return (0, String::from_utf8_lossy(body).into_owned());
    }
    let code = u16::from_le_bytes(body[..2].try_into().expect("2 bytes"));
    (code, String::from_utf8_lossy(&body[2..]).into_owned())
}

/// Append the negotiation reply (`HELO`: wire version, store dims, both
/// `u32`) to `out`.
pub fn encode_hello_frame_into(out: &mut Vec<u8>, dims: usize) {
    let mut body = [0u8; 8];
    body[..4].copy_from_slice(&WIRE_VERSION.to_le_bytes());
    body[4..].copy_from_slice(&(dims as u32).to_le_bytes());
    encode_frame_into(out, TAG_HELLO, &body, false);
}

/// Decode a `HELO` payload into `(wire_version, dims)`.
pub fn decode_hello_payload(body: &[u8]) -> Result<(u32, u32), String> {
    if body.len() != 8 {
        return Err(format!(
            "hello frame payload is {} bytes, not 8",
            body.len()
        ));
    }
    Ok((
        u32::from_le_bytes(body[..4].try_into().expect("4 bytes")),
        u32::from_le_bytes(body[4..].try_into().expect("4 bytes")),
    ))
}

/// A blocking `privtree-wire v1` client: sends the preamble, reads the
/// `HELO`, then answers query batches. The reference client for tests
/// and the benchmark's binary lanes.
#[derive(Debug)]
pub struct WireClient {
    stream: TcpStream,
    dims: usize,
    crc: bool,
}

impl WireClient {
    /// Connect, identify as a binary client, and read the negotiation
    /// reply. A server at its connection cap sheds with the text
    /// `err busy` line; that surfaces here as an error naming it.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.write_all(&PREAMBLE)?;
        let mut client = Self {
            stream,
            dims: 0,
            crc: false,
        };
        let (header, body) = client.read_frame()?;
        if header.tag != TAG_HELLO {
            return Err(io::Error::other(frame_error(&header, &body)));
        }
        let (version, dims) = decode_hello_payload(&body).map_err(io::Error::other)?;
        if version != WIRE_VERSION {
            return Err(io::Error::other(format!(
                "server speaks wire version {version}, client speaks {WIRE_VERSION}"
            )));
        }
        client.dims = dims as usize;
        Ok(client)
    }

    /// Whether query frames (and so answer frames — the server mirrors
    /// the request's flag) carry CRC-32 trailers. Off by default.
    pub fn with_crc(mut self, on: bool) -> Self {
        self.crc = on;
        self
    }

    /// The store's dimensionality, from the `HELO` frame.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Answer one batch: send a `QRYB` frame, read the `ANSV` reply.
    /// An `ERRF` reply (or a protocol violation) surfaces as an error.
    pub fn query(&mut self, queries: &[RangeQuery]) -> io::Result<Vec<f64>> {
        let frame = encode_query_frame(queries, self.dims, self.crc);
        self.stream.write_all(&frame)?;
        let (header, body) = self.read_frame()?;
        if header.tag != TAG_ANSWERS {
            return Err(io::Error::other(frame_error(&header, &body)));
        }
        let answers = decode_answer_payload(&body).map_err(io::Error::other)?;
        if answers.len() != queries.len() {
            return Err(io::Error::other(format!(
                "server answered {} of {} queries",
                answers.len(),
                queries.len()
            )));
        }
        Ok(answers)
    }

    /// Scrape the server's metrics: send a `METR` frame, read the
    /// `METR` reply, and return the exposition text (sorted
    /// `name{label="v"} value` lines, byte-identical to the text
    /// protocol's `metrics` verb body).
    pub fn metrics(&mut self) -> io::Result<String> {
        let frame = encode_frame(TAG_METRICS, &[], self.crc);
        self.stream.write_all(&frame)?;
        let (header, body) = self.read_frame()?;
        if header.tag != TAG_METRICS {
            return Err(io::Error::other(frame_error(&header, &body)));
        }
        decode_metrics_payload(&body).map_err(io::Error::other)
    }

    /// Graceful close: send a `QUIT` frame and drop the connection.
    pub fn quit(mut self) -> io::Result<()> {
        self.stream.write_all(&encode_frame(TAG_QUIT, &[], false))
    }

    /// Read one complete frame (header-validated, CRC-verified).
    fn read_frame(&mut self) -> io::Result<(FrameHeader, Vec<u8>)> {
        let mut head = [0u8; FRAME_HEADER_LEN];
        self.stream.read_exact(&mut head)?;
        // a shed connection answered the text `err busy ...` line
        // before the protocols ever negotiated — surface it readably
        if head.starts_with(b"err ") {
            let mut rest = String::new();
            let _ = self.stream.read_to_string(&mut rest);
            let line = format!("{}{}", String::from_utf8_lossy(&head), rest);
            return Err(io::Error::other(format!(
                "server answered in text: {}",
                line.lines().next().unwrap_or_default()
            )));
        }
        let header = parse_header(&head, MAX_FRAME)
            .map_err(|e| io::Error::other(format!("bad reply frame: {e}")))?
            .expect("a full header was read");
        let mut frame = vec![0u8; header.total_len()];
        frame[..FRAME_HEADER_LEN].copy_from_slice(&head);
        self.stream.read_exact(&mut frame[FRAME_HEADER_LEN..])?;
        let body = payload(&header, &frame)
            .map_err(|e| io::Error::other(format!("bad reply frame: {e}")))?;
        Ok((header, body.to_vec()))
    }
}

/// Render an unexpected reply frame as an error message (an `ERRF`
/// carries its typed code and reason; anything else names its tag).
fn frame_error(header: &FrameHeader, body: &[u8]) -> String {
    if header.tag == TAG_ERR {
        let (code, message) = decode_err_payload(body);
        format!("server err {code}: {message}")
    } else {
        format!(
            "unexpected reply frame {:?}",
            String::from_utf8_lossy(&header.tag)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn boxes(n: usize, dims: usize) -> Vec<RangeQuery> {
        (0..n)
            .map(|i| {
                let lo: Vec<f64> = (0..dims).map(|k| (i * dims + k) as f64 * 0.01).collect();
                let hi: Vec<f64> = lo.iter().map(|c| c + 0.5).collect();
                RangeQuery::new(Rect::new(&lo, &hi))
            })
            .collect()
    }

    #[test]
    fn query_frames_roundtrip_bit_exact() {
        for dims in [1usize, 2, 3, 8] {
            for with_crc in [false, true] {
                let queries = boxes(17, dims);
                let frame = encode_query_frame(&queries, dims, with_crc);
                let header = parse_header(&frame, MAX_FRAME).unwrap().unwrap();
                assert_eq!(header.tag, TAG_QUERY);
                let body = payload(&header, &frame).unwrap();
                let decoded = decode_query_payload(body, dims).unwrap();
                assert_eq!(decoded.len(), queries.len());
                for (a, b) in queries.iter().zip(&decoded) {
                    assert_eq!(a.rect.lo(), b.rect.lo());
                    assert_eq!(a.rect.hi(), b.rect.hi());
                }
            }
        }
    }

    #[test]
    fn hostile_query_payloads_are_typed_errors() {
        // count field truncated
        assert!(decode_query_payload(&[1, 0], 2).is_err());
        // count does not match the byte count
        let mut frame = encode_query_frame(&boxes(3, 2), 2, false);
        let body_at = FRAME_HEADER_LEN;
        frame[body_at..body_at + 4].copy_from_slice(&100u32.to_le_bytes());
        let header = parse_header(&frame, MAX_FRAME).unwrap().unwrap();
        let body = payload(&header, &frame).unwrap();
        let err = decode_query_payload(body, 2).unwrap_err();
        assert!(err.contains("100 boxes"), "{err}");
        // a count over the batch cap is refused before any allocation
        frame[body_at..body_at + 4].copy_from_slice(&(u32::MAX).to_le_bytes());
        let body = payload(&header, &frame).unwrap();
        let err = decode_query_payload(body, 2).unwrap_err();
        assert!(err.contains("exceeds"), "{err}");
        // non-finite and inverted boxes mirror the text parser's rules
        let bad = vec![RangeQuery::new(Rect::new(&[0.0, 0.0], &[1.0, 1.0]))];
        let mut f = encode_query_frame(&bad, 2, false);
        f[body_at + 4..body_at + 12].copy_from_slice(&f64::NAN.to_le_bytes());
        let header = parse_header(&f, MAX_FRAME).unwrap().unwrap();
        let body = payload(&header, &f).unwrap();
        assert!(decode_query_payload(body, 2)
            .unwrap_err()
            .contains("non-finite"));
        let mut f = encode_query_frame(&bad, 2, false);
        f[body_at + 4..body_at + 12].copy_from_slice(&9.0f64.to_le_bytes());
        let header = parse_header(&f, MAX_FRAME).unwrap().unwrap();
        let body = payload(&header, &f).unwrap();
        assert!(decode_query_payload(body, 2)
            .unwrap_err()
            .contains("lo > hi"));
    }

    #[test]
    fn answers_errors_and_hello_roundtrip() {
        let answers = [0.0f64, -1.5, 1e300, f64::MIN_POSITIVE];
        let mut out = Vec::new();
        encode_answer_frame_into(&mut out, &answers, true);
        let header = parse_header(&out, MAX_FRAME).unwrap().unwrap();
        assert_eq!(header.tag, TAG_ANSWERS);
        let body = payload(&header, &out).unwrap();
        let decoded = decode_answer_payload(body).unwrap();
        assert_eq!(decoded, answers, "answers carry exact bits");

        let mut out = Vec::new();
        encode_err_frame_into(&mut out, ERR_BAD_QUERY, "lo > hi along dimension 0");
        let header = parse_header(&out, MAX_FRAME).unwrap().unwrap();
        let body = payload(&header, &out).unwrap();
        assert_eq!(
            decode_err_payload(body),
            (ERR_BAD_QUERY, "lo > hi along dimension 0".to_string())
        );

        let mut out = Vec::new();
        encode_hello_frame_into(&mut out, 5);
        let header = parse_header(&out, MAX_FRAME).unwrap().unwrap();
        let body = payload(&header, &out).unwrap();
        assert_eq!(decode_hello_payload(body).unwrap(), (WIRE_VERSION, 5));
    }

    #[test]
    #[allow(invalid_from_utf8)] // the invalidity IS the property under test
    fn preamble_cannot_be_a_text_command() {
        assert!(std::str::from_utf8(&PREAMBLE).is_err());
    }
}
