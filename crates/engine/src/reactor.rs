//! The multiplexed TCP front end: one thread, every connection.
//!
//! The thread-per-connection loop this replaces spent the serving gap
//! on context switches and per-connection batch dispatches; the
//! reactor owns every socket nonblockingly (readiness via
//! [`privtree_runtime::readiness`], i.e. `poll(2)`), decodes complete
//! text lines and binary frames into per-connection job queues, and —
//! the point of the exercise — **coalesces queries that arrived on
//! different connections in the same tick into one pooled dispatch**
//! through [`privtree_runtime::Coalescer`]: the worker pool answers a
//! single Morton-ordered batch, and the reactor scatters each
//! connection's slice of the results back to its socket.
//!
//! Correctness invariants, all pinned by the serve test suites:
//!
//! * **Per-connection order** — jobs execute strictly in arrival
//!   order: queries queued before a mutation are answered from the
//!   pre-mutation snapshot taken when their dispatch ran, and their
//!   replies are written before the mutation's `ok`.
//! * **Bit identity** — coalescing is pure concatenation and the batch
//!   answerers are per-item, so a coalesced answer is bit-identical to
//!   a solo dispatch of the same query (and to the text protocol's
//!   `%.17e` rendering of it).
//! * **Lifecycle guards** — the connection cap sheds with the text
//!   `err busy` line (negotiation has not happened at accept time),
//!   read/write deadlines evict stalled peers, a tripped shutdown stops
//!   accepting and drains in-flight replies, and every dispatch and
//!   control verb runs under `catch_unwind` so one panicking command
//!   answers `err internal ...` (text) or an `ERRF` frame (binary)
//!   while every connection keeps serving.
//! * **Journal-before-ack** — control verbs execute through
//!   [`control_reply`], whose `ok` line exists only after the catalog
//!   persist completed; the reactor buffers that line after every
//!   earlier reply, so the peer never sees an ack for an unpersisted
//!   mutation.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use privtree_runtime::readiness::{self, PollEntry};
use privtree_runtime::telemetry::{Stage, TickTrace};
use privtree_runtime::{failpoints, Coalescer, ShutdownSignal};
use privtree_spatial::query::RangeQuery;
use privtree_store::frame::{parse_header, payload, FrameError};

use crate::serve::{
    control_reply, exposition_lines, panic_message, parse_query, shed, ServeContext, ServeOptions,
    MAX_BATCH,
};
use crate::wire;

/// Poll timeout: the longest the reactor sleeps when no socket has
/// traffic. Also bounds how late a drain or deadline eviction lands.
const REACTOR_TICK: Duration = Duration::from_millis(20);

/// Most bytes ingested from one connection per tick, so a firehose
/// peer cannot starve the others between polls.
const READ_QUANTUM: usize = 1 << 20;

/// Pending-output level above which a connection stops being read:
/// TCP backpressure propagates to the peer instead of the reactor
/// buffering unboundedly. One reply may exceed this (a maximal batch
/// renders tens of megabytes) — the cap stops *additional* commands
/// from piling more replies on, it never splits one.
const OUT_HIGH_WATER: usize = 1 << 20;

/// What protocol a connection speaks, decided by its first byte.
enum Proto {
    /// Nothing read yet.
    Pending,
    /// The line protocol, with its incremental decode state.
    Text(TextState),
    /// `privtree-wire v1` frames.
    Wire,
}

/// Incremental text-protocol decode state.
#[derive(Default)]
struct TextState {
    /// Discarding an oversized line up to its newline (the resync the
    /// line cap promises).
    skipping: bool,
    /// An open `batch <n>` still collecting its query lines.
    batch: Option<BatchState>,
}

/// A `batch <n>` mid-collection.
struct BatchState {
    /// Query lines still owed.
    remaining: usize,
    /// Parsed queries so far (abandoned once `problem` is set).
    queries: Vec<RangeQuery>,
    /// First failure; the batch still drains all `n` lines so the
    /// stream stays aligned, then answers this one `err`.
    problem: Option<String>,
    /// Dimensionality captured when the batch opened.
    dims: usize,
    /// When the `batch` command decoded (request latency starts at the
    /// command, not its last query line). `None` when nothing clocks.
    created: Option<Instant>,
}

/// How to render a dispatch's answers back to the connection.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Shape {
    /// One `%.17e` line (`count`).
    Count,
    /// One `%.17e` line per answer, written as a single buffer.
    Batch,
    /// One `ANSV` frame, CRC'd iff the request was.
    Wire { crc: bool },
}

/// One unit of work a connection has queued, in arrival order.
enum Job {
    /// Queries awaiting a (coalesced) pooled dispatch.
    Queries {
        queries: Vec<RangeQuery>,
        shape: Shape,
        /// Decode time, for the per-protocol request-latency histogram
        /// and the slow-query log. `None` when nothing clocks.
        created: Option<Instant>,
    },
    /// A control verb line for [`control_reply`].
    Control(String),
    /// Bytes already rendered at decode time (errors, `HELO`).
    Reply(Vec<u8>),
    /// Flush everything queued before this, then close.
    Quit,
}

/// One connection's state in the reactor.
struct Conn {
    stream: TcpStream,
    proto: Proto,
    /// Raw unconsumed bytes off the socket. Bounded: complete lines and
    /// frames leave it every tick, so it holds at most one incomplete
    /// line/frame plus one read quantum.
    inbuf: Vec<u8>,
    /// How much of `inbuf` has been decoded this tick. A cursor rather
    /// than per-event `drain`: draining the buffer once per line would
    /// memmove the whole remaining batch payload every line (quadratic
    /// in the buffered bytes); instead the consumed prefix is compacted
    /// once after each ingest pass.
    inpos: usize,
    jobs: VecDeque<Job>,
    /// Rendered replies not yet written, in reply order.
    outbuf: Vec<u8>,
    /// How much of `outbuf` has been written.
    outpos: usize,
    last_read: Instant,
    /// When the peer first refused bytes with output pending.
    write_stalled: Option<Instant>,
    /// Flush `outbuf`, then close (a `quit`, or a fatal protocol
    /// error whose reply is already buffered).
    closing: bool,
    /// Drop the connection now.
    dead: bool,
    /// The peer half-closed; finalize once `inbuf` is drained.
    eof: bool,
    /// EOF finalization already ran.
    eof_done: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        Self {
            stream,
            proto: Proto::Pending,
            inbuf: Vec::new(),
            inpos: 0,
            jobs: VecDeque::new(),
            outbuf: Vec::new(),
            outpos: 0,
            last_read: Instant::now(),
            write_stalled: None,
            closing: false,
            dead: false,
            eof: false,
            eof_done: false,
        }
    }

    fn pending_out(&self) -> usize {
        self.outbuf.len() - self.outpos
    }

    /// Queue a text reply line.
    fn push_line(&mut self, line: &str) {
        let mut bytes = Vec::with_capacity(line.len() + 1);
        bytes.extend_from_slice(line.as_bytes());
        bytes.push(b'\n');
        self.jobs.push_back(Job::Reply(bytes));
    }

    /// Queue an `ERRF` frame; `close` also queues the quit that makes
    /// it the connection's last words.
    fn push_err_frame(&mut self, ctx: &ServeContext, code: u16, message: &str, close: bool) {
        let mut bytes = Vec::new();
        wire::encode_err_frame_into(&mut bytes, code, message);
        ctx.metrics.wire_frames_out.inc();
        self.jobs.push_back(Job::Reply(bytes));
        if close {
            self.jobs.push_back(Job::Quit);
        }
    }
}

/// Raw descriptor for the readiness set.
#[cfg(unix)]
fn fd_of<T: std::os::fd::AsRawFd>(s: &T) -> i64 {
    s.as_raw_fd() as i64
}

/// Non-Unix readiness ignores descriptors (everything polls ready).
#[cfg(not(unix))]
fn fd_of<T>(_s: &T) -> i64 {
    0
}

/// The reactor loop: owns the listener and every accepted socket until
/// shutdown (drain) or abort (drop everything). `active` mirrors the
/// live connection count for [`crate::serve::ServerHandle`].
pub(crate) fn run_reactor(
    listener: TcpListener,
    ctx: Arc<ServeContext>,
    opts: ServeOptions,
    shutdown: ShutdownSignal,
    active: Arc<AtomicUsize>,
    abort: Arc<AtomicBool>,
) {
    let mut listener = Some(listener);
    let mut conns: Vec<Conn> = Vec::new();
    loop {
        if abort.load(Ordering::SeqCst) {
            break;
        }
        // per-tick stage timings; only stages that had work are
        // recorded, so idle 20 ms poll ticks never dilute the
        // histograms (`new` samples the enabled switch once per tick)
        let mut trace = TickTrace::new();
        let draining = shutdown.is_triggered();
        if draining {
            // closing the listener refuses new connections immediately
            listener = None;
            if conns.is_empty() {
                break;
            }
        }

        // readiness: the listener wants accepts; a connection wants
        // reads unless it is closing or back-pressured, and writes only
        // while output is pending (POLLOUT on an idle socket is always
        // ready and would busy-spin the loop)
        let mut entries = Vec::with_capacity(conns.len() + 1);
        let listener_slot = listener.as_ref().map(|l| {
            entries.push(PollEntry::read(fd_of(l)));
            entries.len() - 1
        });
        let conn_base = entries.len();
        for conn in &conns {
            let mut e = PollEntry {
                fd: fd_of(&conn.stream),
                want_read: !conn.closing && !conn.eof && conn.pending_out() < OUT_HIGH_WATER,
                want_write: conn.pending_out() > 0,
                ..PollEntry::default()
            };
            if !e.want_read && !e.want_write {
                // still in the set so a hangup wakes the poll
                e.want_read = conn.eof || conn.closing;
            }
            entries.push(e);
        }
        readiness::wait(&mut entries, REACTOR_TICK);

        // accept burst, shedding past the cap
        if let (Some(l), Some(slot)) = (&listener, listener_slot) {
            if entries[slot].readable {
                accept_burst(l, &mut conns, &ctx, &opts);
            }
        }

        // read + decode into jobs; the whole pass is the `decode`
        // stage, charged only when some socket actually had traffic
        let now = Instant::now();
        let any_input = conns.iter().enumerate().any(|(i, conn)| {
            !conn.dead
                && !conn.closing
                && entries
                    .get(conn_base + i)
                    .is_some_and(|e| e.readable || e.closed)
        });
        let read_pass = |conns: &mut Vec<Conn>| {
            for (i, conn) in conns.iter_mut().enumerate() {
                if conn.dead || conn.closing {
                    continue;
                }
                let ready = entries
                    .get(conn_base + i)
                    .is_some_and(|e| e.readable || e.closed);
                if ready && !conn.eof && conn.pending_out() < OUT_HIGH_WATER {
                    let before = conn.inbuf.len();
                    read_some(conn, now);
                    let got = conn.inbuf.len() - before;
                    if got > 0 {
                        ctx.metrics.bytes_in.add(got as u64);
                    }
                }
                if !conn.dead {
                    // a decode bug must not take the listener down: the
                    // connection answers through its error paths, and a
                    // panic here closes only this connection
                    if catch_unwind(AssertUnwindSafe(|| ingest(conn, &ctx, &opts, draining)))
                        .is_err()
                    {
                        conn.dead = true;
                    }
                }
            }
        };
        if any_input {
            trace.time(Stage::Decode, || read_pass(&mut conns));
        } else {
            read_pass(&mut conns);
        }

        // queue depth after decode is the tick's high-water mark:
        // everything below works the queues down
        ctx.metrics
            .queue_depth
            .set(conns.iter().map(|c| c.jobs.len() as u64).sum());

        execute_jobs(&mut conns, &ctx, &mut trace);

        // flush, then lifecycle: write stalls, idle deadlines, drain
        for conn in conns.iter_mut() {
            if conn.dead {
                continue;
            }
            let before = conn.pending_out();
            if before > 0 {
                trace.time(Stage::Flush, || flush(conn, now, opts.write_timeout));
                ctx.metrics
                    .bytes_out
                    .add((before - conn.pending_out()) as u64);
            } else {
                flush(conn, now, opts.write_timeout);
            }
            if conn.dead {
                // the only in-flush death with replies still owed is a
                // stalled-writer deadline or a failed socket; count the
                // deadline case as an eviction
                if conn.write_stalled.is_some() {
                    ctx.metrics.conns_evicted.inc();
                }
                continue;
            }
            let flushed = conn.pending_out() == 0;
            if conn.closing && flushed {
                conn.dead = true;
                continue;
            }
            if conn.eof && conn.eof_done && conn.jobs.is_empty() && flushed {
                conn.dead = true;
                continue;
            }
            if draining && conn.jobs.is_empty() && flushed {
                // in-flight replies have been written; drain closes the
                // connection without reading further commands
                conn.dead = true;
                continue;
            }
            if let Some(deadline) = opts.read_timeout {
                if !conn.closing
                    && conn.jobs.is_empty()
                    && flushed
                    && now.duration_since(conn.last_read) >= deadline
                {
                    // slowloris eviction: silent (or trickling-and-
                    // stalled) peers cannot pin a slot open
                    conn.dead = true;
                    ctx.metrics.conns_evicted.inc();
                }
            }
        }

        conns.retain(|conn| {
            if conn.dead {
                match conn.proto {
                    Proto::Text(_) => ctx.metrics.conns_text.sub(1),
                    Proto::Wire => ctx.metrics.conns_wire.sub(1),
                    Proto::Pending => {}
                }
            }
            !conn.dead
        });
        active.store(conns.len(), Ordering::SeqCst);
        trace.observe_into(&ctx.metrics.stage_us);
    }
    // aborted (or drained): whatever remains is dropped, sockets close
    for conn in &conns {
        match conn.proto {
            Proto::Text(_) => ctx.metrics.conns_text.sub(1),
            Proto::Wire => ctx.metrics.conns_wire.sub(1),
            Proto::Pending => {}
        }
    }
    drop(conns);
    active.store(0, Ordering::SeqCst);
}

/// Drain the listener's accept queue; connections past the cap are
/// answered `err busy` and closed (see [`shed`]).
fn accept_burst(
    listener: &TcpListener,
    conns: &mut Vec<Conn>,
    ctx: &ServeContext,
    opts: &ServeOptions,
) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if conns.len() >= opts.max_conns {
                    ctx.metrics.conns_shed.inc();
                    shed(stream);
                    continue;
                }
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                // small request/reply turnarounds; Nagle would add its
                // full delay to every coalesced batch
                let _ = stream.set_nodelay(true);
                conns.push(Conn::new(stream));
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                return;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => {
                eprintln!("privtree-serve: failed connection: {e}");
                return;
            }
        }
    }
}

/// Pull up to [`READ_QUANTUM`] bytes off one socket into its `inbuf`.
fn read_some(conn: &mut Conn, now: Instant) {
    if failpoints::check("serve.read").is_err() {
        conn.dead = true;
        return;
    }
    let mut taken = 0;
    let mut buf = [0u8; 16 * 1024];
    loop {
        match conn.stream.read(&mut buf) {
            Ok(0) => {
                conn.eof = true;
                return;
            }
            Ok(n) => {
                conn.inbuf.extend_from_slice(&buf[..n]);
                conn.last_read = now;
                taken += n;
                if taken >= READ_QUANTUM {
                    return;
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                return;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                conn.dead = true;
                return;
            }
        }
    }
}

/// Decode everything decodable in `inbuf` into jobs, negotiating the
/// protocol on the first byte, then finalize EOF once the buffer is
/// spent. While draining, buffered bytes are left unread — in-flight
/// means "already queued", matching the old loop's between-commands
/// shutdown check.
fn ingest(conn: &mut Conn, ctx: &ServeContext, opts: &ServeOptions, draining: bool) {
    if draining {
        return;
    }
    ingest_negotiated(conn, ctx, opts);
    // compact the consumed prefix once per pass (see `Conn::inpos`)
    let consumed = conn.inpos.min(conn.inbuf.len());
    if consumed > 0 {
        conn.inbuf.drain(..consumed);
    }
    conn.inpos = 0;
}

/// [`ingest`]'s body: negotiate, then decode via the cursor.
fn ingest_negotiated(conn: &mut Conn, ctx: &ServeContext, opts: &ServeOptions) {
    if matches!(conn.proto, Proto::Pending) {
        if conn.inbuf.is_empty() {
            if conn.eof {
                conn.eof_done = true;
            }
            return;
        }
        if conn.inbuf[0] == wire::PREAMBLE[0] {
            if conn.inbuf.len() < wire::PREAMBLE.len() {
                if conn.eof {
                    conn.eof_done = true; // truncated preamble: close
                }
                return;
            }
            if conn.inbuf[..4] == wire::PREAMBLE {
                conn.inbuf.drain(..4);
                conn.proto = Proto::Wire;
                ctx.metrics.conns_wire.add(1);
                let mut hello = Vec::new();
                wire::encode_hello_frame_into(&mut hello, ctx.store.snapshot().dims());
                ctx.metrics.wire_frames_out.inc();
                conn.jobs.push_back(Job::Reply(hello));
            } else {
                conn.proto = Proto::Wire; // it tried to speak binary
                ctx.metrics.conns_wire.add(1);
                conn.push_err_frame(ctx, wire::ERR_BAD_FRAME, "bad preamble", true);
                conn.inbuf.clear();
                return;
            }
        } else {
            conn.proto = Proto::Text(TextState::default());
            ctx.metrics.conns_text.add(1);
        }
    }
    match &mut conn.proto {
        Proto::Pending => unreachable!("negotiated above"),
        Proto::Text(_) => ingest_text(conn, ctx, opts),
        Proto::Wire => ingest_wire(conn, ctx, opts),
    }
}

/// What one scan of the text buffer produced.
enum TextEvent {
    /// A complete line (already drained from `inbuf`).
    Line(Vec<u8>),
    /// An oversized line was discarded through its newline.
    TooLong,
    /// Need more bytes.
    Incomplete,
}

/// Extract the next line event from `inbuf`, honoring skip-to-newline
/// resync and the line cap.
fn next_text_event(conn: &mut Conn, skipping: &mut bool, max_line: usize) -> TextEvent {
    if *skipping {
        match conn.inbuf[conn.inpos..].iter().position(|&b| b == b'\n') {
            Some(pos) => {
                conn.inpos += pos + 1;
                *skipping = false;
                return TextEvent::TooLong;
            }
            None => {
                conn.inbuf.clear(); // keep discarding, stay bounded
                conn.inpos = 0;
                return TextEvent::Incomplete;
            }
        }
    }
    match conn.inbuf[conn.inpos..].iter().position(|&b| b == b'\n') {
        Some(pos) if pos > max_line => {
            conn.inpos += pos + 1;
            TextEvent::TooLong
        }
        Some(pos) => {
            let mut line = conn.inbuf[conn.inpos..conn.inpos + pos].to_vec();
            conn.inpos += pos + 1;
            while matches!(line.last(), Some(b'\r')) {
                line.pop();
            }
            TextEvent::Line(line)
        }
        None if conn.inbuf.len() - conn.inpos > max_line => {
            conn.inbuf.clear();
            conn.inpos = 0;
            *skipping = true;
            TextEvent::Incomplete
        }
        None => TextEvent::Incomplete,
    }
}

/// Decode complete text lines into jobs until the buffer runs dry,
/// then finalize EOF (unterminated final line, truncated batch, quit).
fn ingest_text(conn: &mut Conn, ctx: &ServeContext, opts: &ServeOptions) {
    loop {
        let Proto::Text(state) = &mut conn.proto else {
            return;
        };
        let mut skipping = state.skipping;
        let event = next_text_event(conn, &mut skipping, opts.max_line);
        let Proto::Text(state) = &mut conn.proto else {
            return;
        };
        state.skipping = skipping;
        match event {
            TextEvent::Incomplete => break,
            TextEvent::TooLong => {
                ctx.metrics.line_resyncs.inc();
                let err = format!("err line too long (max {} bytes)", opts.max_line);
                if in_batch(conn) {
                    batch_line_problem(conn, err.trim_start_matches("err ").to_string());
                } else {
                    conn.push_line(&err);
                }
            }
            TextEvent::Line(line) => text_line(conn, ctx, &line),
        }
    }
    if conn.eof && !conn.eof_done {
        let Proto::Text(state) = &mut conn.proto else {
            return;
        };
        if state.skipping {
            state.skipping = false;
            ctx.metrics.line_resyncs.inc();
            let err = format!("err line too long (max {} bytes)", opts.max_line);
            if in_batch(conn) {
                batch_line_problem(conn, err.trim_start_matches("err ").to_string());
            } else {
                conn.push_line(&err);
            }
        } else if conn.inpos < conn.inbuf.len() {
            // an unterminated final line still counts as a line
            let line = conn.inbuf[conn.inpos..].to_vec();
            conn.inbuf.clear();
            conn.inpos = 0;
            text_line(conn, ctx, &line);
        }
        if let Proto::Text(state) = &mut conn.proto {
            if state.batch.take().is_some() {
                conn.push_line("err unexpected end of input inside batch");
            }
        }
        conn.jobs.push_back(Job::Quit);
        conn.eof_done = true;
    }
}

fn in_batch(conn: &Conn) -> bool {
    matches!(&conn.proto, Proto::Text(s) if s.batch.is_some())
}

/// Record a failed batch line (the batch still drains its remaining
/// lines so the stream stays aligned).
fn batch_line_problem(conn: &mut Conn, problem: String) {
    let Proto::Text(state) = &mut conn.proto else {
        return;
    };
    let Some(batch) = &mut state.batch else {
        return;
    };
    if batch.problem.is_none() {
        batch.problem = Some(problem);
    }
    batch.remaining -= 1;
    if batch.remaining == 0 {
        finish_batch(conn);
    }
}

/// Close out a completed batch into its job (queries or one `err`).
fn finish_batch(conn: &mut Conn) {
    let Proto::Text(state) = &mut conn.proto else {
        return;
    };
    let Some(batch) = state.batch.take() else {
        return;
    };
    match batch.problem {
        Some(e) => conn.push_line(&format!("err {e}")),
        None => conn.jobs.push_back(Job::Queries {
            queries: batch.queries,
            shape: Shape::Batch,
            created: batch.created,
        }),
    }
}

/// Route one complete text line: a batch query line if a batch is
/// open, a command otherwise.
fn text_line(conn: &mut Conn, ctx: &ServeContext, raw: &[u8]) {
    if in_batch(conn) {
        let Ok(qline) = std::str::from_utf8(raw) else {
            batch_line_problem(conn, "batch line is not valid utf-8".into());
            return;
        };
        let mut parts = qline.split_whitespace();
        let parsed = match (parts.next(), parts.next()) {
            (Some(lo), Some(hi)) => {
                let dims = match &conn.proto {
                    Proto::Text(s) => s.batch.as_ref().map_or(0, |b| b.dims),
                    _ => 0,
                };
                parse_query(dims, lo, hi)
            }
            _ => Err(format!("bad batch line: {qline}")),
        };
        match parsed {
            Ok(q) => {
                let Proto::Text(state) = &mut conn.proto else {
                    return;
                };
                let Some(batch) = &mut state.batch else {
                    return;
                };
                if batch.problem.is_none() {
                    batch.queries.push(q);
                }
                batch.remaining -= 1;
                if batch.remaining == 0 {
                    finish_batch(conn);
                }
            }
            Err(e) => batch_line_problem(conn, e),
        }
        return;
    }
    let Ok(line) = std::str::from_utf8(raw) else {
        conn.push_line("err line is not valid utf-8");
        return;
    };
    let line = line.trim();
    if line.is_empty() {
        return;
    }
    let mut fields = line.split_whitespace();
    match fields.next().unwrap_or_default() {
        "count" => {
            let snap = ctx.store.snapshot();
            match (fields.next(), fields.next()) {
                (Some(lo), Some(hi)) => match parse_query(snap.dims(), lo, hi) {
                    Ok(q) => conn.jobs.push_back(Job::Queries {
                        queries: vec![q],
                        shape: Shape::Count,
                        created: ctx.clocked().then(Instant::now),
                    }),
                    Err(e) => conn.push_line(&format!("err {e}")),
                },
                _ => conn.push_line("err count needs <lo> <hi>"),
            }
        }
        "batch" => {
            let n: usize = match fields.next().and_then(|v| v.parse().ok()) {
                Some(n) if n <= MAX_BATCH => n,
                Some(n) => {
                    conn.push_line(&format!(
                        "err batch of {n} exceeds the {MAX_BATCH}-query cap"
                    ));
                    return;
                }
                None => {
                    conn.push_line("err batch needs a query count");
                    return;
                }
            };
            let created = ctx.clocked().then(Instant::now);
            let dims = ctx.store.snapshot().dims();
            if n == 0 {
                conn.jobs.push_back(Job::Queries {
                    queries: Vec::new(),
                    shape: Shape::Batch,
                    created,
                });
                return;
            }
            let Proto::Text(state) = &mut conn.proto else {
                return;
            };
            state.batch = Some(BatchState {
                remaining: n,
                queries: Vec::with_capacity(n.min(1 << 16)),
                problem: None,
                dims,
                created,
            });
        }
        "quit" => {
            conn.jobs.push_back(Job::Quit);
        }
        _ => conn.jobs.push_back(Job::Control(line.to_string())),
    }
}

/// Decode complete binary frames into jobs until the buffer runs dry,
/// then finalize EOF (a truncated frame is a clean close — no reply
/// target exists for half a frame).
fn ingest_wire(conn: &mut Conn, ctx: &ServeContext, opts: &ServeOptions) {
    loop {
        let header = match parse_header(&conn.inbuf[conn.inpos..], opts.max_frame) {
            Ok(None) => break,
            Ok(Some(header)) => header,
            Err(e) => {
                ctx.metrics.wire_frames_in.inc();
                let code = match e {
                    FrameError::Oversized { .. } => wire::ERR_OVERSIZED,
                    _ => wire::ERR_BAD_FRAME,
                };
                conn.push_err_frame(ctx, code, &e.to_string(), true);
                conn.inbuf.clear();
                conn.inpos = 0;
                return;
            }
        };
        if conn.inbuf.len() - conn.inpos < header.total_len() {
            break; // bounded: len already validated against max_frame
        }
        let frame = conn.inbuf[conn.inpos..conn.inpos + header.total_len()].to_vec();
        conn.inpos += header.total_len();
        ctx.metrics.wire_frames_in.inc();
        let body = match payload(&header, &frame) {
            Ok(body) => body,
            Err(e) => {
                // the full frame was consumed, so the stream is still
                // aligned: a corrupted payload keeps the session alive
                conn.push_err_frame(ctx, wire::ERR_CHECKSUM, &e.to_string(), false);
                continue;
            }
        };
        match header.tag {
            wire::TAG_QUERY => {
                let dims = ctx.store.snapshot().dims();
                match wire::decode_query_payload(body, dims) {
                    Ok(queries) => conn.jobs.push_back(Job::Queries {
                        queries,
                        shape: Shape::Wire {
                            crc: header.has_crc(),
                        },
                        created: ctx.clocked().then(Instant::now),
                    }),
                    Err(e) => conn.push_err_frame(ctx, wire::ERR_BAD_QUERY, &e, false),
                }
            }
            wire::TAG_METRICS => {
                // the binary `metrics` verb: rendered at decode time
                // (like `HELO`) and queued as a reply, so it lands in
                // per-connection order behind earlier frames
                let mut text = exposition_lines(ctx).join("\n");
                text.push('\n');
                let mut bytes = Vec::new();
                wire::encode_metrics_frame_into(&mut bytes, &text, header.has_crc());
                ctx.metrics.wire_frames_out.inc();
                conn.jobs.push_back(Job::Reply(bytes));
            }
            wire::TAG_QUIT => {
                conn.jobs.push_back(Job::Quit);
                conn.inbuf.clear();
                conn.inpos = 0;
                return;
            }
            other => {
                let msg = format!("unexpected frame {:?}", String::from_utf8_lossy(&other));
                conn.push_err_frame(ctx, wire::ERR_BAD_FRAME, &msg, true);
                conn.inbuf.clear();
                conn.inpos = 0;
                return;
            }
        }
    }
    if conn.eof && !conn.eof_done {
        conn.jobs.push_back(Job::Quit);
        conn.eof_done = true;
    }
}

/// Run every queued job to completion, in per-connection order, in
/// rounds: first every connection's *leading* query jobs coalesce into
/// one pooled dispatch (the cross-connection batching this module
/// exists for), then leading non-query jobs execute, until no job
/// remains. A connection's query queued before its mutation is always
/// dispatched — and its reply buffered — before the mutation runs.
fn execute_jobs(conns: &mut [Conn], ctx: &ServeContext, trace: &mut TickTrace) {
    loop {
        let mut progressed = false;

        // gather leading query jobs across every connection (the
        // `coalesce` stage, charged only when something gathered)
        let gather_start = trace.capturing().then(Instant::now);
        let mut co: Coalescer<(usize, Shape), RangeQuery> = Coalescer::new();
        let mut metas: Vec<QueryMeta> = Vec::new();
        for (i, conn) in conns.iter_mut().enumerate() {
            if conn.dead || conn.closing {
                continue;
            }
            while let Some(Job::Queries { .. }) = conn.jobs.front() {
                let Some(Job::Queries {
                    queries,
                    shape,
                    created,
                }) = conn.jobs.pop_front()
                else {
                    unreachable!("front was a query job");
                };
                metas.push(QueryMeta {
                    shape,
                    created,
                    offset: co.len(),
                    len: queries.len(),
                });
                co.push((i, shape), queries);
                progressed = true;
            }
        }
        if !co.is_empty() {
            if let Some(t) = gather_start {
                trace.add_us(Stage::Coalesce, t.elapsed().as_micros() as u64);
            }
            dispatch(conns, ctx, &co, &metas, trace);
        }

        // leading non-query jobs: control verbs, rendered replies, quit
        for conn in conns.iter_mut() {
            if conn.dead || conn.closing {
                continue;
            }
            loop {
                match conn.jobs.front() {
                    None | Some(Job::Queries { .. }) => break,
                    Some(_) => {}
                }
                let job = conn.jobs.pop_front().expect("front checked");
                progressed = true;
                match job {
                    Job::Queries { .. } => unreachable!("filtered above"),
                    Job::Reply(bytes) => conn.outbuf.extend_from_slice(&bytes),
                    Job::Control(line) => {
                        // panic isolation per verb, same as the old
                        // per-connection loop
                        let reply = catch_unwind(AssertUnwindSafe(|| control_reply(ctx, &line)))
                            .unwrap_or_else(|payload| {
                                format!("err internal: {}", panic_message(payload.as_ref()))
                            });
                        conn.outbuf.extend_from_slice(reply.as_bytes());
                        conn.outbuf.push(b'\n');
                    }
                    Job::Quit => {
                        conn.closing = true;
                        conn.jobs.clear();
                        break;
                    }
                }
            }
        }

        if !progressed {
            return;
        }
    }
}

/// One query job's bookkeeping through a pooled dispatch: where its
/// queries sit in the coalesced batch, and when it decoded.
struct QueryMeta {
    shape: Shape,
    created: Option<Instant>,
    /// Start of this job's queries in `co.items()`.
    offset: usize,
    len: usize,
}

/// One pooled dispatch for every leading query job this round, with
/// results scattered back per connection (bit-identical to solo
/// dispatches — the batch answerers are per-item and the merge is pure
/// concatenation).
fn dispatch(
    conns: &mut [Conn],
    ctx: &ServeContext,
    co: &Coalescer<(usize, Shape), RangeQuery>,
    metas: &[QueryMeta],
    trace: &mut TickTrace,
) {
    let m = &ctx.metrics;
    m.coalesced_dispatches.inc();
    m.coalesced_queries.add(co.len() as u64);
    m.coalesced_spans.add(co.spans() as u64);
    let snap = ctx.store.snapshot();
    let clock = trace.capturing() || metas.iter().any(|meta| meta.created.is_some());
    let pool_start = clock.then(Instant::now);
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        snap.synopsis()
            .answer_batch_with_pool(co.items(), privtree_runtime::global())
    }));
    let dispatch_us = pool_start.map_or(0, |t| t.elapsed().as_micros() as u64);
    trace.add_us(Stage::Dispatch, dispatch_us);
    match outcome {
        Ok(answers) => {
            trace.time(Stage::Scatter, || {
                for (&(i, shape), slice) in co.scatter(&answers) {
                    append_answers(&mut conns[i], shape, slice, ctx);
                }
            });
            // per-job latency (decode to reply rendered) and the
            // slow-query log; the pooled batch cost is shared, so each
            // job charges the same dispatch span
            for meta in metas {
                let Some(created) = meta.created else {
                    continue;
                };
                let proto = match meta.shape {
                    Shape::Wire { .. } => "wire",
                    Shape::Count | Shape::Batch => "text",
                };
                ctx.observe_request(
                    &snap,
                    proto,
                    &co.items()[meta.offset..meta.offset + meta.len],
                    created.elapsed().as_micros() as u64,
                    dispatch_us,
                );
            }
        }
        Err(payload) => {
            // every participant learns of the failure; the listener —
            // and each connection — keeps serving
            let msg = panic_message(payload.as_ref());
            for &(i, shape) in co.sources() {
                let conn = &mut conns[i];
                match shape {
                    Shape::Count | Shape::Batch => {
                        conn.outbuf
                            .extend_from_slice(format!("err internal: {msg}\n").as_bytes());
                    }
                    Shape::Wire { .. } => {
                        wire::encode_err_frame_into(
                            &mut conn.outbuf,
                            wire::ERR_INTERNAL,
                            &format!("internal: {msg}"),
                        );
                        m.wire_frames_out.inc();
                    }
                }
            }
        }
    }
}

/// Render one reply unit's answers into the connection's output buffer.
fn append_answers(conn: &mut Conn, shape: Shape, answers: &[f64], ctx: &ServeContext) {
    match shape {
        Shape::Count | Shape::Batch => {
            // the whole reply renders into one buffer: a batch of a
            // million answers is one write stream, not a million
            let mut rendered = String::with_capacity(answers.len() * 26);
            for a in answers {
                let _ = writeln!(rendered, "{a:.17e}");
            }
            conn.outbuf.extend_from_slice(rendered.as_bytes());
        }
        Shape::Wire { crc } => {
            wire::encode_answer_frame_into(&mut conn.outbuf, answers, crc);
            ctx.metrics.wire_frames_out.inc();
        }
    }
}

/// Write as much pending output as the socket accepts, tracking stalls
/// against the write deadline.
fn flush(conn: &mut Conn, now: Instant, write_timeout: Option<Duration>) {
    if conn.pending_out() == 0 {
        conn.outbuf.clear();
        conn.outpos = 0;
        conn.write_stalled = None;
        return;
    }
    if failpoints::check("serve.write").is_err() {
        conn.dead = true;
        return;
    }
    loop {
        match conn.stream.write(&conn.outbuf[conn.outpos..]) {
            Ok(0) => {
                conn.dead = true;
                return;
            }
            Ok(n) => {
                conn.outpos += n;
                conn.write_stalled = None;
                if conn.pending_out() == 0 {
                    conn.outbuf.clear();
                    conn.outpos = 0;
                    return;
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                // the peer stopped reading with replies pending: start
                // (or check) the stall clock
                let since = *conn.write_stalled.get_or_insert(now);
                if let Some(deadline) = write_timeout {
                    if now.duration_since(since) >= deadline {
                        conn.dead = true;
                    }
                }
                return;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                conn.dead = true;
                return;
            }
        }
    }
}
