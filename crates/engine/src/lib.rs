//! Epoch-aware serving engine: a catalog of named releases behind an
//! atomically swapped read snapshot.
//!
//! PrivTree is a build-once/read-many synopsis (Section 2.2/3.4 of the
//! paper), and real deployments re-release per **epoch** or per
//! **region**: every hour (or every city) a fresh differentially private
//! release replaces its predecessor while queries keep flowing. The
//! library crates provide the read structures — `FrozenSynopsis`,
//! `ShardedSynopsis`, `GridRoutedSynopsis` — but no lifecycle; this crate
//! owns it:
//!
//! * [`ReleaseStore`] holds a catalog of **named releases** (epoch/region
//!   key → [`ShardHandle`], i.e. a frozen arena plus an optional
//!   per-shard cell grid) and publishes them as one
//!   [`ShardedSynopsis`]-backed [`Snapshot`].
//! * Readers call [`ReleaseStore::snapshot`], which is two atomic
//!   operations (an `Arc` clone through
//!   [`privtree_runtime::ArcCell`]) — no locks held while answering, and
//!   a snapshot taken before a swap keeps answering the *old* epoch's
//!   bits for as long as it is held.
//! * Writers call [`ReleaseStore::add`] / [`ReleaseStore::swap`] /
//!   [`ReleaseStore::retire`]. A mutation rebuilds **only** the small
//!   routing arena (one synthetic root + one leaf per shard, via
//!   `ShardedSynopsis::from_handles`) and — in a gridded store — the cell
//!   grid of **only** the release(s) it introduced; every surviving shard
//!   is reused by `Arc` pointer, grid included. The returned
//!   [`SwapReport`] instruments exactly that (`routing_nodes_rebuilt`,
//!   `grids_built`, `grid_cells_built`, `shards_reused`), and the
//!   lifecycle tests assert on it.
//!
//! # Determinism contract
//!
//! The catalog is a `BTreeMap`, so shards always enter the routing arena
//! in **sorted key order**. A snapshot reached through *any* sequence of
//! add/swap/retire operations therefore answers **bit-identically** to a
//! from-scratch `ShardedSynopsis::from_releases` of the surviving shard
//! set assembled in sorted key order (gridded stores compare against a
//! gridded rebuild; grid precomputation is itself deterministic for
//! every worker count). `crates/engine/tests/lifecycle.rs` property-tests
//! this end to end.
//!
//! Failed mutations (unknown/duplicate key, overlapping regions,
//! ungriddable release, retiring the last shard) leave the store — and
//! every outstanding snapshot — completely unchanged: mutations stage on
//! a copy of the catalog and publish only after every validation passed.
//!
//! # Persistence
//!
//! Stores survive the process through `privtree-store`:
//! [`ReleaseStore::open_catalog`] warm-starts a store from an on-disk
//! release catalog (binary `privtree-bin v1` entries decode in one
//! validated pass — no per-line parsing) and
//! [`ReleaseStore::persist_catalog`] writes every serving release back
//! (binary, grids included, atomic publish). Either direction preserves
//! answers bit for bit.
//!
//! The `privtree-serve` binary in this crate turns the store into a
//! process: it loads serialized releases (text or binary, sniffed;
//! shipped grid sections arrive prebuilt), answers a line-protocol query
//! workload over stdin or a TCP socket through the pooled /
//! Morton-batched read path, and accepts the same add/swap/retire —
//! plus catalog save/load — operations at runtime. The protocol itself
//! is the [`serve`] module, embeddable in tests and benchmarks.

mod reactor;
pub mod serve;
pub mod wire;

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use privtree_runtime::telemetry::{self, Counter, Histogram, Registry};
use privtree_runtime::ArcCell;
use privtree_spatial::grid_route::GridRouteError;
use privtree_spatial::query::{RangeCountSynopsis, RangeQuery};
use privtree_spatial::sharded::{ShardError, ShardHandle, ShardedSynopsis};
use privtree_store::{Catalog, ReleaseFormat, StoreError};

/// Why a store operation was refused. Every error leaves the store and
/// all outstanding snapshots unchanged.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// `add` with a key that is already serving (use `swap` to replace).
    DuplicateKey(String),
    /// `swap`/`retire` with a key the catalog does not hold.
    UnknownKey(String),
    /// `retire` would leave the store with nothing to serve.
    WouldBeEmpty,
    /// The resulting shard set cannot be assembled (overlapping regions,
    /// mixed dimensionalities).
    Shard(ShardError),
    /// A gridded store could not build the new release's cell grid (e.g.
    /// inconsistent counts — see `GridRouteError`).
    Grid(GridRouteError),
    /// The on-disk catalog refused (corrupt file, bad manifest, unknown
    /// key — see `privtree_store::StoreError`).
    Store(StoreError),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::DuplicateKey(key) => {
                write!(f, "release {key} already exists (swap it instead)")
            }
            EngineError::UnknownKey(key) => write!(f, "no release named {key}"),
            EngineError::WouldBeEmpty => {
                write!(
                    f,
                    "refusing to retire the last release; the store would be empty"
                )
            }
            EngineError::Shard(e) => write!(f, "cannot assemble shard set: {e}"),
            EngineError::Grid(e) => write!(f, "cannot grid-route release: {e}"),
            EngineError::Store(e) => write!(f, "release store: {e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<ShardError> for EngineError {
    fn from(e: ShardError) -> Self {
        EngineError::Shard(e)
    }
}

impl From<GridRouteError> for EngineError {
    fn from(e: GridRouteError) -> Self {
        EngineError::Grid(e)
    }
}

impl From<StoreError> for EngineError {
    fn from(e: StoreError) -> Self {
        EngineError::Store(e)
    }
}

/// What one mutation actually rebuilt — the incremental-swap contract,
/// returned by every mutating call so tests (and operators) can verify
/// that a swap did not trigger a full recompute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwapReport {
    /// Version of the snapshot this mutation published.
    pub version: u64,
    /// Shards serving after the mutation.
    pub shard_count: usize,
    /// Nodes of the routing arena that was rebuilt (`shard_count + 1`
    /// for region catalogs — the only arena a mutation constructs).
    pub routing_nodes_rebuilt: usize,
    /// Cell grids built by this mutation (0 in an ungridded store; 1 for
    /// an add/swap in a gridded one, however many shards survive).
    pub grids_built: usize,
    /// Total cells precomputed by this mutation's grid builds.
    pub grid_cells_built: usize,
    /// Surviving shards whose arena was adopted by pointer from the
    /// previous catalog (no rebuild of any kind).
    pub shards_reused: usize,
}

/// Cumulative counters across a store's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Snapshots published (the initial open counts as one).
    pub publishes: u64,
    /// Cell grids built, totalled over every publish.
    pub grids_built: u64,
    /// Grid cells precomputed, totalled over every publish.
    pub grid_cells_built: u64,
}

/// An immutable view of the store at one version: the published
/// [`ShardedSynopsis`] plus the catalog keys it serves. Snapshots are
/// shared (`Arc`), cheap to take, and never change after publication —
/// a reader holding one across a swap keeps answering from the epoch it
/// loaded.
#[derive(Debug)]
pub struct Snapshot {
    synopsis: ShardedSynopsis,
    keys: Vec<String>,
    version: u64,
}

impl Snapshot {
    /// The published read engine.
    pub fn synopsis(&self) -> &ShardedSynopsis {
        &self.synopsis
    }

    /// Catalog keys in shard order (sorted).
    pub fn keys(&self) -> &[String] {
        &self.keys
    }

    /// Monotone publication version (the open is version 1).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of shards served.
    pub fn shard_count(&self) -> usize {
        self.synopsis.shard_count()
    }

    /// Total nodes across the routing arena and every shard.
    pub fn node_count(&self) -> usize {
        self.synopsis.node_count()
    }

    /// Dimensionality of the served domain.
    pub fn dims(&self) -> usize {
        self.synopsis.dims()
    }
}

impl RangeCountSynopsis for Snapshot {
    fn answer(&self, q: &RangeQuery) -> f64 {
        self.synopsis.answer(q)
    }

    fn answer_batch(&self, queries: &[RangeQuery]) -> Vec<f64> {
        self.synopsis.answer_batch(queries)
    }

    fn label(&self) -> &'static str {
        self.synopsis.label()
    }
}

/// Telemetry handles for the epoch engine's mutation path. Registered
/// once per registry ([`EngineMetrics::register`]) and attached with
/// [`ReleaseStore::attach_metrics`]; counters record always, the
/// latency histogram only while `telemetry::enabled()`.
#[derive(Debug)]
pub struct EngineMetrics {
    /// Wall time of one publishing mutation (stage + validate + grid
    /// build + persist hook + publish), µs.
    pub swap_us: Arc<Histogram>,
    /// Snapshots published (open counts as the first).
    pub publishes: Arc<Counter>,
    /// Per-shard cell grids built (open + incremental swaps).
    pub grids_built: Arc<Counter>,
}

impl EngineMetrics {
    /// Get-or-create the engine metric set in `registry`.
    pub fn register(registry: &Registry) -> Arc<Self> {
        Arc::new(Self {
            swap_us: registry.histogram("store_swap_us", &[]),
            publishes: registry.counter("store_publishes_total", &[]),
            grids_built: registry.counter("store_grids_built_total", &[]),
        })
    }
}

/// Catalog state guarded by the writer mutex.
#[derive(Debug)]
struct Inner {
    catalog: BTreeMap<String, ShardHandle>,
    version: u64,
    stats: StoreStats,
    /// When the current snapshot was published (drives the snapshot
    /// age gauge).
    published_at: Instant,
    /// Telemetry handles, when attached.
    metrics: Option<Arc<EngineMetrics>>,
}

/// The epoch engine: named releases in, atomically swapped snapshots out.
/// See the crate docs for the lifecycle and determinism contract.
#[derive(Debug)]
pub struct ReleaseStore {
    /// Writers stage and publish under this lock; readers never take it.
    inner: Mutex<Inner>,
    /// The published snapshot readers load.
    current: ArcCell<Snapshot>,
    /// Whether every release must carry a cell grid (built on the shared
    /// worker pool at add/swap time unless the handle already has one).
    grids: bool,
}

/// Build the snapshot for `catalog`, ensuring grids when requested.
/// Returns the snapshot plus (grids_built, grid_cells_built).
fn build_snapshot(
    catalog: &mut BTreeMap<String, ShardHandle>,
    grids: bool,
    version: u64,
) -> Result<(Arc<Snapshot>, usize, usize), EngineError> {
    let mut grids_built = 0usize;
    let mut grid_cells_built = 0usize;
    if grids {
        // validate the shard set (cheap: shard_count + 1 routing nodes)
        // before any grid precompute, so a rejected mutation — overlap,
        // mixed dims — never pays for a grid it would throw away
        ShardedSynopsis::from_handles(catalog.values().cloned().collect())?;
        for handle in catalog.values_mut() {
            if handle.ensure_grid(Some(privtree_runtime::global()))? {
                grids_built += 1;
                grid_cells_built += handle.grid().expect("grid was just built").cells();
            }
        }
    }
    let synopsis = ShardedSynopsis::from_handles(catalog.values().cloned().collect())?
        .with_label("EpochSnapshot");
    let snapshot = Arc::new(Snapshot {
        synopsis,
        keys: catalog.keys().cloned().collect(),
        version,
    });
    Ok((snapshot, grids_built, grid_cells_built))
}

impl ReleaseStore {
    /// Open a store over named releases, serving plain shard descents.
    pub fn open<K, H>(releases: impl IntoIterator<Item = (K, H)>) -> Result<Self, EngineError>
    where
        K: Into<String>,
        H: Into<ShardHandle>,
    {
        Self::build(releases, false)
    }

    /// Open a store whose shards are all grid-routed: releases that
    /// arrive without a grid get one built (default resolution, on the
    /// shared worker pool) at open/add/swap time.
    pub fn open_gridded<K, H>(
        releases: impl IntoIterator<Item = (K, H)>,
    ) -> Result<Self, EngineError>
    where
        K: Into<String>,
        H: Into<ShardHandle>,
    {
        Self::build(releases, true)
    }

    fn build<K, H>(
        releases: impl IntoIterator<Item = (K, H)>,
        grids: bool,
    ) -> Result<Self, EngineError>
    where
        K: Into<String>,
        H: Into<ShardHandle>,
    {
        let mut catalog: BTreeMap<String, ShardHandle> = BTreeMap::new();
        for (key, handle) in releases {
            let key = key.into();
            if catalog.insert(key.clone(), handle.into()).is_some() {
                return Err(EngineError::DuplicateKey(key));
            }
        }
        if catalog.is_empty() {
            return Err(EngineError::Shard(ShardError::Empty));
        }
        let (snapshot, grids_built, grid_cells_built) = build_snapshot(&mut catalog, grids, 1)?;
        Ok(Self {
            inner: Mutex::new(Inner {
                catalog,
                version: 1,
                stats: StoreStats {
                    publishes: 1,
                    grids_built: grids_built as u64,
                    grid_cells_built: grid_cells_built as u64,
                },
                published_at: Instant::now(),
                metrics: None,
            }),
            current: ArcCell::new(snapshot),
            grids,
        })
    }

    /// Warm-start a store from an on-disk catalog: every release in the
    /// catalog is loaded and served under its catalog key. `grids`
    /// behaves as in [`ReleaseStore::open_gridded`] — releases that
    /// arrive without a grid get one built. Defaults to zero-copy mapped
    /// opens; see [`ReleaseStore::open_catalog_with`].
    pub fn open_catalog(catalog: &Catalog, grids: bool) -> Result<Self, EngineError> {
        Self::open_catalog_with(catalog, grids, true)
    }

    /// [`ReleaseStore::open_catalog`] with the storage mode explicit.
    /// With `mmap` true, binary releases are opened zero-copy: the file
    /// is memory-mapped (owned read fallback when mapping is
    /// unavailable), columns borrow the mapping, and shipped grids stay
    /// *staged* until first use — the warm start costs map + validate
    /// instead of a full decode, and answers are bit-identical either
    /// way. With `mmap` false, every release is decoded into owned
    /// buffers up front.
    pub fn open_catalog_with(
        catalog: &Catalog,
        grids: bool,
        mmap: bool,
    ) -> Result<Self, EngineError> {
        if mmap {
            let releases = catalog.load_all_mapped().map_err(EngineError::Store)?;
            let handles = releases
                .into_iter()
                .map(|(key, loaded)| (key, loaded.into_handle()));
            Self::build(handles, grids)
        } else {
            let releases = catalog.load_all().map_err(EngineError::Store)?;
            let handles = releases
                .into_iter()
                .map(|(key, arena, grid)| (key, ShardHandle::from_release(arena, grid)));
            Self::build(handles, grids)
        }
    }

    /// Warm-start from an on-disk catalog **tolerating damaged
    /// entries**: releases that load cleanly are served bit-identically
    /// to a strict open, and every key whose file is missing, torn, or
    /// corrupt is *quarantined* — returned alongside its typed
    /// [`StoreError`] instead of failing the whole boot. A serving
    /// process prefers a degraded start over no start; the caller logs
    /// the quarantine list and `stats` surfaces it at the protocol
    /// level. Fails only when **no** release survives (an empty store
    /// cannot serve) or the surviving set itself is invalid.
    pub fn open_catalog_lossy(
        catalog: &Catalog,
        grids: bool,
        mmap: bool,
    ) -> Result<(Self, Vec<(String, StoreError)>), EngineError> {
        let (handles, quarantined) = if mmap {
            let (loaded, quarantined) = catalog.load_all_mapped_lossy();
            let handles: Vec<(String, ShardHandle)> = loaded
                .into_iter()
                .map(|(key, loaded)| (key, loaded.into_handle()))
                .collect();
            (handles, quarantined)
        } else {
            let (loaded, quarantined) = catalog.load_all_lossy();
            let handles: Vec<(String, ShardHandle)> = loaded
                .into_iter()
                .map(|(key, arena, grid)| (key, ShardHandle::from_release(arena, grid)))
                .collect();
            (handles, quarantined)
        };
        let store = Self::build(handles, grids)?;
        Ok((store, quarantined))
    }

    /// Persist every currently-serving release into `catalog` (binary
    /// format, grids included, atomic publish per release). Returns how
    /// many releases were written. Reopening the catalog via
    /// [`ReleaseStore::open_catalog`] reproduces this snapshot's answers
    /// bit for bit.
    pub fn persist_catalog(&self, catalog: &mut Catalog) -> Result<usize, EngineError> {
        let snap = self.snapshot();
        let shards = snap.synopsis().shards();
        for (key, shard) in snap.keys().iter().zip(shards) {
            catalog
                .save(
                    key,
                    shard.arena(),
                    shard.grid().map(|g| g.as_ref()),
                    ReleaseFormat::Binary,
                )
                .map_err(EngineError::Store)?;
        }
        Ok(snap.keys().len())
    }

    /// The current snapshot (two atomic ops; hold it as long as you
    /// like — later swaps never mutate it).
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.current.load()
    }

    /// Whether this store maintains per-shard grids.
    pub fn gridded(&self) -> bool {
        self.grids
    }

    /// Catalog keys in shard (sorted) order.
    pub fn keys(&self) -> Vec<String> {
        self.snapshot().keys().to_vec()
    }

    /// Version of the currently published snapshot.
    pub fn version(&self) -> u64 {
        self.snapshot().version()
    }

    /// Cumulative build counters.
    pub fn stats(&self) -> StoreStats {
        self.lock().stats
    }

    /// Time since the current snapshot was published.
    pub fn snapshot_age(&self) -> Duration {
        self.lock().published_at.elapsed()
    }

    /// Attach telemetry: mutations record their latency and counts
    /// through `metrics` from here on. The publishes/grids already
    /// counted (the open itself, pre-attach mutations) are folded in,
    /// so the registry's counters match [`ReleaseStore::stats`]
    /// whenever the attach happened.
    pub fn attach_metrics(&self, metrics: Arc<EngineMetrics>) {
        let mut inner = self.lock();
        metrics.publishes.add(inner.stats.publishes);
        metrics.grids_built.add(inner.stats.grids_built);
        inner.metrics = Some(metrics);
    }

    /// Serve a new release under a fresh key. Fails with
    /// [`EngineError::DuplicateKey`] if the key is taken.
    pub fn add(
        &self,
        key: impl Into<String>,
        release: impl Into<ShardHandle>,
    ) -> Result<SwapReport, EngineError> {
        self.add_with(key, release, |_| Ok(()))
    }

    /// [`ReleaseStore::add`] with a durability hook: `persist` runs
    /// after the staged catalog validated and the next snapshot built,
    /// but **before** publication — journal the mutation there and an
    /// ack can never outrun its record. A `persist` error aborts the
    /// whole mutation.
    pub fn add_with(
        &self,
        key: impl Into<String>,
        release: impl Into<ShardHandle>,
        persist: impl FnOnce(&BTreeMap<String, ShardHandle>) -> Result<(), EngineError>,
    ) -> Result<SwapReport, EngineError> {
        let key = key.into();
        let handle = release.into();
        self.mutate_with(
            move |catalog| {
                if catalog.contains_key(&key) {
                    return Err(EngineError::DuplicateKey(key));
                }
                catalog.insert(key, handle);
                Ok(())
            },
            persist,
        )
    }

    /// Replace the release serving under `key` — the epoch swap. Only
    /// the routing arena and (in a gridded store) the new release's grid
    /// are rebuilt; see [`SwapReport`].
    pub fn swap(
        &self,
        key: impl Into<String>,
        release: impl Into<ShardHandle>,
    ) -> Result<SwapReport, EngineError> {
        self.swap_with(key, release, |_| Ok(()))
    }

    /// [`ReleaseStore::swap`] with a durability hook; see
    /// [`ReleaseStore::add_with`].
    pub fn swap_with(
        &self,
        key: impl Into<String>,
        release: impl Into<ShardHandle>,
        persist: impl FnOnce(&BTreeMap<String, ShardHandle>) -> Result<(), EngineError>,
    ) -> Result<SwapReport, EngineError> {
        let key = key.into();
        let handle = release.into();
        self.mutate_with(
            move |catalog| {
                if !catalog.contains_key(&key) {
                    return Err(EngineError::UnknownKey(key));
                }
                catalog.insert(key, handle);
                Ok(())
            },
            persist,
        )
    }

    /// Stop serving `key`. The store refuses to become empty.
    pub fn retire(&self, key: &str) -> Result<SwapReport, EngineError> {
        self.retire_with(key, |_| Ok(()))
    }

    /// [`ReleaseStore::retire`] with a durability hook; see
    /// [`ReleaseStore::add_with`].
    pub fn retire_with(
        &self,
        key: &str,
        persist: impl FnOnce(&BTreeMap<String, ShardHandle>) -> Result<(), EngineError>,
    ) -> Result<SwapReport, EngineError> {
        self.mutate_with(
            |catalog| {
                if catalog.remove(key).is_none() {
                    return Err(EngineError::UnknownKey(key.to_string()));
                }
                Ok(())
            },
            persist,
        )
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // a mutation never leaves `inner` partially written (publication
        // is the last step), so a poisoned lock is safe to adopt
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Stage `op` on a copy of the catalog, validate, build the next
    /// snapshot, run the `persist` durability hook, and only then
    /// publish. Any error — the op's, the build's, or `persist`'s —
    /// leaves the store exactly as it was. `persist` is deliberately
    /// the **last** fallible step: when it journals the mutation, a
    /// record exists for every published (acked) state, and no record
    /// exists for a state that failed validation.
    fn mutate_with(
        &self,
        op: impl FnOnce(&mut BTreeMap<String, ShardHandle>) -> Result<(), EngineError>,
        persist: impl FnOnce(&BTreeMap<String, ShardHandle>) -> Result<(), EngineError>,
    ) -> Result<SwapReport, EngineError> {
        let mut inner = self.lock();
        let mutation_start = (inner.metrics.is_some() && telemetry::enabled()).then(Instant::now);
        let mut next = inner.catalog.clone(); // Arc bumps, not array copies
        op(&mut next)?;
        if next.is_empty() {
            return Err(EngineError::WouldBeEmpty);
        }
        let version = inner.version + 1;
        let (snapshot, grids_built, grid_cells_built) =
            build_snapshot(&mut next, self.grids, version)?;
        persist(&next)?;
        let shards_reused = next
            .iter()
            .filter(|(key, handle)| {
                inner
                    .catalog
                    .get(*key)
                    .is_some_and(|old| Arc::ptr_eq(old.arena_arc(), handle.arena_arc()))
            })
            .count();
        let report = SwapReport {
            version,
            shard_count: next.len(),
            routing_nodes_rebuilt: snapshot.synopsis().routing_node_count(),
            grids_built,
            grid_cells_built,
            shards_reused,
        };
        inner.catalog = next;
        inner.version = version;
        inner.stats.publishes += 1;
        inner.stats.grids_built += grids_built as u64;
        inner.stats.grid_cells_built += grid_cells_built as u64;
        inner.published_at = Instant::now();
        self.current.store(snapshot);
        if let Some(m) = &inner.metrics {
            m.publishes.inc();
            m.grids_built.add(grids_built as u64);
            if let Some(t) = mutation_start {
                m.swap_us.observe(t.elapsed().as_micros() as u64);
            }
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privtree_spatial::{FrozenSynopsis, Rect};

    /// A single-node release covering `region` with released count `c`.
    fn leaf_release(region: Rect, c: f64) -> FrozenSynopsis {
        FrozenSynopsis::from_tree(&privtree_core::tree::Tree::with_root(region), &[c], "leaf")
    }

    fn strip(i: usize) -> Rect {
        Rect::new(&[i as f64 * 0.25, 0.0], &[(i as f64 + 1.0) * 0.25, 1.0])
    }

    fn open_strips() -> ReleaseStore {
        ReleaseStore::open((0..4).map(|i| {
            (
                format!("strip{i}"),
                leaf_release(strip(i), 10.0 * (i as f64 + 1.0)),
            )
        }))
        .unwrap()
    }

    #[test]
    fn open_publishes_version_one() {
        let store = open_strips();
        let snap = store.snapshot();
        assert_eq!(snap.version(), 1);
        assert_eq!(snap.shard_count(), 4);
        assert_eq!(snap.keys(), ["strip0", "strip1", "strip2", "strip3"]);
        let whole = RangeQuery::new(Rect::unit(2));
        assert_eq!(snap.answer(&whole), 100.0);
    }

    #[test]
    fn swap_publishes_and_old_snapshots_keep_answering() {
        let store = open_strips();
        let before = store.snapshot();
        let report = store.swap("strip1", leaf_release(strip(1), 200.0)).unwrap();
        assert_eq!(report.version, 2);
        assert_eq!(report.shards_reused, 3);
        assert_eq!(report.routing_nodes_rebuilt, 5);
        let after = store.snapshot();
        let whole = RangeQuery::new(Rect::unit(2));
        assert_eq!(before.answer(&whole), 100.0, "old snapshot is frozen");
        assert_eq!(after.answer(&whole), 280.0);
        // untouched shards are adopted by pointer
        for key in ["strip0", "strip2", "strip3"] {
            let i = before.keys().iter().position(|k| k == key).unwrap();
            let j = after.keys().iter().position(|k| k == key).unwrap();
            assert!(Arc::ptr_eq(
                before.synopsis().shards()[i].arena_arc(),
                after.synopsis().shards()[j].arena_arc()
            ));
        }
    }

    #[test]
    fn add_and_retire_round_trip() {
        let store = open_strips();
        assert_eq!(
            store
                .add("strip0", leaf_release(strip(0), 1.0))
                .unwrap_err(),
            EngineError::DuplicateKey("strip0".into())
        );
        let r = store
            .add(
                "strip4",
                leaf_release(Rect::new(&[1.0, 0.0], &[1.25, 1.0]), 5.0),
            )
            .unwrap();
        assert_eq!(r.shard_count, 5);
        let r = store.retire("strip4").unwrap();
        assert_eq!(r.shard_count, 4);
        assert_eq!(
            store.retire("strip4").unwrap_err(),
            EngineError::UnknownKey("strip4".into())
        );
    }

    #[test]
    fn failed_mutations_leave_the_store_unchanged() {
        let store = open_strips();
        let before = store.snapshot();
        // overlapping region: rejected by shard assembly
        let overlapping = leaf_release(Rect::new(&[0.1, 0.0], &[0.6, 1.0]), 1.0);
        assert!(matches!(
            store.add("bad", overlapping),
            Err(EngineError::Shard(ShardError::OverlappingRegions { .. }))
        ));
        assert!(matches!(
            store.swap("missing", leaf_release(strip(0), 1.0)),
            Err(EngineError::UnknownKey(_))
        ));
        let after = store.snapshot();
        assert_eq!(after.version(), before.version());
        assert_eq!(store.keys(), ["strip0", "strip1", "strip2", "strip3"]);
    }

    #[test]
    fn store_refuses_to_become_empty() {
        let store = ReleaseStore::open([("only", leaf_release(Rect::unit(2), 7.0))]).unwrap();
        assert_eq!(store.retire("only").unwrap_err(), EngineError::WouldBeEmpty);
        assert_eq!(store.snapshot().shard_count(), 1);
        assert!(matches!(
            ReleaseStore::open(Vec::<(String, FrozenSynopsis)>::new()),
            Err(EngineError::Shard(ShardError::Empty))
        ));
    }

    #[test]
    fn gridded_store_builds_one_grid_per_new_release() {
        let store = ReleaseStore::open_gridded(
            (0..4).map(|i| (format!("strip{i}"), leaf_release(strip(i), 4.0))),
        )
        .unwrap();
        assert_eq!(store.stats().grids_built, 4);
        let before = store.snapshot();
        let report = store.swap("strip2", leaf_release(strip(2), 9.0)).unwrap();
        assert_eq!(report.grids_built, 1, "only the swapped shard's grid");
        assert!(report.grid_cells_built > 0);
        assert_eq!(store.stats().grids_built, 5);
        // shard-set validation runs before any grid precompute: a release
        // that is both overlapping and ungriddable must fail with the
        // (cheap) shard error, not the (expensive) grid one
        let region = Rect::new(&[0.1, 0.0], &[0.6, 1.0]);
        let mut tree = privtree_core::tree::Tree::with_root(region);
        tree.add_children(tree.root(), region.bisect(&[0, 1]));
        let overlapping_and_inconsistent =
            FrozenSynopsis::from_tree(&tree, &[100.0, 1.0, 1.0, 1.0, 1.0], "bad");
        assert!(matches!(
            store.add("bad", overlapping_and_inconsistent),
            Err(EngineError::Shard(ShardError::OverlappingRegions { .. }))
        ));
        let after = store.snapshot();
        // untouched shards keep their grids by pointer
        for key in ["strip0", "strip1", "strip3"] {
            let i = before.keys().iter().position(|k| k == key).unwrap();
            let j = after.keys().iter().position(|k| k == key).unwrap();
            assert!(Arc::ptr_eq(
                before.synopsis().shards()[i].grid().unwrap(),
                after.synopsis().shards()[j].grid().unwrap()
            ));
        }
    }
}
