//! Task metrics for the sequence experiments (Section 6.2).

use std::collections::HashSet;
use std::hash::Hash;

/// Precision of a returned top-k set against the exact top-k set:
/// `|K(D) ∩ A(D)| / k` — the measure of Figure 6.
pub fn precision_at_k<T: Eq + Hash>(exact: &[T], returned: &[T], k: usize) -> f64 {
    assert!(k > 0);
    let exact_set: HashSet<&T> = exact.iter().take(k).collect();
    let hit = returned
        .iter()
        .take(k)
        .filter(|r| exact_set.contains(r))
        .count();
    hit as f64 / k as f64
}

/// Total variation distance between two discrete distributions given as
/// histograms over `0..max_len` (they are normalized internally):
/// `TVD = ½ Σ |p_i − q_i|` — the measure of Figure 7.
pub fn total_variation_distance(hist_p: &[f64], hist_q: &[f64]) -> f64 {
    let n = hist_p.len().max(hist_q.len());
    let sum_p: f64 = hist_p.iter().sum();
    let sum_q: f64 = hist_q.iter().sum();
    let mut tvd = 0.0;
    for i in 0..n {
        let p = if sum_p > 0.0 {
            hist_p.get(i).copied().unwrap_or(0.0) / sum_p
        } else {
            0.0
        };
        let q = if sum_q > 0.0 {
            hist_q.get(i).copied().unwrap_or(0.0) / sum_q
        } else {
            0.0
        };
        tvd += (p - q).abs();
    }
    0.5 * tvd
}

/// Histogram of sequence lengths: `out[l]` = number of sequences of length
/// `l` (lengths above `max_len` are clamped into the last bucket).
pub fn length_histogram(lengths: impl Iterator<Item = usize>, max_len: usize) -> Vec<f64> {
    let mut hist = vec![0.0; max_len + 1];
    for l in lengths {
        hist[l.min(max_len)] += 1.0;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precision_basics() {
        let exact = vec!["a", "b", "c", "d"];
        let ret = vec!["b", "x", "a", "y"];
        assert!((precision_at_k(&exact, &ret, 4) - 0.5).abs() < 1e-12);
        assert_eq!(precision_at_k(&exact, &exact, 4), 1.0);
        assert_eq!(precision_at_k(&exact, &["z"], 1), 0.0);
    }

    #[test]
    fn precision_respects_k_prefix() {
        let exact = vec![1, 2, 3, 4];
        let ret = vec![4, 3, 9, 9];
        // at k=2 only {1,2} count as exact; returned prefix {4,3} misses
        assert_eq!(precision_at_k(&exact, &ret, 2), 0.0);
        // at k=4, {4,3} are in the exact top-4
        assert!((precision_at_k(&exact, &ret, 4) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn tvd_of_identical_is_zero() {
        let h = vec![1.0, 2.0, 3.0];
        assert_eq!(total_variation_distance(&h, &h), 0.0);
    }

    #[test]
    fn tvd_of_disjoint_is_one() {
        let p = vec![1.0, 0.0];
        let q = vec![0.0, 1.0];
        assert!((total_variation_distance(&p, &q) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tvd_handles_unequal_lengths_and_scales() {
        let p = vec![2.0, 2.0]; // uniform over {0,1}
        let q = vec![1.0, 1.0, 1.0, 1.0]; // uniform over {0..3}
                                          // p = (.5,.5,0,0), q = (.25,.25,.25,.25) → TVD = .5(.25+.25+.25+.25) = .5
        assert!((total_variation_distance(&p, &q) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn length_histogram_clamps() {
        let h = length_histogram([1usize, 2, 2, 99].into_iter(), 10);
        assert_eq!(h[1], 1.0);
        assert_eq!(h[2], 2.0);
        assert_eq!(h[10], 1.0);
        assert_eq!(h.iter().sum::<f64>(), 4.0);
    }
}
