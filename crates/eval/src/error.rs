//! Relative error with smoothing (Section 6.1).
//!
//! ```text
//! RE(q̂(D)) = |q̂(D) − q(D)| / max{q(D), Δ}
//! ```
//!
//! "where Δ is a smoothing factor set to 0.1% of the dataset cardinality
//! n" — following \[41, 50\].

/// Relative error of one answer against the truth with smoothing `delta`.
pub fn relative_error(estimate: f64, truth: f64, delta: f64) -> f64 {
    (estimate - truth).abs() / truth.max(delta)
}

/// The smoothing factor Δ = 0.1% · n.
pub fn smoothing_factor(cardinality: usize) -> f64 {
    0.001 * cardinality as f64
}

/// Average relative error over a workload.
///
/// Panics if the slices differ in length or are empty.
pub fn average_relative_error(estimates: &[f64], truths: &[f64], delta: f64) -> f64 {
    assert_eq!(estimates.len(), truths.len());
    assert!(!estimates.is_empty());
    estimates
        .iter()
        .zip(truths)
        .map(|(e, t)| relative_error(*e, *t, delta))
        .sum::<f64>()
        / estimates.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_relative_error() {
        assert!((relative_error(110.0, 100.0, 1.0) - 0.1).abs() < 1e-12);
        assert_eq!(relative_error(100.0, 100.0, 1.0), 0.0);
    }

    #[test]
    fn smoothing_kicks_in_for_tiny_truths() {
        // truth 0 would divide by zero; Δ takes over
        let re = relative_error(5.0, 0.0, 100.0);
        assert!((re - 0.05).abs() < 1e-12);
        // above Δ the truth dominates
        let re2 = relative_error(210.0, 200.0, 100.0);
        assert!((re2 - 0.05).abs() < 1e-12);
    }

    #[test]
    fn smoothing_factor_is_point_one_percent() {
        assert_eq!(smoothing_factor(1_634_165), 1634.165);
    }

    #[test]
    fn average_over_workload() {
        let est = [110.0, 90.0, 100.0];
        let truth = [100.0, 100.0, 100.0];
        let avg = average_relative_error(&est, &truth, 1.0);
        assert!((avg - 0.2 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        average_relative_error(&[1.0], &[1.0, 2.0], 1.0);
    }
}
