//! Plain-text series tables shaped like the paper's figures.
//!
//! Each figure in Section 6 plots one metric against the privacy budget ε
//! for several methods. [`SeriesTable`] prints the same data as rows:
//! one column per ε, one row per method — the textual equivalent of a
//! figure panel.

/// A named collection of (series → value-per-x) rows.
#[derive(Debug, Clone)]
pub struct SeriesTable {
    title: String,
    x_label: String,
    x_values: Vec<f64>,
    rows: Vec<(String, Vec<f64>)>,
    /// formats values: e.g. percentages for relative error
    percent: bool,
}

impl SeriesTable {
    /// A table titled `title` with x-axis `x_label` over `x_values`.
    pub fn new(title: &str, x_label: &str, x_values: &[f64]) -> Self {
        Self {
            title: title.to_string(),
            x_label: x_label.to_string(),
            x_values: x_values.to_vec(),
            rows: Vec::new(),
            percent: false,
        }
    }

    /// Format values as percentages (the paper's relative-error axes).
    pub fn with_percent(mut self) -> Self {
        self.percent = true;
        self
    }

    /// Add a series row; the value count must match the x-axis.
    pub fn push_row(&mut self, name: &str, values: Vec<f64>) {
        assert_eq!(values.len(), self.x_values.len(), "row length mismatch");
        self.rows.push((name.to_string(), values));
    }

    /// Access rows (for tests and post-processing).
    pub fn rows(&self) -> &[(String, Vec<f64>)] {
        &self.rows
    }

    /// Render as an aligned plain-text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let name_w = self
            .rows
            .iter()
            .map(|(n, _)| n.len())
            .chain([self.x_label.len()])
            .max()
            .unwrap_or(8)
            .max(8);
        let col_w = 10usize;
        out.push_str(&format!("{:<name_w$}", self.x_label));
        for x in &self.x_values {
            out.push_str(&format!(" {:>col_w$}", trim_float(*x)));
        }
        out.push('\n');
        for (name, vals) in &self.rows {
            out.push_str(&format!("{name:<name_w$}"));
            for v in vals {
                let s = if self.percent {
                    format!("{:.3}%", v * 100.0)
                } else if v.abs() >= 1000.0 {
                    format!("{v:.0}")
                } else {
                    format!("{v:.4}")
                };
                out.push_str(&format!(" {s:>col_w$}"));
            }
            out.push('\n');
        }
        out
    }
}

fn trim_float(x: f64) -> String {
    if x == x.trunc() {
        format!("{x:.0}")
    } else {
        format!("{x}")
    }
}

impl std::fmt::Display for SeriesTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_rows() {
        let mut t =
            SeriesTable::new("Fig 5a: road - small", "epsilon", &[0.05, 0.1]).with_percent();
        t.push_row("PrivTree", vec![0.005, 0.003]);
        t.push_row("UG", vec![0.02, 0.012]);
        let s = t.render();
        assert!(s.contains("Fig 5a"));
        assert!(s.contains("PrivTree"));
        assert!(s.contains("0.500%"));
        assert!(s.contains("1.200%"));
        assert_eq!(s.lines().count(), 4);
    }

    #[test]
    #[should_panic(expected = "row length mismatch")]
    fn row_length_must_match() {
        let mut t = SeriesTable::new("t", "x", &[1.0, 2.0]);
        t.push_row("bad", vec![1.0]);
    }

    #[test]
    fn display_matches_render() {
        let mut t = SeriesTable::new("t", "x", &[1.0]);
        t.push_row("a", vec![2.0]);
        assert_eq!(format!("{t}"), t.render());
    }

    #[test]
    fn non_percent_formats_plain() {
        let mut t = SeriesTable::new("runtime", "eps", &[0.05]);
        t.push_row("road", vec![1234.0]);
        assert!(t.render().contains("1234"));
    }
}
