//! Repeat-with-derived-seeds experiment execution.
//!
//! The paper repeats every experiment 100 times and reports averages; the
//! runner hands each repetition an independent RNG derived from a master
//! seed, so experiments are reproducible and repetitions uncorrelated.

use privtree_dp::rng::{derive_seed, seeded, SeededRng};

/// Mean and sample standard deviation of repeated runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunStats {
    /// Mean over repetitions.
    pub mean: f64,
    /// Sample standard deviation (0 for a single repetition).
    pub std: f64,
    /// Number of repetitions.
    pub reps: usize,
}

/// Run `f` once per repetition with its own RNG and return the mean of the
/// produced metric.
pub fn repeat_mean(reps: usize, master_seed: u64, mut f: impl FnMut(&mut SeededRng) -> f64) -> f64 {
    repeat_stats(reps, master_seed, &mut f).mean
}

/// Run `f` once per repetition and return mean/std/reps.
pub fn repeat_stats(
    reps: usize,
    master_seed: u64,
    f: &mut impl FnMut(&mut SeededRng) -> f64,
) -> RunStats {
    assert!(reps > 0);
    let mut values = Vec::with_capacity(reps);
    for r in 0..reps {
        let mut rng = seeded(derive_seed(master_seed, r as u64));
        values.push(f(&mut rng));
    }
    let mean = values.iter().sum::<f64>() / reps as f64;
    let var = if reps > 1 {
        values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (reps - 1) as f64
    } else {
        0.0
    };
    RunStats {
        mean,
        std: var.sqrt(),
        reps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    #[test]
    fn mean_of_constant_is_constant() {
        let s = repeat_stats(10, 1, &mut |_| 7.0);
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.reps, 10);
    }

    #[test]
    fn repetitions_get_distinct_rngs() {
        let mut seen = Vec::new();
        repeat_mean(5, 2, |rng| {
            seen.push(rng.random::<u64>());
            0.0
        });
        let mut dedup = seen.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seen.len());
    }

    #[test]
    fn reproducible_across_calls() {
        let f = |rng: &mut SeededRng| rng.random::<f64>();
        let a = repeat_stats(8, 3, &mut f.clone());
        let b = repeat_stats(8, 3, &mut f.clone());
        assert_eq!(a, b);
    }

    #[test]
    fn std_of_alternating_values() {
        let mut i = 0;
        let s = repeat_stats(4, 1, &mut |_| {
            i += 1;
            if i % 2 == 0 {
                1.0
            } else {
                -1.0
            }
        });
        assert_eq!(s.mean, 0.0);
        assert!((s.std - (4.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }
}
