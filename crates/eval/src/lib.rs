//! Evaluation metrics and the experiment harness shared by all benchmark
//! binaries (Section 6 of the paper).
//!
//! * [`error`] — relative error with the 0.1%·n smoothing factor.
//! * [`metrics`] — precision@k and total variation distance.
//! * [`runner`] — repeat-with-derived-seeds experiment execution.
//! * [`table`] — plain-text tables shaped like the paper's figures.

pub mod error;
pub mod metrics;
pub mod runner;
pub mod table;

pub use error::{average_relative_error, relative_error};
pub use metrics::{precision_at_k, total_variation_distance};
pub use runner::{repeat_mean, repeat_stats, RunStats};
pub use table::SeriesTable;

/// The privacy-budget sweep used in every experiment of Section 6.
pub const EPSILONS: [f64; 6] = [0.05, 0.1, 0.2, 0.4, 0.8, 1.6];
