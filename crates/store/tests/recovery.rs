//! Degraded opens and crashed-writer recovery: a catalog with damaged
//! entries quarantines them (typed, per-key) instead of refusing to
//! load, surviving releases load **bit-identically** to a strict open,
//! and `Catalog::open` sweeps the residue a dying writer can leave
//! behind — stale `.tmp` siblings and orphaned release files — without
//! touching anything it does not manage.

use privtree_dp::budget::Epsilon;
use privtree_dp::rng::seeded;
use privtree_spatial::dataset::PointSet;
use privtree_spatial::geom::Rect;
use privtree_spatial::quadtree::SplitConfig;
use privtree_spatial::FrozenSynopsis;
use privtree_store::{Catalog, FsyncPolicy, ReleaseFormat, StoreError};
use rand::RngExt;

fn sample_release(seed: u64, points: usize) -> FrozenSynopsis {
    let mut rng = seeded(seed);
    let mut ps = PointSet::new(2);
    for _ in 0..points {
        ps.push(&[rng.random::<f64>(), rng.random::<f64>() * 0.7]);
    }
    privtree_spatial::synopsis::privtree_synopsis(
        &ps,
        Rect::unit(2),
        SplitConfig::full(2),
        Epsilon::new(1.0).unwrap(),
        &mut seeded(seed ^ 0x9e37),
    )
    .unwrap()
    .freeze()
}

/// A scratch directory that cleans up after itself.
struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(name: &str) -> Self {
        let path =
            std::env::temp_dir().join(format!("privtree-recovery-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        Self(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn bits(counts: &[f64]) -> Vec<u64> {
    counts.iter().map(|c| c.to_bits()).collect()
}

/// One corrupt entry quarantines that key — strict loads fail whole,
/// lossy loads serve everything else with the exact same bits.
#[test]
fn lossy_load_quarantines_damaged_entries_and_serves_the_rest() {
    let dir = TempDir::new("lossy");
    let mut catalog = Catalog::open_or_create(&dir.0).unwrap();
    for (key, seed) in [("alpha", 11u64), ("beta", 22), ("gamma", 33)] {
        catalog
            .save(key, &sample_release(seed, 250), None, ReleaseFormat::Binary)
            .unwrap();
    }
    // the reference: every release as a clean open loads it
    let clean: Vec<(String, Vec<u64>)> = catalog
        .load_all()
        .unwrap()
        .into_iter()
        .map(|(k, arena, _)| (k, bits(arena.counts())))
        .collect();

    // flip one payload byte in beta's file (length unchanged, so only
    // the checksum can catch it) and delete gamma's file outright
    let beta_file = dir.0.join(&catalog.entry("beta").unwrap().file);
    let mut bytes = std::fs::read(&beta_file).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&beta_file, &bytes).unwrap();
    let gamma_file = dir.0.join(&catalog.entry("gamma").unwrap().file);
    std::fs::remove_file(&gamma_file).unwrap();
    drop(catalog);

    // NB: reopen *before* asserting — the recovery sweep must not
    // mistake the still-referenced (if damaged) files for orphans
    let catalog = Catalog::open(&dir.0).unwrap();
    assert!(catalog.recovery_sweep().is_clean());
    assert!(catalog.load_all().is_err(), "strict load must fail whole");
    assert!(catalog.load_all_mapped().is_err());

    let (loaded, quarantined) = catalog.load_all_lossy();
    assert_eq!(
        loaded
            .iter()
            .map(|(k, _, _)| k.as_str())
            .collect::<Vec<_>>(),
        ["alpha"],
        "only the undamaged release survives"
    );
    assert_eq!(bits(loaded[0].1.counts()), clean[0].1, "bit-identical");
    assert_eq!(quarantined.len(), 2);
    let reason = |key: &str| {
        quarantined
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, e)| e.clone())
            .unwrap()
    };
    assert!(
        matches!(reason("beta"), StoreError::ChecksumMismatch { .. }),
        "torn payload pins the checksum: {:?}",
        reason("beta")
    );
    assert!(
        matches!(reason("gamma"), StoreError::Io { .. }),
        "missing file is an IO quarantine: {:?}",
        reason("gamma")
    );

    // the zero-copy path degrades identically
    let (mapped, mapped_quarantined) = catalog.load_all_mapped_lossy();
    assert_eq!(mapped.len(), 1);
    assert_eq!(mapped[0].0, "alpha");
    assert_eq!(bits(mapped[0].1.arena.counts()), clean[0].1);
    assert_eq!(mapped_quarantined.len(), 2);
}

/// `Catalog::open` removes a dead writer's residue — `.tmp` siblings
/// and orphaned release-shaped files — and leaves everything else
/// (live releases, unrelated files) alone.
#[test]
fn open_sweeps_stale_tmp_and_orphan_files() {
    let dir = TempDir::new("sweep");
    let mut catalog = Catalog::open_or_create(&dir.0).unwrap();
    let arena = sample_release(7, 250);
    catalog
        .save("live", &arena, None, ReleaseFormat::Binary)
        .unwrap();
    let live_counts = bits(arena.counts());
    drop(catalog);

    // residue a crashed writer could leave: a torn .tmp, an orphaned
    // release file no manifest entry references — plus a bystander
    // file the sweep must not touch
    std::fs::write(dir.0.join("live-00000000.ptbin.tmp"), b"torn").unwrap();
    std::fs::write(dir.0.join("ghost-deadbeef.ptbin"), b"orphan").unwrap();
    std::fs::write(dir.0.join("notes.md"), b"operator notes").unwrap();

    let catalog = Catalog::open(&dir.0).unwrap();
    let sweep = catalog.recovery_sweep();
    assert_eq!(sweep.tmp_files, 1, "stale .tmp swept");
    assert_eq!(sweep.orphan_files, 1, "orphan release swept");
    assert!(!sweep.is_clean());
    assert!(!dir.0.join("live-00000000.ptbin.tmp").exists());
    assert!(!dir.0.join("ghost-deadbeef.ptbin").exists());
    assert!(
        dir.0.join("notes.md").exists(),
        "the sweep only touches files it manages"
    );
    // the live release is untouched and still loads bit-identically
    let (back, _) = catalog.load("live").unwrap();
    assert_eq!(bits(back.counts()), live_counts);

    // a second open finds nothing left to do
    let again = Catalog::open(&dir.0).unwrap();
    assert!(again.recovery_sweep().is_clean());
}

/// A writer that dies mid-rotation can strand journal residue: a
/// half-written segment `.tmp`, or a rotated-out segment the manifest
/// no longer references. `Catalog::open` sweeps both, leaves the
/// **active** segment and every bystander alone, and the journaled
/// state still replays.
#[test]
fn open_sweeps_dead_writer_journal_residue() {
    let dir = TempDir::new("journal-residue");
    let mut catalog = Catalog::open_or_create(&dir.0).unwrap();
    catalog.enable_journal(FsyncPolicy::Always).unwrap();
    catalog
        .save("live", &sample_release(9, 250), None, ReleaseFormat::Binary)
        .unwrap();
    // rotate once so the active segment has a non-zero base sequence —
    // the sweep must key off the manifest reference, not the name
    catalog.checkpoint().unwrap();
    catalog
        .save(
            "live",
            &sample_release(10, 250),
            None,
            ReleaseFormat::Binary,
        )
        .unwrap();
    let active = catalog.journal_segment().unwrap().to_string();
    drop(catalog);

    // residue a dying writer could leave behind: a torn segment .tmp,
    // an orphaned rotated-out segment, and a bystander the sweep must
    // never touch
    std::fs::write(dir.0.join("journal-00000000000000ff.bin.tmp"), b"torn").unwrap();
    std::fs::write(dir.0.join("journal-00000000deadbeef.bin"), b"stale segment").unwrap();
    std::fs::write(dir.0.join("journal.log"), b"not ours").unwrap();

    let catalog = Catalog::open(&dir.0).unwrap();
    let sweep = catalog.recovery_sweep();
    assert_eq!(sweep.tmp_files, 1, "segment .tmp swept");
    assert_eq!(sweep.journal_files, 1, "orphaned rotated segment swept");
    assert_eq!(sweep.orphan_files, 0);
    assert!(!dir.0.join("journal-00000000000000ff.bin.tmp").exists());
    assert!(!dir.0.join("journal-00000000deadbeef.bin").exists());
    assert!(
        dir.0.join("journal.log").exists(),
        "only journal-<seq>.bin names are managed"
    );
    assert!(
        dir.0.join(&active).exists(),
        "the referenced active segment survives the sweep"
    );
    assert_eq!(catalog.replayed_ops(), 1, "the post-rotation op replays");

    // a second open finds nothing left to do
    let again = Catalog::open(&dir.0).unwrap();
    assert!(again.recovery_sweep().is_clean());
    assert_eq!(again.replayed_ops(), 1);
}
