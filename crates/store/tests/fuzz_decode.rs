//! Fuzz-style robustness of the `privtree-bin` readers: random byte
//! mutations — flips, truncations, extensions — of a **valid** release
//! file must come back from both the owned decoder
//! ([`decode_release`]) and the zero-copy view
//! ([`decode_release_view`]) as a typed [`StoreError`], never a panic,
//! and never an allocation sized by attacker-controlled counts that
//! the payload cannot back. Hostile headers advertising billions of
//! nodes are rejected by arithmetic against the actual byte length
//! before any buffer is sized.

use std::sync::Arc;

use privtree_dp::budget::Epsilon;
use privtree_dp::rng::seeded;
use privtree_spatial::dataset::PointSet;
use privtree_spatial::geom::Rect;
use privtree_spatial::grid_route::CellGrid;
use privtree_spatial::quadtree::SplitConfig;
use privtree_spatial::{FrozenSynopsis, StableBytes};
use privtree_store::{decode_release, decode_release_view, encode_release, ReleaseBytes};
use proptest::prelude::*;
use rand::RngExt;

fn sample_release(seed: u64) -> FrozenSynopsis {
    let mut rng = seeded(seed);
    let mut ps = PointSet::new(2);
    for _ in 0..220 {
        ps.push(&[rng.random::<f64>(), rng.random::<f64>() * 0.8]);
    }
    privtree_spatial::synopsis::privtree_synopsis(
        &ps,
        Rect::unit(2),
        SplitConfig::full(2),
        Epsilon::new(1.0).unwrap(),
        &mut seeded(seed ^ 0x6b45),
    )
    .unwrap()
    .freeze()
}

/// Two valid corpora: a plain release and one shipping a grid section
/// (so mutations also land in grid bins/anchors/values framing).
fn corpus() -> &'static [Vec<u8>; 2] {
    static CORPUS: std::sync::OnceLock<[Vec<u8>; 2]> = std::sync::OnceLock::new();
    CORPUS.get_or_init(|| {
        let plain = sample_release(3);
        let gridded = sample_release(4);
        let grid = CellGrid::build(&gridded, &[8, 8], None).unwrap();
        [
            encode_release(&plain, None),
            encode_release(&gridded, Some(&grid)),
        ]
    })
}

/// Feed one mutant through both read paths. The property is typed
/// failure: any `Err` is fine (it is a `StoreError` by construction
/// and must render), `Ok` is fine (the mutation missed every
/// checksummed byte — e.g. a zero-length truncation of trailing
/// garbage we appended); what must never happen is a panic or an
/// abort, which the test harness itself converts into a failure.
fn both_paths_fail_typed(bytes: &[u8]) {
    if let Err(e) = decode_release(bytes) {
        let _ = e.to_string();
    }
    let owner: Arc<dyn StableBytes> = Arc::new(ReleaseBytes::from_vec(bytes.to_vec()));
    if let Err(e) = decode_release_view(&owner) {
        let _ = e.to_string();
    }
}

proptest! {
    /// Random XOR flips at random offsets (each code packs an offset
    /// and a non-zero mask).
    #[test]
    fn random_byte_flips_never_panic(
        which in 0usize..2,
        flips in proptest::collection::vec(0usize..100_000_000, 1..8),
    ) {
        let mut bytes = corpus()[which].clone();
        let len = bytes.len();
        for code in flips {
            let (offset, mask) = (code / 255, (code % 255 + 1) as u8);
            bytes[offset % len] ^= mask;
        }
        both_paths_fail_typed(&bytes);
    }

    /// Random truncations — including mid-header and mid-record — and
    /// random garbage extensions.
    #[test]
    fn truncations_and_extensions_never_panic(
        which in 0usize..2,
        cut in 0usize..1_000_000,
        extend in 0usize..64,
        fill in 0usize..256,
    ) {
        let valid = &corpus()[which];
        let mut bytes = valid[..cut % (valid.len() + 1)].to_vec();
        bytes.extend(std::iter::repeat_n(fill as u8, extend));
        both_paths_fail_typed(&bytes);
    }

    /// Flips targeted at the fixed header — version, dims, node/cell
    /// counts, section table — where a naive reader would size
    /// allocations straight from the mutated fields.
    #[test]
    fn header_flips_never_panic_or_overallocate(
        which in 0usize..2,
        offset in 0usize..64,
        mask in 1usize..256,
    ) {
        let mut bytes = corpus()[which].clone();
        let idx = offset % bytes.len().min(64);
        bytes[idx] ^= mask as u8;
        both_paths_fail_typed(&bytes);
    }
}

/// A hostile header advertising `u32::MAX` nodes over a tiny payload
/// must be rejected by length arithmetic — a typed error, not a
/// 100-GB reservation. (If the decoder sized buffers from the header
/// alone, this test would OOM or crash rather than fail an assert.)
#[test]
fn absurd_counts_are_rejected_before_allocation() {
    for which in 0..2 {
        let bytes = corpus()[which].clone();
        // the node-count field lives in the fixed header right after
        // magic + version; stamp every plausible u32 slot in the first
        // 32 bytes with u32::MAX and require typed failure each time
        for slot in (8..32).step_by(4) {
            let mut mutant = bytes.clone();
            mutant[slot..slot + 4].copy_from_slice(&u32::MAX.to_le_bytes());
            assert!(
                decode_release(&mutant).is_err(),
                "corpus {which}: absurd count at {slot} must be rejected"
            );
            let owner: Arc<dyn StableBytes> = Arc::new(ReleaseBytes::from_vec(mutant));
            assert!(
                decode_release_view(&owner).is_err(),
                "corpus {which}: view must reject absurd count at {slot}"
            );
        }
        // and the unmutated corpus still decodes — the corpus itself
        // is not the thing failing
        decode_release(&bytes).expect("pristine corpus decodes");
    }
}
