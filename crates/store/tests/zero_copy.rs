//! The zero-copy serving contract: a release opened through a memory
//! mapping answers every query **bitwise identically** to the owned
//! binary load and the text load — for plain and gridded releases — and
//! legacy (unpadded, pre-alignment) files still decode exactly, just
//! through the copy fallback.

use std::sync::Arc;

use privtree_dp::budget::Epsilon;
use privtree_dp::rng::seeded;
use privtree_spatial::dataset::PointSet;
use privtree_spatial::geom::Rect;
use privtree_spatial::grid_route::GridRoutedSynopsis;
use privtree_spatial::quadtree::SplitConfig;
use privtree_spatial::query::{RangeCountSynopsis, RangeQuery};
use privtree_spatial::serialize::{release_from_text, release_to_text};
use privtree_spatial::{FrozenSynopsis, StableBytes};
use privtree_store::{
    decode_release, decode_release_view, encode_release, encode_release_unaligned, Catalog,
    ReleaseBytes, ReleaseFormat,
};
use proptest::prelude::*;
use rand::RngExt;

/// A real PrivTree release over the unit square, shaped by `seed`.
fn sample_release(seed: u64, points: usize) -> FrozenSynopsis {
    let mut rng = seeded(seed);
    let mut ps = PointSet::new(2);
    for _ in 0..points {
        ps.push(&[rng.random::<f64>().powi(2), rng.random::<f64>() * 0.8]);
    }
    privtree_spatial::synopsis::privtree_synopsis(
        &ps,
        Rect::unit(2),
        SplitConfig::full(2),
        Epsilon::new(1.0).unwrap(),
        &mut seeded(seed ^ 0x5151),
    )
    .unwrap()
    .freeze()
}

fn workload(n: usize, seed: u64) -> Vec<RangeQuery> {
    let mut rng = seeded(seed);
    (0..n)
        .map(|_| {
            let (a, b) = (rng.random::<f64>(), rng.random::<f64>());
            let (c, d) = (rng.random::<f64>(), rng.random::<f64>());
            RangeQuery::new(Rect::new(&[a.min(b), c.min(d)], &[a.max(b), c.max(d)]))
        })
        .collect()
}

/// Assert two releases carry identical bits and answer identically.
fn assert_release_eq(
    label: &str,
    (a, ag): (
        &FrozenSynopsis,
        Option<&privtree_spatial::grid_route::CellGrid>,
    ),
    (b, bg): (
        &FrozenSynopsis,
        Option<&privtree_spatial::grid_route::CellGrid>,
    ),
    queries: &[RangeQuery],
) {
    assert_eq!(a.dims(), b.dims(), "{label}: dims");
    assert_eq!(a.lo_coords(), b.lo_coords(), "{label}: lo");
    assert_eq!(a.hi_coords(), b.hi_coords(), "{label}: hi");
    assert_eq!(a.first_child(), b.first_child(), "{label}: first_child");
    assert_eq!(a.child_count(), b.child_count(), "{label}: child_count");
    assert_eq!(a.counts(), b.counts(), "{label}: counts");
    assert_eq!(ag.is_some(), bg.is_some(), "{label}: grid presence");
    for q in queries {
        match (ag, bg) {
            (Some(ag), Some(bg)) => {
                assert_eq!(ag.bins(), bg.bins(), "{label}: bins");
                assert_eq!(ag.anchors(), bg.anchors(), "{label}: anchors");
                assert_eq!(ag.values(), bg.values(), "{label}: values");
                let ra = GridRoutedSynopsis::from_prebuilt(a.clone(), ag.clone());
                let rb = GridRoutedSynopsis::from_prebuilt(b.clone(), bg.clone());
                assert_eq!(
                    ra.answer(q).to_bits(),
                    rb.answer(q).to_bits(),
                    "{label}: gridded answer"
                );
            }
            _ => {
                assert_eq!(
                    a.answer(q).to_bits(),
                    b.answer(q).to_bits(),
                    "{label}: answer"
                );
            }
        }
    }
}

proptest! {
    /// mmap-opened == owned binary load == text load, to the bit, for
    /// releases with and without grids.
    #[test]
    fn mapped_view_reproduces_owned_and_text_loads(
        seed in 0u64..10_000,
        points in 200usize..900,
        gridded in 0u8..2,
        bins in 2usize..10,
        qseed in 0u64..1000,
    ) {
        let frozen = sample_release(seed, points);
        let (arena, grid) = if gridded == 1 {
            let engine = GridRoutedSynopsis::with_bins(frozen, &[bins, bins + 1]).unwrap();
            let (a, g) = engine.into_parts();
            (a, Some(g))
        } else {
            (frozen, None)
        };
        let bytes = encode_release(&arena, grid.as_ref());
        let text = release_to_text(&arena, grid.as_ref());

        // write the release out and map it back in
        let path = std::env::temp_dir().join(format!(
            "privtree-zc-{}-{seed}-{gridded}.ptbin",
            std::process::id()
        ));
        std::fs::write(&path, &bytes).unwrap();
        let owner = ReleaseBytes::map(&path).unwrap();
        let mapped = owner.is_mapped();
        let owner: Arc<dyn StableBytes> = Arc::new(owner);
        let (view_arena, view_grid) = decode_release_view(&owner).unwrap();
        let _ = std::fs::remove_file(&path);

        // on a little-endian host the aligned layout guarantees the
        // mapped columns borrow the mapping — that is the whole point
        if mapped && cfg!(target_endian = "little") {
            prop_assert!(view_arena.borrows_storage(), "columns should borrow the mapping");
        }

        let (own_arena, own_grid) = decode_release(&bytes).unwrap();
        let (text_arena, text_grid) = release_from_text(&text).unwrap();
        let queries = workload(25, qseed);
        assert_release_eq(
            "view vs owned",
            (&view_arena, view_grid.as_ref()),
            (&own_arena, own_grid.as_ref()),
            &queries,
        );
        assert_release_eq(
            "view vs text",
            (&view_arena, view_grid.as_ref()),
            (&text_arena, text_grid.as_ref()),
            &queries,
        );
    }

    /// Pre-alignment (v1.0, unpadded) files decode bit-identically
    /// through both the copying decoder and the zero-copy view — the
    /// view silently falls back to copying the misaligned sections.
    #[test]
    fn legacy_unaligned_files_decode_identically(
        seed in 0u64..10_000,
        gridded in 0u8..2,
        qseed in 0u64..1000,
    ) {
        let frozen = sample_release(seed, 400);
        let (arena, grid) = if gridded == 1 {
            let engine = GridRoutedSynopsis::with_bins(frozen, &[5, 4]).unwrap();
            let (a, g) = engine.into_parts();
            (a, Some(g))
        } else {
            (frozen, None)
        };
        let legacy = encode_release_unaligned(&arena, grid.as_ref());
        let aligned = encode_release(&arena, grid.as_ref());
        prop_assert!(legacy != aligned, "layouts should differ on disk");

        let (own_arena, own_grid) = decode_release(&legacy).unwrap();
        let owner: Arc<dyn StableBytes> = Arc::new(ReleaseBytes::from_vec(legacy));
        let (view_arena, view_grid) = decode_release_view(&owner).unwrap();
        let (ref_arena, ref_grid) = decode_release(&aligned).unwrap();
        let queries = workload(25, qseed);
        assert_release_eq(
            "legacy owned vs aligned",
            (&own_arena, own_grid.as_ref()),
            (&ref_arena, ref_grid.as_ref()),
            &queries,
        );
        assert_release_eq(
            "legacy view vs aligned",
            (&view_arena, view_grid.as_ref()),
            (&ref_arena, ref_grid.as_ref()),
            &queries,
        );
    }
}

/// `Catalog::load_mapped` reports mapped storage, stages (rather than
/// assembles) the grid, and the staged grid assembles to the exact
/// release the copying loader produces.
#[test]
fn catalog_load_mapped_is_exact_and_reports_storage() {
    let dir = std::env::temp_dir().join(format!("privtree-zc-cat-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut cat = Catalog::open_or_create(&dir).unwrap();

    let engine = GridRoutedSynopsis::with_bins(sample_release(11, 600), &[6, 6]).unwrap();
    let (arena, grid) = engine.into_parts();
    cat.save("gridded", &arena, Some(&grid), ReleaseFormat::Binary)
        .unwrap();
    cat.save("plain", &sample_release(12, 300), None, ReleaseFormat::Text)
        .unwrap();

    let loaded = cat.load_mapped("gridded").unwrap();
    if cfg!(all(unix, feature = "mmap")) {
        assert!(loaded.is_mapped(), "binary catalog entries should map");
        let file_len = std::fs::metadata(dir.join(&cat.entry("gridded").unwrap().file))
            .unwrap()
            .len();
        assert_eq!(loaded.mapped_bytes as u64, file_len);
    }
    assert!(loaded.grid.is_none(), "grid must arrive staged, not built");
    let staged = loaded.staged_grid.as_ref().expect("staged grid parts");
    let assembled = staged.assemble(&loaded.arena).unwrap();
    let (ref_arena, ref_grid) = cat.load("gridded").unwrap();
    assert_release_eq(
        "mapped catalog vs owned catalog",
        (&loaded.arena, Some(&assembled)),
        (&ref_arena, ref_grid.as_ref()),
        &workload(25, 77),
    );

    // text entries fall back to the copying loader, reported as owned
    let text_loaded = cat.load_mapped("plain").unwrap();
    assert!(!text_loaded.is_mapped());
    assert_eq!(text_loaded.mapped_bytes, 0);
    assert!(text_loaded.staged_grid.is_none());

    // load_all_mapped covers every entry in sorted order
    let all = cat.load_all_mapped().unwrap();
    assert_eq!(
        all.iter().map(|(k, _)| k.as_str()).collect::<Vec<_>>(),
        ["gridded", "plain"]
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The mapping must outlive every borrower: columns cloned out of a
/// mapped release keep answering after the catalog entry — and the file
/// itself — are gone. (On unix the mapping pins the unlinked inode;
/// this is what makes atomic catalog swaps safe under zero-copy.)
#[test]
fn mapping_outlives_removed_catalog_entry() {
    let dir = std::env::temp_dir().join(format!("privtree-zc-unlink-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut cat = Catalog::open_or_create(&dir).unwrap();
    let arena = sample_release(21, 500);
    cat.save("epoch", &arena, None, ReleaseFormat::Binary)
        .unwrap();

    let loaded = cat.load_mapped("epoch").unwrap();
    let snapshot = loaded.arena.clone();
    cat.remove("epoch").unwrap();
    let _ = std::fs::remove_dir_all(&dir);

    // the release file is unlinked; the clone still answers exactly
    for q in &workload(25, 5) {
        assert_eq!(snapshot.answer(q).to_bits(), arena.answer(q).to_bits());
    }
}
