//! Decoder robustness: hostile `privtree-bin` bytes must always come
//! back as a typed [`StoreError`] — never a panic, and never an
//! allocation sized from an unvalidated header. The corruptions are
//! table-driven: each case mutates a valid file and names the exact
//! error variant the decoder must refuse with, and every case runs
//! through **both** decoders — the copying [`decode_release`] and the
//! zero-copy [`decode_release_view`] — which must refuse identically
//! (the zero-copy path may hand out borrowed slices of the hostile
//! bytes, so it gets no validation discount).

use std::sync::Arc;

use privtree_dp::budget::Epsilon;
use privtree_dp::rng::seeded;
use privtree_spatial::dataset::PointSet;
use privtree_spatial::geom::Rect;
use privtree_spatial::grid_route::GridRoutedSynopsis;
use privtree_spatial::quadtree::SplitConfig;
use privtree_spatial::{FrozenSynopsis, StableBytes};
use privtree_store::{
    decode_release, decode_release_view, encode_release, ReleaseBytes, StoreError, HEADER_LEN,
};
use rand::RngExt;

fn sample_release(seed: u64) -> FrozenSynopsis {
    let mut rng = seeded(seed);
    let mut ps = PointSet::new(2);
    for _ in 0..800 {
        ps.push(&[rng.random::<f64>() * 0.4, rng.random::<f64>()]);
    }
    privtree_spatial::synopsis::privtree_synopsis(
        &ps,
        Rect::unit(2),
        SplitConfig::full(2),
        Epsilon::new(1.0).unwrap(),
        &mut seeded(seed ^ 7),
    )
    .unwrap()
    .freeze()
}

/// A valid binary release without a grid.
fn plain_bytes() -> Vec<u8> {
    encode_release(&sample_release(3), None)
}

/// A valid binary release with a grid.
fn gridded_bytes() -> Vec<u8> {
    let engine = GridRoutedSynopsis::with_bins(sample_release(4), &[6, 5]).unwrap();
    let (arena, grid) = engine.into_parts();
    encode_release(&arena, Some(&grid))
}

/// One section's location inside an encoded release, as discovered by
/// walking the actual bytes (honouring the aligned-layout flag), so the
/// corruption cases never hand-compute offsets that a layout revision
/// would silently invalidate.
#[derive(Debug, Clone, Copy)]
struct Section {
    /// Offset of the padding that precedes the frame (equals `frame`
    /// when the section needed none).
    pad: usize,
    /// Offset of the 12-byte tag+length frame.
    frame: usize,
    /// Offset of the first payload byte.
    payload: usize,
    /// Payload length in bytes.
    len: usize,
    /// Offset of the 4-byte CRC.
    crc: usize,
}

/// Walk every section frame in `bytes` (which must be a structurally
/// valid release) and return them in file order.
fn walk_sections(bytes: &[u8]) -> Vec<(String, Section)> {
    let flags = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
    let aligned = flags & 2 != 0;
    let mut pos = HEADER_LEN;
    let mut out = Vec::new();
    while pos < bytes.len() {
        let pad = pos;
        if aligned {
            pos += (8 - ((pos + 12) % 8)) % 8;
        }
        let tag = String::from_utf8_lossy(&bytes[pos..pos + 4]).into_owned();
        let len = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().unwrap()) as usize;
        out.push((
            tag,
            Section {
                pad,
                frame: pos,
                payload: pos + 12,
                len,
                crc: pos + 12 + len,
            },
        ));
        pos += 12 + len + 4;
    }
    assert_eq!(pos, bytes.len(), "section walk must cover the whole file");
    out
}

/// The section carrying `tag`.
fn section(bytes: &[u8], tag: &str) -> Section {
    walk_sections(bytes)
        .into_iter()
        .find(|(t, _)| t == tag)
        .unwrap_or_else(|| panic!("no {tag} section"))
        .1
}

/// Overwrite `len` bytes at `at` with `patch`.
fn patched(mut bytes: Vec<u8>, at: usize, patch: &[u8]) -> Vec<u8> {
    bytes[at..at + patch.len()].copy_from_slice(patch);
    bytes
}

/// XOR-flip one byte.
fn flipped(mut bytes: Vec<u8>, at: usize) -> Vec<u8> {
    bytes[at] ^= 0xFF;
    bytes
}

/// Decode `bytes` through the zero-copy view path.
fn decode_view(bytes: &[u8]) -> Result<(), StoreError> {
    let owner: Arc<dyn StableBytes> = Arc::new(ReleaseBytes::from_vec(bytes.to_vec()));
    decode_release_view(&owner).map(|_| ())
}

/// One corruption case: a label, the mutated bytes, and the acceptance
/// predicate for the decoder's refusal.
type Case = (&'static str, Vec<u8>, fn(&StoreError) -> bool);

#[test]
fn corrupt_inputs_are_typed_errors() {
    let plain = plain_bytes();
    let gridded = gridded_bytes();
    let lo = section(&plain, "NLOC");
    assert!(
        lo.frame > lo.pad,
        "the first section of an aligned file needs padding — if the \
         layout changes, pick another section for the padding case"
    );

    let cases: Vec<Case> = vec![
        ("empty file", Vec::new(), |e| {
            matches!(e, StoreError::SizeMismatch { .. })
        }),
        (
            "header torn mid-way",
            plain[..HEADER_LEN / 2].to_vec(),
            |e| matches!(e, StoreError::SizeMismatch { .. }),
        ),
        ("wrong magic", patched(plain.clone(), 0, b"NOTMYFMT"), |e| {
            matches!(e, StoreError::BadMagic)
        }),
        (
            "future version",
            patched(plain.clone(), 8, &9u32.to_le_bytes()),
            |e| matches!(e, StoreError::UnsupportedVersion { found: 9 }),
        ),
        (
            "unknown flag bits",
            patched(plain.clone(), 12, &0x80u32.to_le_bytes()),
            |e| matches!(e, StoreError::BadHeader { .. }),
        ),
        (
            "zero dims",
            patched(plain.clone(), 16, &0u32.to_le_bytes()),
            |e| matches!(e, StoreError::BadHeader { .. }),
        ),
        (
            "dims past MAX_DIMS",
            patched(plain.clone(), 16, &64u32.to_le_bytes()),
            |e| matches!(e, StoreError::BadHeader { .. }),
        ),
        (
            "reserved field set",
            patched(plain.clone(), 20, &1u32.to_le_bytes()),
            |e| matches!(e, StoreError::BadHeader { .. }),
        ),
        (
            "zero nodes",
            patched(plain.clone(), 24, &0u64.to_le_bytes()),
            |e| matches!(e, StoreError::BadHeader { .. }),
        ),
        (
            // the OOM guard: a header claiming 2^40 nodes implies a file
            // size that disagrees with reality, and the decoder must say
            // so before sizing any buffer from the count
            "hostile node count",
            patched(plain.clone(), 24, &(1u64 << 40).to_le_bytes()),
            |e| matches!(e, StoreError::SizeMismatch { .. }),
        ),
        (
            "overflowing node count",
            patched(plain.clone(), 24, &u64::MAX.to_le_bytes()),
            |e| {
                matches!(
                    e,
                    StoreError::BadHeader { .. } | StoreError::SizeMismatch { .. }
                )
            },
        ),
        (
            "cells without grid flag",
            patched(plain.clone(), 32, &16u64.to_le_bytes()),
            |e| matches!(e, StoreError::BadHeader { .. }),
        ),
        (
            "grid flag with zero cells",
            patched(gridded.clone(), 32, &0u64.to_le_bytes()),
            |e| matches!(e, StoreError::BadHeader { .. }),
        ),
        (
            "truncated mid-section",
            plain[..plain.len() - 21].to_vec(),
            |e| matches!(e, StoreError::SizeMismatch { .. }),
        ),
        (
            "trailing garbage",
            {
                let mut b = plain.clone();
                b.extend_from_slice(b"extra");
                b
            },
            |e| matches!(e, StoreError::SizeMismatch { .. }),
        ),
        (
            // an oversized section length cannot change the (validated)
            // whole-file size, so only the frame check can refuse it
            "oversized section length",
            patched(plain.clone(), lo.frame + 4, &(u64::MAX / 2).to_le_bytes()),
            |e| matches!(e, StoreError::BadSection { .. }),
        ),
        (
            // a garbage byte in the inter-section padding means the
            // payload offsets are not where the aligned layout promises
            "non-zero section padding",
            flipped(plain.clone(), lo.pad),
            |e| matches!(e, StoreError::BadSection { .. }),
        ),
        (
            "flipped payload byte",
            flipped(plain.clone(), lo.payload + 3),
            |e| {
                matches!(
                    e,
                    StoreError::ChecksumMismatch {
                        section: "node-lo",
                        ..
                    }
                )
            },
        ),
        ("flipped CRC byte", flipped(plain.clone(), lo.crc), |e| {
            matches!(
                e,
                StoreError::ChecksumMismatch {
                    section: "node-lo",
                    ..
                }
            )
        }),
        (
            "flipped grid value byte",
            {
                let gv = section(&gridded, "GVAL");
                flipped(gridded.clone(), gv.payload + gv.len - 3)
            },
            |e| {
                matches!(
                    e,
                    StoreError::ChecksumMismatch {
                        section: "grid-values",
                        ..
                    }
                )
            },
        ),
    ];

    for (label, bytes, expect) in cases {
        match decode_release(&bytes) {
            Ok(_) => panic!("{label}: decoded corrupt input"),
            Err(e) => assert!(expect(&e), "{label}: unexpected error {e:?}"),
        }
        match decode_view(&bytes) {
            Ok(_) => panic!("{label}: zero-copy decoded corrupt input"),
            Err(e) => assert!(expect(&e), "{label}: unexpected zero-copy error {e:?}"),
        }
    }
}

/// Structural corruption *with a valid checksum* — the CRC is recomputed
/// after the mutation, so only the layout validator can catch it. Both
/// decode paths must refuse: the zero-copy view runs the same arena and
/// grid validation over its borrowed columns.
#[test]
fn consistent_checksums_do_not_bless_bad_layouts() {
    let arena = sample_release(9);
    let n = arena.node_count();
    let bytes = encode_release(&arena, None);
    // break the child ranges: point the root's children past the arena
    let fc = section(&bytes, "NFCH");
    let mut bad = bytes.clone();
    bad[fc.payload..fc.payload + 4].copy_from_slice(&(n as u32).to_le_bytes());
    // fix up the CRC so only layout validation can refuse
    let crc = privtree_store::format::crc32(&bad[fc.payload..fc.payload + fc.len]);
    bad[fc.crc..fc.crc + 4].copy_from_slice(&crc.to_le_bytes());
    match decode_release(&bad) {
        Err(StoreError::Layout(_)) => {}
        other => panic!("expected a layout refusal, got {other:?}"),
    }
    match decode_view(&bad) {
        Err(StoreError::Layout(_)) => {}
        other => panic!("expected a zero-copy layout refusal, got {other:?}"),
    }

    // and a grid whose anchors were re-checksummed after corruption must
    // fail grid validation, not checksum validation
    let engine = GridRoutedSynopsis::with_bins(sample_release(10), &[4, 4]).unwrap();
    let (garena, grid) = engine.into_parts();
    let gbytes = encode_release(&garena, Some(&grid));
    let ga = section(&gbytes, "GANC");
    let mut gbad = gbytes.clone();
    gbad[ga.payload..ga.payload + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    let gcrc = privtree_store::format::crc32(&gbad[ga.payload..ga.payload + ga.len]);
    gbad[ga.crc..ga.crc + 4].copy_from_slice(&gcrc.to_le_bytes());
    match decode_release(&gbad) {
        Err(StoreError::Grid(_)) => {}
        other => panic!("expected a grid refusal, got {other:?}"),
    }
    match decode_view(&gbad) {
        Err(StoreError::Grid(_)) => {}
        other => panic!("expected a zero-copy grid refusal, got {other:?}"),
    }
}
