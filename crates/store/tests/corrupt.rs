//! Decoder robustness: hostile `privtree-bin` bytes must always come
//! back as a typed [`StoreError`] — never a panic, and never an
//! allocation sized from an unvalidated header. The corruptions are
//! table-driven: each case mutates a valid file and names the exact
//! error variant the decoder must refuse with.

use privtree_dp::budget::Epsilon;
use privtree_dp::rng::seeded;
use privtree_spatial::dataset::PointSet;
use privtree_spatial::geom::Rect;
use privtree_spatial::grid_route::GridRoutedSynopsis;
use privtree_spatial::quadtree::SplitConfig;
use privtree_spatial::FrozenSynopsis;
use privtree_store::{decode_release, encode_release, StoreError, HEADER_LEN};
use rand::RngExt;

fn sample_release(seed: u64) -> FrozenSynopsis {
    let mut rng = seeded(seed);
    let mut ps = PointSet::new(2);
    for _ in 0..800 {
        ps.push(&[rng.random::<f64>() * 0.4, rng.random::<f64>()]);
    }
    privtree_spatial::synopsis::privtree_synopsis(
        &ps,
        Rect::unit(2),
        SplitConfig::full(2),
        Epsilon::new(1.0).unwrap(),
        &mut seeded(seed ^ 7),
    )
    .unwrap()
    .freeze()
}

/// A valid binary release without a grid.
fn plain_bytes() -> Vec<u8> {
    encode_release(&sample_release(3), None)
}

/// A valid binary release with a grid.
fn gridded_bytes() -> Vec<u8> {
    let engine = GridRoutedSynopsis::with_bins(sample_release(4), &[6, 5]).unwrap();
    let (arena, grid) = engine.into_parts();
    encode_release(&arena, Some(&grid))
}

/// Overwrite `len` bytes at `at` with `patch`.
fn patched(mut bytes: Vec<u8>, at: usize, patch: &[u8]) -> Vec<u8> {
    bytes[at..at + patch.len()].copy_from_slice(patch);
    bytes
}

/// XOR-flip one byte.
fn flipped(mut bytes: Vec<u8>, at: usize) -> Vec<u8> {
    bytes[at] ^= 0xFF;
    bytes
}

/// One corruption case: a label, the mutated bytes, and the acceptance
/// predicate for the decoder's refusal.
type Case = (&'static str, Vec<u8>, fn(&StoreError) -> bool);

#[test]
fn corrupt_inputs_are_typed_errors() {
    let plain = plain_bytes();
    let gridded = gridded_bytes();
    // the first section's payload starts after the header + 12-byte
    // section frame; its CRC sits 4 bytes before the next section
    let first_payload = HEADER_LEN + 12;

    let cases: Vec<Case> = vec![
        ("empty file", Vec::new(), |e| {
            matches!(e, StoreError::SizeMismatch { .. })
        }),
        (
            "header torn mid-way",
            plain[..HEADER_LEN / 2].to_vec(),
            |e| matches!(e, StoreError::SizeMismatch { .. }),
        ),
        ("wrong magic", patched(plain.clone(), 0, b"NOTMYFMT"), |e| {
            matches!(e, StoreError::BadMagic)
        }),
        (
            "future version",
            patched(plain.clone(), 8, &9u32.to_le_bytes()),
            |e| matches!(e, StoreError::UnsupportedVersion { found: 9 }),
        ),
        (
            "unknown flag bits",
            patched(plain.clone(), 12, &0x80u32.to_le_bytes()),
            |e| matches!(e, StoreError::BadHeader { .. }),
        ),
        (
            "zero dims",
            patched(plain.clone(), 16, &0u32.to_le_bytes()),
            |e| matches!(e, StoreError::BadHeader { .. }),
        ),
        (
            "dims past MAX_DIMS",
            patched(plain.clone(), 16, &64u32.to_le_bytes()),
            |e| matches!(e, StoreError::BadHeader { .. }),
        ),
        (
            "reserved field set",
            patched(plain.clone(), 20, &1u32.to_le_bytes()),
            |e| matches!(e, StoreError::BadHeader { .. }),
        ),
        (
            "zero nodes",
            patched(plain.clone(), 24, &0u64.to_le_bytes()),
            |e| matches!(e, StoreError::BadHeader { .. }),
        ),
        (
            // the OOM guard: a header claiming 2^40 nodes implies a file
            // size that disagrees with reality, and the decoder must say
            // so before sizing any buffer from the count
            "hostile node count",
            patched(plain.clone(), 24, &(1u64 << 40).to_le_bytes()),
            |e| matches!(e, StoreError::SizeMismatch { .. }),
        ),
        (
            "overflowing node count",
            patched(plain.clone(), 24, &u64::MAX.to_le_bytes()),
            |e| {
                matches!(
                    e,
                    StoreError::BadHeader { .. } | StoreError::SizeMismatch { .. }
                )
            },
        ),
        (
            "cells without grid flag",
            patched(plain.clone(), 32, &16u64.to_le_bytes()),
            |e| matches!(e, StoreError::BadHeader { .. }),
        ),
        (
            "grid flag with zero cells",
            patched(
                patched(gridded.clone(), 32, &0u64.to_le_bytes()),
                12,
                &1u32.to_le_bytes(),
            ),
            |e| matches!(e, StoreError::BadHeader { .. }),
        ),
        (
            "truncated mid-section",
            plain[..plain.len() - 21].to_vec(),
            |e| matches!(e, StoreError::SizeMismatch { .. }),
        ),
        (
            "trailing garbage",
            {
                let mut b = plain.clone();
                b.extend_from_slice(b"extra");
                b
            },
            |e| matches!(e, StoreError::SizeMismatch { .. }),
        ),
        (
            "flipped payload byte",
            flipped(plain.clone(), first_payload + 3),
            |e| {
                matches!(
                    e,
                    StoreError::ChecksumMismatch {
                        section: "node-lo",
                        ..
                    }
                )
            },
        ),
        (
            "flipped CRC byte",
            // the node-lo CRC sits right after its payload
            {
                let nodes = {
                    let mut a = [0u8; 8];
                    a.copy_from_slice(&plain[24..32]);
                    u64::from_le_bytes(a)
                };
                let crc_at = first_payload + (nodes as usize) * 2 * 8;
                flipped(plain.clone(), crc_at)
            },
            |e| {
                matches!(
                    e,
                    StoreError::ChecksumMismatch {
                        section: "node-lo",
                        ..
                    }
                )
            },
        ),
        (
            "flipped grid value byte",
            flipped(gridded.clone(), gridded.len() - 7),
            |e| {
                matches!(
                    e,
                    StoreError::ChecksumMismatch {
                        section: "grid-values",
                        ..
                    }
                )
            },
        ),
    ];

    for (label, bytes, expect) in cases {
        match decode_release(&bytes) {
            Ok(_) => panic!("{label}: decoded corrupt input"),
            Err(e) => assert!(expect(&e), "{label}: unexpected error {e:?}"),
        }
    }
}

/// Structural corruption *with a valid checksum* — the CRC is recomputed
/// after the mutation, so only the layout validator can catch it.
#[test]
fn consistent_checksums_do_not_bless_bad_layouts() {
    let arena = sample_release(9);
    let n = arena.node_count();
    let bytes = encode_release(&arena, None);
    // break the child ranges: point the root's children past the arena.
    // locate the first-child section: header + two f64 coord sections
    let coords = n * arena.dims() * 8;
    let fc_payload = HEADER_LEN + (12 + coords + 4) * 2 + 12;
    let mut bad = bytes.clone();
    bad[fc_payload..fc_payload + 4].copy_from_slice(&(n as u32).to_le_bytes());
    // fix up the CRC so only layout validation can refuse
    let crc = privtree_store::format::crc32(&bad[fc_payload..fc_payload + n * 4]);
    let crc_at = fc_payload + n * 4;
    bad[crc_at..crc_at + 4].copy_from_slice(&crc.to_le_bytes());
    match decode_release(&bad) {
        Err(StoreError::Layout(_)) => {}
        other => panic!("expected a layout refusal, got {other:?}"),
    }

    // and a grid whose anchors were re-checksummed after corruption must
    // fail grid validation, not checksum validation
    let engine = GridRoutedSynopsis::with_bins(sample_release(10), &[4, 4]).unwrap();
    let (garena, grid) = engine.into_parts();
    let gbytes = encode_release(&garena, Some(&grid));
    let gn = garena.node_count();
    let gcoords = gn * garena.dims() * 8;
    // sections: lo, hi (f64*n*d), first, kids (u32*n), counts (f64*n), gbins (u32*d)
    let anchors_payload = HEADER_LEN
        + (12 + gcoords + 4) * 2
        + (12 + gn * 4 + 4) * 2
        + (12 + gn * 8 + 4)
        + (12 + garena.dims() * 4 + 4)
        + 12;
    let mut gbad = gbytes.clone();
    gbad[anchors_payload..anchors_payload + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    let cells = grid.cells();
    let gcrc = privtree_store::format::crc32(&gbad[anchors_payload..anchors_payload + cells * 4]);
    let gcrc_at = anchors_payload + cells * 4;
    gbad[gcrc_at..gcrc_at + 4].copy_from_slice(&gcrc.to_le_bytes());
    match decode_release(&gbad) {
        Err(StoreError::Grid(_)) => {}
        other => panic!("expected a grid refusal, got {other:?}"),
    }
}
