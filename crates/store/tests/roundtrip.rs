//! The losslessness contract of `privtree-bin v1`: for random PrivTree
//! releases — gridded and ungridded — the binary path reproduces the
//! text path **exactly**. Text→binary→load answers every query with the
//! same bits as text→load, the decoded arrays equal the encoded ones,
//! and binary→text→binary is byte-identical (the text format's
//! 17-significant-digit rendering round-trips every `f64`).

use privtree_dp::budget::Epsilon;
use privtree_dp::rng::seeded;
use privtree_spatial::dataset::PointSet;
use privtree_spatial::geom::Rect;
use privtree_spatial::grid_route::GridRoutedSynopsis;
use privtree_spatial::quadtree::SplitConfig;
use privtree_spatial::query::{RangeCountSynopsis, RangeQuery};
use privtree_spatial::serialize::{release_from_text, release_to_text};
use privtree_spatial::FrozenSynopsis;
use privtree_store::{
    binary_to_text, decode_release, encode_release, text_to_binary, Catalog, ReleaseFormat,
};
use proptest::prelude::*;
use rand::RngExt;

/// A real PrivTree release over the unit square, shaped by `seed`.
fn sample_release(seed: u64, points: usize) -> FrozenSynopsis {
    let mut rng = seeded(seed);
    let mut ps = PointSet::new(2);
    for _ in 0..points {
        ps.push(&[rng.random::<f64>().powi(2), rng.random::<f64>() * 0.8]);
    }
    privtree_spatial::synopsis::privtree_synopsis(
        &ps,
        Rect::unit(2),
        SplitConfig::full(2),
        Epsilon::new(1.0).unwrap(),
        &mut seeded(seed ^ 0x5151),
    )
    .unwrap()
    .freeze()
}

fn workload(n: usize, seed: u64) -> Vec<RangeQuery> {
    let mut rng = seeded(seed);
    (0..n)
        .map(|_| {
            let (a, b) = (rng.random::<f64>(), rng.random::<f64>());
            let (c, d) = (rng.random::<f64>(), rng.random::<f64>());
            RangeQuery::new(Rect::new(&[a.min(b), c.min(d)], &[a.max(b), c.max(d)]))
        })
        .collect()
}

proptest! {
    /// text → binary → load answers bit-identically to text → load, for
    /// releases with and without grids, and the conversions are
    /// byte-stable in both directions.
    #[test]
    fn binary_path_reproduces_text_path(
        seed in 0u64..10_000,
        points in 200usize..1200,
        gridded in 0u8..2,
        bins in 2usize..12,
        qseed in 0u64..1000,
    ) {
        let frozen = sample_release(seed, points);
        let text = if gridded == 1 {
            let engine = GridRoutedSynopsis::with_bins(frozen, &[bins, bins + 1]).unwrap();
            let (arena, grid) = engine.into_parts();
            release_to_text(&arena, Some(&grid))
        } else {
            release_to_text(&frozen, None)
        };

        // the reference: the text loader the serving path has always used
        let (text_arena, text_grid) = release_from_text(&text).unwrap();
        // the conversion under test
        let binary = text_to_binary(&text).unwrap();
        let (bin_arena, bin_grid) = decode_release(&binary).unwrap();

        // arrays are equal to the bit — not merely close
        prop_assert_eq!(text_arena.dims(), bin_arena.dims());
        prop_assert_eq!(text_arena.lo_coords(), bin_arena.lo_coords());
        prop_assert_eq!(text_arena.hi_coords(), bin_arena.hi_coords());
        prop_assert_eq!(text_arena.first_child(), bin_arena.first_child());
        prop_assert_eq!(text_arena.child_count(), bin_arena.child_count());
        prop_assert_eq!(text_arena.counts(), bin_arena.counts());
        prop_assert_eq!(text_grid.is_some(), bin_grid.is_some());

        // every query answers with the same bits through either loader,
        // grid-routed when a grid shipped, plain otherwise
        for q in &workload(40, qseed) {
            match (&text_grid, &bin_grid) {
                (Some(tg), Some(bg)) => {
                    prop_assert_eq!(tg.bins(), bg.bins());
                    prop_assert_eq!(tg.anchors(), bg.anchors());
                    prop_assert_eq!(tg.values(), bg.values());
                    let t = GridRoutedSynopsis::from_prebuilt(text_arena.clone(), tg.clone());
                    let b = GridRoutedSynopsis::from_prebuilt(bin_arena.clone(), bg.clone());
                    prop_assert_eq!(t.answer(q).to_bits(), b.answer(q).to_bits());
                }
                _ => {
                    prop_assert_eq!(
                        text_arena.answer(q).to_bits(),
                        bin_arena.answer(q).to_bits()
                    );
                }
            }
        }

        // byte-stability: encode(decode(b)) == b and t2b(b2t(b)) == b
        prop_assert_eq!(&encode_release(&bin_arena, bin_grid.as_ref()), &binary);
        let round_text = binary_to_text(&binary).unwrap();
        prop_assert_eq!(&text_to_binary(&round_text).unwrap(), &binary);
    }

    /// A catalog save/load cycle — binary and text entries alike — hands
    /// back the exact release, pinned by the whole-file checksum.
    #[test]
    fn catalog_round_trip_is_exact(
        seed in 0u64..10_000,
        gridded in 0u8..2,
        format in 0u8..2,
    ) {
        let frozen = sample_release(seed, 400);
        let (arena, grid) = if gridded == 1 {
            let engine = GridRoutedSynopsis::with_bins(frozen, &[5, 4]).unwrap();
            let (a, g) = engine.into_parts();
            (a, Some(g))
        } else {
            (frozen, None)
        };
        let format = if format == 0 {
            ReleaseFormat::Binary
        } else {
            ReleaseFormat::Text
        };
        let dir = std::env::temp_dir().join(format!(
            "privtree-catalog-prop-{}-{seed}-{gridded}-{}",
            std::process::id(),
            format.as_str()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cat = Catalog::open_or_create(&dir).unwrap();
        cat.save("release", &arena, grid.as_ref(), format).unwrap();

        // reopen from disk: the manifest is the only source of truth
        let reopened = Catalog::open(&dir).unwrap();
        let (back, back_grid) = reopened.load("release").unwrap();
        prop_assert_eq!(arena.lo_coords(), back.lo_coords());
        prop_assert_eq!(arena.hi_coords(), back.hi_coords());
        prop_assert_eq!(arena.first_child(), back.first_child());
        prop_assert_eq!(arena.child_count(), back.child_count());
        prop_assert_eq!(arena.counts(), back.counts());
        match (&grid, &back_grid) {
            (Some(g), Some(b)) => {
                prop_assert_eq!(g.anchors(), b.anchors());
                prop_assert_eq!(g.values(), b.values());
            }
            (None, None) => {}
            other => prop_assert!(false, "grid presence diverged: {:?}", other.1.is_some()),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// `load_all` hands back every release in sorted key order, and
/// `remove` / re-`save` keep the manifest and directory consistent.
#[test]
fn catalog_lifecycle_end_to_end() {
    let dir = std::env::temp_dir().join(format!("privtree-catalog-life-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut cat = Catalog::open_or_create(&dir).unwrap();
    for (i, key) in ["west", "east", "north"].iter().enumerate() {
        let arena = sample_release(50 + i as u64, 300);
        cat.save(key, &arena, None, ReleaseFormat::Binary).unwrap();
    }
    assert_eq!(cat.len(), 3);
    let all = cat.load_all().unwrap();
    assert_eq!(
        all.iter().map(|(k, _, _)| k.as_str()).collect::<Vec<_>>(),
        ["east", "north", "west"],
        "sorted key order"
    );
    cat.remove("east").unwrap();
    assert!(matches!(
        cat.load("east"),
        Err(privtree_store::StoreError::UnknownKey { .. })
    ));
    // a replacement under the same key lands in a NEW file (the name
    // carries the content checksum) so the live generation is never
    // overwritten in place, and the superseded file is GC'd
    let entry_before = cat.entry("west").unwrap().clone();
    cat.save(
        "west",
        &sample_release(99, 300),
        None,
        ReleaseFormat::Binary,
    )
    .unwrap();
    let entry_after = cat.entry("west").unwrap();
    assert_ne!(entry_before.file, entry_after.file);
    assert_ne!(entry_before.checksum, entry_after.checksum);
    assert!(
        !dir.join(&entry_before.file).exists(),
        "the superseded generation is unlinked after the manifest lands"
    );
    // only live files + the manifest remain on disk
    let mut files: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    files.sort();
    assert_eq!(files.len(), 3, "manifest + 2 releases: {files:?}");
    let _ = std::fs::remove_dir_all(&dir);
}
