//! Crash-at-every-step fault injection (requires `--features
//! failpoints`): a publish or remove interrupted at **any** IO step —
//! tmp create, payload write (torn), fsync, rename, directory sync,
//! manifest write, superseded-file GC — must leave the catalog
//! loadable at exactly the old or the new generation, with no `.tmp`
//! residue surviving the next open. Injected *errors* (syscall
//! failure, process lives) must additionally leave the live handle
//! consistent with the manifest on disk. A property test drives random
//! operation sequences through random injection points.

#![cfg(feature = "failpoints")]

use std::path::{Path, PathBuf};
use std::sync::{Mutex, OnceLock};

use privtree_dp::budget::Epsilon;
use privtree_dp::rng::seeded;
use privtree_runtime::failpoints::{self, FailAction};
use privtree_spatial::dataset::PointSet;
use privtree_spatial::geom::Rect;
use privtree_spatial::quadtree::SplitConfig;
use privtree_spatial::FrozenSynopsis;
use privtree_store::{Catalog, ReleaseFormat};
use proptest::prelude::*;
use rand::RngExt;

/// The failpoint registry is process-global: every test that arms
/// triggers serializes on this lock.
static LOCK: Mutex<()> = Mutex::new(());

fn sample_release(seed: u64) -> FrozenSynopsis {
    let mut rng = seeded(seed);
    let mut ps = PointSet::new(2);
    for _ in 0..180 {
        ps.push(&[rng.random::<f64>(), rng.random::<f64>()]);
    }
    privtree_spatial::synopsis::privtree_synopsis(
        &ps,
        Rect::unit(2),
        SplitConfig::full(2),
        Epsilon::new(1.0).unwrap(),
        &mut seeded(seed ^ 0x51f0),
    )
    .unwrap()
    .freeze()
}

/// Three distinct releases, built once (PrivTree runs are the slow
/// part; the sweep reuses them across every injection step).
fn releases() -> &'static [FrozenSynopsis; 3] {
    static RELEASES: OnceLock<[FrozenSynopsis; 3]> = OnceLock::new();
    RELEASES.get_or_init(|| [sample_release(1), sample_release(2), sample_release(3)])
}

fn bits(arena: &FrozenSynopsis) -> Vec<u64> {
    arena.counts().iter().map(|c| c.to_bits()).collect()
}

/// A scratch directory that cleans up after itself.
struct TempDir(PathBuf);

impl TempDir {
    fn new(name: &str) -> Self {
        let path =
            std::env::temp_dir().join(format!("privtree-failpt-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        Self(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A two-release catalog, built with fault injection disarmed.
fn seeded_catalog(dir: &Path) -> Catalog {
    failpoints::reset();
    let mut catalog = Catalog::open_or_create(dir).unwrap();
    catalog
        .save("alpha", &releases()[0], None, ReleaseFormat::Binary)
        .unwrap();
    catalog
        .save("beta", &releases()[1], None, ReleaseFormat::Binary)
        .unwrap();
    catalog
}

fn tmp_residue(dir: &Path) -> Vec<String> {
    std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok()?.file_name().into_string().ok())
        .filter(|name| name.ends_with(".tmp"))
        .collect()
}

fn file_count(dir: &Path) -> usize {
    std::fs::read_dir(dir).unwrap().flatten().count()
}

/// After any interruption + reopen: the catalog parses, every manifest
/// entry loads with a matching checksum, and no `.tmp` residue is left.
fn assert_recovered(dir: &Path) -> Catalog {
    let reopened = Catalog::open(dir).unwrap_or_else(|e| {
        panic!("interrupted catalog must reopen, got {e}");
    });
    assert!(
        tmp_residue(dir).is_empty(),
        "no .tmp residue survives recovery: {:?}",
        tmp_residue(dir)
    );
    for key in reopened.keys().map(str::to_string).collect::<Vec<_>>() {
        reopened
            .load(&key)
            .unwrap_or_else(|e| panic!("recovered entry {key} must load, got {e}"));
    }
    // directory holds exactly the manifest + one file per entry
    assert_eq!(
        file_count(dir),
        reopened.len() + 1,
        "no stray files after recovery"
    );
    reopened
}

/// Count how many failpoint traversals one clean `save`-replace makes,
/// so the sweep can crash at each of them in turn.
fn publish_step_count() -> u64 {
    let dir = TempDir::new("count-publish");
    let mut catalog = seeded_catalog(&dir.0);
    failpoints::reset();
    catalog
        .save("beta", &releases()[2], None, ReleaseFormat::Binary)
        .unwrap();
    let steps = failpoints::hits();
    failpoints::reset();
    steps
}

/// The tentpole sweep: crash a key-replacing publish at every IO step.
/// Whatever the step, the reopened catalog is loadable, tmp-free, and
/// serves `beta` at exactly the old or the new generation — never torn
/// — while `alpha` is untouched.
#[test]
fn publish_crashed_at_every_step_recovers_to_old_or_new() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let steps = publish_step_count();
    assert!(
        steps >= 7,
        "expected >=7 IO steps in a publish, got {steps}"
    );
    let old_beta = bits(&releases()[1]);
    let new_beta = bits(&releases()[2]);
    let alpha = bits(&releases()[0]);
    for step in 1..=steps {
        let dir = TempDir::new(&format!("publish-crash-{step}"));
        let mut catalog = seeded_catalog(&dir.0);
        failpoints::reset();
        failpoints::arm_global(step, FailAction::Crash);
        let result = catalog.save("beta", &releases()[2], None, ReleaseFormat::Binary);
        assert!(result.is_err(), "step {step}: injected crash must surface");
        drop(catalog); // the "process" died here
        failpoints::reset();

        let recovered = assert_recovered(&dir.0);
        let (alpha_back, _) = recovered.load("alpha").unwrap();
        assert_eq!(bits(&alpha_back), alpha, "step {step}: alpha untouched");
        let (beta_back, _) = recovered.load("beta").unwrap();
        let got = bits(&beta_back);
        assert!(
            got == old_beta || got == new_beta,
            "step {step}: beta must be exactly old or new, got neither"
        );
    }
}

/// Crash a `remove` at every IO step: the reopened catalog either
/// still serves the key (loadable) or no longer lists it — and sweeps
/// the then-orphaned file.
#[test]
fn remove_crashed_at_every_step_recovers() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let steps = {
        let dir = TempDir::new("count-remove");
        let mut catalog = seeded_catalog(&dir.0);
        failpoints::reset();
        catalog.remove("beta").unwrap();
        let steps = failpoints::hits();
        failpoints::reset();
        steps
    };
    assert!(steps >= 6, "expected >=6 IO steps in a remove, got {steps}");
    let old_beta = bits(&releases()[1]);
    for step in 1..=steps {
        let dir = TempDir::new(&format!("remove-crash-{step}"));
        let mut catalog = seeded_catalog(&dir.0);
        failpoints::reset();
        failpoints::arm_global(step, FailAction::Crash);
        let result = catalog.remove("beta");
        assert!(result.is_err(), "step {step}: injected crash must surface");
        drop(catalog);
        failpoints::reset();

        let recovered = assert_recovered(&dir.0);
        match recovered.entry("beta") {
            Some(_) => {
                let (beta_back, _) = recovered.load("beta").unwrap();
                assert_eq!(bits(&beta_back), old_beta, "step {step}");
            }
            None => {
                assert_eq!(recovered.len(), 1, "step {step}: only alpha remains");
            }
        }
    }
}

/// Injected *errors* (the syscall fails but the process lives) at
/// every step: the failed `save` must leave the **live handle**
/// serving an intact generation (old or new, never torn), the on-disk
/// view equally intact, and a plain retry on the same handle must
/// succeed and converge both views on the new generation.
#[test]
fn publish_errored_at_every_step_stays_consistent_and_retries_cleanly() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let steps = publish_step_count();
    let old_beta = bits(&releases()[1]);
    let new_beta = bits(&releases()[2]);
    for step in 1..=steps {
        let dir = TempDir::new(&format!("publish-err-{step}"));
        let mut catalog = seeded_catalog(&dir.0);
        failpoints::reset();
        failpoints::arm_global(step, FailAction::Error);
        let result = catalog.save("beta", &releases()[2], None, ReleaseFormat::Binary);
        assert!(result.is_err(), "step {step}: injected error must surface");
        failpoints::reset();

        // the live handle keeps serving: beta loads at old or new (the
        // gc/dirsync steps fail *after* the new generation landed, so
        // the handle may trail or lead the disk by one generation —
        // but neither view is ever torn)
        let (beta_live, _) = catalog.load("beta").unwrap();
        let live = bits(&beta_live);
        assert!(
            live == old_beta || live == new_beta,
            "step {step}: live handle torn"
        );
        let reopened = Catalog::open(&dir.0).unwrap();
        let (beta_disk, _) = reopened.load("beta").unwrap();
        let disk = bits(&beta_disk);
        assert!(
            disk == old_beta || disk == new_beta,
            "step {step}: on-disk view torn"
        );

        // a plain retry on the same handle succeeds and converges
        // handle and disk on the new generation
        catalog
            .save("beta", &releases()[2], None, ReleaseFormat::Binary)
            .unwrap_or_else(|e| panic!("step {step}: retry must succeed, got {e}"));
        let (beta_retry, _) = catalog.load("beta").unwrap();
        assert_eq!(bits(&beta_retry), new_beta, "step {step}: retry landed");
        let converged = assert_recovered(&dir.0);
        let (beta_final, _) = converged.load("beta").unwrap();
        assert_eq!(bits(&beta_final), new_beta, "step {step}: views converge");
    }
}

/// A zero-copy reader mapped **before** a publish crashes keeps
/// serving the exact generation it mapped — old bytes, never torn —
/// no matter which IO step killed the writer, and recovery never
/// sweeps the file a retained generation still references. (With
/// `keep = 2` the superseded generation stays catalog-live, so the
/// reader's file must survive on disk too, not merely as mapped
/// pages over an unlinked inode.)
#[test]
fn mapped_readers_survive_publishes_crashed_at_every_step() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // count under the same retention: keeping the old generation drops
    // the GC-unlink step a keep=1 replace would take
    let steps = {
        let dir = TempDir::new("count-mapped");
        let mut catalog = seeded_catalog(&dir.0);
        catalog.set_retention(2);
        failpoints::reset();
        catalog
            .save("beta", &releases()[2], None, ReleaseFormat::Binary)
            .unwrap();
        let steps = failpoints::hits();
        failpoints::reset();
        steps
    };
    assert!(steps >= 7, "expected >=7 IO steps, got {steps}");
    let old_beta = bits(&releases()[1]);
    let new_beta = bits(&releases()[2]);
    for step in 1..=steps {
        let dir = TempDir::new(&format!("mapped-crash-{step}"));
        let mut catalog = seeded_catalog(&dir.0);
        catalog.set_retention(2);
        let reader = catalog.load_mapped("beta").unwrap();
        let reader_file = catalog.entry("beta").unwrap().file.clone();
        failpoints::reset();
        failpoints::arm_global(step, FailAction::Crash);
        let result = catalog.save("beta", &releases()[2], None, ReleaseFormat::Binary);
        assert!(result.is_err(), "step {step}: injected crash must surface");
        drop(catalog); // the writer died; the reader lives on

        // mid-crash, before any recovery: the mapped view still reads
        // the generation it opened, bit-exact
        assert_eq!(
            bits(&reader.arena),
            old_beta,
            "step {step}: reader torn by the crashed writer"
        );
        failpoints::reset();

        let recovered = Catalog::open(&dir.0).unwrap();
        assert!(tmp_residue(&dir.0).is_empty(), "step {step}");
        let (beta_back, _) = recovered.load("beta").unwrap();
        let got = bits(&beta_back);
        assert!(
            got == old_beta || got == new_beta,
            "step {step}: beta must be exactly old or new"
        );
        // the reader's generation is catalog-live (current, or retained
        // under keep=2 once the new generation landed) — recovery and
        // GC must not have unlinked its file
        let reader_live = recovered.entry("beta").map(|e| e.file.as_str())
            == Some(reader_file.as_str())
            || recovered
                .retained_entries()
                .any(|(key, e)| key == "beta" && e.file == reader_file);
        assert!(
            reader_live,
            "step {step}: the mapped generation fell out of the catalog"
        );
        assert!(
            dir.0.join(&reader_file).exists(),
            "step {step}: GC unlinked a live generation under a mapped reader"
        );
        // and it still reads clean after the sweep
        assert_eq!(bits(&reader.arena), old_beta, "step {step}: reader torn");
    }
}

proptest! {
    /// Random operation sequences interrupted at a random step with a
    /// random action: whatever happened, the catalog reopens, sweeps
    /// clean, and every surviving entry loads with a verified checksum.
    /// Each op code packs a key (`op % 3`) and a kind (`op / 3`: save
    /// it, save a different generation of it, or remove it). A mapped
    /// reader opened on the seeded `beta` before the interrupted
    /// history must keep reading its opening bytes throughout.
    #[test]
    fn random_interrupted_histories_always_recover(
        ops in proptest::collection::vec(0usize..9, 1..5),
        step in 1u64..40,
        crash in 0u8..2,
    ) {
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let dir = TempDir::new("prop");
        let mut catalog = seeded_catalog(&dir.0);
        let reader = catalog.load_mapped("beta").unwrap();
        let reader_bits = bits(&reader.arena);
        failpoints::reset();
        let action = if crash == 1 { FailAction::Crash } else { FailAction::Error };
        failpoints::arm_global(step, action);
        let keys = ["alpha", "beta", "gamma"];
        for &op in &ops {
            // operations may fail (the injection, or removing a key
            // that is not there) — the history keeps going either way
            let key = keys[op % 3];
            match op / 3 {
                0 => {
                    let _ = catalog.save(key, &releases()[op % 3], None, ReleaseFormat::Binary);
                }
                1 => {
                    let _ = catalog.save(
                        key,
                        &releases()[(op + 1) % 3],
                        None,
                        ReleaseFormat::Binary,
                    );
                }
                _ => {
                    let _ = catalog.remove(key);
                }
            }
        }
        drop(catalog);
        failpoints::reset();
        assert_recovered(&dir.0);
        // the interleaved mapped reader must never observe torn bytes
        prop_assert_eq!(bits(&reader.arena), reader_bits);
    }
}
