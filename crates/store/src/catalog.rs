//! The on-disk release catalog: a directory of release files behind a
//! `catalog.toml` manifest.
//!
//! ```text
//! catalog-dir/
//!   catalog.toml            # the manifest (always written last)
//!   west-6a8c3f21.ptbin     # one file per release
//!   east-0f9d1e44.txt
//! ```
//!
//! The manifest maps each release key to its file, format, and a
//! whole-file CRC-32, in a minimal TOML subset this crate parses without
//! dependencies:
//!
//! ```toml
//! # privtree-store catalog
//! version = 1
//!
//! [[release]]
//! key = "west"
//! file = "west-6a8c3f21.ptbin"
//! format = "binary"
//! checksum = "crc32:8f1d3a2b"
//! ```
//!
//! **Atomic publish**: every write — data file and manifest alike — goes
//! to a `.tmp` sibling first and is then renamed into place, and the
//! manifest is rewritten only *after* its data file landed. Data file
//! names are **generation-unique** (they carry the content checksum),
//! so a publish never overwrites a live file in place — the manifest
//! always points at bytes that match its recorded checksum, whichever
//! side of the crash it landed on. A crash at any point therefore
//! leaves either the old catalog or the new one, never a manifest
//! pointing at a half-written release; whatever half-finished residue
//! remains (`.tmp` siblings, orphaned release files no manifest entry
//! references) is swept by [`Catalog::open`]. Loads verify the
//! whole-file checksum before decoding, so a torn or bit-rotted file is
//! a typed error, not a wrong answer.
//!
//! Every step of this protocol is threaded with deterministic
//! failpoints (`privtree_runtime::failpoints`, compiled in only under
//! the `failpoints` feature); `crates/store/tests/failpoints.rs`
//! interrupts a publish at every single step and proves the directory
//! reopens at exactly the old or the new generation.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use privtree_spatial::grid_route::CellGrid;
use privtree_spatial::serialize::{release_from_text, release_to_text};
use privtree_spatial::FrozenSynopsis;

use std::sync::Arc;

use privtree_spatial::grid_route::CellGridParts;
use privtree_spatial::sharded::ShardHandle;
use privtree_spatial::StableBytes;

use crate::format::{crc32, decode_release, encode_release, MAGIC};
use crate::view::{open_release_view, ReleaseBytes};
use crate::StoreError;

/// The manifest file name inside a catalog directory.
pub const MANIFEST_FILE: &str = "catalog.toml";

/// Manifest schema version this crate reads and writes.
const MANIFEST_VERSION: u64 = 1;

/// On-disk representation of one release.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReleaseFormat {
    /// `privtree-bin v1` (see [`crate::format`]).
    Binary,
    /// The line-oriented `privtree-synopsis v1` text format.
    Text,
}

impl ReleaseFormat {
    /// Manifest spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            ReleaseFormat::Binary => "binary",
            ReleaseFormat::Text => "text",
        }
    }

    /// File extension for new release files.
    fn extension(self) -> &'static str {
        match self {
            ReleaseFormat::Binary => "ptbin",
            ReleaseFormat::Text => "txt",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s {
            "binary" => Some(ReleaseFormat::Binary),
            "text" => Some(ReleaseFormat::Text),
            _ => None,
        }
    }
}

impl std::fmt::Display for ReleaseFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One manifest entry: where a release lives and how to check it.
#[derive(Debug, Clone, PartialEq)]
pub struct CatalogEntry {
    /// File name relative to the catalog directory.
    pub file: String,
    /// How the file is encoded.
    pub format: ReleaseFormat,
    /// CRC-32 of the whole file, verified before every decode.
    pub checksum: u32,
}

/// A release opened by [`Catalog::load_mapped`]: the validated arena
/// (columns borrowing the mapping when storage is zero-copy) plus the
/// grid in whichever form the load produced — eager for copying paths,
/// staged for zero-copy opens. Convert to a serving handle with
/// [`LoadedRelease::into_handle`].
#[derive(Debug)]
pub struct LoadedRelease {
    /// The validated frozen arena.
    pub arena: FrozenSynopsis,
    /// An eagerly assembled grid (text loads and copy fallbacks).
    pub grid: Option<CellGrid>,
    /// Persisted grid columns awaiting first-use assembly (zero-copy
    /// opens). At most one of `grid` / `staged_grid` is `Some`.
    pub staged_grid: Option<CellGridParts>,
    /// Bytes held by a memory mapping backing the columns (0 when the
    /// storage is owned).
    pub mapped_bytes: usize,
}

impl LoadedRelease {
    /// Whether the release's columns borrow a memory mapping.
    pub fn is_mapped(&self) -> bool {
        self.mapped_bytes > 0
    }

    /// Convert into a serving [`ShardHandle`], preserving the storage
    /// mode and the staged-vs-eager grid state.
    pub fn into_handle(self) -> ShardHandle {
        let handle = match self.grid {
            Some(grid) => ShardHandle::with_prebuilt_grid(self.arena, grid),
            None => ShardHandle::from_staged(self.arena, self.staged_grid),
        };
        handle.with_mapped_bytes(self.mapped_bytes)
    }
}

impl From<LoadedRelease> for ShardHandle {
    fn from(release: LoadedRelease) -> Self {
        release.into_handle()
    }
}

/// What [`Catalog::open`] cleaned up while recovering the directory
/// from a possible crashed writer.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RecoverySweep {
    /// Stale `.tmp` siblings removed (a writer died between create and
    /// rename).
    pub tmp_files: usize,
    /// Orphaned release files removed (present on disk, referenced by
    /// no manifest entry — a writer died between landing the data file
    /// and the manifest, or between the manifest and the old file's
    /// unlink).
    pub orphan_files: usize,
}

impl RecoverySweep {
    /// Whether the sweep removed anything.
    pub fn is_clean(&self) -> bool {
        self.tmp_files == 0 && self.orphan_files == 0
    }
}

/// An open catalog: the directory plus its parsed manifest.
#[derive(Debug)]
pub struct Catalog {
    dir: PathBuf,
    entries: BTreeMap<String, CatalogEntry>,
    sweep: RecoverySweep,
}

/// Map a release key to a filesystem-safe stem: keep `[A-Za-z0-9._-]`,
/// replace the rest with `_`, and suffix the key's CRC-32 so distinct
/// keys can never collide on disk after sanitization.
fn file_stem(key: &str) -> String {
    let safe: String = key
        .chars()
        .take(48)
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                c
            } else {
                '_'
            }
        })
        .collect();
    format!("{safe}-{:08x}", crc32(key.as_bytes()))
}

/// Escape a string for a double-quoted TOML value.
fn toml_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    out
}

/// Unescape a double-quoted TOML value (the subset [`toml_escape`]
/// emits).
fn toml_unescape(s: &str, line: usize) -> Result<String, StoreError> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            other => {
                return Err(StoreError::Manifest {
                    line,
                    reason: format!("unsupported escape \\{}", other.unwrap_or(' ')),
                })
            }
        }
    }
    Ok(out)
}

/// Traverse the failpoint `{label}.{step}`. With the `failpoints`
/// feature off this compiles to nothing (no allocation, no lookup).
#[cfg(feature = "failpoints")]
fn fail_point(label: &str, step: &str) -> Result<(), privtree_runtime::failpoints::Failure> {
    privtree_runtime::failpoints::check(&format!("{label}.{step}"))
}

/// No-op stand-in when fault injection is compiled out.
#[cfg(not(feature = "failpoints"))]
#[inline(always)]
fn fail_point(_label: &str, _step: &str) -> Result<(), privtree_runtime::failpoints::Failure> {
    Ok(())
}

/// Write `bytes` to `path` atomically **and durably**: `.tmp` sibling
/// first, `fsync` it (so the data blocks are on disk before the rename
/// can make them visible), rename into place, then `fsync` the parent
/// directory so the rename itself survives power loss — without the
/// directory sync, a crash can persist the rename while the file is
/// still empty, exactly the torn state this module promises away.
///
/// `label` names the failpoints threaded through the five steps
/// (`{label}.create` / `.write` / `.sync` / `.rename` / `.dirsync`).
/// An injected **error** behaves like the real syscall failing — the
/// `.tmp` sibling is cleaned up; an injected **crash** returns without
/// any cleanup, leaving the disk exactly as a dying process would
/// (a torn `.tmp`, an un-synced rename), for [`Catalog::open`]'s
/// recovery sweep to deal with.
fn atomic_write(path: &Path, bytes: &[u8], label: &str) -> Result<(), StoreError> {
    use std::io::Write as _;
    let tmp = path.with_extension(format!(
        "{}.tmp",
        path.extension().and_then(|e| e.to_str()).unwrap_or("dat")
    ));
    // an injected crash must leave the .tmp residue in place — the
    // process is modelled as dead, so no cleanup code would have run
    let injected = |f: privtree_runtime::failpoints::Failure| -> StoreError {
        if !f.is_crash() {
            let _ = std::fs::remove_file(&tmp);
        }
        StoreError::Io {
            context: format!("write {}", tmp.display()),
            message: f.to_string(),
        }
    };
    let cleanup_io = |context: String, e: std::io::Error| -> StoreError {
        let _ = std::fs::remove_file(&tmp);
        StoreError::io(context, e)
    };
    fail_point(label, "create").map_err(&injected)?;
    let mut file = std::fs::File::create(&tmp)
        .map_err(|e| cleanup_io(format!("create {}", tmp.display()), e))?;
    if let Err(f) = fail_point(label, "write") {
        if f.is_crash() {
            // model a torn write: half the payload reached the disk
            let _ = file.write_all(&bytes[..bytes.len() / 2]);
        }
        drop(file);
        return Err(injected(f));
    }
    file.write_all(bytes)
        .map_err(|e| cleanup_io(format!("write {}", tmp.display()), e))?;
    fail_point(label, "sync").map_err(&injected)?;
    file.sync_all()
        .map_err(|e| cleanup_io(format!("sync {}", tmp.display()), e))?;
    drop(file);
    fail_point(label, "rename").map_err(&injected)?;
    std::fs::rename(&tmp, path)
        .map_err(|e| cleanup_io(format!("rename {} into place", tmp.display()), e))?;
    fail_point(label, "dirsync").map_err(|f| StoreError::Io {
        // the rename already landed: nothing to clean up either way
        context: format!("sync directory of {}", path.display()),
        message: f.to_string(),
    })?;
    if let Some(parent) = path.parent() {
        std::fs::File::open(parent)
            .and_then(|dir| dir.sync_all())
            .map_err(|e| StoreError::io(format!("sync directory {}", parent.display()), e))?;
    }
    Ok(())
}

/// Whether `name` looks like a catalog-managed release file: the
/// `.ptbin`/`.txt` extension plus the checksum suffix every
/// catalog-generated name carries. Only such files are candidates for
/// the orphan sweep — anything else in the directory is left alone.
fn looks_like_release_file(name: &str) -> bool {
    let stem = match name.rsplit_once('.') {
        Some((stem, "ptbin" | "txt")) => stem,
        _ => return false,
    };
    match stem.rsplit_once('-') {
        Some((_, suffix)) => suffix.len() == 8 && suffix.bytes().all(|b| b.is_ascii_hexdigit()),
        None => false,
    }
}

/// Remove crashed-writer residue from `dir`: stale `.tmp` siblings and
/// release-shaped files no manifest entry references. Sweep failures
/// are ignored (recovery must never make an openable catalog
/// unopenable); unremoved files are simply re-candidates next open.
fn sweep_dir(dir: &Path, entries: &BTreeMap<String, CatalogEntry>) -> RecoverySweep {
    let mut sweep = RecoverySweep::default();
    let Ok(read_dir) = std::fs::read_dir(dir) else {
        return sweep;
    };
    for dirent in read_dir.flatten() {
        let name = dirent.file_name();
        let Some(name) = name.to_str() else { continue };
        if name == MANIFEST_FILE {
            continue;
        }
        if entries.values().any(|e| e.file == name) {
            continue;
        }
        if name.ends_with(".tmp") {
            if std::fs::remove_file(dirent.path()).is_ok() {
                sweep.tmp_files += 1;
            }
        } else if looks_like_release_file(name) && std::fs::remove_file(dirent.path()).is_ok() {
            sweep.orphan_files += 1;
        }
    }
    sweep
}

impl Catalog {
    /// Open an existing catalog: the directory must hold a manifest.
    ///
    /// Opening **recovers** the directory from a crashed writer: stale
    /// `.tmp` siblings and orphaned release files (left by a process
    /// that died mid-publish) are removed, and the result is reported
    /// through [`Catalog::recovery_sweep`]. The manifest itself is
    /// written atomically, so it always parses to either the old or
    /// the new generation.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let dir = dir.into();
        let manifest = dir.join(MANIFEST_FILE);
        let text = std::fs::read_to_string(&manifest)
            .map_err(|e| StoreError::io(format!("read {}", manifest.display()), e))?;
        let entries = parse_manifest(&text)?;
        let sweep = sweep_dir(&dir, &entries);
        Ok(Self {
            dir,
            entries,
            sweep,
        })
    }

    /// Open a catalog, creating the directory and an empty manifest when
    /// none exists yet.
    pub fn open_or_create(dir: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let dir = dir.into();
        if dir.join(MANIFEST_FILE).exists() {
            return Self::open(dir);
        }
        std::fs::create_dir_all(&dir)
            .map_err(|e| StoreError::io(format!("create {}", dir.display()), e))?;
        let mut catalog = Self {
            dir,
            entries: BTreeMap::new(),
            sweep: RecoverySweep::default(),
        };
        catalog.write_manifest()?;
        // a writer may have died before its first manifest landed —
        // clear its .tmp residue exactly like the open path would
        catalog.sweep = sweep_dir(&catalog.dir, &catalog.entries);
        Ok(catalog)
    }

    /// What [`Catalog::open`] removed while recovering the directory
    /// ([`RecoverySweep::is_clean`] when there was nothing to do).
    pub fn recovery_sweep(&self) -> RecoverySweep {
        self.sweep
    }

    /// The catalog directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of releases in the catalog.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the catalog holds no releases.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Release keys in sorted order.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(|k| k.as_str())
    }

    /// The manifest entry for `key`, if any.
    pub fn entry(&self, key: &str) -> Option<&CatalogEntry> {
        self.entries.get(key)
    }

    /// Persist a release under `key`: encode in `format`, publish the
    /// file atomically, then update the manifest. An existing entry for
    /// `key` is replaced (its old file is removed if the name changed).
    pub fn save(
        &mut self,
        key: &str,
        arena: &FrozenSynopsis,
        grid: Option<&CellGrid>,
        format: ReleaseFormat,
    ) -> Result<CatalogEntry, StoreError> {
        let bytes = match format {
            ReleaseFormat::Binary => encode_release(arena, grid),
            ReleaseFormat::Text => release_to_text(arena, grid).into_bytes(),
        };
        self.publish(key, &bytes, format)
    }

    /// Ingest already-encoded release bytes under `key`, validating that
    /// they decode cleanly first (so the catalog can never point at a
    /// file its own loader rejects). This is how externally produced
    /// releases — e.g. a text release converted with
    /// [`crate::text_to_binary`] — enter a catalog.
    pub fn import(
        &mut self,
        key: &str,
        bytes: &[u8],
        format: ReleaseFormat,
    ) -> Result<CatalogEntry, StoreError> {
        match format {
            ReleaseFormat::Binary => {
                decode_release(bytes)?;
            }
            ReleaseFormat::Text => {
                let text = std::str::from_utf8(bytes).map_err(|_| {
                    StoreError::Text(privtree_spatial::serialize::ParseError::MissingSection {
                        section: "synopsis",
                        reason: "text release is not valid UTF-8".into(),
                    })
                })?;
                release_from_text(text)?;
            }
        }
        self.publish(key, bytes, format)
    }

    /// Write the data file, then the manifest — both atomically.
    ///
    /// The file name carries the content checksum, so replacing a key
    /// writes a **new** file instead of renaming over the live one:
    /// until the manifest lands, the old generation's bytes still match
    /// the old manifest's checksum, and after it lands the new ones
    /// match the new — there is no window in which the manifest points
    /// at bytes it did not record. The superseded file is unlinked last
    /// (pure GC; a crash before the unlink leaves an orphan for the
    /// next open's recovery sweep).
    fn publish(
        &mut self,
        key: &str,
        bytes: &[u8],
        format: ReleaseFormat,
    ) -> Result<CatalogEntry, StoreError> {
        let checksum = crc32(bytes);
        let file = format!("{}-{checksum:08x}.{}", file_stem(key), format.extension());
        atomic_write(&self.dir.join(&file), bytes, "catalog.data")?;
        let entry = CatalogEntry {
            file: file.clone(),
            format,
            checksum,
        };
        let previous = self.entries.insert(key.to_string(), entry.clone());
        if let Err(e) = self.write_manifest() {
            // roll the in-memory map back so this handle stays
            // consistent with the manifest that is actually on disk
            // (the new data file is an orphan; the sweep reclaims it)
            match previous {
                Some(prev) => self.entries.insert(key.to_string(), prev),
                None => self.entries.remove(key),
            };
            return Err(e);
        }
        if let Some(prev) = previous {
            if prev.file != file {
                fail_point("catalog.gc", "unlink").map_err(|f| StoreError::Io {
                    context: format!("unlink superseded {}", prev.file),
                    message: f.to_string(),
                })?;
                let _ = std::fs::remove_file(self.dir.join(&prev.file));
            }
        }
        Ok(entry)
    }

    /// Load the release stored under `key`, verifying the whole-file
    /// checksum before decoding. Returns the same shape the serving
    /// loaders use: the frozen arena plus the shipped grid, if any.
    pub fn load(&self, key: &str) -> Result<(FrozenSynopsis, Option<CellGrid>), StoreError> {
        let entry = self
            .entries
            .get(key)
            .ok_or_else(|| StoreError::UnknownKey {
                key: key.to_string(),
            })?;
        let path = self.dir.join(&entry.file);
        let bytes = std::fs::read(&path)
            .map_err(|e| StoreError::io(format!("read {}", path.display()), e))?;
        let found = crc32(&bytes);
        if found != entry.checksum {
            return Err(StoreError::ChecksumMismatch {
                section: "file",
                expected: entry.checksum,
                found,
            });
        }
        match entry.format {
            ReleaseFormat::Binary => decode_release(&bytes),
            ReleaseFormat::Text => {
                let text = std::str::from_utf8(&bytes).map_err(|_| {
                    StoreError::Text(privtree_spatial::serialize::ParseError::MissingSection {
                        section: "synopsis",
                        reason: "text release is not valid UTF-8".into(),
                    })
                })?;
                Ok(release_from_text(text)?)
            }
        }
    }

    /// Load every release, in sorted key order — the warm-start path.
    #[allow(clippy::type_complexity)]
    pub fn load_all(&self) -> Result<Vec<(String, FrozenSynopsis, Option<CellGrid>)>, StoreError> {
        self.entries
            .keys()
            .map(|key| {
                let (arena, grid) = self.load(key)?;
                Ok((key.clone(), arena, grid))
            })
            .collect()
    }

    /// Load the release stored under `key` with zero-copy storage when
    /// possible: binary releases are memory-mapped (falling back to an
    /// owned read when the `mmap` feature is off or mapping fails), the
    /// whole-file checksum is verified against the manifest, and the
    /// columns borrow the mapping in place. The grid, when shipped, is
    /// *staged* rather than assembled, so opening is O(map + validate);
    /// `ShardHandle` assembles it on first use. Text releases fall back
    /// to the copying [`Catalog::load`] path.
    pub fn load_mapped(&self, key: &str) -> Result<LoadedRelease, StoreError> {
        let entry = self
            .entries
            .get(key)
            .ok_or_else(|| StoreError::UnknownKey {
                key: key.to_string(),
            })?;
        if entry.format == ReleaseFormat::Text {
            let (arena, grid) = self.load(key)?;
            return Ok(LoadedRelease {
                arena,
                grid,
                staged_grid: None,
                mapped_bytes: 0,
            });
        }
        let path = self.dir.join(&entry.file);
        let owner = ReleaseBytes::map(&path)?;
        let found = crc32(owner.bytes());
        if found != entry.checksum {
            return Err(StoreError::ChecksumMismatch {
                section: "file",
                expected: entry.checksum,
                found,
            });
        }
        let mapped_bytes = owner.mapped_len();
        let owner: Arc<dyn StableBytes> = Arc::new(owner);
        // the whole-file CRC above already covers every section byte, so
        // the open skips the per-section CRC pass
        let view = open_release_view(&owner, false)?;
        Ok(LoadedRelease {
            arena: view.arena,
            grid: None,
            staged_grid: view.grid,
            mapped_bytes,
        })
    }

    /// [`Catalog::load_mapped`] for every release, in sorted key order —
    /// the zero-copy warm-start path.
    pub fn load_all_mapped(&self) -> Result<Vec<(String, LoadedRelease)>, StoreError> {
        self.entries
            .keys()
            .map(|key| Ok((key.clone(), self.load_mapped(key)?)))
            .collect()
    }

    /// [`Catalog::load_all`], degraded: releases whose file is missing,
    /// torn, or corrupt are **quarantined** (returned with their typed
    /// per-key error) instead of failing the whole load, so one bad
    /// release costs capacity, not availability. Surviving releases
    /// load bit-identically to the strict path, in sorted key order.
    #[allow(clippy::type_complexity)]
    pub fn load_all_lossy(
        &self,
    ) -> (
        Vec<(String, FrozenSynopsis, Option<CellGrid>)>,
        Vec<(String, StoreError)>,
    ) {
        let mut loaded = Vec::new();
        let mut quarantined = Vec::new();
        for key in self.entries.keys() {
            match self.load(key) {
                Ok((arena, grid)) => loaded.push((key.clone(), arena, grid)),
                Err(e) => quarantined.push((key.clone(), e)),
            }
        }
        (loaded, quarantined)
    }

    /// [`Catalog::load_all_mapped`], degraded exactly like
    /// [`Catalog::load_all_lossy`]: per-key errors quarantine that key,
    /// the rest of the catalog serves.
    #[allow(clippy::type_complexity)]
    pub fn load_all_mapped_lossy(
        &self,
    ) -> (Vec<(String, LoadedRelease)>, Vec<(String, StoreError)>) {
        let mut loaded = Vec::new();
        let mut quarantined = Vec::new();
        for key in self.entries.keys() {
            match self.load_mapped(key) {
                Ok(release) => loaded.push((key.clone(), release)),
                Err(e) => quarantined.push((key.clone(), e)),
            }
        }
        (loaded, quarantined)
    }

    /// Drop `key` from the catalog: manifest first (so a crash leaves an
    /// orphan file, never a dangling entry), then the data file.
    pub fn remove(&mut self, key: &str) -> Result<(), StoreError> {
        let entry = self
            .entries
            .remove(key)
            .ok_or_else(|| StoreError::UnknownKey {
                key: key.to_string(),
            })?;
        if let Err(e) = self.write_manifest() {
            self.entries.insert(key.to_string(), entry);
            return Err(e);
        }
        fail_point("catalog.gc", "unlink").map_err(|f| StoreError::Io {
            context: format!("unlink removed {}", entry.file),
            message: f.to_string(),
        })?;
        let _ = std::fs::remove_file(self.dir.join(&entry.file));
        Ok(())
    }

    /// Render and atomically replace `catalog.toml`.
    fn write_manifest(&self) -> Result<(), StoreError> {
        let mut out = String::from("# privtree-store catalog\n");
        out.push_str(&format!("version = {MANIFEST_VERSION}\n"));
        for (key, entry) in &self.entries {
            out.push_str(&format!(
                "\n[[release]]\nkey = \"{}\"\nfile = \"{}\"\nformat = \"{}\"\nchecksum = \"crc32:{:08x}\"\n",
                toml_escape(key),
                toml_escape(&entry.file),
                entry.format,
                entry.checksum,
            ));
        }
        atomic_write(
            &self.dir.join(MANIFEST_FILE),
            out.as_bytes(),
            "catalog.manifest",
        )
    }
}

/// Parse the manifest subset [`Catalog::write_manifest`] emits:
/// comments, `version = N`, `[[release]]` table headers, and
/// double-quoted `key = "value"` assignments.
fn parse_manifest(text: &str) -> Result<BTreeMap<String, CatalogEntry>, StoreError> {
    struct Partial {
        line: usize,
        key: Option<String>,
        file: Option<String>,
        format: Option<ReleaseFormat>,
        checksum: Option<u32>,
    }
    let mut entries = BTreeMap::new();
    let mut current: Option<Partial> = None;
    let mut version: Option<u64> = None;

    let finish = |p: Partial, entries: &mut BTreeMap<String, CatalogEntry>| {
        let missing = |field: &str| StoreError::Manifest {
            line: p.line,
            reason: format!("[[release]] is missing {field}"),
        };
        let key = p.key.clone().ok_or_else(|| missing("key"))?;
        let entry = CatalogEntry {
            file: p.file.clone().ok_or_else(|| missing("file"))?,
            format: p.format.ok_or_else(|| missing("format"))?,
            checksum: p.checksum.ok_or_else(|| missing("checksum"))?,
        };
        if entries.insert(key.clone(), entry).is_some() {
            return Err(StoreError::Manifest {
                line: p.line,
                reason: format!("duplicate release key {key}"),
            });
        }
        Ok(())
    };

    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[release]]" {
            if let Some(p) = current.take() {
                finish(p, &mut entries)?;
            }
            current = Some(Partial {
                line: line_no,
                key: None,
                file: None,
                format: None,
                checksum: None,
            });
            continue;
        }
        let (name, value) = line.split_once('=').ok_or_else(|| StoreError::Manifest {
            line: line_no,
            reason: format!("expected name = value, found: {line}"),
        })?;
        let (name, value) = (name.trim(), value.trim());
        if current.is_none() {
            if name == "version" {
                let v: u64 = value.parse().map_err(|_| StoreError::Manifest {
                    line: line_no,
                    reason: format!("bad version {value}"),
                })?;
                if v != MANIFEST_VERSION {
                    return Err(StoreError::Manifest {
                        line: line_no,
                        reason: format!("manifest version {v} is not supported"),
                    });
                }
                version = Some(v);
                continue;
            }
            return Err(StoreError::Manifest {
                line: line_no,
                reason: format!("unexpected top-level field {name}"),
            });
        }
        let quoted = value
            .strip_prefix('"')
            .and_then(|v| v.strip_suffix('"'))
            .ok_or_else(|| StoreError::Manifest {
                line: line_no,
                reason: format!("{name} value must be double-quoted"),
            })?;
        let value = toml_unescape(quoted, line_no)?;
        let p = current.as_mut().expect("inside a [[release]] table");
        match name {
            "key" => p.key = Some(value),
            "file" => p.file = Some(value),
            "format" => {
                p.format =
                    Some(
                        ReleaseFormat::parse(&value).ok_or_else(|| StoreError::Manifest {
                            line: line_no,
                            reason: format!("unknown format {value}"),
                        })?,
                    )
            }
            "checksum" => {
                let hex = value
                    .strip_prefix("crc32:")
                    .ok_or_else(|| StoreError::Manifest {
                        line: line_no,
                        reason: format!("checksum must be crc32:<hex>, found {value}"),
                    })?;
                p.checksum =
                    Some(
                        u32::from_str_radix(hex, 16).map_err(|_| StoreError::Manifest {
                            line: line_no,
                            reason: format!("bad checksum hex {hex}"),
                        })?,
                    );
            }
            other => {
                return Err(StoreError::Manifest {
                    line: line_no,
                    reason: format!("unknown release field {other}"),
                })
            }
        }
    }
    if let Some(p) = current.take() {
        finish(p, &mut entries)?;
    }
    if version.is_none() {
        return Err(StoreError::Manifest {
            line: 1,
            reason: "no version field".into(),
        });
    }
    Ok(entries)
}

/// Sniff whether `bytes` look like a `privtree-bin` file (vs text).
pub fn looks_binary(bytes: &[u8]) -> bool {
    bytes.len() >= MAGIC.len() && bytes[..MAGIC.len()] == MAGIC
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_stems_are_safe_and_distinct() {
        let a = file_stem("epoch/2026-07-27T00:00");
        assert!(a
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-')));
        // sanitization collides, the checksum suffix does not
        assert_ne!(file_stem("a/b"), file_stem("a:b"));
        assert_eq!(file_stem("west"), file_stem("west"));
    }

    #[test]
    fn manifest_round_trips_awkward_keys() {
        let dir =
            std::env::temp_dir().join(format!("privtree-catalog-unit-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cat = Catalog::open_or_create(&dir).unwrap();
        let tree = privtree_core::tree::Tree::with_root(privtree_spatial::Rect::unit(2));
        let arena = FrozenSynopsis::from_tree(&tree, &[7.5], "leaf");
        cat.save("we\"ird\\key", &arena, None, ReleaseFormat::Binary)
            .unwrap();
        let reopened = Catalog::open(&dir).unwrap();
        assert_eq!(reopened.keys().collect::<Vec<_>>(), ["we\"ird\\key"]);
        let (back, grid) = reopened.load("we\"ird\\key").unwrap();
        assert!(grid.is_none());
        assert_eq!(back.counts(), &[7.5]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_rejects_garbage() {
        assert!(matches!(
            parse_manifest("version = 1\nbogus = 3\n"),
            Err(StoreError::Manifest { line: 2, .. })
        ));
        assert!(matches!(
            parse_manifest("version = 2\n"),
            Err(StoreError::Manifest { line: 1, .. })
        ));
        assert!(matches!(
            parse_manifest("version = 1\n[[release]]\nkey = \"a\"\n"),
            Err(StoreError::Manifest { .. })
        ));
        assert!(parse_manifest("version = 1\n").unwrap().is_empty());
    }
}
