//! The on-disk release catalog: a directory of release files behind a
//! `catalog.toml` manifest, optionally fronted by a write-ahead
//! operation journal.
//!
//! ```text
//! catalog-dir/
//!   catalog.toml                  # the manifest (always written last)
//!   journal-0000000000000010.bin  # the active journal segment, if any
//!   west-g3-6a8c3f21.ptbin        # one file per release generation
//!   east-g1-0f9d1e44.txt
//! ```
//!
//! The manifest maps each release key to its file, format, whole-file
//! CRC-32, and **generation number**, in a minimal TOML subset this
//! crate parses without dependencies:
//!
//! ```toml
//! # privtree-store catalog
//! version = 1
//! journal_seq = 16
//! journal = "journal-0000000000000010.bin"
//! keep = 2
//!
//! [[release]]
//! key = "west"
//! file = "west-g3-6a8c3f21.ptbin"
//! format = "binary"
//! checksum = "crc32:8f1d3a2b"
//! generation = 3
//!
//! [[retained]]
//! key = "west"
//! file = "west-g2-1b2c3d4e.ptbin"
//! format = "binary"
//! checksum = "crc32:1b2c3d4e"
//! generation = 2
//! ```
//!
//! (`journal_seq`/`journal` appear only on journaled catalogs, `keep`
//! only when retention is above 1, and `[[retained]]` tables only when
//! older generations are retained — a pre-generation manifest parses
//! unchanged.)
//!
//! **Atomic publish**: every write — data file and manifest alike — goes
//! to a `.tmp` sibling first and is then renamed into place, and the
//! manifest is rewritten only *after* its data file landed. Data file
//! names are **generation-unique** (they carry the content checksum),
//! so a publish never overwrites a live file in place — the manifest
//! always points at bytes that match its recorded checksum, whichever
//! side of the crash it landed on. (Generation-unique means the name
//! carries the generation *number*, not just the checksum — a CRC over
//! a file that ends in its own section CRC is blind to the final
//! section's payload, so checksums alone can collide across
//! generations.) A crash at any point therefore
//! leaves either the old catalog or the new one, never a manifest
//! pointing at a half-written release; whatever half-finished residue
//! remains (`.tmp` siblings, orphaned release files or journal segments
//! no manifest references) is swept by [`Catalog::open`]. Loads verify
//! the whole-file checksum before decoding, so a torn or bit-rotted
//! file is a typed error, not a wrong answer.
//!
//! **Generations and retention**: replacing a key's release bumps its
//! generation; [`Catalog::set_retention`] keeps the newest `keep`
//! generations per key (the current one plus `keep - 1` retained), and
//! the GC unlinks a file only when **no live generation — current or
//! retained — references it**. Retained generations survive reopens
//! through the `[[retained]]` manifest tables.
//!
//! **Journaling** ([`Catalog::enable_journal`]): mutations append one
//! CRC-framed record to the active journal segment (fsynced per
//! [`FsyncPolicy`]) *instead of* rewriting the manifest, so an acked
//! `save`/`import`/`remove` is durable at the cost of one sequential
//! append. [`Catalog::open`] replays the segment on top of the
//! manifest (torn tails truncate; see [`crate::journal`]), and
//! [`Catalog::checkpoint`] folds the state back into the manifest and
//! rotates the segment.
//!
//! Every step of this protocol is threaded with deterministic
//! failpoints (`privtree_runtime::failpoints`, compiled in only under
//! the `failpoints` feature); `crates/store/tests/failpoints.rs` and
//! `crates/engine/tests/journal_failpoints.rs` interrupt publishes,
//! removes, journal appends, and checkpoints at every single step and
//! prove the directory reopens at exactly the acked state.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use privtree_spatial::grid_route::CellGrid;
use privtree_spatial::serialize::{release_from_text, release_to_text};
use privtree_spatial::FrozenSynopsis;

use std::sync::Arc;

use privtree_spatial::grid_route::CellGridParts;
use privtree_spatial::sharded::ShardHandle;
use privtree_spatial::StableBytes;

use crate::format::{crc32, decode_release, encode_release, MAGIC};
use crate::journal::{self, FsyncPolicy, Journal, JournalMetrics, JournalOp};
use crate::view::{open_release_view, ReleaseBytes};
use crate::StoreError;
use privtree_runtime::telemetry::{Counter, Registry};

/// Telemetry handles for catalog durability and recovery: the journal
/// set plus replay/GC/checkpoint counters. Registered once per
/// registry ([`CatalogMetrics::register`]) and attached with
/// [`Catalog::attach_metrics`].
#[derive(Debug)]
pub struct CatalogMetrics {
    /// Journal append/fsync handles (shared with the active segment).
    pub journal: Arc<JournalMetrics>,
    /// Journal records replayed on top of the manifest by opens.
    pub replayed_ops: Arc<Counter>,
    /// Superseded release files (and rotated segments) unlinked by GC.
    pub gc_unlinked: Arc<Counter>,
    /// Checkpoints folded into the manifest.
    pub checkpoints: Arc<Counter>,
}

impl CatalogMetrics {
    /// Get-or-create the catalog metric set in `registry`.
    pub fn register(registry: &Registry) -> Arc<Self> {
        Arc::new(Self {
            journal: JournalMetrics::register(registry),
            replayed_ops: registry.counter("journal_replayed_ops_total", &[]),
            gc_unlinked: registry.counter("catalog_gc_unlinked_total", &[]),
            checkpoints: registry.counter("catalog_checkpoints_total", &[]),
        })
    }
}

/// The manifest file name inside a catalog directory.
pub const MANIFEST_FILE: &str = "catalog.toml";

/// Manifest schema version this crate reads and writes.
const MANIFEST_VERSION: u64 = 1;

/// On-disk representation of one release.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReleaseFormat {
    /// `privtree-bin v1` (see [`crate::format`]).
    Binary,
    /// The line-oriented `privtree-synopsis v1` text format.
    Text,
}

impl ReleaseFormat {
    /// Manifest spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            ReleaseFormat::Binary => "binary",
            ReleaseFormat::Text => "text",
        }
    }

    /// File extension for new release files.
    fn extension(self) -> &'static str {
        match self {
            ReleaseFormat::Binary => "ptbin",
            ReleaseFormat::Text => "txt",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s {
            "binary" => Some(ReleaseFormat::Binary),
            "text" => Some(ReleaseFormat::Text),
            _ => None,
        }
    }
}

impl std::fmt::Display for ReleaseFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One manifest entry: where a release generation lives and how to
/// check it.
#[derive(Debug, Clone, PartialEq)]
pub struct CatalogEntry {
    /// File name relative to the catalog directory.
    pub file: String,
    /// How the file is encoded.
    pub format: ReleaseFormat,
    /// CRC-32 of the whole file, verified before every decode.
    pub checksum: u32,
    /// Monotone per-key generation number (1 for a key's first
    /// publish; bumped by every replacing publish).
    pub generation: u64,
}

/// A release opened by [`Catalog::load_mapped`]: the validated arena
/// (columns borrowing the mapping when storage is zero-copy) plus the
/// grid in whichever form the load produced — eager for copying paths,
/// staged for zero-copy opens. Convert to a serving handle with
/// [`LoadedRelease::into_handle`].
#[derive(Debug)]
pub struct LoadedRelease {
    /// The validated frozen arena.
    pub arena: FrozenSynopsis,
    /// An eagerly assembled grid (text loads and copy fallbacks).
    pub grid: Option<CellGrid>,
    /// Persisted grid columns awaiting first-use assembly (zero-copy
    /// opens). At most one of `grid` / `staged_grid` is `Some`.
    pub staged_grid: Option<CellGridParts>,
    /// Bytes held by a memory mapping backing the columns (0 when the
    /// storage is owned).
    pub mapped_bytes: usize,
}

impl LoadedRelease {
    /// Whether the release's columns borrow a memory mapping.
    pub fn is_mapped(&self) -> bool {
        self.mapped_bytes > 0
    }

    /// Convert into a serving [`ShardHandle`], preserving the storage
    /// mode and the staged-vs-eager grid state.
    pub fn into_handle(self) -> ShardHandle {
        let handle = match self.grid {
            Some(grid) => ShardHandle::with_prebuilt_grid(self.arena, grid),
            None => ShardHandle::from_staged(self.arena, self.staged_grid),
        };
        handle.with_mapped_bytes(self.mapped_bytes)
    }
}

impl From<LoadedRelease> for ShardHandle {
    fn from(release: LoadedRelease) -> Self {
        release.into_handle()
    }
}

/// What [`Catalog::open`] cleaned up while recovering the directory
/// from a possible crashed writer.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RecoverySweep {
    /// Stale `.tmp` siblings removed (a writer died between create and
    /// rename).
    pub tmp_files: usize,
    /// Orphaned release files removed (present on disk, referenced by
    /// no current or retained generation — a writer died between
    /// landing the data file and the manifest/journal record, or
    /// between the record and the superseded file's unlink).
    pub orphan_files: usize,
    /// Orphaned journal segments removed (a rotation died between
    /// creating the fresh segment and the manifest, or between the
    /// manifest and the old segment's unlink).
    pub journal_files: usize,
}

impl RecoverySweep {
    /// Whether the sweep removed anything.
    pub fn is_clean(&self) -> bool {
        self.tmp_files == 0 && self.orphan_files == 0 && self.journal_files == 0
    }
}

/// An open catalog: the directory plus its parsed manifest, replayed
/// journal (if any), and retained older generations.
#[derive(Debug)]
pub struct Catalog {
    dir: PathBuf,
    entries: BTreeMap<String, CatalogEntry>,
    /// Older retained generations per key, oldest first (the current
    /// generation lives in `entries`).
    retained: BTreeMap<String, Vec<CatalogEntry>>,
    /// Newest generations kept per key (current + `keep - 1` retained).
    keep: usize,
    /// The open journal handle when journaling is enabled.
    journal: Option<Journal>,
    /// Active journal segment file name, as recorded in the manifest.
    journal_file: Option<String>,
    /// The sequence number the on-disk manifest covers (records with
    /// higher numbers replay on open).
    journal_seq: u64,
    /// Journal records applied by the last open.
    replayed: usize,
    sweep: RecoverySweep,
    /// Telemetry handles, when attached (see [`Catalog::attach_metrics`]).
    metrics: Option<Arc<CatalogMetrics>>,
}

/// Map a release key to a filesystem-safe stem: keep `[A-Za-z0-9._-]`,
/// replace the rest with `_`, and suffix the key's CRC-32 so distinct
/// keys can never collide on disk after sanitization.
fn file_stem(key: &str) -> String {
    let safe: String = key
        .chars()
        .take(48)
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                c
            } else {
                '_'
            }
        })
        .collect();
    format!("{safe}-{:08x}", crc32(key.as_bytes()))
}

/// Escape a string for a double-quoted TOML value.
fn toml_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    out
}

/// Unescape a double-quoted TOML value (the subset [`toml_escape`]
/// emits).
fn toml_unescape(s: &str, line: usize) -> Result<String, StoreError> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            other => {
                return Err(StoreError::Manifest {
                    line,
                    reason: format!("unsupported escape \\{}", other.unwrap_or(' ')),
                })
            }
        }
    }
    Ok(out)
}

/// Traverse the failpoint `{label}.{step}`. With the `failpoints`
/// feature off this compiles to nothing (no allocation, no lookup).
#[cfg(feature = "failpoints")]
pub(crate) fn fail_point(
    label: &str,
    step: &str,
) -> Result<(), privtree_runtime::failpoints::Failure> {
    privtree_runtime::failpoints::check(&format!("{label}.{step}"))
}

/// No-op stand-in when fault injection is compiled out.
#[cfg(not(feature = "failpoints"))]
#[inline(always)]
pub(crate) fn fail_point(
    _label: &str,
    _step: &str,
) -> Result<(), privtree_runtime::failpoints::Failure> {
    Ok(())
}

/// Write `bytes` to `path` atomically **and durably**: `.tmp` sibling
/// first, `fsync` it (so the data blocks are on disk before the rename
/// can make them visible), rename into place, then `fsync` the parent
/// directory so the rename itself survives power loss — without the
/// directory sync, a crash can persist the rename while the file is
/// still empty, exactly the torn state this module promises away.
///
/// `label` names the failpoints threaded through the five steps
/// (`{label}.create` / `.write` / `.sync` / `.rename` / `.dirsync`).
/// An injected **error** behaves like the real syscall failing — the
/// `.tmp` sibling is cleaned up; an injected **crash** returns without
/// any cleanup, leaving the disk exactly as a dying process would
/// (a torn `.tmp`, an un-synced rename), for [`Catalog::open`]'s
/// recovery sweep to deal with.
pub(crate) fn atomic_write(path: &Path, bytes: &[u8], label: &str) -> Result<(), StoreError> {
    use std::io::Write as _;
    let tmp = path.with_extension(format!(
        "{}.tmp",
        path.extension().and_then(|e| e.to_str()).unwrap_or("dat")
    ));
    // an injected crash must leave the .tmp residue in place — the
    // process is modelled as dead, so no cleanup code would have run
    let injected = |f: privtree_runtime::failpoints::Failure| -> StoreError {
        if !f.is_crash() {
            let _ = std::fs::remove_file(&tmp);
        }
        StoreError::Io {
            context: format!("write {}", tmp.display()),
            message: f.to_string(),
        }
    };
    let cleanup_io = |context: String, e: std::io::Error| -> StoreError {
        let _ = std::fs::remove_file(&tmp);
        StoreError::io(context, e)
    };
    fail_point(label, "create").map_err(&injected)?;
    let mut file = std::fs::File::create(&tmp)
        .map_err(|e| cleanup_io(format!("create {}", tmp.display()), e))?;
    if let Err(f) = fail_point(label, "write") {
        if f.is_crash() {
            // model a torn write: half the payload reached the disk
            let _ = file.write_all(&bytes[..bytes.len() / 2]);
        }
        drop(file);
        return Err(injected(f));
    }
    file.write_all(bytes)
        .map_err(|e| cleanup_io(format!("write {}", tmp.display()), e))?;
    fail_point(label, "sync").map_err(&injected)?;
    file.sync_all()
        .map_err(|e| cleanup_io(format!("sync {}", tmp.display()), e))?;
    drop(file);
    fail_point(label, "rename").map_err(&injected)?;
    std::fs::rename(&tmp, path)
        .map_err(|e| cleanup_io(format!("rename {} into place", tmp.display()), e))?;
    fail_point(label, "dirsync").map_err(|f| StoreError::Io {
        // the rename already landed: nothing to clean up either way
        context: format!("sync directory of {}", path.display()),
        message: f.to_string(),
    })?;
    if let Some(parent) = path.parent() {
        std::fs::File::open(parent)
            .and_then(|dir| dir.sync_all())
            .map_err(|e| StoreError::io(format!("sync directory {}", parent.display()), e))?;
    }
    Ok(())
}

/// Whether `name` looks like a catalog-managed release file: the
/// `.ptbin`/`.txt` extension plus the checksum suffix every
/// catalog-generated name carries. Only such files are candidates for
/// the orphan sweep — anything else in the directory is left alone.
fn looks_like_release_file(name: &str) -> bool {
    let stem = match name.rsplit_once('.') {
        Some((stem, "ptbin" | "txt")) => stem,
        _ => return false,
    };
    match stem.rsplit_once('-') {
        Some((_, suffix)) => suffix.len() == 8 && suffix.bytes().all(|b| b.is_ascii_hexdigit()),
        None => false,
    }
}

impl Catalog {
    /// Open an existing catalog: the directory must hold a manifest.
    ///
    /// Opening **recovers** the directory from a crashed writer: the
    /// active journal segment (if the manifest names one) is replayed
    /// on top of the manifest — torn tails truncate, records above the
    /// manifest's `journal_seq` re-apply, retained generations whose
    /// file a pre-crash GC already unlinked are dropped — then stale
    /// `.tmp` siblings, orphaned release files, and orphaned journal
    /// segments are removed. The result is reported through
    /// [`Catalog::recovery_sweep`]. The manifest itself is written
    /// atomically, so it always parses to either the old or the new
    /// generation.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let dir = dir.into();
        let manifest = dir.join(MANIFEST_FILE);
        let text = std::fs::read_to_string(&manifest)
            .map_err(|e| StoreError::io(format!("read {}", manifest.display()), e))?;
        let parsed = parse_manifest(&text)?;
        let mut catalog = Self {
            dir,
            entries: parsed.entries,
            retained: parsed.retained,
            keep: parsed.keep,
            journal: None,
            journal_file: parsed.journal,
            journal_seq: parsed.journal_seq,
            replayed: 0,
            sweep: RecoverySweep::default(),
            metrics: None,
        };
        if let Some(name) = catalog.journal_file.clone() {
            // the replay must run before the sweep: a post-checkpoint
            // publish's data file is referenced only by its journal
            // record until the records are applied
            let path = catalog.dir.join(&name);
            let (journal, records) =
                Journal::open(&path, catalog.journal_seq, FsyncPolicy::Always)?;
            for record in records {
                if record.seq > catalog.journal_seq {
                    catalog.apply_replayed(record.op);
                    catalog.replayed += 1;
                }
            }
            catalog.journal = Some(journal);
        }
        // a retained generation whose file the dying writer's GC
        // already unlinked is gone for good — drop the entry rather
        // than carry a reference the sweep (and loads) cannot honour.
        // Current entries are never dropped here: a missing *current*
        // file is quarantine territory for the lossy loaders.
        let dir = catalog.dir.clone();
        for list in catalog.retained.values_mut() {
            list.retain(|e| dir.join(&e.file).exists());
        }
        catalog.retained.retain(|_, list| !list.is_empty());
        catalog.sweep = catalog.run_sweep();
        Ok(catalog)
    }

    /// Open a catalog, creating the directory and an empty manifest when
    /// none exists yet.
    pub fn open_or_create(dir: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let dir = dir.into();
        if dir.join(MANIFEST_FILE).exists() {
            return Self::open(dir);
        }
        std::fs::create_dir_all(&dir)
            .map_err(|e| StoreError::io(format!("create {}", dir.display()), e))?;
        let mut catalog = Self {
            dir,
            entries: BTreeMap::new(),
            retained: BTreeMap::new(),
            keep: 1,
            journal: None,
            journal_file: None,
            journal_seq: 0,
            replayed: 0,
            sweep: RecoverySweep::default(),
            metrics: None,
        };
        catalog.write_manifest()?;
        // a writer may have died before its first manifest landed —
        // clear its .tmp residue exactly like the open path would
        catalog.sweep = catalog.run_sweep();
        Ok(catalog)
    }

    /// What [`Catalog::open`] removed while recovering the directory
    /// ([`RecoverySweep::is_clean`] when there was nothing to do).
    pub fn recovery_sweep(&self) -> RecoverySweep {
        self.sweep
    }

    /// The catalog directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of releases in the catalog (current generations only).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the catalog holds no releases.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Release keys in sorted order.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(|k| k.as_str())
    }

    /// The manifest entry for `key`'s current generation, if any.
    pub fn entry(&self, key: &str) -> Option<&CatalogEntry> {
        self.entries.get(key)
    }

    /// Retained older generations of `key`, oldest first (the current
    /// generation is [`Catalog::entry`]).
    pub fn retained(&self, key: &str) -> &[CatalogEntry] {
        self.retained.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Total retained generations across every key.
    pub fn retained_total(&self) -> usize {
        self.retained.values().map(Vec::len).sum()
    }

    /// Every retained generation, as `(key, entry)` pairs in sorted key
    /// order (oldest generation first within a key).
    pub fn retained_entries(&self) -> impl Iterator<Item = (&str, &CatalogEntry)> {
        self.retained
            .iter()
            .flat_map(|(key, list)| list.iter().map(move |e| (key.as_str(), e)))
    }

    /// Newest generations kept per key (see [`Catalog::set_retention`]).
    pub fn keep_generations(&self) -> usize {
        self.keep
    }

    /// Keep the newest `keep` generations per key: the current one plus
    /// `keep - 1` retained (clamped to at least 1 — today's
    /// replace-means-delete behaviour). Applied by subsequent
    /// mutations; already-retained generations beyond the new limit are
    /// trimmed the next time their key mutates. Persisted by the next
    /// manifest write (non-journaled mutation, [`Catalog::checkpoint`],
    /// or [`Catalog::enable_journal`]).
    pub fn set_retention(&mut self, keep: usize) {
        self.keep = keep.max(1);
    }

    /// Attach telemetry: journal appends/fsyncs, replays, GC unlinks,
    /// and checkpoints record through `metrics` from here on. Records
    /// the replay the last open already performed, so a registry
    /// attached right after [`Catalog::open`] still sees it.
    pub fn attach_metrics(&mut self, metrics: Arc<CatalogMetrics>) {
        metrics.replayed_ops.add(self.replayed as u64);
        if let Some(journal) = self.journal.as_mut() {
            journal.set_metrics(Arc::clone(&metrics.journal));
        }
        self.metrics = Some(metrics);
    }

    /// Whether mutations are journaled (see [`Catalog::enable_journal`]).
    pub fn journaling(&self) -> bool {
        self.journal.is_some()
    }

    /// The active journal segment's file name, if journaling.
    pub fn journal_segment(&self) -> Option<&str> {
        self.journal_file.as_deref()
    }

    /// The sequence number of the last journaled operation (equals
    /// [`Catalog::checkpoint_seq`] when nothing was appended since the
    /// last checkpoint; 0 on a never-journaled catalog).
    pub fn journal_seq(&self) -> u64 {
        self.journal
            .as_ref()
            .map(Journal::last_seq)
            .unwrap_or(self.journal_seq)
    }

    /// The sequence number the on-disk manifest covers.
    pub fn checkpoint_seq(&self) -> u64 {
        self.journal_seq
    }

    /// Journal records the last [`Catalog::open`] replayed on top of
    /// the manifest (0 when the segment was empty or absent).
    pub fn replayed_ops(&self) -> usize {
        self.replayed
    }

    /// The journal's fsync policy, when journaling.
    pub fn fsync_policy(&self) -> Option<FsyncPolicy> {
        self.journal.as_ref().map(Journal::policy)
    }

    /// Turn on write-ahead journaling: create a fresh segment (atomic,
    /// durable), reference it from the manifest, and route every
    /// subsequent `save`/`import`/`remove` through an appended record
    /// instead of a manifest rewrite. Idempotent — on an
    /// already-journaling catalog (including one whose journal
    /// [`Catalog::open`] just replayed) this only updates the fsync
    /// policy.
    pub fn enable_journal(&mut self, policy: FsyncPolicy) -> Result<(), StoreError> {
        if let Some(journal) = self.journal.as_mut() {
            journal.set_policy(policy);
            return Ok(());
        }
        let name = journal::segment_name(self.journal_seq);
        let mut journal = Journal::create(&self.dir.join(&name), self.journal_seq, policy)?;
        if let Some(m) = &self.metrics {
            journal.set_metrics(Arc::clone(&m.journal));
        }
        let saved = self.journal_file.take();
        self.journal_file = Some(name);
        if let Err(e) = self.write_manifest() {
            // the fresh segment is an orphan; the next open sweeps it
            self.journal_file = saved;
            return Err(e);
        }
        self.journal = Some(journal);
        Ok(())
    }

    /// Fold the journaled state into the manifest and rotate the
    /// journal: append (and fsync) a checkpoint record, create the next
    /// segment, rewrite the manifest to cover everything up to the
    /// checkpoint, and unlink the old segment. Returns the checkpoint's
    /// sequence number. A crash at any step recovers to either side:
    /// the old manifest + old segment replay to the same state the new
    /// manifest records. On a non-journaled catalog this just rewrites
    /// the manifest (which per-mutation writes keep current anyway).
    pub fn checkpoint(&mut self) -> Result<u64, StoreError> {
        let Some(journal) = self.journal.as_mut() else {
            self.write_manifest()?;
            return Ok(self.journal_seq);
        };
        let seq = journal.append(&JournalOp::Checkpoint)?;
        journal.sync()?;
        let policy = journal.policy();
        let name = journal::segment_name(seq);
        let mut next = Journal::create(&self.dir.join(&name), seq, policy)?;
        if let Some(m) = &self.metrics {
            next.set_metrics(Arc::clone(&m.journal));
        }
        let saved_seq = self.journal_seq;
        let saved_file = self.journal_file.clone();
        self.journal_seq = seq;
        self.journal_file = Some(name);
        if let Err(e) = self.write_manifest() {
            // the fresh segment is an orphan (swept on the next open);
            // the old segment — checkpoint record included — stays
            // active and replays to exactly this state
            self.journal_seq = saved_seq;
            self.journal_file = saved_file;
            return Err(e);
        }
        self.journal = Some(next);
        if let Some(m) = &self.metrics {
            m.checkpoints.inc();
        }
        if let Some(old) = saved_file {
            fail_point("journal.gc", "unlink").map_err(|f| StoreError::Io {
                context: format!("unlink rotated segment {old}"),
                message: f.to_string(),
            })?;
            if std::fs::remove_file(self.dir.join(&old)).is_ok() {
                if let Some(m) = &self.metrics {
                    m.gc_unlinked.inc();
                }
            }
        }
        Ok(seq)
    }

    /// Persist a release under `key`: encode in `format`, publish the
    /// file atomically, then record the new generation (journal append
    /// when journaling, manifest rewrite otherwise). An existing entry
    /// for `key` is superseded; its file is retained or unlinked per
    /// the retention policy.
    pub fn save(
        &mut self,
        key: &str,
        arena: &FrozenSynopsis,
        grid: Option<&CellGrid>,
        format: ReleaseFormat,
    ) -> Result<CatalogEntry, StoreError> {
        let bytes = match format {
            ReleaseFormat::Binary => encode_release(arena, grid),
            ReleaseFormat::Text => release_to_text(arena, grid).into_bytes(),
        };
        self.publish(key, &bytes, format)
    }

    /// Ingest already-encoded release bytes under `key`, validating that
    /// they decode cleanly first (so the catalog can never point at a
    /// file its own loader rejects). This is how externally produced
    /// releases — e.g. a text release converted with
    /// [`crate::text_to_binary`] — enter a catalog.
    pub fn import(
        &mut self,
        key: &str,
        bytes: &[u8],
        format: ReleaseFormat,
    ) -> Result<CatalogEntry, StoreError> {
        match format {
            ReleaseFormat::Binary => {
                decode_release(bytes)?;
            }
            ReleaseFormat::Text => {
                let text = std::str::from_utf8(bytes).map_err(|_| {
                    StoreError::Text(privtree_spatial::serialize::ParseError::MissingSection {
                        section: "synopsis",
                        reason: "text release is not valid UTF-8".into(),
                    })
                })?;
                release_from_text(text)?;
            }
        }
        self.publish(key, bytes, format)
    }

    /// The generation the next publish of `key` gets: one past the
    /// newest live (current or retained) generation, so numbers stay
    /// monotone across retire/re-add cycles.
    fn next_generation(&self, key: &str) -> u64 {
        let current = self.entries.get(key).map(|e| e.generation).unwrap_or(0);
        let retained = self
            .retained
            .get(key)
            .and_then(|list| list.last())
            .map(|e| e.generation)
            .unwrap_or(0);
        current.max(retained) + 1
    }

    /// Whether any live generation — current or retained, any key —
    /// references `file`. The GC only unlinks files this returns
    /// `false` for.
    fn file_is_live(&self, file: &str) -> bool {
        self.entries.values().any(|e| e.file == file)
            || self.retained.values().flatten().any(|e| e.file == file)
    }

    /// Trim `key`'s retained list to the retention limit, returning the
    /// files the trim orphaned (deduplicated, live references
    /// excluded — ready for [`Catalog::gc_files`]).
    fn trim_retained(&mut self, key: &str) -> Vec<String> {
        let keep_old = self.keep.saturating_sub(1);
        let mut trimmed = Vec::new();
        if let Some(list) = self.retained.get_mut(key) {
            while list.len() > keep_old {
                trimmed.push(list.remove(0).file);
            }
            if list.is_empty() {
                self.retained.remove(key);
            }
        }
        let mut dead = Vec::new();
        for file in trimmed {
            if !dead.contains(&file) && !self.file_is_live(&file) {
                dead.push(file);
            }
        }
        dead
    }

    /// Unlink files no live generation references (pure GC, after the
    /// durable record landed). An injected failure surfaces as an
    /// error, but the committed state already excludes these files —
    /// the next open's sweep reclaims whatever was left behind.
    fn gc_files(&self, files: &[String]) -> Result<(), StoreError> {
        for file in files {
            fail_point("catalog.gc", "unlink").map_err(|f| StoreError::Io {
                context: format!("unlink superseded {file}"),
                message: f.to_string(),
            })?;
            if std::fs::remove_file(self.dir.join(file)).is_ok() {
                if let Some(m) = &self.metrics {
                    m.gc_unlinked.inc();
                }
            }
        }
        Ok(())
    }

    /// Make the staged entry/retained state durable: append a journal
    /// record when journaling, rewrite the manifest otherwise.
    fn record_mutation(&mut self, op: JournalOp) -> Result<(), StoreError> {
        match self.journal.as_mut() {
            Some(journal) => journal.append(&op).map(|_| ()),
            None => self.write_manifest(),
        }
    }

    /// Write the data file, then record the new generation — journal
    /// append or manifest rewrite, both atomic.
    ///
    /// The file name carries the generation number *and* the content
    /// checksum, so replacing a key writes a **new** file instead of
    /// renaming over the live one: until the record lands, the old
    /// generation's bytes still match the old record's checksum, and
    /// after it lands the new ones match the new — there is no window
    /// in which the catalog points at bytes it did not record. The
    /// generation qualifier is load-bearing, not decorative: a CRC of
    /// a stream that ends in its own CRC is a constant (the CRC
    /// residue), so two releases differing only in the *final*
    /// section's payload share a whole-file checksum — the checksum
    /// alone cannot name files uniquely. Superseded files beyond the
    /// retention limit are unlinked last (pure GC; a crash before the
    /// unlink leaves an orphan for the next open's recovery sweep).
    fn publish(
        &mut self,
        key: &str,
        bytes: &[u8],
        format: ReleaseFormat,
    ) -> Result<CatalogEntry, StoreError> {
        let checksum = crc32(bytes);
        let generation = self.next_generation(key);
        let file = format!(
            "{}-g{generation:x}-{checksum:08x}.{}",
            file_stem(key),
            format.extension()
        );
        atomic_write(&self.dir.join(&file), bytes, "catalog.data")?;
        let entry = CatalogEntry {
            file: file.clone(),
            format,
            checksum,
            generation,
        };
        let saved_entries = self.entries.clone();
        let saved_retained = self.retained.clone();
        let previous = self.entries.insert(key.to_string(), entry.clone());
        let fresh = previous.is_none();
        if let Some(prev) = previous {
            self.retained.entry(key.to_string()).or_default().push(prev);
        }
        let gc = self.trim_retained(key);
        let op = if fresh {
            JournalOp::Add {
                key: key.to_string(),
                file,
                format,
                checksum,
                generation,
            }
        } else {
            JournalOp::Swap {
                key: key.to_string(),
                file,
                format,
                checksum,
                generation,
            }
        };
        if let Err(e) = self.record_mutation(op) {
            // roll the in-memory maps back so this handle stays
            // consistent with the record that is actually on disk
            // (the new data file is an orphan; the sweep reclaims it)
            self.entries = saved_entries;
            self.retained = saved_retained;
            return Err(e);
        }
        self.gc_files(&gc)?;
        Ok(entry)
    }

    /// Load the release stored under `key`, verifying the whole-file
    /// checksum before decoding. Returns the same shape the serving
    /// loaders use: the frozen arena plus the shipped grid, if any.
    pub fn load(&self, key: &str) -> Result<(FrozenSynopsis, Option<CellGrid>), StoreError> {
        let entry = self
            .entries
            .get(key)
            .ok_or_else(|| StoreError::UnknownKey {
                key: key.to_string(),
            })?;
        let path = self.dir.join(&entry.file);
        let bytes = std::fs::read(&path)
            .map_err(|e| StoreError::io(format!("read {}", path.display()), e))?;
        let found = crc32(&bytes);
        if found != entry.checksum {
            return Err(StoreError::ChecksumMismatch {
                section: "file",
                expected: entry.checksum,
                found,
            });
        }
        match entry.format {
            ReleaseFormat::Binary => decode_release(&bytes),
            ReleaseFormat::Text => {
                let text = std::str::from_utf8(&bytes).map_err(|_| {
                    StoreError::Text(privtree_spatial::serialize::ParseError::MissingSection {
                        section: "synopsis",
                        reason: "text release is not valid UTF-8".into(),
                    })
                })?;
                Ok(release_from_text(text)?)
            }
        }
    }

    /// Load every release, in sorted key order — the warm-start path.
    #[allow(clippy::type_complexity)]
    pub fn load_all(&self) -> Result<Vec<(String, FrozenSynopsis, Option<CellGrid>)>, StoreError> {
        self.entries
            .keys()
            .map(|key| {
                let (arena, grid) = self.load(key)?;
                Ok((key.clone(), arena, grid))
            })
            .collect()
    }

    /// Load the release stored under `key` with zero-copy storage when
    /// possible: binary releases are memory-mapped (falling back to an
    /// owned read when the `mmap` feature is off or mapping fails), the
    /// whole-file checksum is verified against the manifest, and the
    /// columns borrow the mapping in place. The grid, when shipped, is
    /// *staged* rather than assembled, so opening is O(map + validate);
    /// `ShardHandle` assembles it on first use. Text releases fall back
    /// to the copying [`Catalog::load`] path.
    pub fn load_mapped(&self, key: &str) -> Result<LoadedRelease, StoreError> {
        let entry = self
            .entries
            .get(key)
            .ok_or_else(|| StoreError::UnknownKey {
                key: key.to_string(),
            })?;
        if entry.format == ReleaseFormat::Text {
            let (arena, grid) = self.load(key)?;
            return Ok(LoadedRelease {
                arena,
                grid,
                staged_grid: None,
                mapped_bytes: 0,
            });
        }
        let path = self.dir.join(&entry.file);
        let owner = ReleaseBytes::map(&path)?;
        let found = crc32(owner.bytes());
        if found != entry.checksum {
            return Err(StoreError::ChecksumMismatch {
                section: "file",
                expected: entry.checksum,
                found,
            });
        }
        let mapped_bytes = owner.mapped_len();
        let owner: Arc<dyn StableBytes> = Arc::new(owner);
        // the whole-file CRC above already covers every section byte, so
        // the open skips the per-section CRC pass
        let view = open_release_view(&owner, false)?;
        Ok(LoadedRelease {
            arena: view.arena,
            grid: None,
            staged_grid: view.grid,
            mapped_bytes,
        })
    }

    /// [`Catalog::load_mapped`] for every release, in sorted key order —
    /// the zero-copy warm-start path.
    pub fn load_all_mapped(&self) -> Result<Vec<(String, LoadedRelease)>, StoreError> {
        self.entries
            .keys()
            .map(|key| Ok((key.clone(), self.load_mapped(key)?)))
            .collect()
    }

    /// [`Catalog::load_all`], degraded: releases whose file is missing,
    /// torn, or corrupt are **quarantined** (returned with their typed
    /// per-key error) instead of failing the whole load, so one bad
    /// release costs capacity, not availability. Surviving releases
    /// load bit-identically to the strict path, in sorted key order.
    #[allow(clippy::type_complexity)]
    pub fn load_all_lossy(
        &self,
    ) -> (
        Vec<(String, FrozenSynopsis, Option<CellGrid>)>,
        Vec<(String, StoreError)>,
    ) {
        let mut loaded = Vec::new();
        let mut quarantined = Vec::new();
        for key in self.entries.keys() {
            match self.load(key) {
                Ok((arena, grid)) => loaded.push((key.clone(), arena, grid)),
                Err(e) => quarantined.push((key.clone(), e)),
            }
        }
        (loaded, quarantined)
    }

    /// [`Catalog::load_all_mapped`], degraded exactly like
    /// [`Catalog::load_all_lossy`]: per-key errors quarantine that key,
    /// the rest of the catalog serves.
    #[allow(clippy::type_complexity)]
    pub fn load_all_mapped_lossy(
        &self,
    ) -> (Vec<(String, LoadedRelease)>, Vec<(String, StoreError)>) {
        let mut loaded = Vec::new();
        let mut quarantined = Vec::new();
        for key in self.entries.keys() {
            match self.load_mapped(key) {
                Ok(release) => loaded.push((key.clone(), release)),
                Err(e) => quarantined.push((key.clone(), e)),
            }
        }
        (loaded, quarantined)
    }

    /// Drop `key` from the catalog: record first (journal append or
    /// manifest rewrite — so a crash leaves an orphan file, never a
    /// dangling entry), then unlink whatever the retention policy does
    /// not keep. With retention above 1 the retired generation is
    /// retained like a superseded one.
    pub fn remove(&mut self, key: &str) -> Result<(), StoreError> {
        if !self.entries.contains_key(key) {
            return Err(StoreError::UnknownKey {
                key: key.to_string(),
            });
        }
        let saved_entries = self.entries.clone();
        let saved_retained = self.retained.clone();
        let entry = self.entries.remove(key).expect("checked above");
        self.retained
            .entry(key.to_string())
            .or_default()
            .push(entry);
        let gc = self.trim_retained(key);
        if let Err(e) = self.record_mutation(JournalOp::Retire {
            key: key.to_string(),
        }) {
            self.entries = saved_entries;
            self.retained = saved_retained;
            return Err(e);
        }
        self.gc_files(&gc)?;
        Ok(())
    }

    /// Re-apply one replayed journal record to the in-memory maps.
    /// Never touches the disk: trims only drop entries (live GC already
    /// unlinked, or the sweep will), and the post-replay existence
    /// filter reconciles whatever a dying GC left half-done.
    fn apply_replayed(&mut self, op: JournalOp) {
        match op {
            JournalOp::Add {
                key,
                file,
                format,
                checksum,
                generation,
            }
            | JournalOp::Swap {
                key,
                file,
                format,
                checksum,
                generation,
            } => {
                let entry = CatalogEntry {
                    file,
                    format,
                    checksum,
                    generation,
                };
                if let Some(prev) = self.entries.insert(key.clone(), entry) {
                    self.retained.entry(key.clone()).or_default().push(prev);
                }
                let _ = self.trim_retained(&key);
            }
            JournalOp::Retire { key } => {
                if let Some(prev) = self.entries.remove(&key) {
                    self.retained.entry(key.clone()).or_default().push(prev);
                }
                let _ = self.trim_retained(&key);
            }
            JournalOp::Checkpoint => {}
        }
    }

    /// Whether some live state — the manifest/journal bookkeeping or
    /// any generation — references the directory entry `name`.
    fn references_file(&self, name: &str) -> bool {
        self.journal_file.as_deref() == Some(name)
            || self.entries.values().any(|e| e.file == name)
            || self.retained.values().flatten().any(|e| e.file == name)
    }

    /// Remove crashed-writer residue from the directory: stale `.tmp`
    /// siblings, release-shaped files no generation references, and
    /// journal-shaped segments other than the active one. Sweep
    /// failures are ignored (recovery must never make an openable
    /// catalog unopenable); unremoved files are simply re-candidates
    /// next open.
    fn run_sweep(&self) -> RecoverySweep {
        let mut sweep = RecoverySweep::default();
        let Ok(read_dir) = std::fs::read_dir(&self.dir) else {
            return sweep;
        };
        for dirent in read_dir.flatten() {
            let name = dirent.file_name();
            let Some(name) = name.to_str() else { continue };
            if name == MANIFEST_FILE || self.references_file(name) {
                continue;
            }
            if name.ends_with(".tmp") {
                if std::fs::remove_file(dirent.path()).is_ok() {
                    sweep.tmp_files += 1;
                }
            } else if looks_like_release_file(name) {
                if std::fs::remove_file(dirent.path()).is_ok() {
                    sweep.orphan_files += 1;
                }
            } else if journal::looks_like_segment(name)
                && std::fs::remove_file(dirent.path()).is_ok()
            {
                sweep.journal_files += 1;
            }
        }
        sweep
    }

    /// Render and atomically replace `catalog.toml`.
    fn write_manifest(&self) -> Result<(), StoreError> {
        let mut out = String::from("# privtree-store catalog\n");
        out.push_str(&format!("version = {MANIFEST_VERSION}\n"));
        if let Some(journal) = &self.journal_file {
            out.push_str(&format!("journal_seq = {}\n", self.journal_seq));
            out.push_str(&format!("journal = \"{}\"\n", toml_escape(journal)));
        }
        if self.keep != 1 {
            out.push_str(&format!("keep = {}\n", self.keep));
        }
        let render = |out: &mut String, table: &str, key: &str, entry: &CatalogEntry| {
            out.push_str(&format!(
                "\n[[{table}]]\nkey = \"{}\"\nfile = \"{}\"\nformat = \"{}\"\nchecksum = \"crc32:{:08x}\"\ngeneration = {}\n",
                toml_escape(key),
                toml_escape(&entry.file),
                entry.format,
                entry.checksum,
                entry.generation,
            ));
        };
        for (key, entry) in &self.entries {
            render(&mut out, "release", key, entry);
        }
        for (key, list) in &self.retained {
            for entry in list {
                render(&mut out, "retained", key, entry);
            }
        }
        atomic_write(
            &self.dir.join(MANIFEST_FILE),
            out.as_bytes(),
            "catalog.manifest",
        )
    }
}

/// Everything [`parse_manifest`] extracts from `catalog.toml`.
struct ParsedManifest {
    entries: BTreeMap<String, CatalogEntry>,
    retained: BTreeMap<String, Vec<CatalogEntry>>,
    journal: Option<String>,
    journal_seq: u64,
    keep: usize,
}

/// Parse the manifest subset [`Catalog::write_manifest`] emits:
/// comments, top-level `version` / `journal_seq` / `journal` / `keep`
/// fields, `[[release]]` and `[[retained]]` table headers, and their
/// double-quoted string (plus integer `generation`) assignments.
/// Fields introduced by the generation/journal work are optional, so a
/// pre-generation manifest parses with defaults.
fn parse_manifest(text: &str) -> Result<ParsedManifest, StoreError> {
    struct Partial {
        line: usize,
        retained: bool,
        key: Option<String>,
        file: Option<String>,
        format: Option<ReleaseFormat>,
        checksum: Option<u32>,
        generation: Option<u64>,
    }
    let mut manifest = ParsedManifest {
        entries: BTreeMap::new(),
        retained: BTreeMap::new(),
        journal: None,
        journal_seq: 0,
        keep: 1,
    };
    let mut current: Option<Partial> = None;
    let mut version: Option<u64> = None;

    let finish = |p: Partial, manifest: &mut ParsedManifest| {
        let missing = |field: &str| StoreError::Manifest {
            line: p.line,
            reason: format!(
                "[[{}]] is missing {field}",
                if p.retained { "retained" } else { "release" }
            ),
        };
        let key = p.key.clone().ok_or_else(|| missing("key"))?;
        let entry = CatalogEntry {
            file: p.file.clone().ok_or_else(|| missing("file"))?,
            format: p.format.ok_or_else(|| missing("format"))?,
            checksum: p.checksum.ok_or_else(|| missing("checksum"))?,
            generation: p.generation.unwrap_or(1),
        };
        if p.retained {
            manifest.retained.entry(key).or_default().push(entry);
        } else if manifest.entries.insert(key.clone(), entry).is_some() {
            return Err(StoreError::Manifest {
                line: p.line,
                reason: format!("duplicate release key {key}"),
            });
        }
        Ok(())
    };

    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[release]]" || line == "[[retained]]" {
            if let Some(p) = current.take() {
                finish(p, &mut manifest)?;
            }
            current = Some(Partial {
                line: line_no,
                retained: line == "[[retained]]",
                key: None,
                file: None,
                format: None,
                checksum: None,
                generation: None,
            });
            continue;
        }
        let (name, value) = line.split_once('=').ok_or_else(|| StoreError::Manifest {
            line: line_no,
            reason: format!("expected name = value, found: {line}"),
        })?;
        let (name, value) = (name.trim(), value.trim());
        let parse_int = |what: &str| -> Result<u64, StoreError> {
            value.parse().map_err(|_| StoreError::Manifest {
                line: line_no,
                reason: format!("bad {what} {value}"),
            })
        };
        if current.is_none() {
            match name {
                "version" => {
                    let v = parse_int("version")?;
                    if v != MANIFEST_VERSION {
                        return Err(StoreError::Manifest {
                            line: line_no,
                            reason: format!("manifest version {v} is not supported"),
                        });
                    }
                    version = Some(v);
                }
                "journal_seq" => manifest.journal_seq = parse_int("journal_seq")?,
                "keep" => {
                    let keep = parse_int("keep")?;
                    if keep == 0 {
                        return Err(StoreError::Manifest {
                            line: line_no,
                            reason: "keep must be at least 1".into(),
                        });
                    }
                    manifest.keep = keep as usize;
                }
                "journal" => {
                    let quoted = value
                        .strip_prefix('"')
                        .and_then(|v| v.strip_suffix('"'))
                        .ok_or_else(|| StoreError::Manifest {
                            line: line_no,
                            reason: "journal value must be double-quoted".into(),
                        })?;
                    manifest.journal = Some(toml_unescape(quoted, line_no)?);
                }
                other => {
                    return Err(StoreError::Manifest {
                        line: line_no,
                        reason: format!("unexpected top-level field {other}"),
                    })
                }
            }
            continue;
        }
        let p = current.as_mut().expect("inside a table");
        if name == "generation" {
            p.generation = Some(parse_int("generation")?);
            continue;
        }
        let quoted = value
            .strip_prefix('"')
            .and_then(|v| v.strip_suffix('"'))
            .ok_or_else(|| StoreError::Manifest {
                line: line_no,
                reason: format!("{name} value must be double-quoted"),
            })?;
        let value = toml_unescape(quoted, line_no)?;
        match name {
            "key" => p.key = Some(value),
            "file" => p.file = Some(value),
            "format" => {
                p.format =
                    Some(
                        ReleaseFormat::parse(&value).ok_or_else(|| StoreError::Manifest {
                            line: line_no,
                            reason: format!("unknown format {value}"),
                        })?,
                    )
            }
            "checksum" => {
                let hex = value
                    .strip_prefix("crc32:")
                    .ok_or_else(|| StoreError::Manifest {
                        line: line_no,
                        reason: format!("checksum must be crc32:<hex>, found {value}"),
                    })?;
                p.checksum =
                    Some(
                        u32::from_str_radix(hex, 16).map_err(|_| StoreError::Manifest {
                            line: line_no,
                            reason: format!("bad checksum hex {hex}"),
                        })?,
                    );
            }
            other => {
                return Err(StoreError::Manifest {
                    line: line_no,
                    reason: format!("unknown release field {other}"),
                })
            }
        }
    }
    if let Some(p) = current.take() {
        finish(p, &mut manifest)?;
    }
    if version.is_none() {
        return Err(StoreError::Manifest {
            line: 1,
            reason: "no version field".into(),
        });
    }
    // retained lists replay oldest-first regardless of table order
    for list in manifest.retained.values_mut() {
        list.sort_by_key(|e| e.generation);
    }
    Ok(manifest)
}

/// Sniff whether `bytes` look like a `privtree-bin` file (vs text).
pub fn looks_binary(bytes: &[u8]) -> bool {
    bytes.len() >= MAGIC.len() && bytes[..MAGIC.len()] == MAGIC
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_stems_are_safe_and_distinct() {
        let a = file_stem("epoch/2026-07-27T00:00");
        assert!(a
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-')));
        // sanitization collides, the checksum suffix does not
        assert_ne!(file_stem("a/b"), file_stem("a:b"));
        assert_eq!(file_stem("west"), file_stem("west"));
    }

    #[test]
    fn manifest_round_trips_awkward_keys() {
        let dir =
            std::env::temp_dir().join(format!("privtree-catalog-unit-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cat = Catalog::open_or_create(&dir).unwrap();
        let tree = privtree_core::tree::Tree::with_root(privtree_spatial::Rect::unit(2));
        let arena = FrozenSynopsis::from_tree(&tree, &[7.5], "leaf");
        cat.save("we\"ird\\key", &arena, None, ReleaseFormat::Binary)
            .unwrap();
        let reopened = Catalog::open(&dir).unwrap();
        assert_eq!(reopened.keys().collect::<Vec<_>>(), ["we\"ird\\key"]);
        assert_eq!(reopened.entry("we\"ird\\key").unwrap().generation, 1);
        let (back, grid) = reopened.load("we\"ird\\key").unwrap();
        assert!(grid.is_none());
        assert_eq!(back.counts(), &[7.5]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_rejects_garbage() {
        assert!(matches!(
            parse_manifest("version = 1\nbogus = 3\n"),
            Err(StoreError::Manifest { line: 2, .. })
        ));
        assert!(matches!(
            parse_manifest("version = 2\n"),
            Err(StoreError::Manifest { line: 1, .. })
        ));
        assert!(matches!(
            parse_manifest("version = 1\nkeep = 0\n"),
            Err(StoreError::Manifest { line: 2, .. })
        ));
        assert!(matches!(
            parse_manifest("version = 1\n[[release]]\nkey = \"a\"\n"),
            Err(StoreError::Manifest { .. })
        ));
        assert!(parse_manifest("version = 1\n").unwrap().entries.is_empty());
    }

    #[test]
    fn manifest_parses_journal_retention_and_defaults() {
        // a pre-generation manifest (no generation / journal / keep
        // fields) parses with defaults
        let legacy = "version = 1\n\n[[release]]\nkey = \"west\"\nfile = \"west-00000001.ptbin\"\n\
                      format = \"binary\"\nchecksum = \"crc32:00000001\"\n";
        let parsed = parse_manifest(legacy).unwrap();
        assert_eq!(parsed.entries["west"].generation, 1);
        assert_eq!(parsed.keep, 1);
        assert!(parsed.journal.is_none());

        let full = "version = 1\njournal_seq = 16\njournal = \"journal-0000000000000010.bin\"\n\
                    keep = 3\n\n[[release]]\nkey = \"west\"\nfile = \"west-00000003.ptbin\"\n\
                    format = \"binary\"\nchecksum = \"crc32:00000003\"\ngeneration = 3\n\n\
                    [[retained]]\nkey = \"west\"\nfile = \"west-00000002.ptbin\"\n\
                    format = \"binary\"\nchecksum = \"crc32:00000002\"\ngeneration = 2\n\n\
                    [[retained]]\nkey = \"west\"\nfile = \"west-00000001.ptbin\"\n\
                    format = \"binary\"\nchecksum = \"crc32:00000001\"\ngeneration = 1\n";
        let parsed = parse_manifest(full).unwrap();
        assert_eq!(parsed.journal_seq, 16);
        assert_eq!(
            parsed.journal.as_deref(),
            Some("journal-0000000000000010.bin")
        );
        assert_eq!(parsed.keep, 3);
        assert_eq!(parsed.entries["west"].generation, 3);
        // retained sorts oldest-first whatever the table order
        assert_eq!(
            parsed.retained["west"]
                .iter()
                .map(|e| e.generation)
                .collect::<Vec<_>>(),
            [1, 2]
        );
    }

    #[test]
    fn retention_keeps_and_gcs_generations() {
        let dir =
            std::env::temp_dir().join(format!("privtree-catalog-keep-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cat = Catalog::open_or_create(&dir).unwrap();
        cat.set_retention(2);
        let tree = privtree_core::tree::Tree::with_root(privtree_spatial::Rect::unit(2));
        let release = |c: f64| FrozenSynopsis::from_tree(&tree, &[c], "leaf");
        let gen1 = cat
            .save("west", &release(1.0), None, ReleaseFormat::Binary)
            .unwrap();
        let gen2 = cat
            .save("west", &release(2.0), None, ReleaseFormat::Binary)
            .unwrap();
        let gen3 = cat
            .save("west", &release(3.0), None, ReleaseFormat::Binary)
            .unwrap();
        assert_eq!(
            (gen1.generation, gen2.generation, gen3.generation),
            (1, 2, 3)
        );
        // keep=2: generation 2 is retained, generation 1 was GC'd
        assert_eq!(cat.retained("west").len(), 1);
        assert_eq!(cat.retained("west")[0].generation, 2);
        assert!(dir.join(&gen3.file).exists());
        assert!(dir.join(&gen2.file).exists());
        assert!(!dir.join(&gen1.file).exists());
        // the retained generation survives a reopen and its file
        // survives the sweep
        let reopened = Catalog::open(&dir).unwrap();
        assert!(reopened.recovery_sweep().is_clean());
        assert_eq!(reopened.retained("west").len(), 1);
        assert!(dir.join(&gen2.file).exists());
        // retiring with retention keeps the last generation around
        let mut reopened = reopened;
        reopened
            .save("east", &release(9.0), None, ReleaseFormat::Binary)
            .unwrap();
        reopened.remove("west").unwrap();
        assert!(reopened.entry("west").is_none());
        assert_eq!(reopened.retained("west").len(), 1);
        assert_eq!(reopened.retained("west")[0].generation, 3);
        assert!(dir.join(&gen3.file).exists());
        assert!(!dir.join(&gen2.file).exists(), "trimmed by the retire");
        // a re-add continues the generation sequence
        let gen4 = reopened
            .save("west", &release(4.0), None, ReleaseFormat::Binary)
            .unwrap();
        assert_eq!(gen4.generation, 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Regression for a latent PR 7 hazard: a CRC-32 over a stream
    /// that ends in its own CRC-32 is a constant (the CRC residue), so
    /// two releases differing only in the **final** section's payload
    /// share a whole-file checksum. Checksum-only file names would
    /// collide — the replacing publish would overwrite the live
    /// generation in place. Generation-qualified names keep both
    /// files distinct and both generations loadable.
    #[test]
    fn generations_with_colliding_checksums_get_distinct_files() {
        let dir = std::env::temp_dir().join(format!("privtree-catalog-crc-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let tree = privtree_core::tree::Tree::with_root(privtree_spatial::Rect::unit(2));
        // single-node releases differ only in the counts section — the
        // last section in the file — which is exactly the blind spot
        let a = FrozenSynopsis::from_tree(&tree, &[1.0], "leaf");
        let b = FrozenSynopsis::from_tree(&tree, &[2.0], "leaf");
        assert_eq!(
            crc32(&encode_release(&a, None)),
            crc32(&encode_release(&b, None)),
            "the residue property makes these whole-file CRCs collide"
        );
        let mut cat = Catalog::open_or_create(&dir).unwrap();
        cat.set_retention(2);
        let gen1 = cat.save("west", &a, None, ReleaseFormat::Binary).unwrap();
        let gen2 = cat.save("west", &b, None, ReleaseFormat::Binary).unwrap();
        assert_eq!(gen1.checksum, gen2.checksum, "colliding by construction");
        assert_ne!(
            gen1.file, gen2.file,
            "generation qualifier keeps names unique"
        );
        assert_eq!((gen1.generation, gen2.generation), (1, 2));
        let (current, _) = cat.load("west").unwrap();
        assert_eq!(current.counts(), &[2.0]);
        let retained = std::fs::read(dir.join(&gen1.file)).unwrap();
        assert_eq!(decode_release(&retained).unwrap().0.counts(), &[1.0]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journaled_mutations_replay_on_open() {
        let dir = std::env::temp_dir().join(format!("privtree-catalog-jnl-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let tree = privtree_core::tree::Tree::with_root(privtree_spatial::Rect::unit(2));
        let release = |c: f64| FrozenSynopsis::from_tree(&tree, &[c], "leaf");
        let mut cat = Catalog::open_or_create(&dir).unwrap();
        cat.enable_journal(FsyncPolicy::Always).unwrap();
        assert!(cat.journaling());
        cat.save("west", &release(1.0), None, ReleaseFormat::Binary)
            .unwrap();
        cat.save("east", &release(2.0), None, ReleaseFormat::Binary)
            .unwrap();
        cat.save("west", &release(3.0), None, ReleaseFormat::Binary)
            .unwrap();
        cat.remove("east").unwrap();
        assert_eq!(cat.journal_seq(), 4);
        // the manifest still describes the (empty) checkpoint state;
        // the journal carries everything
        drop(cat);
        let reopened = Catalog::open(&dir).unwrap();
        assert_eq!(reopened.replayed_ops(), 4);
        assert_eq!(reopened.keys().collect::<Vec<_>>(), ["west"]);
        assert_eq!(reopened.entry("west").unwrap().generation, 2);
        let (back, _) = reopened.load("west").unwrap();
        assert_eq!(back.counts(), &[3.0]);
        assert!(
            reopened.recovery_sweep().is_clean(),
            "replay references all files"
        );

        // checkpoint folds into the manifest and rotates the segment
        let mut cat = reopened;
        let old_segment = cat.journal_segment().unwrap().to_string();
        let seq = cat.checkpoint().unwrap();
        assert_eq!(seq, 5, "the checkpoint record has its own seq");
        assert_ne!(cat.journal_segment().unwrap(), old_segment);
        assert!(!dir.join(&old_segment).exists(), "rotated segment unlinked");
        let reopened = Catalog::open(&dir).unwrap();
        assert_eq!(reopened.replayed_ops(), 0, "manifest covers everything");
        assert_eq!(reopened.checkpoint_seq(), 5);
        assert_eq!(reopened.keys().collect::<Vec<_>>(), ["west"]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
