//! The `privtree-bin v1` binary columnar release format.
//!
//! A release is the frozen arena's structure-of-arrays columns — packed
//! `lo`/`hi` coordinates, child ranges, released counts — plus,
//! optionally, the cell grid's per-cell anchors and exact contributions.
//! The text format re-derives those columns from node records one parsed
//! line at a time; this format stores them directly:
//!
//! ```text
//! header (40 bytes, all integers little-endian):
//!   [0..8)   magic  b"PRIVTBIN"
//!   [8..12)  version        u32  (currently 1)
//!   [12..16) flags          u32  (bit 0: grid sections present)
//!   [16..20) dims           u32  (1..=MAX_DIMS)
//!   [20..24) reserved       u32  (must be 0)
//!   [24..32) nodes          u64  (>= 1)
//!   [32..40) cells          u64  (grid cell count; 0 iff no grid)
//! then sections, each:
//!   tag (4 ASCII bytes) | payload length u64 | payload | CRC-32 u32
//! ```
//!
//! Section order is fixed and every payload length is implied by the
//! header, so the decoder validates the *entire* file size against the
//! header before sizing a single buffer — a hostile node count is a
//! [`StoreError::SizeMismatch`], never an allocation. Each payload is
//! covered by a CRC-32 (IEEE), so a flipped byte anywhere is a
//! [`StoreError::ChecksumMismatch`] naming the damaged section. See
//! `crates/store/README.md` for the byte-by-byte specification.
//!
//! Decoding is one pass: slice each section, verify its checksum,
//! reinterpret the little-endian payload into its typed column, then
//! hand the columns to the same validated constructors the text loader
//! uses (`FrozenSynopsis::from_flat_parts`, `CellGrid::from_parts`). The
//! result is *identical* to a text load of the same release — same
//! arrays, same bits — which `tests/roundtrip.rs` property-tests.

use privtree_spatial::grid_route::CellGrid;
use privtree_spatial::{FrozenSynopsis, MAX_DIMS};

use crate::StoreError;

/// The 8-byte file magic.
pub const MAGIC: [u8; 8] = *b"PRIVTBIN";

/// The format version this crate reads and writes.
pub const VERSION: u32 = 1;

/// Header flag bit: grid sections follow the arena sections.
const FLAG_GRID: u32 = 1;

/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 40;

/// Per-section framing overhead: 4-byte tag + 8-byte length + 4-byte CRC.
const SECTION_OVERHEAD: u64 = 16;

/// Section tags and display names, in file order.
const SEC_LO: ([u8; 4], &str) = (*b"NLOC", "node-lo");
const SEC_HI: ([u8; 4], &str) = (*b"NHIC", "node-hi");
const SEC_FIRST: ([u8; 4], &str) = (*b"NFCH", "first-child");
const SEC_KIDS: ([u8; 4], &str) = (*b"NCCT", "child-count");
const SEC_COUNTS: ([u8; 4], &str) = (*b"NCNT", "counts");
const SEC_GBINS: ([u8; 4], &str) = (*b"GBIN", "grid-bins");
const SEC_GANCHORS: ([u8; 4], &str) = (*b"GANC", "grid-anchors");
const SEC_GVALUES: ([u8; 4], &str) = (*b"GVAL", "grid-values");

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`)
/// slicing-by-8 lookup tables, built at compile time. `TABLES[0]` is
/// the classic byte-at-a-time table; `TABLES[k]` advances a byte `k`
/// positions further so the hot loop folds 8 input bytes per iteration
/// instead of one — decode time is CRC-bound, so this is what keeps
/// binary loads an order of magnitude ahead of text parsing.
const CRC_TABLES: [[u32; 256]; 8] = {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        tables[0][i] = c;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        t += 1;
    }
    tables
};

/// CRC-32 (IEEE) of `bytes` — the checksum used for both section
/// payloads and the catalog's whole-file checksums (slicing-by-8).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        c ^= u32::from_le_bytes(chunk[0..4].try_into().unwrap());
        let hi = u32::from_le_bytes(chunk[4..8].try_into().unwrap());
        c = CRC_TABLES[7][(c & 0xFF) as usize]
            ^ CRC_TABLES[6][((c >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[5][((c >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[4][(c >> 24) as usize]
            ^ CRC_TABLES[3][(hi & 0xFF) as usize]
            ^ CRC_TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = CRC_TABLES[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// The exact encoded size of a release with `nodes` nodes over `dims`
/// dimensions and (optionally) a grid of `cells` cells with one bin
/// count per dimension. `None` on arithmetic overflow — which is how the
/// decoder rejects hostile headers before any allocation.
pub fn encoded_len(nodes: u64, dims: u32, cells: Option<u64>) -> Option<u64> {
    let section = |payload: u64| payload.checked_add(SECTION_OVERHEAD);
    let coords = nodes.checked_mul(dims as u64)?.checked_mul(8)?;
    let mut total = HEADER_LEN as u64;
    for len in [
        section(coords)?,                // node-lo
        section(coords)?,                // node-hi
        section(nodes.checked_mul(4)?)?, // first-child
        section(nodes.checked_mul(4)?)?, // child-count
        section(nodes.checked_mul(8)?)?, // counts
    ] {
        total = total.checked_add(len)?;
    }
    if let Some(cells) = cells {
        for len in [
            section(4 * dims as u64)?,       // grid-bins
            section(cells.checked_mul(4)?)?, // grid-anchors
            section(cells.checked_mul(8)?)?, // grid-values
        ] {
            total = total.checked_add(len)?;
        }
    }
    Some(total)
}

/// Append one framed section: tag, length, payload, CRC.
fn push_section(out: &mut Vec<u8>, tag: [u8; 4], payload: &[u8]) {
    out.extend_from_slice(&tag);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32(payload).to_le_bytes());
}

/// Pack a `f64` slice little-endian.
fn f64_bytes(values: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 8);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Pack a `u32` slice little-endian.
fn u32_bytes(values: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 4);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Encode a release (arena plus optional grid) as `privtree-bin v1`.
pub fn encode_release(arena: &FrozenSynopsis, grid: Option<&CellGrid>) -> Vec<u8> {
    let nodes = arena.node_count() as u64;
    let dims = arena.dims() as u32;
    let cells = grid.map(|g| g.cells() as u64);
    let capacity = encoded_len(nodes, dims, cells).expect("in-memory release fits the format");
    let mut out = Vec::with_capacity(capacity as usize);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&if grid.is_some() { FLAG_GRID } else { 0 }.to_le_bytes());
    out.extend_from_slice(&dims.to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes()); // reserved
    out.extend_from_slice(&nodes.to_le_bytes());
    out.extend_from_slice(&cells.unwrap_or(0).to_le_bytes());
    push_section(&mut out, SEC_LO.0, &f64_bytes(arena.lo_coords()));
    push_section(&mut out, SEC_HI.0, &f64_bytes(arena.hi_coords()));
    push_section(&mut out, SEC_FIRST.0, &u32_bytes(arena.first_child()));
    push_section(&mut out, SEC_KIDS.0, &u32_bytes(arena.child_count()));
    push_section(&mut out, SEC_COUNTS.0, &f64_bytes(arena.counts()));
    if let Some(grid) = grid {
        let bins: Vec<u32> = grid.bins().iter().map(|&b| b as u32).collect();
        push_section(&mut out, SEC_GBINS.0, &u32_bytes(&bins));
        push_section(&mut out, SEC_GANCHORS.0, &u32_bytes(grid.anchors()));
        push_section(&mut out, SEC_GVALUES.0, &f64_bytes(grid.values()));
    }
    debug_assert_eq!(out.len() as u64, capacity);
    out
}

/// A cursor over the section stream after the header.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Slice the next section, which must carry `tag` and exactly
    /// `expected` payload bytes, and verify its CRC.
    fn section(
        &mut self,
        (tag, name): ([u8; 4], &'static str),
        expected: u64,
    ) -> Result<&'a [u8], StoreError> {
        // the whole-file size was validated against the header up front,
        // so these slices cannot run off the end — but a defensive check
        // keeps corruption of *this* logic from panicking
        let bad = |reason: String| StoreError::BadSection {
            section: name,
            reason,
        };
        let header_end = self.pos + 12;
        if header_end > self.bytes.len() {
            return Err(bad("section header past end of file".into()));
        }
        let found_tag = &self.bytes[self.pos..self.pos + 4];
        if found_tag != tag {
            return Err(bad(format!(
                "expected tag {:?}, found {:?}",
                String::from_utf8_lossy(&tag),
                String::from_utf8_lossy(found_tag)
            )));
        }
        let len = u64::from_le_bytes(self.bytes[self.pos + 4..header_end].try_into().unwrap());
        if len != expected {
            return Err(bad(format!(
                "payload length {len} disagrees with the header-implied {expected}"
            )));
        }
        let payload_end = header_end + len as usize;
        let crc_end = payload_end + 4;
        if crc_end > self.bytes.len() {
            return Err(bad("section payload past end of file".into()));
        }
        let payload = &self.bytes[header_end..payload_end];
        let stored = u32::from_le_bytes(self.bytes[payload_end..crc_end].try_into().unwrap());
        let computed = crc32(payload);
        if stored != computed {
            return Err(StoreError::ChecksumMismatch {
                section: name,
                expected: stored,
                found: computed,
            });
        }
        self.pos = crc_end;
        Ok(payload)
    }
}

/// Reinterpret a little-endian payload as `f64` values.
fn f64_vec(payload: &[u8]) -> Vec<f64> {
    payload
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

/// Reinterpret a little-endian payload as `u32` values.
fn u32_vec(payload: &[u8]) -> Vec<u32> {
    payload
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

/// Decode a `privtree-bin v1` release. Returns exactly what
/// `release_from_text` returns for the equivalent text file: the frozen
/// arena plus the shipped grid when one is present (its summed-area
/// table rebuilt deterministically). Every malformation — bad magic,
/// future version, hostile header, truncation, flipped bytes, invalid
/// arena layout, grid/arena mismatch — is a typed [`StoreError`].
pub fn decode_release(bytes: &[u8]) -> Result<(FrozenSynopsis, Option<CellGrid>), StoreError> {
    if bytes.len() < HEADER_LEN {
        return Err(StoreError::SizeMismatch {
            expected: HEADER_LEN as u64,
            found: bytes.len() as u64,
        });
    }
    if bytes[..8] != MAGIC {
        return Err(StoreError::BadMagic);
    }
    let header_u32 = |at: usize| u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap());
    let header_u64 = |at: usize| u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap());
    let version = header_u32(8);
    if version != VERSION {
        return Err(StoreError::UnsupportedVersion { found: version });
    }
    let flags = header_u32(12);
    if flags & !FLAG_GRID != 0 {
        return Err(StoreError::BadHeader {
            reason: format!("unknown flag bits {:#x}", flags & !FLAG_GRID),
        });
    }
    let dims = header_u32(16);
    if dims == 0 || dims as usize > MAX_DIMS {
        return Err(StoreError::BadHeader {
            reason: format!("dims {dims} outside 1..={MAX_DIMS}"),
        });
    }
    if header_u32(20) != 0 {
        return Err(StoreError::BadHeader {
            reason: "reserved header field is not zero".into(),
        });
    }
    let nodes = header_u64(24);
    if nodes == 0 {
        return Err(StoreError::BadHeader {
            reason: "zero-node release".into(),
        });
    }
    let cells = header_u64(32);
    let grid_present = flags & FLAG_GRID != 0;
    match (grid_present, cells) {
        (true, 0) => {
            return Err(StoreError::BadHeader {
                reason: "grid flag set but cell count is zero".into(),
            })
        }
        (false, c) if c != 0 => {
            return Err(StoreError::BadHeader {
                reason: format!("no grid flag but cell count is {c}"),
            })
        }
        _ => {}
    }

    // one up-front size check covers truncation AND hostile counts: a
    // header claiming 2^60 nodes implies an impossible file size, so we
    // refuse before any `Vec::with_capacity` sees the number
    let expected =
        encoded_len(nodes, dims, grid_present.then_some(cells)).ok_or(StoreError::BadHeader {
            reason: "header-implied size overflows".into(),
        })?;
    if expected != bytes.len() as u64 {
        return Err(StoreError::SizeMismatch {
            expected,
            found: bytes.len() as u64,
        });
    }

    let mut reader = Reader {
        bytes,
        pos: HEADER_LEN,
    };
    let coords = nodes * dims as u64 * 8;
    let lo = f64_vec(reader.section(SEC_LO, coords)?);
    let hi = f64_vec(reader.section(SEC_HI, coords)?);
    let first_child = u32_vec(reader.section(SEC_FIRST, nodes * 4)?);
    let child_count = u32_vec(reader.section(SEC_KIDS, nodes * 4)?);
    let counts = f64_vec(reader.section(SEC_COUNTS, nodes * 8)?);
    // the label matches what the text loader produces, so a binary load
    // is indistinguishable from a text load of the same release
    let arena = FrozenSynopsis::from_flat_parts(
        dims as usize,
        lo,
        hi,
        first_child,
        child_count,
        counts,
        "imported",
    )?;
    if !grid_present {
        return Ok((arena, None));
    }
    let bins: Vec<usize> = u32_vec(reader.section(SEC_GBINS, 4 * dims as u64)?)
        .into_iter()
        .map(|b| b as usize)
        .collect();
    let product: Option<u64> = bins
        .iter()
        .try_fold(1u64, |acc, &b| acc.checked_mul(b as u64));
    if product != Some(cells) {
        return Err(StoreError::BadSection {
            section: SEC_GBINS.1,
            reason: format!("bin product {product:?} disagrees with header cell count {cells}"),
        });
    }
    let anchors = u32_vec(reader.section(SEC_GANCHORS, cells * 4)?);
    let values = f64_vec(reader.section(SEC_GVALUES, cells * 8)?);
    let grid = CellGrid::from_parts(&arena, &bins, anchors, values)?;
    Ok((arena, Some(grid)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // the standard IEEE check value
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn encoded_len_overflow_is_none() {
        assert_eq!(encoded_len(u64::MAX, 8, None), None);
        assert_eq!(encoded_len(u64::MAX / 2, 2, Some(u64::MAX / 2)), None);
        // a real small release has a real size
        let plain = encoded_len(1, 2, None).unwrap();
        assert_eq!(plain, 40 + (16 + 16) * 2 + (16 + 4) * 2 + (16 + 8));
    }
}
