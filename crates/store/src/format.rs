//! The `privtree-bin v1` binary columnar release format.
//!
//! A release is the frozen arena's structure-of-arrays columns — packed
//! `lo`/`hi` coordinates, child ranges, released counts — plus,
//! optionally, the cell grid's per-cell anchors and exact contributions.
//! The text format re-derives those columns from node records one parsed
//! line at a time; this format stores them directly:
//!
//! ```text
//! header (40 bytes, all integers little-endian):
//!   [0..8)   magic  b"PRIVTBIN"
//!   [8..12)  version        u32  (currently 1)
//!   [12..16) flags          u32  (bit 0: grid sections present;
//!                                 bit 1: section payloads 8-aligned)
//!   [16..20) dims           u32  (1..=MAX_DIMS)
//!   [20..24) reserved       u32  (must be 0)
//!   [24..32) nodes          u64  (>= 1)
//!   [32..40) cells          u64  (grid cell count; 0 iff no grid)
//! then sections, each:
//!   zero padding (aligned flag only; see below)
//!   tag (4 ASCII bytes) | payload length u64 | payload | CRC-32 u32
//! ```
//!
//! When the **aligned** flag (bit 1, written by this crate since the v1
//! minor revision) is set, each section frame is preceded by 0–7 zero
//! bytes so that its *payload* starts at a file offset that is a
//! multiple of 8. The pad width is a pure function of the write
//! position — `(8 - ((pos + 12) % 8)) % 8` — so the layout stays fully
//! deterministic and the decoder re-derives it without any stored
//! offsets. Aligned payloads are what allow the zero-copy loader (see
//! [`crate::view`]) to reinterpret `f64`/`u32` columns directly inside a
//! memory-mapped file; legacy unpadded files remain fully decodable,
//! their columns simply take the copying path.
//!
//! Section order is fixed and every payload length is implied by the
//! header, so the decoder validates the *entire* file size against the
//! header before sizing a single buffer — a hostile node count is a
//! [`StoreError::SizeMismatch`], never an allocation. Each payload is
//! covered by a CRC-32 (IEEE), so a flipped byte anywhere is a
//! [`StoreError::ChecksumMismatch`] naming the damaged section. See
//! `crates/store/README.md` for the byte-by-byte specification.
//!
//! Decoding is one pass: slice each section, verify its checksum,
//! reinterpret the little-endian payload into its typed column, then
//! hand the columns to the same validated constructors the text loader
//! uses (`FrozenSynopsis::from_flat_parts`, `CellGrid::from_parts`). The
//! result is *identical* to a text load of the same release — same
//! arrays, same bits — which `tests/roundtrip.rs` property-tests.

use privtree_spatial::grid_route::CellGrid;
use privtree_spatial::{FrozenSynopsis, MAX_DIMS};

use crate::StoreError;

/// The 8-byte file magic.
pub const MAGIC: [u8; 8] = *b"PRIVTBIN";

/// The format version this crate reads and writes.
pub const VERSION: u32 = 1;

/// Header flag bit: grid sections follow the arena sections.
const FLAG_GRID: u32 = 1;

/// Header flag bit: every section payload starts at a multiple of 8
/// bytes (zero padding precedes each section frame as needed). Written
/// by this crate's encoder; files without it decode via the copy path.
pub(crate) const FLAG_ALIGNED: u32 = 2;

/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 40;

/// Per-section framing overhead: 4-byte tag + 8-byte length + 4-byte CRC.
const SECTION_OVERHEAD: u64 = 16;

/// Zero bytes inserted before a section frame starting at `pos` so that
/// its payload (`pos + pad + 12`) lands on an 8-byte boundary.
pub(crate) fn pad_before(pos: u64) -> u64 {
    (8 - ((pos + 12) % 8)) % 8
}

/// Section tags and display names, in file order.
pub(crate) const SEC_LO: ([u8; 4], &str) = (*b"NLOC", "node-lo");
pub(crate) const SEC_HI: ([u8; 4], &str) = (*b"NHIC", "node-hi");
pub(crate) const SEC_FIRST: ([u8; 4], &str) = (*b"NFCH", "first-child");
pub(crate) const SEC_KIDS: ([u8; 4], &str) = (*b"NCCT", "child-count");
pub(crate) const SEC_COUNTS: ([u8; 4], &str) = (*b"NCNT", "counts");
pub(crate) const SEC_GBINS: ([u8; 4], &str) = (*b"GBIN", "grid-bins");
pub(crate) const SEC_GANCHORS: ([u8; 4], &str) = (*b"GANC", "grid-anchors");
pub(crate) const SEC_GVALUES: ([u8; 4], &str) = (*b"GVAL", "grid-values");

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`)
/// slicing-by-8 lookup tables, built at compile time. `TABLES[0]` is
/// the classic byte-at-a-time table; `TABLES[k]` advances a byte `k`
/// positions further so the hot loop folds 8 input bytes per iteration
/// instead of one — decode time is CRC-bound, so this is what keeps
/// binary loads an order of magnitude ahead of text parsing.
const CRC_TABLES: [[u32; 256]; 8] = {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        tables[0][i] = c;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        t += 1;
    }
    tables
};

/// Advance the raw (pre/post-inverted) CRC state over `bytes` with the
/// slicing-by-8 tables.
fn crc32_update_sw(mut c: u32, bytes: &[u8]) -> u32 {
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        c ^= u32::from_le_bytes(chunk[0..4].try_into().unwrap());
        let hi = u32::from_le_bytes(chunk[4..8].try_into().unwrap());
        c = CRC_TABLES[7][(c & 0xFF) as usize]
            ^ CRC_TABLES[6][((c >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[5][((c >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[4][(c >> 24) as usize]
            ^ CRC_TABLES[3][(hi & 0xFF) as usize]
            ^ CRC_TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = CRC_TABLES[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c
}

/// Carryless-multiply CRC folding (x86_64 `PCLMULQDQ`), detected at
/// runtime. The whole-file and per-section checksum passes dominate a
/// binary load — slicing-by-8 runs at ~1.5 GB/s while the folding
/// kernel runs at memory speed — so this is what keeps `validate` a
/// small fraction of a zero-copy open.
#[cfg(target_arch = "x86_64")]
mod crc_clmul {
    /// Whether the CPU supports the folding kernel (PCLMULQDQ + SSE4.1).
    pub(super) fn available() -> bool {
        use std::sync::OnceLock;
        static AVAILABLE: OnceLock<bool> = OnceLock::new();
        *AVAILABLE.get_or_init(|| {
            std::arch::is_x86_feature_detected!("pclmulqdq")
                && std::arch::is_x86_feature_detected!("sse4.1")
        })
    }

    /// Fold `bytes` (len >= 64 and a multiple of 16) into the raw CRC
    /// state `crc`. Constants are the standard folding/Barrett values
    /// for the reflected IEEE polynomial `0xEDB88320`:
    /// k1 = x^(4·128+32) mod P, k2 = x^(4·128-32) mod P,
    /// k3 = x^(128+32) mod P, k4 = x^(128-32) mod P, k5 = x^96 mod P,
    /// and µ/P' for the final Barrett reduction.
    ///
    /// # Safety
    ///
    /// Caller must ensure `available()` and the length contract.
    #[target_feature(enable = "pclmulqdq,sse4.1")]
    pub(super) unsafe fn update(crc: u32, bytes: &[u8]) -> u32 {
        use std::arch::x86_64::*;
        debug_assert!(bytes.len() >= 64 && bytes.len().is_multiple_of(16));
        let k1k2 = _mm_set_epi64x(0x1c6e41596u64 as i64, 0x154442bd4u64 as i64);
        let k3k4 = _mm_set_epi64x(0x0ccaa009eu64 as i64, 0x1751997d0u64 as i64);
        let k5 = _mm_set_epi64x(0, 0x163cd6124u64 as i64);
        let poly_mu = _mm_set_epi64x(0x1f7011641u64 as i64, 0x1db710641u64 as i64);

        let mut ptr = bytes.as_ptr() as *const __m128i;
        let mut len = bytes.len();
        let mut x1 = _mm_loadu_si128(ptr);
        let mut x2 = _mm_loadu_si128(ptr.add(1));
        let mut x3 = _mm_loadu_si128(ptr.add(2));
        let mut x4 = _mm_loadu_si128(ptr.add(3));
        x1 = _mm_xor_si128(x1, _mm_cvtsi32_si128(crc as i32));
        ptr = ptr.add(4);
        len -= 64;

        // fold four 16-byte lanes in parallel across the bulk of the input
        while len >= 64 {
            let x5 = _mm_clmulepi64_si128(x1, k1k2, 0x00);
            let x6 = _mm_clmulepi64_si128(x2, k1k2, 0x00);
            let x7 = _mm_clmulepi64_si128(x3, k1k2, 0x00);
            let x8 = _mm_clmulepi64_si128(x4, k1k2, 0x00);
            x1 = _mm_clmulepi64_si128(x1, k1k2, 0x11);
            x2 = _mm_clmulepi64_si128(x2, k1k2, 0x11);
            x3 = _mm_clmulepi64_si128(x3, k1k2, 0x11);
            x4 = _mm_clmulepi64_si128(x4, k1k2, 0x11);
            x1 = _mm_xor_si128(_mm_xor_si128(x1, x5), _mm_loadu_si128(ptr));
            x2 = _mm_xor_si128(_mm_xor_si128(x2, x6), _mm_loadu_si128(ptr.add(1)));
            x3 = _mm_xor_si128(_mm_xor_si128(x3, x7), _mm_loadu_si128(ptr.add(2)));
            x4 = _mm_xor_si128(_mm_xor_si128(x4, x8), _mm_loadu_si128(ptr.add(3)));
            ptr = ptr.add(4);
            len -= 64;
        }

        // fold the four lanes into one
        for lane in [x2, x3, x4] {
            let x5 = _mm_clmulepi64_si128(x1, k3k4, 0x00);
            x1 = _mm_clmulepi64_si128(x1, k3k4, 0x11);
            x1 = _mm_xor_si128(_mm_xor_si128(x1, x5), lane);
        }

        // remaining whole 16-byte blocks
        while len >= 16 {
            let x5 = _mm_clmulepi64_si128(x1, k3k4, 0x00);
            x1 = _mm_clmulepi64_si128(x1, k3k4, 0x11);
            x1 = _mm_xor_si128(_mm_xor_si128(x1, x5), _mm_loadu_si128(ptr));
            ptr = ptr.add(1);
            len -= 16;
        }

        // fold 128 -> 64 bits
        let mask32 = _mm_set_epi32(0, -1, 0, -1);
        let x2 = _mm_clmulepi64_si128(x1, k3k4, 0x10);
        x1 = _mm_srli_si128(x1, 8);
        x1 = _mm_xor_si128(x1, x2);
        // fold 64 -> 32 bits
        let x2 = _mm_srli_si128(x1, 4);
        x1 = _mm_and_si128(x1, mask32);
        x1 = _mm_clmulepi64_si128(x1, k5, 0x00);
        x1 = _mm_xor_si128(x1, x2);
        // Barrett reduction to the final 32-bit remainder
        let mut x2 = _mm_and_si128(x1, mask32);
        x2 = _mm_clmulepi64_si128(x2, poly_mu, 0x10);
        x2 = _mm_and_si128(x2, mask32);
        x2 = _mm_clmulepi64_si128(x2, poly_mu, 0x00);
        x1 = _mm_xor_si128(x1, x2);
        _mm_extract_epi32(x1, 1) as u32
    }
}

/// Advance the raw CRC state over `bytes`, using the carryless-multiply
/// kernel when the CPU has it and the input is big enough to matter.
fn crc32_update(c: u32, bytes: &[u8]) -> u32 {
    #[cfg(target_arch = "x86_64")]
    if bytes.len() >= 64 && crc_clmul::available() {
        let folded = bytes.len() & !15;
        // SAFETY: feature detection passed and `folded` is >= 64 and a
        // multiple of 16.
        let c = unsafe { crc_clmul::update(c, &bytes[..folded]) };
        return crc32_update_sw(c, &bytes[folded..]);
    }
    crc32_update_sw(c, bytes)
}

/// CRC-32 (IEEE) of `bytes` — the checksum used for both section
/// payloads and the catalog's whole-file checksums. Hardware carryless
/// multiplication when available, slicing-by-8 otherwise; both compute
/// the identical function.
pub fn crc32(bytes: &[u8]) -> u32 {
    !crc32_update(!0, bytes)
}

/// The section payload sizes implied by a header, in file order. `None`
/// on arithmetic overflow.
fn payload_sizes(nodes: u64, dims: u32, cells: Option<u64>) -> Option<Vec<u64>> {
    let coords = nodes.checked_mul(dims as u64)?.checked_mul(8)?;
    let mut sizes = vec![
        coords,                // node-lo
        coords,                // node-hi
        nodes.checked_mul(4)?, // first-child
        nodes.checked_mul(4)?, // child-count
        nodes.checked_mul(8)?, // counts
    ];
    if let Some(cells) = cells {
        sizes.push(4 * dims as u64); // grid-bins
        sizes.push(cells.checked_mul(4)?); // grid-anchors
        sizes.push(cells.checked_mul(8)?); // grid-values
    }
    Some(sizes)
}

/// Walk the section layout and return the total file size. `None` on
/// arithmetic overflow — which is how the decoder rejects hostile
/// headers before any allocation.
pub(crate) fn encoded_len_with(
    nodes: u64,
    dims: u32,
    cells: Option<u64>,
    aligned: bool,
) -> Option<u64> {
    let mut total = HEADER_LEN as u64;
    for payload in payload_sizes(nodes, dims, cells)? {
        if aligned {
            total = total.checked_add(pad_before(total))?;
        }
        total = total.checked_add(SECTION_OVERHEAD)?.checked_add(payload)?;
    }
    Some(total)
}

/// The exact encoded size of a release with `nodes` nodes over `dims`
/// dimensions and (optionally) a grid of `cells` cells with one bin
/// count per dimension, in the aligned layout this crate writes. `None`
/// on arithmetic overflow.
pub fn encoded_len(nodes: u64, dims: u32, cells: Option<u64>) -> Option<u64> {
    encoded_len_with(nodes, dims, cells, true)
}

/// Append one framed section: alignment padding (aligned layout only),
/// tag, length, payload, CRC.
fn push_section(out: &mut Vec<u8>, tag: [u8; 4], payload: &[u8], aligned: bool) {
    if aligned {
        let pad = pad_before(out.len() as u64) as usize;
        out.resize(out.len() + pad, 0);
    }
    out.extend_from_slice(&tag);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32(payload).to_le_bytes());
}

/// Pack a `f64` slice little-endian.
fn f64_bytes(values: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 8);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Pack a `u32` slice little-endian.
fn u32_bytes(values: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 4);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Encode a release (arena plus optional grid) as `privtree-bin v1` in
/// the aligned layout (every section payload at an 8-byte file offset).
pub fn encode_release(arena: &FrozenSynopsis, grid: Option<&CellGrid>) -> Vec<u8> {
    encode_release_with(arena, grid, true)
}

/// Encode a release in the legacy v1 layout without section padding.
/// Kept so compatibility tests can prove the decoder still accepts
/// pre-revision files; new files should use [`encode_release`].
pub fn encode_release_unaligned(arena: &FrozenSynopsis, grid: Option<&CellGrid>) -> Vec<u8> {
    encode_release_with(arena, grid, false)
}

fn encode_release_with(arena: &FrozenSynopsis, grid: Option<&CellGrid>, aligned: bool) -> Vec<u8> {
    let nodes = arena.node_count() as u64;
    let dims = arena.dims() as u32;
    let cells = grid.map(|g| g.cells() as u64);
    let capacity =
        encoded_len_with(nodes, dims, cells, aligned).expect("in-memory release fits the format");
    let mut flags = if grid.is_some() { FLAG_GRID } else { 0 };
    if aligned {
        flags |= FLAG_ALIGNED;
    }
    let mut out = Vec::with_capacity(capacity as usize);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&flags.to_le_bytes());
    out.extend_from_slice(&dims.to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes()); // reserved
    out.extend_from_slice(&nodes.to_le_bytes());
    out.extend_from_slice(&cells.unwrap_or(0).to_le_bytes());
    push_section(&mut out, SEC_LO.0, &f64_bytes(arena.lo_coords()), aligned);
    push_section(&mut out, SEC_HI.0, &f64_bytes(arena.hi_coords()), aligned);
    push_section(
        &mut out,
        SEC_FIRST.0,
        &u32_bytes(arena.first_child()),
        aligned,
    );
    push_section(
        &mut out,
        SEC_KIDS.0,
        &u32_bytes(arena.child_count()),
        aligned,
    );
    push_section(&mut out, SEC_COUNTS.0, &f64_bytes(arena.counts()), aligned);
    if let Some(grid) = grid {
        let bins: Vec<u32> = grid.bins().iter().map(|&b| b as u32).collect();
        push_section(&mut out, SEC_GBINS.0, &u32_bytes(&bins), aligned);
        push_section(
            &mut out,
            SEC_GANCHORS.0,
            &u32_bytes(grid.anchors()),
            aligned,
        );
        push_section(&mut out, SEC_GVALUES.0, &f64_bytes(grid.values()), aligned);
    }
    debug_assert_eq!(out.len() as u64, capacity);
    out
}

/// A cursor over the section stream after the header.
pub(crate) struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Whether the aligned-layout flag was set: section frames are then
    /// preceded by deterministic zero padding (see [`pad_before`]).
    aligned: bool,
    /// Whether to verify each section's CRC. Catalog opens that already
    /// verified the whole-file checksum skip the per-section pass.
    verify: bool,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(bytes: &'a [u8], aligned: bool, verify: bool) -> Self {
        Reader {
            bytes,
            pos: HEADER_LEN,
            aligned,
            verify,
        }
    }

    /// Slice the next section, which must carry `tag` and exactly
    /// `expected` payload bytes, and verify its CRC.
    pub(crate) fn section(
        &mut self,
        (tag, name): ([u8; 4], &'static str),
        expected: u64,
    ) -> Result<&'a [u8], StoreError> {
        // the whole-file size was validated against the header up front,
        // so these slices cannot run off the end — but a defensive check
        // keeps corruption of *this* logic from panicking
        let bad = |reason: String| StoreError::BadSection {
            section: name,
            reason,
        };
        if self.aligned {
            let pad = pad_before(self.pos as u64) as usize;
            let pad_end = self.pos + pad;
            if pad_end > self.bytes.len() {
                return Err(bad("section padding past end of file".into()));
            }
            if self.bytes[self.pos..pad_end].iter().any(|&b| b != 0) {
                return Err(bad("non-zero section padding".into()));
            }
            self.pos = pad_end;
        }
        let header_end = self.pos + 12;
        if header_end > self.bytes.len() {
            return Err(bad("section header past end of file".into()));
        }
        let found_tag = &self.bytes[self.pos..self.pos + 4];
        if found_tag != tag {
            return Err(bad(format!(
                "expected tag {:?}, found {:?}",
                String::from_utf8_lossy(&tag),
                String::from_utf8_lossy(found_tag)
            )));
        }
        let len = u64::from_le_bytes(self.bytes[self.pos + 4..header_end].try_into().unwrap());
        if len != expected {
            return Err(bad(format!(
                "payload length {len} disagrees with the header-implied {expected}"
            )));
        }
        let payload_end = header_end + len as usize;
        let crc_end = payload_end + 4;
        if crc_end > self.bytes.len() {
            return Err(bad("section payload past end of file".into()));
        }
        let payload = &self.bytes[header_end..payload_end];
        if self.verify {
            let stored = u32::from_le_bytes(self.bytes[payload_end..crc_end].try_into().unwrap());
            let computed = crc32(payload);
            if stored != computed {
                return Err(StoreError::ChecksumMismatch {
                    section: name,
                    expected: stored,
                    found: computed,
                });
            }
        }
        self.pos = crc_end;
        Ok(payload)
    }
}

/// Reinterpret a little-endian payload as `f64` values.
pub(crate) fn f64_vec(payload: &[u8]) -> Vec<f64> {
    payload
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

/// Reinterpret a little-endian payload as `u32` values.
pub(crate) fn u32_vec(payload: &[u8]) -> Vec<u32> {
    payload
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

/// A fully validated `privtree-bin` header.
pub(crate) struct Header {
    pub(crate) dims: u32,
    pub(crate) nodes: u64,
    /// Grid cell count; 0 iff `grid` is false.
    pub(crate) cells: u64,
    pub(crate) grid: bool,
    pub(crate) aligned: bool,
}

/// Validate the header and the header-implied whole-file size. Every
/// decode path — copying and zero-copy alike — goes through this before
/// sizing a single buffer.
pub(crate) fn parse_header(bytes: &[u8]) -> Result<Header, StoreError> {
    if bytes.len() < HEADER_LEN {
        return Err(StoreError::SizeMismatch {
            expected: HEADER_LEN as u64,
            found: bytes.len() as u64,
        });
    }
    if bytes[..8] != MAGIC {
        return Err(StoreError::BadMagic);
    }
    let header_u32 = |at: usize| u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap());
    let header_u64 = |at: usize| u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap());
    let version = header_u32(8);
    if version != VERSION {
        return Err(StoreError::UnsupportedVersion { found: version });
    }
    let flags = header_u32(12);
    let known = FLAG_GRID | FLAG_ALIGNED;
    if flags & !known != 0 {
        return Err(StoreError::BadHeader {
            reason: format!("unknown flag bits {:#x}", flags & !known),
        });
    }
    let dims = header_u32(16);
    if dims == 0 || dims as usize > MAX_DIMS {
        return Err(StoreError::BadHeader {
            reason: format!("dims {dims} outside 1..={MAX_DIMS}"),
        });
    }
    if header_u32(20) != 0 {
        return Err(StoreError::BadHeader {
            reason: "reserved header field is not zero".into(),
        });
    }
    let nodes = header_u64(24);
    if nodes == 0 {
        return Err(StoreError::BadHeader {
            reason: "zero-node release".into(),
        });
    }
    let cells = header_u64(32);
    let grid_present = flags & FLAG_GRID != 0;
    match (grid_present, cells) {
        (true, 0) => {
            return Err(StoreError::BadHeader {
                reason: "grid flag set but cell count is zero".into(),
            })
        }
        (false, c) if c != 0 => {
            return Err(StoreError::BadHeader {
                reason: format!("no grid flag but cell count is {c}"),
            })
        }
        _ => {}
    }
    let aligned = flags & FLAG_ALIGNED != 0;

    // one up-front size check covers truncation AND hostile counts: a
    // header claiming 2^60 nodes implies an impossible file size, so we
    // refuse before any `Vec::with_capacity` sees the number
    let expected = encoded_len_with(nodes, dims, grid_present.then_some(cells), aligned).ok_or(
        StoreError::BadHeader {
            reason: "header-implied size overflows".into(),
        },
    )?;
    if expected != bytes.len() as u64 {
        return Err(StoreError::SizeMismatch {
            expected,
            found: bytes.len() as u64,
        });
    }
    Ok(Header {
        dims,
        nodes,
        cells,
        grid: grid_present,
        aligned,
    })
}

/// Validate the grid-bins payload against the header cell count and
/// return the bin counts.
pub(crate) fn decode_bins(payload: &[u8], cells: u64) -> Result<Vec<usize>, StoreError> {
    let bins: Vec<usize> = u32_vec(payload).into_iter().map(|b| b as usize).collect();
    let product: Option<u64> = bins
        .iter()
        .try_fold(1u64, |acc, &b| acc.checked_mul(b as u64));
    if product != Some(cells) {
        return Err(StoreError::BadSection {
            section: SEC_GBINS.1,
            reason: format!("bin product {product:?} disagrees with header cell count {cells}"),
        });
    }
    Ok(bins)
}

/// Decode a `privtree-bin v1` release. Returns exactly what
/// `release_from_text` returns for the equivalent text file: the frozen
/// arena plus the shipped grid when one is present (its summed-area
/// table rebuilt deterministically). Every malformation — bad magic,
/// future version, hostile header, truncation, flipped bytes, invalid
/// arena layout, grid/arena mismatch — is a typed [`StoreError`].
///
/// This is the copying decoder: every column is materialized as an
/// owned `Vec`. The zero-copy counterpart lives in [`crate::view`].
pub fn decode_release(bytes: &[u8]) -> Result<(FrozenSynopsis, Option<CellGrid>), StoreError> {
    let header = parse_header(bytes)?;
    let (dims, nodes, cells) = (header.dims, header.nodes, header.cells);

    let mut reader = Reader::new(bytes, header.aligned, true);
    let coords = nodes * dims as u64 * 8;
    let lo = f64_vec(reader.section(SEC_LO, coords)?);
    let hi = f64_vec(reader.section(SEC_HI, coords)?);
    let first_child = u32_vec(reader.section(SEC_FIRST, nodes * 4)?);
    let child_count = u32_vec(reader.section(SEC_KIDS, nodes * 4)?);
    let counts = f64_vec(reader.section(SEC_COUNTS, nodes * 8)?);
    // the label matches what the text loader produces, so a binary load
    // is indistinguishable from a text load of the same release
    let arena = FrozenSynopsis::from_flat_parts(
        dims as usize,
        lo,
        hi,
        first_child,
        child_count,
        counts,
        "imported",
    )?;
    if !header.grid {
        return Ok((arena, None));
    }
    let bins = decode_bins(reader.section(SEC_GBINS, 4 * dims as u64)?, cells)?;
    let anchors = u32_vec(reader.section(SEC_GANCHORS, cells * 4)?);
    let values = f64_vec(reader.section(SEC_GVALUES, cells * 8)?);
    let grid = CellGrid::from_parts(&arena, &bins, anchors, values)?;
    Ok((arena, Some(grid)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // the standard IEEE check value
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc32_hardware_and_table_paths_agree() {
        // exercise every length class around the 64-byte kernel cutoff
        // and the 16-byte folding granularity, plus misaligned starts —
        // the carryless-multiply path must be indistinguishable from
        // slicing-by-8
        let mut state = 0x243F_6A88u32; // arbitrary deterministic seed
        let mut buf = Vec::with_capacity(5008);
        while buf.len() < 5008 {
            state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            buf.push((state >> 24) as u8);
        }
        for len in (0..200).chain([255, 256, 1023, 1024, 4096, 4999]) {
            for start in [0usize, 1, 7] {
                let slice = &buf[start..start + len];
                assert_eq!(
                    crc32(slice),
                    !crc32_update_sw(!0, slice),
                    "len={len} start={start}"
                );
            }
        }
    }

    #[test]
    fn encoded_len_overflow_is_none() {
        assert_eq!(encoded_len(u64::MAX, 8, None), None);
        assert_eq!(encoded_len(u64::MAX / 2, 2, Some(u64::MAX / 2)), None);
        // the legacy (unpadded) layout has the closed-form size…
        let unaligned = encoded_len_with(1, 2, None, false).unwrap();
        assert_eq!(unaligned, 40 + (16 + 16) * 2 + (16 + 4) * 2 + (16 + 8));
        // …and the aligned layout only ever adds 0–7 bytes per section
        let aligned = encoded_len(1, 2, None).unwrap();
        assert!(aligned >= unaligned && aligned <= unaligned + 5 * 7);
    }

    #[test]
    fn aligned_layout_puts_every_payload_on_an_eight_byte_offset() {
        // walk the simulated layout for a few header shapes and check
        // the invariant the zero-copy loader relies on
        for (nodes, dims, cells) in [(1u64, 1u32, None), (7, 2, Some(12u64)), (100, 3, Some(64))] {
            let mut pos = HEADER_LEN as u64;
            for payload in payload_sizes(nodes, dims, cells).unwrap() {
                pos += pad_before(pos);
                assert_eq!((pos + 12) % 8, 0, "payload start must be 8-aligned");
                pos += SECTION_OVERHEAD + payload;
            }
            assert_eq!(Some(pos), encoded_len(nodes, dims, cells));
        }
    }
}
