//! Release persistence for the PrivTree serving stack.
//!
//! A PrivTree release is the private synopsis itself (Zhang et al.,
//! SIGMOD 2016): it is published once and then serves queries forever,
//! outliving the data that produced it. The `serialize` text format in
//! `privtree-spatial` makes releases portable, but a serving process
//! that warm-starts a multi-million-node catalog pays for per-line float
//! parsing on every boot. This crate owns the durable, fast-loading
//! store underneath the engine:
//!
//! * [`format`] — the **`privtree-bin v1`** binary columnar format: a
//!   fixed header (dims / node count / cell count, so the loader
//!   preallocates exactly once) followed by length-prefixed,
//!   CRC-checksummed little-endian sections holding the frozen arena's
//!   structure-of-arrays columns and, optionally, the cell grid's
//!   anchors and contributions (the summed-area table is rebuilt
//!   deterministically on load, exactly like the text path). Decoding is
//!   one validated pass over the bytes — no per-line parsing, no
//!   intermediate strings. `crates/store/README.md` specifies the layout
//!   byte by byte.
//! * [`frame`] — the section convention lifted out of the file format
//!   as generic **stream frames**: `tag | flags | length | payload |
//!   optional CRC-32`, with the same validate-size-before-allocate
//!   contract. The engine's `privtree-wire v1` query protocol frames
//!   every message with these helpers.
//! * [`catalog`] — the **on-disk release catalog**: a directory with a
//!   `catalog.toml` manifest mapping release key → file, format, and
//!   whole-file checksum. Every publish (data file and manifest alike)
//!   is write-temp-then-rename, so a crashed writer can never leave a
//!   half-written catalog behind. Replaced releases keep their newest
//!   `keep` generations per key; the GC only unlinks files no live
//!   generation references.
//! * [`journal`] — the **write-ahead operation journal**: an
//!   append-only segment of CRC-framed add/swap/retire/checkpoint
//!   records beside the manifest. With journaling enabled a mutation
//!   is durable after one sequential append (fsynced per
//!   [`FsyncPolicy`]); `Catalog::open` replays the segment on top of
//!   the manifest, truncating torn tails, and `Catalog::checkpoint`
//!   folds the state back into the manifest and rotates the segment.
//! * [`view`] — **zero-copy loading**: [`ReleaseBytes`] memory-maps a
//!   release file (read-only, falling back to an owned read when the
//!   `mmap` feature is off or mapping fails) and
//!   [`open_release_view`] validates the header and sections against
//!   the mapping, handing back a `FrozenSynopsis` whose columns borrow
//!   the mapped bytes directly — the page cache *is* the serving
//!   arena. Misaligned or legacy-unpadded sections fall back to
//!   copying that column, never to an error, and the shipped grid is
//!   returned staged so warm start pays only map + validate.
//! * [`text_to_binary`] / [`binary_to_text`] — lossless conversion
//!   between the two formats. The binary loader reproduces the text
//!   loader's output *exactly* (same arrays, same bits), so a release
//!   answers every query identically whichever format carried it —
//!   property-tested over random releases with and without grids.
//!
//! Every failure is a typed [`StoreError`]; hostile or truncated input
//! can never panic the loader or force an unchecked preallocation (the
//! header is validated against the actual byte count before any buffer
//! is sized).

pub mod catalog;
pub mod format;
pub mod frame;
pub mod journal;
pub mod view;

pub use catalog::{
    Catalog, CatalogEntry, CatalogMetrics, LoadedRelease, RecoverySweep, ReleaseFormat,
};
pub use format::{
    decode_release, encode_release, encode_release_unaligned, encoded_len, HEADER_LEN, MAGIC,
    VERSION,
};
pub use journal::{FsyncPolicy, Journal, JournalMetrics, JournalOp, JournalRecord};
pub use view::{decode_release_view, open_release_view, ReleaseBytes, ReleaseView};

use privtree_spatial::frozen::FlatLayoutError;
use privtree_spatial::grid_route::GridRouteError;
use privtree_spatial::serialize::{release_from_text, release_to_text, ParseError};

/// Why a store operation failed. Variants are typed (and comparable) so
/// corrupt-input tests can pin the exact refusal, and so callers can
/// distinguish "file is damaged" from "catalog does not know this key".
#[derive(Debug, Clone, PartialEq)]
pub enum StoreError {
    /// Filesystem failure; `context` names the path and operation.
    Io { context: String, message: String },
    /// The file does not start with the `privtree-bin` magic.
    BadMagic,
    /// The format version is newer than this reader.
    UnsupportedVersion { found: u32 },
    /// The fixed header is self-inconsistent (zero nodes, dims outside
    /// `1..=MAX_DIMS`, unknown flags, grid flag without cells, …).
    BadHeader { reason: String },
    /// The byte count the header implies disagrees with the actual file
    /// length — truncation, trailing garbage, or a hostile node count
    /// (checked before any allocation is sized from the header).
    SizeMismatch { expected: u64, found: u64 },
    /// A section's tag or length prefix is wrong.
    BadSection {
        section: &'static str,
        reason: String,
    },
    /// A section's payload does not match its stored CRC-32.
    ChecksumMismatch {
        section: &'static str,
        expected: u32,
        found: u32,
    },
    /// A text-format release failed to parse.
    Text(ParseError),
    /// The decoded arrays are not a valid frozen arena.
    Layout(FlatLayoutError),
    /// The decoded grid does not fit the decoded arena.
    Grid(GridRouteError),
    /// The catalog manifest is malformed (1-based line number).
    Manifest { line: usize, reason: String },
    /// A journal segment is unusable (bad header, wrong base sequence,
    /// wedged handle); `context` names the segment path.
    Journal { context: String, reason: String },
    /// The catalog holds no release under this key.
    UnknownKey { key: String },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { context, message } => write!(f, "{context}: {message}"),
            StoreError::BadMagic => write!(f, "not a privtree-bin file (bad magic)"),
            StoreError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "privtree-bin version {found} is not supported (reader speaks {VERSION})"
                )
            }
            StoreError::BadHeader { reason } => write!(f, "bad privtree-bin header: {reason}"),
            StoreError::SizeMismatch { expected, found } => write!(
                f,
                "file is {found} bytes but the header implies {expected} (truncated or corrupt)"
            ),
            StoreError::BadSection { section, reason } => {
                write!(f, "bad {section} section: {reason}")
            }
            StoreError::ChecksumMismatch {
                section,
                expected,
                found,
            } => write!(
                f,
                "{section} section checksum mismatch: stored {expected:08x}, computed {found:08x}"
            ),
            StoreError::Text(e) => write!(f, "text release: {e}"),
            StoreError::Layout(e) => write!(f, "invalid arena layout: {e}"),
            StoreError::Grid(e) => write!(f, "invalid grid: {e}"),
            StoreError::Manifest { line, reason } => {
                write!(f, "bad catalog manifest at line {line}: {reason}")
            }
            StoreError::Journal { context, reason } => {
                write!(f, "journal {context}: {reason}")
            }
            StoreError::UnknownKey { key } => write!(f, "catalog has no release named {key}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<ParseError> for StoreError {
    fn from(e: ParseError) -> Self {
        StoreError::Text(e)
    }
}

impl From<FlatLayoutError> for StoreError {
    fn from(e: FlatLayoutError) -> Self {
        StoreError::Layout(e)
    }
}

impl From<GridRouteError> for StoreError {
    fn from(e: GridRouteError) -> Self {
        StoreError::Grid(e)
    }
}

impl StoreError {
    /// Wrap an I/O failure with the path and operation it arose in.
    pub(crate) fn io(context: impl Into<String>, e: std::io::Error) -> Self {
        StoreError::Io {
            context: context.into(),
            message: e.to_string(),
        }
    }
}

/// Convert a text-format release to `privtree-bin v1`. The text is
/// parsed through the exact loader the serving path uses
/// (`release_from_text`), so the binary file reproduces the text load
/// bit for bit — grid section included, when the text carries one.
pub fn text_to_binary(text: &str) -> Result<Vec<u8>, StoreError> {
    let (arena, grid) = release_from_text(text)?;
    Ok(encode_release(&arena, grid.as_ref()))
}

/// Convert a `privtree-bin v1` release back to the text format. The
/// decoded arrays are re-emitted through `release_to_text`, so
/// `text_to_binary(binary_to_text(b)) == b` byte for byte (the text
/// format's 17-significant-digit rendering round-trips every `f64`).
pub fn binary_to_text(bytes: &[u8]) -> Result<String, StoreError> {
    let (arena, grid) = decode_release(bytes)?;
    Ok(release_to_text(&arena, grid.as_ref()))
}
