//! The durable mutation journal: an append-only write-ahead log of
//! catalog operations, living beside `catalog.toml`.
//!
//! A journaled catalog makes every acked `add`/`swap`/`retire` durable
//! **without rewriting the manifest per mutation**: the operation is
//! appended (and, per [`FsyncPolicy`], fsynced) to the active journal
//! segment *before* the caller acks, and [`crate::Catalog::open`]
//! replays the segment on top of the manifest on boot. A `checkpoint`
//! folds the replayed state back into the manifest and rotates to a
//! fresh segment.
//!
//! # On-disk layout
//!
//! Segments are named `journal-<base_seq:016x>.bin`, where `base_seq`
//! is the sequence number the manifest covered when the segment was
//! created (records inside carry `base_seq + 1, base_seq + 2, ...`).
//! The file reuses the `privtree-bin` framing conventions:
//!
//! ```text
//! header (24 bytes):
//!   magic      8  b"PRIVTJNL"
//!   version    4  u32 LE, currently 1
//!   reserved   4  u32 LE, zero
//!   base_seq   8  u64 LE
//! record (repeated):
//!   len        4  u32 LE, byte length of `body`
//!   body       len   seq u64 LE | op u8 | op payload
//!   crc32      4  u32 LE over `body`
//! ```
//!
//! Op codes: `1` add, `2` swap (both carry generation `u64`, checksum
//! `u32`, format `u8`, then length-prefixed key and file name), `3`
//! retire (length-prefixed key), `4` checkpoint (empty payload).
//!
//! # Torn-tail truncation
//!
//! A journaled process can die mid-append, so [`Journal::open`] scans
//! records strictly: the first record with a short or oversized length
//! prefix, a CRC mismatch, an unparseable body, or a non-consecutive
//! sequence number marks the **torn tail** — the file is truncated
//! there (then fsynced) and everything before it replays. Appends that
//! *error* while the process lives roll the file back to the record
//! boundary, so a failed append can be retried without corrupting the
//! log.
//!
//! Every IO step is threaded with deterministic failpoints
//! (`journal.append.write`, `journal.append.sync`, `journal.sync`,
//! `journal.truncate`, plus the five `journal.segment.*` steps of
//! segment creation); the engine's `journal_failpoints` suite crashes
//! at each of them and proves acked-prefix recovery.

use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use crate::catalog::{atomic_write, fail_point, ReleaseFormat};
use crate::format::crc32;
use crate::StoreError;
use privtree_runtime::telemetry::{self, Counter, Histogram, Registry};

/// Telemetry handles for the journal's durability path. Registered
/// once per registry ([`JournalMetrics::register`]) and attached to a
/// journal (usually via `Catalog::attach_metrics`); appends and
/// fsyncs count always, while the `_us` histograms record only when
/// `telemetry::enabled()` — so the clock is never read on an
/// uninstrumented hot path.
#[derive(Debug)]
pub struct JournalMetrics {
    /// Wall time of one append (write + policy-driven fsync), µs.
    pub append_us: Arc<Histogram>,
    /// Wall time of one `fdatasync`, µs (policy-driven or explicit).
    pub fsync_us: Arc<Histogram>,
    /// Records appended.
    pub appends: Arc<Counter>,
    /// Explicit or policy-driven fsyncs issued.
    pub fsyncs: Arc<Counter>,
}

impl JournalMetrics {
    /// Get-or-create the journal metric set in `registry`.
    pub fn register(registry: &Registry) -> Arc<Self> {
        Arc::new(Self {
            append_us: registry.histogram("journal_append_us", &[]),
            fsync_us: registry.histogram("journal_fsync_us", &[]),
            appends: registry.counter("journal_appends_total", &[]),
            fsyncs: registry.counter("journal_fsyncs_total", &[]),
        })
    }
}

/// Magic bytes opening every journal segment.
pub const JOURNAL_MAGIC: [u8; 8] = *b"PRIVTJNL";

/// Journal format version this crate reads and writes.
pub const JOURNAL_VERSION: u32 = 1;

/// Byte length of the segment header.
pub const JOURNAL_HEADER_LEN: usize = 24;

/// Smallest legal record body: sequence number plus op code.
const MIN_BODY: usize = 9;

/// Largest accepted record body — keys and file names are protocol
/// lines, so a megabyte is orders of magnitude of headroom. A larger
/// length prefix is treated as a torn tail, never as an allocation.
const MAX_BODY: usize = 1 << 20;

/// When appended records reach the disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fdatasync` after every append: an acked mutation survives power
    /// loss. The default, and the only policy under which the crash
    /// contract is unconditional.
    Always,
    /// Sync every `n`-th append (counted, not timed, so tests are
    /// deterministic): bounded loss of the most recent un-synced
    /// records on power loss; a plain process crash loses nothing.
    EveryN(u32),
    /// Never sync explicitly; the OS flushes when it pleases.
    Never,
}

impl FsyncPolicy {
    /// Parse the `--fsync` flag spelling: `always`, `never`, or
    /// `every:N` with `N >= 1`.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "always" => Some(FsyncPolicy::Always),
            "never" => Some(FsyncPolicy::Never),
            _ => {
                let n: u32 = s.strip_prefix("every:")?.parse().ok()?;
                (n >= 1).then_some(FsyncPolicy::EveryN(n))
            }
        }
    }
}

impl std::fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsyncPolicy::Always => f.write_str("always"),
            FsyncPolicy::EveryN(n) => write!(f, "every:{n}"),
            FsyncPolicy::Never => f.write_str("never"),
        }
    }
}

/// One journaled catalog mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalOp {
    /// A release published under a fresh key.
    Add {
        key: String,
        file: String,
        format: ReleaseFormat,
        checksum: u32,
        generation: u64,
    },
    /// A release replacing the one serving under `key`.
    Swap {
        key: String,
        file: String,
        format: ReleaseFormat,
        checksum: u32,
        generation: u64,
    },
    /// `key` stopped serving (its last generation may be retained).
    Retire { key: String },
    /// The manifest was folded up to this record's sequence number and
    /// the journal rotated. A no-op on replay.
    Checkpoint,
}

/// One decoded record: the operation plus its sequence number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalRecord {
    /// Monotone sequence number (consecutive within a segment).
    pub seq: u64,
    /// The recorded operation.
    pub op: JournalOp,
}

/// The file name of the segment based at `base_seq`.
pub fn segment_name(base_seq: u64) -> String {
    format!("journal-{base_seq:016x}.bin")
}

/// Whether `name` looks like a catalog-managed journal segment
/// (`journal-<16 hex>.bin`) — the shape the recovery sweep may remove
/// when no manifest references it.
pub fn looks_like_segment(name: &str) -> bool {
    let Some(hex) = name
        .strip_prefix("journal-")
        .and_then(|rest| rest.strip_suffix(".bin"))
    else {
        return false;
    };
    hex.len() == 16 && hex.bytes().all(|b| b.is_ascii_hexdigit())
}

fn format_code(format: ReleaseFormat) -> u8 {
    match format {
        ReleaseFormat::Binary => 0,
        ReleaseFormat::Text => 1,
    }
}

fn format_from_code(code: u8) -> Option<ReleaseFormat> {
    match code {
        0 => Some(ReleaseFormat::Binary),
        1 => Some(ReleaseFormat::Text),
        _ => None,
    }
}

fn push_str(out: &mut Vec<u8>, s: &str) {
    let len = s.len().min(u16::MAX as usize) as u16;
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&s.as_bytes()[..len as usize]);
}

/// Encode one record body (`seq | op | payload`), without framing.
fn encode_body(seq: u64, op: &JournalOp) -> Vec<u8> {
    let mut body = Vec::with_capacity(64);
    body.extend_from_slice(&seq.to_le_bytes());
    match op {
        JournalOp::Add {
            key,
            file,
            format,
            checksum,
            generation,
        }
        | JournalOp::Swap {
            key,
            file,
            format,
            checksum,
            generation,
        } => {
            body.push(if matches!(op, JournalOp::Add { .. }) {
                1
            } else {
                2
            });
            body.extend_from_slice(&generation.to_le_bytes());
            body.extend_from_slice(&checksum.to_le_bytes());
            body.push(format_code(*format));
            push_str(&mut body, key);
            push_str(&mut body, file);
        }
        JournalOp::Retire { key } => {
            body.push(3);
            push_str(&mut body, key);
        }
        JournalOp::Checkpoint => body.push(4),
    }
    body
}

/// Frame one record: length prefix, body, CRC-32.
fn encode_record(seq: u64, op: &JournalOp) -> Vec<u8> {
    let body = encode_body(seq, op);
    let mut rec = Vec::with_capacity(body.len() + 8);
    rec.extend_from_slice(&(body.len() as u32).to_le_bytes());
    rec.extend_from_slice(&body);
    rec.extend_from_slice(&crc32(&body).to_le_bytes());
    rec
}

/// A strict little-endian cursor over one record body; any overrun or
/// leftover byte means a torn (or corrupt) record.
struct BodyReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> BodyReader<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let slice = self.bytes.get(self.pos..self.pos.checked_add(n)?)?;
        self.pos += n;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u16(&mut self) -> Option<u16> {
        Some(u16::from_le_bytes(self.take(2)?.try_into().ok()?))
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn string(&mut self) -> Option<String> {
        let len = self.u16()? as usize;
        std::str::from_utf8(self.take(len)?)
            .ok()
            .map(str::to_string)
    }

    fn done(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

/// Decode one record body. `None` means torn/corrupt (the caller
/// truncates there).
fn decode_body(body: &[u8]) -> Option<JournalRecord> {
    let mut r = BodyReader {
        bytes: body,
        pos: 0,
    };
    let seq = r.u64()?;
    let op = match r.u8()? {
        code @ (1 | 2) => {
            let generation = r.u64()?;
            let checksum = r.u32()?;
            let format = format_from_code(r.u8()?)?;
            let key = r.string()?;
            let file = r.string()?;
            if code == 1 {
                JournalOp::Add {
                    key,
                    file,
                    format,
                    checksum,
                    generation,
                }
            } else {
                JournalOp::Swap {
                    key,
                    file,
                    format,
                    checksum,
                    generation,
                }
            }
        }
        3 => JournalOp::Retire { key: r.string()? },
        4 => JournalOp::Checkpoint,
        _ => return None,
    };
    r.done().then_some(JournalRecord { seq, op })
}

fn journal_error(path: &Path, reason: impl Into<String>) -> StoreError {
    StoreError::Journal {
        context: path.display().to_string(),
        reason: reason.into(),
    }
}

/// An open journal segment positioned at its (validated) end, ready to
/// append. See the module docs for the format and crash contract.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: std::fs::File,
    /// Validated byte length — appends land here.
    len: u64,
    /// Sequence number the next append will carry.
    next_seq: u64,
    policy: FsyncPolicy,
    /// Appends since the last explicit sync (drives `EveryN`).
    appends_since_sync: u32,
    /// Set when an append's rollback truncation failed: the tail past
    /// `len` is garbage we could not remove, so further appends would
    /// write an unreplayable log. Refuse them instead.
    wedged: bool,
    /// Telemetry handles, when the owning catalog attached them.
    metrics: Option<Arc<JournalMetrics>>,
}

impl Journal {
    /// The segment header for `base_seq`.
    fn header_bytes(base_seq: u64) -> Vec<u8> {
        let mut header = Vec::with_capacity(JOURNAL_HEADER_LEN);
        header.extend_from_slice(&JOURNAL_MAGIC);
        header.extend_from_slice(&JOURNAL_VERSION.to_le_bytes());
        header.extend_from_slice(&0u32.to_le_bytes());
        header.extend_from_slice(&base_seq.to_le_bytes());
        header
    }

    /// Create a fresh segment at `path` covering sequence numbers
    /// `base_seq + 1 ..`. The header-only file is published atomically
    /// and durably (tmp → fsync → rename → dirsync, failpoints
    /// `journal.segment.*`), then opened for appends.
    pub fn create(path: &Path, base_seq: u64, policy: FsyncPolicy) -> Result<Self, StoreError> {
        atomic_write(path, &Self::header_bytes(base_seq), "journal.segment")?;
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| StoreError::io(format!("open {}", path.display()), e))?;
        let mut journal = Self {
            path: path.to_path_buf(),
            file,
            len: JOURNAL_HEADER_LEN as u64,
            next_seq: base_seq + 1,
            policy,
            appends_since_sync: 0,
            wedged: false,
            metrics: None,
        };
        journal
            .file
            .seek(SeekFrom::Start(journal.len))
            .map_err(|e| StoreError::io(format!("seek {}", path.display()), e))?;
        Ok(journal)
    }

    /// Open the segment at `path`, validate its header against the
    /// sequence number the manifest covers, **truncate any torn tail**,
    /// and return the journal (positioned to append) plus every intact
    /// record in order. Records are strictly consecutive from
    /// `base_seq + 1`; the first framing, CRC, parse, or sequence
    /// violation marks the tail.
    pub fn open(
        path: &Path,
        base_seq: u64,
        policy: FsyncPolicy,
    ) -> Result<(Self, Vec<JournalRecord>), StoreError> {
        let mut file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| StoreError::io(format!("open {}", path.display()), e))?;
        let mut buf = Vec::new();
        file.read_to_end(&mut buf)
            .map_err(|e| StoreError::io(format!("read {}", path.display()), e))?;
        if buf.len() < JOURNAL_HEADER_LEN {
            return Err(journal_error(
                path,
                format!("{} bytes is too short for a segment header", buf.len()),
            ));
        }
        if buf[..8] != JOURNAL_MAGIC {
            return Err(journal_error(path, "bad journal magic"));
        }
        let version = u32::from_le_bytes(buf[8..12].try_into().expect("4 bytes"));
        if version != JOURNAL_VERSION {
            return Err(journal_error(
                path,
                format!(
                    "journal version {version} is not supported (reader speaks {JOURNAL_VERSION})"
                ),
            ));
        }
        let found_base = u64::from_le_bytes(buf[16..24].try_into().expect("8 bytes"));
        if found_base != base_seq {
            return Err(journal_error(
                path,
                format!("segment base {found_base} does not match the manifest's journal_seq {base_seq}"),
            ));
        }
        let mut records = Vec::new();
        let mut next = base_seq + 1;
        let mut pos = JOURNAL_HEADER_LEN;
        while pos < buf.len() {
            let remaining = buf.len() - pos;
            if remaining < 8 {
                break;
            }
            let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().expect("4 bytes")) as usize;
            if !(MIN_BODY..=MAX_BODY).contains(&len) || len + 8 > remaining {
                break;
            }
            let body = &buf[pos + 4..pos + 4 + len];
            let stored = u32::from_le_bytes(
                buf[pos + 4 + len..pos + 8 + len]
                    .try_into()
                    .expect("4 bytes"),
            );
            if crc32(body) != stored {
                break;
            }
            let Some(record) = decode_body(body) else {
                break;
            };
            if record.seq != next {
                break;
            }
            next += 1;
            records.push(record);
            pos += 8 + len;
        }
        if pos < buf.len() {
            // a dying appender's torn tail: cut it off, durably, before
            // anything is appended after it
            fail_point("journal", "truncate").map_err(|f| StoreError::Io {
                context: format!("truncate torn tail of {}", path.display()),
                message: f.to_string(),
            })?;
            file.set_len(pos as u64)
                .map_err(|e| StoreError::io(format!("truncate {}", path.display()), e))?;
            file.sync_all()
                .map_err(|e| StoreError::io(format!("sync {}", path.display()), e))?;
        }
        file.seek(SeekFrom::Start(pos as u64))
            .map_err(|e| StoreError::io(format!("seek {}", path.display()), e))?;
        let journal = Self {
            path: path.to_path_buf(),
            file,
            len: pos as u64,
            next_seq: next,
            policy,
            appends_since_sync: 0,
            wedged: false,
            metrics: None,
        };
        Ok((journal, records))
    }

    /// The sequence number of the last appended (or replayed) record;
    /// the segment base when the segment is empty.
    pub fn last_seq(&self) -> u64 {
        self.next_seq - 1
    }

    /// The active fsync policy.
    pub fn policy(&self) -> FsyncPolicy {
        self.policy
    }

    /// Change the fsync policy for subsequent appends.
    pub fn set_policy(&mut self, policy: FsyncPolicy) {
        self.policy = policy;
    }

    /// Attach telemetry handles; subsequent appends and fsyncs record
    /// through them.
    pub fn set_metrics(&mut self, metrics: Arc<JournalMetrics>) {
        self.metrics = Some(metrics);
    }

    /// Append one record and make it durable per the fsync policy.
    /// Returns the record's sequence number. On an append **error** the
    /// file is rolled back to the previous record boundary, so a retry
    /// re-appends the same sequence number; an injected **crash**
    /// leaves the torn bytes for the next open's truncation.
    pub fn append(&mut self, op: &JournalOp) -> Result<u64, StoreError> {
        if self.wedged {
            return Err(journal_error(
                &self.path,
                "journal is wedged by an earlier failed rollback; reopen the catalog",
            ));
        }
        let seq = self.next_seq;
        let record = encode_record(seq, op);
        let clocked = self.metrics.is_some() && telemetry::enabled();
        let append_start = clocked.then(Instant::now);
        if let Err(f) = fail_point("journal.append", "write") {
            if f.is_crash() {
                // model a torn append: half the record reached the disk
                let _ = self.file.write_all(&record[..record.len() / 2]);
            }
            return Err(StoreError::Io {
                context: format!("append to {}", self.path.display()),
                message: f.to_string(),
            });
        }
        if let Err(e) = self.file.write_all(&record) {
            self.rollback_to(self.len);
            return Err(StoreError::io(
                format!("append to {}", self.path.display()),
                e,
            ));
        }
        let appended = self.len + record.len() as u64;
        let should_sync = match self.policy {
            FsyncPolicy::Always => true,
            FsyncPolicy::EveryN(n) => (self.appends_since_sync + 1) >= n,
            FsyncPolicy::Never => false,
        };
        if should_sync {
            if let Err(f) = fail_point("journal.append", "sync") {
                if !f.is_crash() {
                    // the un-synced record is not acked: remove it so a
                    // retry does not duplicate its sequence number
                    self.rollback_to(self.len);
                }
                return Err(StoreError::Io {
                    context: format!("sync {}", self.path.display()),
                    message: f.to_string(),
                });
            }
            let sync_start = clocked.then(Instant::now);
            if let Err(e) = self.file.sync_data() {
                self.rollback_to(self.len);
                return Err(StoreError::io(format!("sync {}", self.path.display()), e));
            }
            if let Some(m) = &self.metrics {
                m.fsyncs.inc();
                if let Some(t) = sync_start {
                    m.fsync_us.observe(t.elapsed().as_micros() as u64);
                }
            }
            self.appends_since_sync = 0;
        } else {
            self.appends_since_sync += 1;
        }
        self.len = appended;
        self.next_seq += 1;
        if let Some(m) = &self.metrics {
            m.appends.inc();
            if let Some(t) = append_start {
                m.append_us.observe(t.elapsed().as_micros() as u64);
            }
        }
        Ok(seq)
    }

    /// Force an fsync regardless of policy (checkpoints call this so
    /// the rotation record is durable before the manifest moves on).
    pub fn sync(&mut self) -> Result<(), StoreError> {
        fail_point("journal", "sync").map_err(|f| StoreError::Io {
            context: format!("sync {}", self.path.display()),
            message: f.to_string(),
        })?;
        let sync_start = (self.metrics.is_some() && telemetry::enabled()).then(Instant::now);
        self.file
            .sync_data()
            .map_err(|e| StoreError::io(format!("sync {}", self.path.display()), e))?;
        if let Some(m) = &self.metrics {
            m.fsyncs.inc();
            if let Some(t) = sync_start {
                m.fsync_us.observe(t.elapsed().as_micros() as u64);
            }
        }
        self.appends_since_sync = 0;
        Ok(())
    }

    /// Best-effort rollback of a failed append to the last record
    /// boundary. If the truncation itself fails the journal is
    /// **wedged**: the un-removable garbage would corrupt any later
    /// append, so they are refused until the catalog reopens (whose
    /// torn-tail scan clears the garbage).
    fn rollback_to(&mut self, len: u64) {
        let restored = self
            .file
            .set_len(len)
            .and_then(|()| self.file.seek(SeekFrom::Start(len)).map(|_| ()));
        if restored.is_err() {
            self.wedged = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(name: &str) -> Self {
            let path = std::env::temp_dir()
                .join(format!("privtree-journal-{}-{name}", std::process::id()));
            let _ = std::fs::remove_dir_all(&path);
            std::fs::create_dir_all(&path).unwrap();
            Self(path)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn sample_ops() -> Vec<JournalOp> {
        vec![
            JournalOp::Add {
                key: "west".into(),
                file: "west-00000001.ptbin".into(),
                format: ReleaseFormat::Binary,
                checksum: 0xdead_beef,
                generation: 1,
            },
            JournalOp::Swap {
                key: "west".into(),
                file: "west-00000002.ptbin".into(),
                format: ReleaseFormat::Binary,
                checksum: 2,
                generation: 2,
            },
            JournalOp::Retire {
                key: "we\u{1F980}ird".into(),
            },
            JournalOp::Checkpoint,
        ]
    }

    #[test]
    fn records_round_trip_through_a_segment() {
        let dir = TempDir::new("roundtrip");
        let path = dir.0.join(segment_name(41));
        let mut journal = Journal::create(&path, 41, FsyncPolicy::Always).unwrap();
        for (i, op) in sample_ops().iter().enumerate() {
            assert_eq!(journal.append(op).unwrap(), 42 + i as u64);
        }
        assert_eq!(journal.last_seq(), 45);
        drop(journal);
        let (reopened, records) = Journal::open(&path, 41, FsyncPolicy::Never).unwrap();
        assert_eq!(reopened.last_seq(), 45);
        assert_eq!(
            records.iter().map(|r| r.seq).collect::<Vec<_>>(),
            [42, 43, 44, 45]
        );
        assert_eq!(
            records.into_iter().map(|r| r.op).collect::<Vec<_>>(),
            sample_ops()
        );
    }

    #[test]
    fn torn_tail_is_truncated_and_appends_resume() {
        let dir = TempDir::new("torn");
        let path = dir.0.join(segment_name(0));
        let mut journal = Journal::create(&path, 0, FsyncPolicy::Always).unwrap();
        journal.append(&sample_ops()[0]).unwrap();
        journal.append(&sample_ops()[1]).unwrap();
        drop(journal);
        let intact = std::fs::metadata(&path).unwrap().len();
        // a dying appender: half a record past the intact prefix
        let torn = encode_record(3, &sample_ops()[2]);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&torn[..torn.len() / 2]);
        std::fs::write(&path, &bytes).unwrap();

        let (mut reopened, records) = Journal::open(&path, 0, FsyncPolicy::Always).unwrap();
        assert_eq!(records.len(), 2, "the torn record does not replay");
        assert_eq!(std::fs::metadata(&path).unwrap().len(), intact);
        // appends continue exactly where the intact prefix ended
        assert_eq!(reopened.append(&JournalOp::Checkpoint).unwrap(), 3);
        let (_, records) = Journal::open(&path, 0, FsyncPolicy::Always).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(records[2].op, JournalOp::Checkpoint);
    }

    #[test]
    fn corrupt_record_marks_the_tail() {
        let dir = TempDir::new("corrupt");
        let path = dir.0.join(segment_name(0));
        let mut journal = Journal::create(&path, 0, FsyncPolicy::Always).unwrap();
        for op in sample_ops() {
            journal.append(&op).unwrap();
        }
        drop(journal);
        let clean = std::fs::read(&path).unwrap();
        // flip one byte inside the second record's body: records 2..
        // are untrusted from there on
        let second_start = JOURNAL_HEADER_LEN + 8 + encode_body(1, &sample_ops()[0]).len();
        let mut bytes = clean.clone();
        bytes[second_start + 6] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let (_, records) = Journal::open(&path, 0, FsyncPolicy::Always).unwrap();
        assert_eq!(records.len(), 1, "CRC pins the corruption");
        assert_eq!(
            std::fs::metadata(&path).unwrap().len() as usize,
            second_start,
            "the log is cut at the first untrusted record"
        );

        // a skipped sequence number is equally untrusted
        std::fs::write(&path, &clean).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&encode_record(9, &JournalOp::Checkpoint));
        std::fs::write(&path, &bytes).unwrap();
        let (_, records) = Journal::open(&path, 0, FsyncPolicy::Always).unwrap();
        assert_eq!(records.len(), 4, "seq 9 after 4 does not replay");
    }

    #[test]
    fn header_mismatches_are_hard_errors() {
        let dir = TempDir::new("header");
        let path = dir.0.join(segment_name(7));
        Journal::create(&path, 7, FsyncPolicy::Always).unwrap();
        assert!(matches!(
            Journal::open(&path, 8, FsyncPolicy::Always),
            Err(StoreError::Journal { .. })
        ));
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            Journal::open(&path, 7, FsyncPolicy::Always),
            Err(StoreError::Journal { .. })
        ));
        std::fs::write(&path, b"PRIVTJNL").unwrap();
        assert!(matches!(
            Journal::open(&path, 7, FsyncPolicy::Always),
            Err(StoreError::Journal { .. })
        ));
    }

    #[test]
    fn segment_names_round_trip_and_gate_the_sweep() {
        assert_eq!(segment_name(0), "journal-0000000000000000.bin");
        assert!(looks_like_segment(&segment_name(0x1f)));
        assert!(!looks_like_segment("journal-00.bin"));
        assert!(!looks_like_segment("journal-0000000000000000.bin.tmp"));
        assert!(!looks_like_segment("west-6a8c3f21.ptbin"));
    }

    #[test]
    fn fsync_policy_parses_the_flag_spellings() {
        assert_eq!(FsyncPolicy::parse("always"), Some(FsyncPolicy::Always));
        assert_eq!(FsyncPolicy::parse("never"), Some(FsyncPolicy::Never));
        assert_eq!(
            FsyncPolicy::parse("every:16"),
            Some(FsyncPolicy::EveryN(16))
        );
        assert_eq!(FsyncPolicy::parse("every:0"), None);
        assert_eq!(FsyncPolicy::parse("interval"), None);
        assert_eq!(FsyncPolicy::EveryN(4).to_string(), "every:4");
    }
}
