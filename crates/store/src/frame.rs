//! Generic length-prefixed message frames with optional CRC-32.
//!
//! The `privtree-bin` file format frames every section as
//! `tag | length | payload | CRC-32` and validates each length against
//! a hard bound *before* sizing any buffer (see [`crate::format`]).
//! This module lifts that convention out of the file decoder so stream
//! protocols can reuse it — concretely, the engine's `privtree-wire v1`
//! query protocol frames every message with these helpers.
//!
//! A frame on the stream is:
//!
//! ```text
//! [0..4)   tag       4 ASCII bytes naming the message kind
//! [4)      flags     u8 (bit 0: a CRC-32 trailer follows the payload)
//! [5..8)   reserved  must be zero
//! [8..12)  len       u32 little-endian payload byte count
//! [12..)   payload   `len` bytes
//! then, iff flags bit 0:
//!          crc       u32 little-endian CRC-32 (IEEE) of the payload
//! ```
//!
//! Decoding is incremental and hostile-input safe by construction:
//! [`parse_header`] needs only the first [`FRAME_HEADER_LEN`] bytes,
//! refuses unknown flags, nonzero reserved bytes, and any length above
//! the caller's cap — all **before** a single payload byte is buffered,
//! so a forged length can cost the reader at most the cap, never an
//! unbounded allocation (the same size-before-allocate contract the
//! file format's header check makes). [`payload`] then verifies the
//! CRC, when present, with the same `crc32` the file format uses.

use crate::format::crc32;

/// Fixed byte count of a frame header (tag + flags + reserved + len).
pub const FRAME_HEADER_LEN: usize = 12;

/// Frame flag bit 0: a CRC-32 trailer follows the payload.
pub const FRAME_FLAG_CRC: u8 = 0b0000_0001;

/// Every flag bit this revision understands; anything else is refused
/// (an unknown flag could change the frame's extent, so skipping it
/// would desynchronize the stream).
const KNOWN_FLAGS: u8 = FRAME_FLAG_CRC;

/// A parsed frame header: what the next message claims to be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Message kind (4 ASCII bytes, protocol-defined).
    pub tag: [u8; 4],
    /// Frame flags (only [`FRAME_FLAG_CRC`] is defined).
    pub flags: u8,
    /// Payload byte count.
    pub len: u32,
}

impl FrameHeader {
    /// Whether a CRC-32 trailer follows the payload.
    pub fn has_crc(&self) -> bool {
        self.flags & FRAME_FLAG_CRC != 0
    }

    /// Total on-stream byte count of the frame: header, payload, and
    /// trailer.
    pub fn total_len(&self) -> usize {
        FRAME_HEADER_LEN + self.len as usize + if self.has_crc() { 4 } else { 0 }
    }
}

/// Why a frame was refused. Typed so protocol layers can answer with a
/// matching error message (and tests can pin the exact refusal).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The header carries a flag bit this reader does not understand.
    UnknownFlags { flags: u8 },
    /// The reserved header bytes are not zero.
    NonZeroReserved,
    /// The declared payload length exceeds the caller's cap.
    Oversized { len: u32, max: u32 },
    /// The payload does not match its CRC-32 trailer.
    ChecksumMismatch { stored: u32, computed: u32 },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::UnknownFlags { flags } => {
                write!(f, "unknown frame flags {flags:#04x}")
            }
            FrameError::NonZeroReserved => write!(f, "nonzero reserved frame bytes"),
            FrameError::Oversized { len, max } => {
                write!(f, "frame payload of {len} bytes exceeds the {max}-byte cap")
            }
            FrameError::ChecksumMismatch { stored, computed } => write!(
                f,
                "frame checksum mismatch: stored {stored:08x}, computed {computed:08x}"
            ),
        }
    }
}

impl std::error::Error for FrameError {}

/// Encode one complete frame (header, payload, optional CRC trailer).
pub fn encode_frame(tag: [u8; 4], payload: &[u8], with_crc: bool) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len() + 4);
    encode_frame_into(&mut out, tag, payload, with_crc);
    out
}

/// Append one complete frame to `out` (the reply-buffer path: a reactor
/// scattering many replies into one connection buffer).
pub fn encode_frame_into(out: &mut Vec<u8>, tag: [u8; 4], payload: &[u8], with_crc: bool) {
    debug_assert!(
        payload.len() <= u32::MAX as usize,
        "frame payload too large"
    );
    out.extend_from_slice(&tag);
    out.push(if with_crc { FRAME_FLAG_CRC } else { 0 });
    out.extend_from_slice(&[0u8; 3]);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    if with_crc {
        out.extend_from_slice(&crc32(payload).to_le_bytes());
    }
}

/// Parse a frame header from the front of `bytes`, validating it
/// against `max_payload` before any buffer is sized from it.
///
/// Returns `Ok(None)` when fewer than [`FRAME_HEADER_LEN`] bytes are
/// buffered (read more and retry). A returned header still needs
/// [`FrameHeader::total_len`] bytes on the stream before [`payload`]
/// can slice the message out.
pub fn parse_header(bytes: &[u8], max_payload: u32) -> Result<Option<FrameHeader>, FrameError> {
    if bytes.len() < FRAME_HEADER_LEN {
        return Ok(None);
    }
    let flags = bytes[4];
    if flags & !KNOWN_FLAGS != 0 {
        return Err(FrameError::UnknownFlags { flags });
    }
    if bytes[5..8] != [0, 0, 0] {
        return Err(FrameError::NonZeroReserved);
    }
    let len = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if len > max_payload {
        return Err(FrameError::Oversized {
            len,
            max: max_payload,
        });
    }
    Ok(Some(FrameHeader {
        tag: bytes[..4].try_into().expect("4 bytes"),
        flags,
        len,
    }))
}

/// Slice the payload out of a complete frame (`frame` must hold at
/// least [`FrameHeader::total_len`] bytes starting at the header),
/// verifying the CRC-32 trailer when the header carries one.
pub fn payload<'a>(header: &FrameHeader, frame: &'a [u8]) -> Result<&'a [u8], FrameError> {
    let body = &frame[FRAME_HEADER_LEN..FRAME_HEADER_LEN + header.len as usize];
    if header.has_crc() {
        let at = FRAME_HEADER_LEN + header.len as usize;
        let stored = u32::from_le_bytes(frame[at..at + 4].try_into().expect("4 bytes"));
        let computed = crc32(body);
        if stored != computed {
            return Err(FrameError::ChecksumMismatch { stored, computed });
        }
    }
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_with_and_without_crc() {
        for with_crc in [false, true] {
            let frame = encode_frame(*b"TEST", b"hello frame", with_crc);
            let header = parse_header(&frame, 1024).unwrap().expect("complete");
            assert_eq!(header.tag, *b"TEST");
            assert_eq!(header.has_crc(), with_crc);
            assert_eq!(header.len, 11);
            assert_eq!(frame.len(), header.total_len());
            assert_eq!(payload(&header, &frame).unwrap(), b"hello frame");
        }
    }

    #[test]
    fn short_input_asks_for_more() {
        let frame = encode_frame(*b"TEST", b"payload", true);
        for cut in 0..FRAME_HEADER_LEN {
            assert_eq!(parse_header(&frame[..cut], 1024), Ok(None));
        }
    }

    #[test]
    fn hostile_headers_are_refused_before_allocation() {
        let mut frame = encode_frame(*b"TEST", b"x", false);
        frame[4] = 0x80; // unknown flag
        assert_eq!(
            parse_header(&frame, 1024),
            Err(FrameError::UnknownFlags { flags: 0x80 })
        );
        frame[4] = 0;
        frame[6] = 7; // reserved byte
        assert_eq!(parse_header(&frame, 1024), Err(FrameError::NonZeroReserved));
        frame[6] = 0;
        frame[8..12].copy_from_slice(&u32::MAX.to_le_bytes()); // forged length
        assert_eq!(
            parse_header(&frame, 1024),
            Err(FrameError::Oversized {
                len: u32::MAX,
                max: 1024
            })
        );
    }

    #[test]
    fn flipped_payload_byte_fails_the_checksum() {
        let mut frame = encode_frame(*b"TEST", b"sensitive", true);
        let header = parse_header(&frame, 1024).unwrap().unwrap();
        frame[FRAME_HEADER_LEN] ^= 0x01;
        let err = payload(&header, &frame).unwrap_err();
        assert!(matches!(err, FrameError::ChecksumMismatch { .. }));
        // without the trailer the flip would go unnoticed — the flag is
        // what buys integrity
        let plain = encode_frame(*b"TEST", b"sensitive", false);
        let header = parse_header(&plain, 1024).unwrap().unwrap();
        assert_eq!(payload(&header, &plain).unwrap(), b"sensitive");
    }
}
