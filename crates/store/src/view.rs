//! Zero-copy release views: decode `privtree-bin` straight out of a
//! memory mapping (or any stable byte buffer) without materializing the
//! columns.
//!
//! The copying decoder ([`crate::decode_release`]) turns every section
//! into an owned `Vec`, so opening a release costs O(bytes) in copies
//! and each serving process holds a private copy of every release. The
//! zero-copy path instead keeps the file bytes alive behind an
//! `Arc<dyn StableBytes>` (usually a [`ReleaseBytes::Mapped`] mapping)
//! and hands the spatial layer [`Column`]s that *borrow* the payloads in
//! place:
//!
//! * the header and whole-file size are validated exactly as in the
//!   copying path;
//! * each section is framed/walked identically, with per-section CRC
//!   verification on by default ([`open_release_view`]'s `verify`
//!   parameter lets catalog opens that already verified the whole-file
//!   checksum skip the second pass);
//! * each column borrows the payload when the host is little-endian and
//!   the payload is suitably aligned (guaranteed by the aligned file
//!   layout for mapped files), and silently falls back to the owned
//!   copy otherwise — legacy unpadded files therefore decode fine, just
//!   without the zero-copy win;
//! * arena validation (`FrozenSynopsis::from_flat_parts`) runs eagerly,
//!   but the grid's [`CellGrid::from_parts`] — the dominant cost of a
//!   gridded decode — is *staged* as [`CellGridParts`] and assembled on
//!   first use (see `ShardHandle::from_staged`), which is what makes a
//!   catalog warm start O(map + validate) instead of O(decode).
//!
//! Answers served from a view are bit-identical to the owned decode of
//! the same bytes: the columns hold the same values, and the staged grid
//! assembles through the same `from_parts` entry point
//! (property-tested in `tests/zero_copy.rs`).

use std::path::Path;
use std::sync::Arc;

use privtree_spatial::grid_route::{CellGrid, CellGridParts};
use privtree_spatial::{Column, ColumnScalar, FrozenSynopsis, StableBytes};

use crate::format::{
    decode_bins, f64_vec, parse_header, u32_vec, Reader, SEC_COUNTS, SEC_FIRST, SEC_GANCHORS,
    SEC_GBINS, SEC_GVALUES, SEC_HI, SEC_KIDS, SEC_LO,
};
use crate::StoreError;

/// The backing bytes of one release file, kept alive for as long as any
/// column borrows from them.
#[derive(Debug)]
pub enum ReleaseBytes {
    /// A read-only shared mapping of the release file: the OS page cache
    /// holds the single physical copy.
    #[cfg(feature = "mmap")]
    Mapped(privtree_mmap::Mmap),
    /// An owned in-memory copy (mmap feature disabled, or mapping
    /// failed/unsupported). Columns can still borrow from it zero-copy —
    /// there is just no page-cache sharing.
    Owned(Vec<u8>),
}

impl ReleaseBytes {
    /// Open `path`, preferring a memory mapping when the `mmap` feature
    /// is enabled (falling back to an owned read if mapping fails).
    pub fn map(path: &Path) -> Result<Self, StoreError> {
        #[cfg(feature = "mmap")]
        {
            if let Ok(map) = privtree_mmap::Mmap::open(path) {
                return Ok(ReleaseBytes::Mapped(map));
            }
        }
        Ok(ReleaseBytes::Owned(std::fs::read(path).map_err(|e| {
            StoreError::io(format!("reading {}", path.display()), e)
        })?))
    }

    /// Wrap bytes already in memory.
    pub fn from_vec(bytes: Vec<u8>) -> Self {
        ReleaseBytes::Owned(bytes)
    }

    /// The release file bytes.
    pub fn bytes(&self) -> &[u8] {
        match self {
            #[cfg(feature = "mmap")]
            ReleaseBytes::Mapped(map) => map.bytes(),
            ReleaseBytes::Owned(buf) => buf,
        }
    }

    /// Bytes held by a memory mapping (0 for owned storage).
    pub fn mapped_len(&self) -> usize {
        match self {
            #[cfg(feature = "mmap")]
            ReleaseBytes::Mapped(map) => map.len(),
            ReleaseBytes::Owned(_) => 0,
        }
    }

    /// Whether the storage is a memory mapping.
    pub fn is_mapped(&self) -> bool {
        self.mapped_len() > 0
    }
}

// SAFETY: both variants hold heap/mapping storage whose address never
// changes while the value is alive, and nothing mutates it.
unsafe impl StableBytes for ReleaseBytes {
    fn stable_bytes(&self) -> &[u8] {
        self.bytes()
    }
}

/// A zero-copy open: the validated arena plus, for gridded releases,
/// the staged grid columns awaiting first-use assembly.
#[derive(Debug, Clone)]
pub struct ReleaseView {
    /// The validated frozen arena, columns borrowing the owner where
    /// possible.
    pub arena: FrozenSynopsis,
    /// The persisted grid columns, when the release ships a grid.
    pub grid: Option<CellGridParts>,
}

/// Borrow `payload` (a subslice of `owner`'s bytes) as a typed column,
/// or `None` when borrowing is impossible (big-endian host, misaligned
/// payload).
fn borrow_column<T: ColumnScalar>(
    owner: &Arc<dyn StableBytes>,
    payload: &[u8],
) -> Option<Column<T>> {
    if !cfg!(target_endian = "little") {
        // on-disk columns are little-endian; a big-endian host must
        // byte-swap, i.e. copy
        return None;
    }
    let base = owner.stable_bytes().as_ptr() as usize;
    let offset = (payload.as_ptr() as usize).checked_sub(base)?;
    Column::borrowed(
        Arc::clone(owner),
        offset,
        payload.len() / std::mem::size_of::<T>(),
    )
    .ok()
}

/// `payload` as an `f64` column: borrowed when possible, copied
/// otherwise.
fn f64_column(owner: &Arc<dyn StableBytes>, payload: &[u8]) -> Column<f64> {
    borrow_column(owner, payload).unwrap_or_else(|| f64_vec(payload).into())
}

/// `payload` as a `u32` column: borrowed when possible, copied
/// otherwise.
fn u32_column(owner: &Arc<dyn StableBytes>, payload: &[u8]) -> Column<u32> {
    borrow_column(owner, payload).unwrap_or_else(|| u32_vec(payload).into())
}

/// Open a release over stable bytes with zero-copy columns: validate
/// the header + whole-file size, walk the sections, verify their CRCs
/// (unless `verify_sections` is false — only pass `false` when the
/// whole-file checksum has already been verified against a trusted
/// manifest, as [`crate::Catalog::load_mapped`] does), run full arena
/// validation, and stage the grid columns for first-use assembly.
pub fn open_release_view(
    owner: &Arc<dyn StableBytes>,
    verify_sections: bool,
) -> Result<ReleaseView, StoreError> {
    let bytes = owner.stable_bytes();
    let header = parse_header(bytes)?;
    let (dims, nodes, cells) = (header.dims, header.nodes, header.cells);

    let mut reader = Reader::new(bytes, header.aligned, verify_sections);
    let coords = nodes * dims as u64 * 8;
    let lo = f64_column(owner, reader.section(SEC_LO, coords)?);
    let hi = f64_column(owner, reader.section(SEC_HI, coords)?);
    let first_child = u32_column(owner, reader.section(SEC_FIRST, nodes * 4)?);
    let child_count = u32_column(owner, reader.section(SEC_KIDS, nodes * 4)?);
    let counts = f64_column(owner, reader.section(SEC_COUNTS, nodes * 8)?);
    let arena = FrozenSynopsis::from_flat_parts(
        dims as usize,
        lo,
        hi,
        first_child,
        child_count,
        counts,
        "imported",
    )?;
    if !header.grid {
        return Ok(ReleaseView { arena, grid: None });
    }
    let bins = decode_bins(reader.section(SEC_GBINS, 4 * dims as u64)?, cells)?;
    let anchors = u32_column(owner, reader.section(SEC_GANCHORS, cells * 4)?);
    let values = f64_column(owner, reader.section(SEC_GVALUES, cells * 8)?);
    Ok(ReleaseView {
        arena,
        grid: Some(CellGridParts::new(bins, anchors, values)),
    })
}

/// The zero-copy counterpart of [`crate::decode_release`]: same full
/// validation (header, framing, section CRCs, arena layout, grid
/// assembly), same typed errors on every hostile input — but the
/// surviving columns borrow `owner`'s bytes instead of copying them.
pub fn decode_release_view(
    owner: &Arc<dyn StableBytes>,
) -> Result<(FrozenSynopsis, Option<CellGrid>), StoreError> {
    let view = open_release_view(owner, true)?;
    let grid = match &view.grid {
        Some(parts) => Some(parts.assemble(&view.arena)?),
        None => None,
    };
    Ok((view.arena, grid))
}
