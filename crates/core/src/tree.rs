//! Arena-backed decomposition trees.
//!
//! Nodes live in a flat `Vec`; children of a node are contiguous (they are
//! always appended together when a node is split), so each node stores only
//! a `(first_child, child_count)` pair. This keeps the tree cache-friendly
//! for the traversal-heavy query answering of Section 2.2 and makes
//! bottom-up aggregation a simple reverse scan.

/// Index of a node within a [`Tree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The root of every tree.
    pub const ROOT: NodeId = NodeId(0);

    /// Raw index into the node arena.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuild an id from a raw arena index (used by deserializers; the
    /// index is validated on first use against the target tree).
    #[inline]
    pub fn from_index(index: usize) -> NodeId {
        assert!(index <= u32::MAX as usize);
        NodeId(index as u32)
    }
}

#[derive(Debug, Clone)]
struct Entry<T> {
    parent: u32, // u32::MAX for the root
    first_child: u32,
    child_count: u32,
    depth: u32,
    payload: T,
}

/// A rooted tree whose node payloads are `T` (e.g. spatial regions or PST
/// predictor strings).
#[derive(Debug, Clone)]
pub struct Tree<T> {
    nodes: Vec<Entry<T>>,
}

impl<T> Tree<T> {
    /// A tree containing only a root with the given payload.
    pub fn with_root(payload: T) -> Self {
        Self {
            nodes: vec![Entry {
                parent: u32::MAX,
                first_child: 0,
                child_count: 0,
                depth: 0,
                payload,
            }],
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` iff the tree has no nodes. A [`Tree`] always carries at
    /// least its root, so this is always `false`; it exists so that
    /// `is_empty` agrees with `len() == 0` (the previous version returned
    /// `true` for a root-only tree of length 1 — see
    /// [`Tree::is_root_only`] for that predicate).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// `true` iff the tree is just a root (no split ever happened).
    #[inline]
    pub fn is_root_only(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// The root id (always [`NodeId::ROOT`]).
    #[inline]
    pub fn root(&self) -> NodeId {
        NodeId::ROOT
    }

    /// Append `children` payloads as the children of `parent`.
    ///
    /// Panics if `parent` already has children (a node is split at most
    /// once) or if the arena would exceed `u32` indices.
    pub fn add_children(&mut self, parent: NodeId, children: Vec<T>) -> Vec<NodeId> {
        assert_eq!(
            self.nodes[parent.index()].child_count,
            0,
            "node split twice"
        );
        assert!(
            self.nodes.len() + children.len() <= u32::MAX as usize,
            "tree exceeds u32 node indices"
        );
        let first = self.nodes.len() as u32;
        let depth = self.nodes[parent.index()].depth + 1;
        let n = children.len() as u32;
        for payload in children {
            self.nodes.push(Entry {
                parent: parent.0,
                first_child: 0,
                child_count: 0,
                depth,
                payload,
            });
        }
        let e = &mut self.nodes[parent.index()];
        e.first_child = first;
        e.child_count = n;
        (first..first + n).map(NodeId).collect()
    }

    /// Payload of a node.
    #[inline]
    pub fn payload(&self, id: NodeId) -> &T {
        &self.nodes[id.index()].payload
    }

    /// Mutable payload of a node.
    #[inline]
    pub fn payload_mut(&mut self, id: NodeId) -> &mut T {
        &mut self.nodes[id.index()].payload
    }

    /// Hop distance from the root (`depth(root) = 0`, as in Table 1).
    #[inline]
    pub fn depth(&self, id: NodeId) -> u32 {
        self.nodes[id.index()].depth
    }

    /// Parent of a node, or `None` for the root.
    #[inline]
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        let p = self.nodes[id.index()].parent;
        (p != u32::MAX).then_some(NodeId(p))
    }

    /// Children of a node (empty for leaves).
    #[inline]
    pub fn children(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        let e = &self.nodes[id.index()];
        (e.first_child..e.first_child + e.child_count).map(NodeId)
    }

    /// `true` iff the node has no children.
    #[inline]
    pub fn is_leaf(&self, id: NodeId) -> bool {
        self.nodes[id.index()].child_count == 0
    }

    /// All node ids in arena (BFS-compatible) order: parents precede
    /// children, so a forward scan is top-down and a reverse scan is
    /// bottom-up.
    pub fn ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Ids of all leaves.
    pub fn leaf_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.ids().filter(|id| self.is_leaf(*id))
    }

    /// Ids of all internal (split) nodes.
    pub fn internal_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.ids().filter(|id| !self.is_leaf(*id))
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.leaf_ids().count()
    }

    /// Maximum node depth; 0 for a root-only tree. This is `height − 1` in
    /// the paper's Algorithm 1 terminology.
    pub fn max_depth(&self) -> u32 {
        self.nodes.iter().map(|e| e.depth).max().unwrap_or(0)
    }

    /// Number of nodes at each depth, indexed by depth.
    pub fn depth_histogram(&self) -> Vec<usize> {
        let mut hist = vec![0usize; self.max_depth() as usize + 1];
        for e in &self.nodes {
            hist[e.depth as usize] += 1;
        }
        hist
    }

    /// The path of node ids from the root to `id`, inclusive.
    pub fn path_from_root(&self, id: NodeId) -> Vec<NodeId> {
        let mut path = vec![id];
        let mut cur = id;
        while let Some(p) = self.parent(cur) {
            path.push(p);
            cur = p;
        }
        path.reverse();
        path
    }

    /// Map payloads to a new type, preserving structure.
    pub fn map<U>(&self, mut f: impl FnMut(NodeId, &T) -> U) -> Tree<U> {
        Tree {
            nodes: self
                .nodes
                .iter()
                .enumerate()
                .map(|(i, e)| Entry {
                    parent: e.parent,
                    first_child: e.first_child,
                    child_count: e.child_count,
                    depth: e.depth,
                    payload: f(NodeId(i as u32), &e.payload),
                })
                .collect(),
        }
    }

    /// Render the tree as indented text using `fmt` for payloads — handy in
    /// examples and debugging output.
    pub fn render(&self, mut fmt: impl FnMut(NodeId, &T) -> String) -> String {
        let mut out = String::new();
        let mut stack = vec![NodeId::ROOT];
        while let Some(id) = stack.pop() {
            let depth = self.depth(id) as usize;
            out.push_str(&"  ".repeat(depth));
            out.push_str(&fmt(id, self.payload(id)));
            out.push('\n');
            // push children in reverse so they pop in order
            let kids: Vec<NodeId> = self.children(id).collect();
            for k in kids.into_iter().rev() {
                stack.push(k);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tree() -> Tree<&'static str> {
        // root -> (a, b); a -> (a1, a2)
        let mut t = Tree::with_root("root");
        let kids = t.add_children(NodeId::ROOT, vec!["a", "b"]);
        t.add_children(kids[0], vec!["a1", "a2"]);
        t
    }

    #[test]
    fn structure_invariants() {
        let t = sample_tree();
        assert_eq!(t.len(), 5);
        assert_eq!(t.leaf_count(), 3);
        assert_eq!(t.max_depth(), 2);
        assert_eq!(t.depth_histogram(), vec![1, 2, 2]);
        assert!(t.parent(NodeId::ROOT).is_none());
        let kids: Vec<NodeId> = t.children(NodeId::ROOT).collect();
        assert_eq!(kids.len(), 2);
        assert_eq!(*t.payload(kids[0]), "a");
        assert_eq!(t.parent(kids[0]), Some(NodeId::ROOT));
        assert!(t.is_leaf(kids[1]));
        assert!(!t.is_leaf(kids[0]));
    }

    #[test]
    fn parents_precede_children_in_arena_order() {
        let t = sample_tree();
        for id in t.ids() {
            if let Some(p) = t.parent(id) {
                assert!(p < id);
            }
        }
    }

    #[test]
    fn path_from_root() {
        let t = sample_tree();
        let a1 = t.ids().find(|id| *t.payload(*id) == "a1").unwrap();
        let path: Vec<&str> = t
            .path_from_root(a1)
            .iter()
            .map(|id| *t.payload(*id))
            .collect();
        assert_eq!(path, vec!["root", "a", "a1"]);
    }

    #[test]
    #[should_panic(expected = "node split twice")]
    fn double_split_panics() {
        let mut t = sample_tree();
        t.add_children(NodeId::ROOT, vec!["c"]);
    }

    #[test]
    fn map_preserves_structure() {
        let t = sample_tree();
        let u = t.map(|_, s| s.len());
        assert_eq!(u.len(), t.len());
        assert_eq!(u.depth_histogram(), t.depth_histogram());
        assert_eq!(*u.payload(NodeId::ROOT), 4);
    }

    #[test]
    fn render_is_indented() {
        let t = sample_tree();
        let s = t.render(|_, p| p.to_string());
        assert!(s.starts_with("root\n  a\n    a1"));
    }

    #[test]
    fn emptiness_predicates() {
        let t = Tree::with_root("solo");
        assert!(!t.is_empty(), "a tree always has its root");
        assert!(t.is_root_only());
        let t = sample_tree();
        assert!(!t.is_empty());
        assert!(!t.is_root_only());
    }

    #[test]
    fn leaf_and_internal_partition() {
        let t = sample_tree();
        let leaves: Vec<NodeId> = t.leaf_ids().collect();
        let internals: Vec<NodeId> = t.internal_ids().collect();
        assert_eq!(leaves.len() + internals.len(), t.len());
        for l in &leaves {
            assert!(!internals.contains(l));
        }
    }
}
