//! PrivTree — Algorithm 2 of the paper.
//!
//! The construction follows the pseudo-code:
//!
//! ```text
//! 1  initialize a tree T with a root node v1          (Tree::with_root)
//! 2  set dom(v1) = Ω, mark v1 unvisited               (frontier)
//! 3  while there exists an unvisited node v:
//! 4    mark v as visited
//! 5    b(v) = c(v) − depth(v)·δ                       (biased score)
//! 6    b(v) = max(b(v), θ − δ)                        (floor)
//! 7    b̂(v) = b(v) + Lap(λ)
//! 8    if b̂(v) > θ: split v, add children to T
//! 11 return T with all point counts removed
//! ```
//!
//! [`build_privtree`] visits nodes **level-synchronously**: the entire
//! frontier's noise-free raw scores are computed as one
//! [`TreeDomain::score_frontier`] batch (which `Sync` domains may fan out
//! across the `privtree-runtime` worker pool), then bias and Laplace
//! noise are applied in one deterministic sequential pass (noise is
//! consumed in arena order, exactly as the node-at-a-time loop of
//! [`build_privtree_sequential`] consumes it, so both builders are
//! bit-identical given the same seed), and the surviving nodes are then
//! split as one batch through [`TreeDomain::split_frontier`]. Batching
//! the splits lets domains with disjoint per-node scratch segments
//! process a level without re-borrowing shared state node by node.
//!
//! The returned [`Tree`] carries only the sub-domain payloads — no scores
//! and no noisy values — matching line 11. Noisy counts, when needed, are a
//! separate ε/2 postprocessing pass (see [`crate::counts`]).

use std::collections::VecDeque;

use privtree_dp::laplace::Laplace;
use rand::Rng;

use crate::domain::TreeDomain;
use crate::params::PrivTreeParams;
use crate::tree::{NodeId, Tree};
use crate::{CoreError, Result};

/// Run PrivTree over `domain` with the given parameters, processing the
/// tree one frontier level at a time.
///
/// The caller is responsible for having calibrated `params` to the desired
/// ε (see [`PrivTreeParams::from_epsilon`]); by Theorem 3.1 the release of
/// the returned tree structure is then ε-differentially private.
pub fn build_privtree<D: TreeDomain, R: Rng + ?Sized>(
    domain: &mut D,
    params: &PrivTreeParams,
    rng: &mut R,
) -> Result<Tree<D::Node>> {
    let params = params.checked()?;
    let noise =
        Laplace::centered(params.lambda).map_err(|e| CoreError::BadParams(e.to_string()))?;

    let mut tree = Tree::with_root(domain.root());
    let mut frontier = vec![tree.root()];
    let mut survivors: Vec<NodeId> = Vec::new();

    while !frontier.is_empty() {
        // lines 5-7 for the whole level, in two passes: the noise-free raw
        // scores as one batch (which `Sync` domains may compute on the
        // worker pool), then bias + Laplace noise in one deterministic
        // sequential pass (arena order).
        let payloads: Vec<&D::Node> = frontier.iter().map(|&v| tree.payload(v)).collect();
        let raw_scores = domain.score_frontier(&payloads);
        debug_assert_eq!(raw_scores.len(), frontier.len());
        survivors.clear();
        for (&v, raw) in frontier.iter().zip(raw_scores) {
            let biased = params.biased_score(raw, tree.depth(v));
            let noisy = biased + noise.sample(rng);
            if noisy > params.theta {
                survivors.push(v);
            }
        }
        // line 8 as a batch: split every survivor of this level at once.
        let payloads: Vec<&D::Node> = survivors.iter().map(|&v| tree.payload(v)).collect();
        let splits = domain.split_frontier(&payloads);
        debug_assert_eq!(splits.len(), survivors.len());

        frontier.clear();
        for (&v, children) in survivors.iter().zip(splits) {
            if let Some(children) = children {
                if tree.len() + children.len() > params.node_limit {
                    return Err(CoreError::TreeTooLarge {
                        limit: params.node_limit,
                    });
                }
                frontier.extend(tree.add_children(v, children));
            }
        }
    }
    Ok(tree)
}

/// The node-at-a-time reference implementation of Algorithm 2 (a FIFO
/// work queue, exactly the paper's presentation). Kept as the oracle the
/// frontier builder is tested against: both consume Laplace noise in
/// arena order, so for any domain and seed the two produce identical
/// trees.
pub fn build_privtree_sequential<D: TreeDomain, R: Rng + ?Sized>(
    domain: &mut D,
    params: &PrivTreeParams,
    rng: &mut R,
) -> Result<Tree<D::Node>> {
    let params = params.checked()?;
    let noise =
        Laplace::centered(params.lambda).map_err(|e| CoreError::BadParams(e.to_string()))?;

    let mut tree = Tree::with_root(domain.root());
    let mut queue = VecDeque::new();
    queue.push_back(tree.root());

    while let Some(v) = queue.pop_front() {
        // lines 5-6: biased score with the θ − δ floor
        let raw = domain.score(tree.payload(v));
        let biased = params.biased_score(raw, tree.depth(v));
        // line 7: add Laplace noise of constant scale λ
        let noisy = biased + noise.sample(rng);
        // line 8: split when the noisy biased score clears the threshold
        if noisy > params.theta {
            if let Some(children) = domain.split(tree.payload(v)) {
                if tree.len() + children.len() > params.node_limit {
                    return Err(CoreError::TreeTooLarge {
                        limit: params.node_limit,
                    });
                }
                for child in tree.add_children(v, children) {
                    queue.push_back(child);
                }
            }
        }
    }
    Ok(tree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::{LineDomain, LineNode};
    use privtree_dp::budget::Epsilon;
    use privtree_dp::rng::seeded;

    fn clustered_points(n: usize) -> Vec<f64> {
        // all points packed into [0, 1/64): a heavily skewed distribution
        (0..n).map(|i| (i as f64) / (n as f64) / 64.0).collect()
    }

    #[test]
    fn grows_deep_into_dense_regions() {
        let mut domain = LineDomain::new(clustered_points(100_000));
        let params = PrivTreeParams::from_epsilon(Epsilon::new(1.0).unwrap(), 2).unwrap();
        let tree = build_privtree(&mut domain, &params, &mut seeded(1)).unwrap();
        // the dense cluster needs depth ≫ 6 to resolve; a depth-limited
        // tree of height 6 could never reach it
        assert!(tree.max_depth() > 8, "max depth = {}", tree.max_depth());
        // and the empty half of the domain stays shallow: the right child
        // of the root (covering [0.5, 1)) should be a leaf
        let right = tree.children(tree.root()).nth(1).unwrap();
        assert!(tree.is_leaf(right) || tree.children(right).count() == 2);
    }

    #[test]
    fn uniform_data_gives_balanced_tree() {
        let pts: Vec<f64> = (0..4096).map(|i| (i as f64 + 0.5) / 4096.0).collect();
        let mut domain = LineDomain::new(pts);
        let params = PrivTreeParams::from_epsilon(Epsilon::new(2.0).unwrap(), 2).unwrap();
        let tree = build_privtree(&mut domain, &params, &mut seeded(7)).unwrap();
        // depth histogram should look geometric (full levels near the top)
        let hist = tree.depth_histogram();
        assert_eq!(hist[0], 1);
        assert_eq!(hist[1], 2);
        assert_eq!(hist[2], 4);
    }

    #[test]
    fn empty_data_often_yields_single_node() {
        let mut domain = LineDomain::new(vec![]);
        let params = PrivTreeParams::from_epsilon(Epsilon::new(1.0).unwrap(), 2).unwrap();
        // With c(root) = 0 and depth 0 the biased score is
        // max(0 − 0·δ, θ − δ) = 0 = θ, so the root splits with probability
        // Pr[Lap(λ) > 0] = 1/2; deeper nodes hit the θ − δ floor and split
        // with probability only 1/(2β). Over many seeds roughly half the
        // trees should be a lone root, and the rest should stay tiny.
        let mut single = 0;
        let mut total_nodes = 0usize;
        let reps = 100;
        for seed in 0..reps {
            let tree = build_privtree(&mut domain, &params, &mut seeded(seed)).unwrap();
            total_nodes += tree.len();
            if tree.len() == 1 {
                single += 1;
            }
        }
        assert!(
            (35..=65).contains(&single),
            "{single}/{reps} single-node trees, expected ≈ {}",
            reps / 2
        );
        // mean size stays O(1): the floor stops runaway splitting
        assert!(
            total_nodes < reps as usize * 4,
            "mean tree size {} suspiciously large",
            total_nodes as f64 / reps as f64
        );
    }

    #[test]
    fn respects_node_limit() {
        let mut domain = LineDomain::new(clustered_points(10_000));
        let params = PrivTreeParams::from_epsilon(Epsilon::new(1.0).unwrap(), 2)
            .unwrap()
            .with_node_limit(5);
        let err = build_privtree(&mut domain, &params, &mut seeded(3)).unwrap_err();
        assert_eq!(err, CoreError::TreeTooLarge { limit: 5 });
    }

    #[test]
    fn respects_min_width_floor() {
        let mut domain = LineDomain::new(clustered_points(100_000)).with_min_width(1.0 / 32.0);
        let params = PrivTreeParams::from_epsilon(Epsilon::new(1.0).unwrap(), 2).unwrap();
        let tree = build_privtree(&mut domain, &params, &mut seeded(5)).unwrap();
        assert!(tree.max_depth() <= 5, "max depth = {}", tree.max_depth());
    }

    #[test]
    fn deterministic_given_seed() {
        let mut domain = LineDomain::new(clustered_points(1000));
        let params = PrivTreeParams::from_epsilon(Epsilon::new(0.5).unwrap(), 2).unwrap();
        let a = build_privtree(&mut domain, &params, &mut seeded(11)).unwrap();
        let b = build_privtree(&mut domain, &params, &mut seeded(11)).unwrap();
        assert_eq!(a.len(), b.len());
        assert_eq!(a.depth_histogram(), b.depth_histogram());
    }

    /// The frontier builder consumes noise in the same (arena) order as
    /// the node-at-a-time loop, so the two are bit-identical per seed.
    #[test]
    fn frontier_matches_sequential_bit_for_bit() {
        let payloads = |t: &Tree<LineNode>| -> Vec<(f64, f64)> {
            t.ids()
                .map(|id| {
                    let n = t.payload(id);
                    (n.lo, n.hi)
                })
                .collect()
        };
        for seed in 0..25 {
            let mut d1 = LineDomain::new(clustered_points(5000));
            let mut d2 = d1.clone();
            let params = PrivTreeParams::from_epsilon(Epsilon::new(1.0).unwrap(), 2).unwrap();
            let a = build_privtree(&mut d1, &params, &mut seeded(seed)).unwrap();
            let b = build_privtree_sequential(&mut d2, &params, &mut seeded(seed)).unwrap();
            assert_eq!(a.len(), b.len(), "seed {seed}");
            assert_eq!(payloads(&a), payloads(&b), "seed {seed}");
            assert_eq!(a.depth_histogram(), b.depth_histogram(), "seed {seed}");
        }
    }

    #[test]
    fn lemma_3_2_expected_size_bound() {
        // E[|T|] ≤ 2·|T*| whenever |T*| > 1 (with δ = λ ln β, θ as given).
        let pts: Vec<f64> = (0..2000).map(|i| (i as f64 + 0.5) / 2000.0).collect();
        let mut domain = LineDomain::new(pts).with_min_width(1.0 / 1024.0);
        let params = PrivTreeParams::from_epsilon(Epsilon::new(1.0).unwrap(), 2)
            .unwrap()
            .with_theta(100.0);
        let t_star = crate::nonprivate::nonprivate_tree(&mut domain, params.theta, None);
        assert!(t_star.len() > 1);
        let reps = 60;
        let mut total = 0usize;
        for seed in 0..reps {
            total += build_privtree(&mut domain, &params, &mut seeded(1000 + seed))
                .unwrap()
                .len();
        }
        let mean = total as f64 / reps as f64;
        // allow sampling slack above the theoretical factor of 2
        assert!(
            mean <= 2.2 * t_star.len() as f64,
            "mean |T| = {mean}, |T*| = {}",
            t_star.len()
        );
    }
}
