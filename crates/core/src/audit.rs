//! Exact output-distribution audits.
//!
//! A PrivTree output is a tree *shape*: which nodes were split. Each split
//! decision is an independent Laplace threshold event, so the probability
//! of any finite shape is a product of exactly-computable factors:
//!
//! ```text
//! Pr[D → T] = Π_{internal v} Pr[b(v) + Lap(λ) > θ] · Π_{leaf v} Pr[b(v) + Lap(λ) ≤ θ]
//! ```
//!
//! (unsplittable leaves contribute factor 1 — their decision is not
//! observable in the output). Differential privacy requires
//! `|ln(Pr[D → T]/Pr[D′ → T])| ≤ ε` for **every** shape `T` and every pair
//! of neighboring datasets; this module enumerates all shapes up to a depth
//! and checks the bound exactly, turning Theorem 3.1 into an executable
//! test.

use privtree_dp::laplace::Laplace;

use crate::domain::TreeDomain;
use crate::params::{PrivTreeParams, SimpleTreeParams};

/// An abstract tree shape: every node is either a leaf or split into the
/// domain's fanout many child shapes.
#[derive(Debug, Clone, PartialEq)]
pub enum Shape {
    /// The node was not split.
    Leaf,
    /// The node was split; one shape per child.
    Split(Vec<Shape>),
}

impl Shape {
    /// Total number of nodes in the shape.
    pub fn node_count(&self) -> usize {
        match self {
            Shape::Leaf => 1,
            Shape::Split(children) => 1 + children.iter().map(Shape::node_count).sum::<usize>(),
        }
    }

    /// Depth of the deepest node (root = 0).
    pub fn depth(&self) -> usize {
        match self {
            Shape::Leaf => 0,
            Shape::Split(children) => 1 + children.iter().map(Shape::depth).max().unwrap_or(0),
        }
    }
}

/// Enumerate every shape of a β-ary tree with depth at most `max_depth`.
///
/// The count grows doubly exponentially (β = 2: 2, 5, 26, 677 shapes for
/// depths 1–4), so keep `max_depth` small.
pub fn enumerate_shapes(fanout: usize, max_depth: usize) -> Vec<Shape> {
    if max_depth == 0 {
        return vec![Shape::Leaf];
    }
    let child_shapes = enumerate_shapes(fanout, max_depth - 1);
    let mut shapes = vec![Shape::Leaf];
    // all combinations of child shapes: |child_shapes|^fanout
    let mut combos: Vec<Vec<Shape>> = vec![Vec::new()];
    for _ in 0..fanout {
        let mut next = Vec::with_capacity(combos.len() * child_shapes.len());
        for combo in &combos {
            for cs in &child_shapes {
                let mut c = combo.clone();
                c.push(cs.clone());
                next.push(c);
            }
        }
        combos = next;
    }
    shapes.extend(combos.into_iter().map(Shape::Split));
    shapes
}

/// `ln Pr[domain's dataset → shape]` under PrivTree (Algorithm 2).
///
/// Returns `f64::NEG_INFINITY` for impossible shapes (a split where the
/// domain is unsplittable).
pub fn privtree_log_prob<D: TreeDomain>(
    domain: &mut D,
    shape: &Shape,
    params: &PrivTreeParams,
) -> f64 {
    let noise = Laplace::centered(params.lambda).expect("validated params");
    fn walk<D: TreeDomain>(
        domain: &mut D,
        node: &D::Node,
        depth: u32,
        shape: &Shape,
        params: &PrivTreeParams,
        noise: &Laplace,
    ) -> f64 {
        let b = params.biased_score(domain.score(node), depth);
        // Pr[b + Lap > θ] = Pr[Lap > θ − b]
        match shape {
            Shape::Leaf => match domain.split(node) {
                // unsplittable: the node is a leaf regardless of the draw
                None => 0.0,
                Some(_) => noise.ln_cdf(params.theta - b),
            },
            Shape::Split(child_shapes) => match domain.split(node) {
                None => f64::NEG_INFINITY,
                Some(children) => {
                    assert_eq!(
                        children.len(),
                        child_shapes.len(),
                        "shape fanout must match domain fanout"
                    );
                    let mut lp = noise.ln_sf(params.theta - b);
                    for (child, cs) in children.iter().zip(child_shapes) {
                        lp += walk(domain, child, depth + 1, cs, params, noise);
                        if lp == f64::NEG_INFINITY {
                            break;
                        }
                    }
                    lp
                }
            },
        }
    }
    let root = domain.root();
    walk(domain, &root, 0, shape, params, &noise)
}

/// `ln Pr[dataset → shape]` for the *structure only* of a SimpleTree
/// (Algorithm 1) release — the `T′` analysis of Section 3.2. Nodes at depth
/// `height − 1` are never split.
pub fn simple_tree_log_prob<D: TreeDomain>(
    domain: &mut D,
    shape: &Shape,
    params: &SimpleTreeParams,
) -> f64 {
    let noise = Laplace::centered(params.lambda).expect("validated params");
    fn walk<D: TreeDomain>(
        domain: &mut D,
        node: &D::Node,
        depth: u32,
        shape: &Shape,
        params: &SimpleTreeParams,
        noise: &Laplace,
    ) -> f64 {
        let c = domain.score(node);
        let depth_capped = depth >= params.height - 1;
        match shape {
            Shape::Leaf => {
                if depth_capped || domain.split(node).is_none() {
                    0.0
                } else {
                    noise.ln_cdf(params.theta - c)
                }
            }
            Shape::Split(child_shapes) => {
                if depth_capped {
                    return f64::NEG_INFINITY;
                }
                match domain.split(node) {
                    None => f64::NEG_INFINITY,
                    Some(children) => {
                        let mut lp = noise.ln_sf(params.theta - c);
                        for (child, cs) in children.iter().zip(child_shapes) {
                            lp += walk(domain, child, depth + 1, cs, params, noise);
                            if lp == f64::NEG_INFINITY {
                                break;
                            }
                        }
                        lp
                    }
                }
            }
        }
    }
    let root = domain.root();
    walk(domain, &root, 0, shape, params, &noise)
}

/// The worst-case privacy cost of a full SimpleTree release (structure plus
/// all noisy counts): `h/λ`, per the Section 3.1 sensitivity argument — one
/// inserted tuple shifts the exact count of the `h` nodes on its
/// root-to-leaf path by one, and each shifted count can contribute `1/λ` to
/// the output density ratio (Eq. 2–4).
pub fn simple_tree_worst_case_cost(height: u32, lambda: f64) -> f64 {
    height as f64 / lambda
}

/// Maximum |log probability ratio| over the given shapes for two datasets
/// (presented as two domains with identical geometry). Returns infinity if
/// some shape is possible under one dataset but not the other.
pub fn max_abs_log_ratio(log_probs_a: &[f64], log_probs_b: &[f64]) -> f64 {
    assert_eq!(log_probs_a.len(), log_probs_b.len());
    let mut worst = 0.0f64;
    for (&a, &b) in log_probs_a.iter().zip(log_probs_b) {
        match (a == f64::NEG_INFINITY, b == f64::NEG_INFINITY) {
            (true, true) => continue,
            (true, false) | (false, true) => return f64::INFINITY,
            (false, false) => worst = worst.max((a - b).abs()),
        }
    }
    worst
}

/// Convenience: audit PrivTree over all shapes up to `max_depth` for a pair
/// of neighboring datasets, returning the max |log ratio|.
pub fn audit_privtree<D: TreeDomain>(
    domain_a: &mut D,
    domain_b: &mut D,
    params: &PrivTreeParams,
    max_depth: usize,
) -> f64 {
    let shapes = enumerate_shapes(domain_a.fanout(), max_depth);
    let lp_a: Vec<f64> = shapes
        .iter()
        .map(|s| privtree_log_prob(domain_a, s, params))
        .collect();
    let lp_b: Vec<f64> = shapes
        .iter()
        .map(|s| privtree_log_prob(domain_b, s, params))
        .collect();
    max_abs_log_ratio(&lp_a, &lp_b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::LineDomain;
    use privtree_dp::budget::Epsilon;

    #[test]
    fn shape_enumeration_counts() {
        // β = 2: f(0) = 1, f(k) = 1 + f(k−1)²  → 1, 2, 5, 26, 677
        assert_eq!(enumerate_shapes(2, 0).len(), 1);
        assert_eq!(enumerate_shapes(2, 1).len(), 2);
        assert_eq!(enumerate_shapes(2, 2).len(), 5);
        assert_eq!(enumerate_shapes(2, 3).len(), 26);
        assert_eq!(enumerate_shapes(2, 4).len(), 677);
        // β = 4: f(1) = 2, f(2) = 17
        assert_eq!(enumerate_shapes(4, 1).len(), 2);
        assert_eq!(enumerate_shapes(4, 2).len(), 17);
    }

    #[test]
    fn shape_stats() {
        let shapes = enumerate_shapes(2, 2);
        let max_nodes = shapes.iter().map(Shape::node_count).max().unwrap();
        assert_eq!(max_nodes, 7); // full binary tree of depth 2
        assert!(shapes.iter().all(|s| s.depth() <= 2));
    }

    /// When the domain cannot split below `max_depth`, the enumerated
    /// shapes cover the whole output space, so probabilities sum to 1.
    #[test]
    fn shape_probabilities_sum_to_one() {
        let pts = vec![0.1, 0.12, 0.3, 0.55, 0.8, 0.81];
        // min_width = 0.2 limits splitting to depth ≤ 2 from width 1
        let mut domain = LineDomain::new(pts).with_min_width(0.2);
        let params = PrivTreeParams::from_epsilon(Epsilon::new(1.0).unwrap(), 2).unwrap();
        let shapes = enumerate_shapes(2, 3); // one beyond the floor
        let total: f64 = shapes
            .iter()
            .map(|s| privtree_log_prob(&mut domain, s, &params))
            .filter(|lp| *lp > f64::NEG_INFINITY)
            .map(f64::exp)
            .sum();
        assert!((total - 1.0).abs() < 1e-9, "total probability = {total}");
    }

    /// The headline: PrivTree's exact privacy loss never exceeds ε, for
    /// every enumerated shape and a spread of single-point insertions.
    #[test]
    fn theorem_3_1_exact_audit() {
        let eps = 0.8;
        let params = PrivTreeParams::from_epsilon(Epsilon::new(eps).unwrap(), 2).unwrap();
        let base = vec![0.05, 0.06, 0.07, 0.3, 0.62, 0.63, 0.9];
        for insert_at in [0.01, 0.06, 0.26, 0.49, 0.51, 0.75, 0.99] {
            let mut d0 = LineDomain::new(base.clone()).with_min_width(0.2);
            let mut with = base.clone();
            with.push(insert_at);
            let mut d1 = LineDomain::new(with).with_min_width(0.2);
            let worst = audit_privtree(&mut d0, &mut d1, &params, 3);
            assert!(
                worst <= eps + 1e-9,
                "insert at {insert_at}: privacy loss {worst} > ε = {eps}"
            );
        }
    }

    /// Tightness: there are neighboring datasets whose privacy loss gets
    /// close to the ε bound (the bound is not vacuously loose).
    #[test]
    fn audit_is_not_vacuous() {
        let eps = 0.8;
        let params = PrivTreeParams::from_epsilon(Epsilon::new(eps).unwrap(), 2).unwrap();
        let mut worst_overall = 0.0f64;
        // a deep stack of points at one location maximizes path length
        let base = vec![0.01; 40];
        let mut d0 = LineDomain::new(base.clone()).with_min_width(0.2);
        let mut with = base;
        with.push(0.01);
        let mut d1 = LineDomain::new(with).with_min_width(0.2);
        worst_overall = worst_overall.max(audit_privtree(&mut d0, &mut d1, &params, 3));
        assert!(
            worst_overall > 0.2 * eps,
            "observed worst loss {worst_overall} suspiciously far below ε"
        );
    }

    /// SimpleTree's worst-case cost formula: with λ = h/ε the cost is ε.
    #[test]
    fn simple_tree_cost_formula() {
        let h = 6u32;
        let eps = 0.4;
        let p = SimpleTreeParams::from_epsilon(Epsilon::new(eps).unwrap(), h, 0.0).unwrap();
        let cost = simple_tree_worst_case_cost(h, p.lambda);
        assert!((cost - eps).abs() < 1e-12);
    }

    /// Structure-only SimpleTree release: audited loss stays below h/λ and
    /// the depth cap makes depth-h shapes impossible.
    #[test]
    fn simple_tree_shape_audit() {
        let params = SimpleTreeParams::from_epsilon(Epsilon::new(1.0).unwrap(), 3, 1.0).unwrap();
        let base = vec![0.01; 10];
        let mut d0 = LineDomain::new(base.clone()).with_min_width(0.0);
        let mut with = base;
        with.push(0.01);
        let mut d1 = LineDomain::new(with).with_min_width(0.0);
        let shapes = enumerate_shapes(2, 3);
        let lp0: Vec<f64> = shapes
            .iter()
            .map(|s| simple_tree_log_prob(&mut d0, s, &params))
            .collect();
        let lp1: Vec<f64> = shapes
            .iter()
            .map(|s| simple_tree_log_prob(&mut d1, s, &params))
            .collect();
        // shapes deeper than h − 1 = 2 are impossible under BOTH datasets
        for (i, s) in shapes.iter().enumerate() {
            if s.depth() > 2 {
                assert_eq!(lp0[i], f64::NEG_INFINITY);
                assert_eq!(lp1[i], f64::NEG_INFINITY);
            }
        }
        let worst = max_abs_log_ratio(&lp0, &lp1);
        let bound = simple_tree_worst_case_cost(params.height, params.lambda);
        assert!(worst <= bound + 1e-9, "worst {worst} > bound {bound}");
        assert!(worst.is_finite());
    }

    #[test]
    fn impossible_vs_possible_shape_is_infinite_ratio() {
        assert_eq!(
            max_abs_log_ratio(&[f64::NEG_INFINITY], &[-1.0]),
            f64::INFINITY
        );
        assert_eq!(
            max_abs_log_ratio(&[f64::NEG_INFINITY], &[f64::NEG_INFINITY]),
            0.0
        );
    }
}
