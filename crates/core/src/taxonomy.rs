//! Categorical-taxonomy decomposition (Section 3.5, extension 1).
//!
//! "Suppose that we are given a multi-dimensional dataset D containing …
//! categorical attributes, and that each categorical attribute has a
//! taxonomy. Then, we can still apply PrivTree on D … by splitting each
//! categorical dimension based on its taxonomy."
//!
//! [`TaxonomyDomain`] decomposes a single categorical attribute along its
//! taxonomy tree; the score of a taxonomy node is the number of tuples
//! whose category falls in its subtree (sensitivity 1, monotone by
//! construction).

use crate::domain::TreeDomain;

/// A taxonomy: a rooted tree of named categories. Leaves are the concrete
/// category values tuples can take.
#[derive(Debug, Clone)]
pub struct Taxonomy {
    names: Vec<String>,
    children: Vec<Vec<usize>>,
    parent: Vec<Option<usize>>,
}

impl Taxonomy {
    /// A taxonomy containing only a root category.
    pub fn new(root_name: &str) -> Self {
        Self {
            names: vec![root_name.to_string()],
            children: vec![Vec::new()],
            parent: vec![None],
        }
    }

    /// The root node id (always 0).
    pub fn root(&self) -> usize {
        0
    }

    /// Add a child category under `parent`, returning its id.
    pub fn add_child(&mut self, parent: usize, name: &str) -> usize {
        assert!(parent < self.names.len(), "no such parent");
        let id = self.names.len();
        self.names.push(name.to_string());
        self.children.push(Vec::new());
        self.parent.push(Some(parent));
        self.children[parent].push(id);
        id
    }

    /// Name of a node.
    pub fn name(&self, id: usize) -> &str {
        &self.names[id]
    }

    /// Child ids of a node.
    pub fn children(&self, id: usize) -> &[usize] {
        &self.children[id]
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` if only the root exists.
    pub fn is_empty(&self) -> bool {
        self.names.len() <= 1
    }

    /// `true` iff `id` has no children (a concrete category).
    pub fn is_leaf(&self, id: usize) -> bool {
        self.children[id].is_empty()
    }

    /// Ids of all leaves.
    pub fn leaves(&self) -> Vec<usize> {
        (0..self.len()).filter(|i| self.is_leaf(*i)).collect()
    }

    /// Maximum number of children over all nodes.
    pub fn max_fanout(&self) -> usize {
        self.children.iter().map(Vec::len).max().unwrap_or(0)
    }
}

/// A [`TreeDomain`] over a taxonomy: each dataset tuple is a leaf-category
/// id, the score of a node is the number of tuples in its subtree.
#[derive(Debug, Clone)]
pub struct TaxonomyDomain {
    taxonomy: Taxonomy,
    /// subtree tuple count per taxonomy node
    subtree_counts: Vec<u64>,
}

impl TaxonomyDomain {
    /// Build from a taxonomy and the leaf-category of every tuple.
    ///
    /// Panics if a tuple references a non-leaf or out-of-range category.
    pub fn new(taxonomy: Taxonomy, tuples: &[usize]) -> Self {
        let mut counts = vec![0u64; taxonomy.len()];
        for &t in tuples {
            assert!(
                t < taxonomy.len() && taxonomy.is_leaf(t),
                "tuple category {t} invalid"
            );
            counts[t] += 1;
        }
        // accumulate leaf counts upward; children always have larger ids
        // than parents (add_child appends), so a reverse scan works
        for id in (1..taxonomy.len()).rev() {
            if let Some(p) = taxonomy.parent[id] {
                counts[p] += counts[id];
            }
        }
        Self {
            taxonomy,
            subtree_counts: counts,
        }
    }

    /// The underlying taxonomy.
    pub fn taxonomy(&self) -> &Taxonomy {
        &self.taxonomy
    }
}

impl TreeDomain for TaxonomyDomain {
    type Node = usize;

    fn root(&self) -> usize {
        self.taxonomy.root()
    }

    fn fanout(&self) -> usize {
        self.taxonomy.max_fanout().max(2)
    }

    fn split(&mut self, node: &usize) -> Option<Vec<usize>> {
        let kids = self.taxonomy.children(*node);
        if kids.is_empty() {
            None
        } else {
            Some(kids.to_vec())
        }
    }

    fn score(&self, node: &usize) -> f64 {
        self.subtree_counts[*node] as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::PrivTreeParams;
    use crate::privtree::build_privtree;
    use privtree_dp::budget::Epsilon;
    use privtree_dp::rng::seeded;

    /// A small product taxonomy: goods → {food → {fruit, dairy}, tech}.
    fn product_taxonomy() -> (Taxonomy, usize, usize, usize) {
        let mut t = Taxonomy::new("goods");
        let food = t.add_child(0, "food");
        let fruit = t.add_child(food, "fruit");
        let dairy = t.add_child(food, "dairy");
        let tech = t.add_child(0, "tech");
        (t, fruit, dairy, tech)
    }

    #[test]
    fn subtree_counts_accumulate() {
        let (t, fruit, dairy, tech) = product_taxonomy();
        let tuples: Vec<usize> = std::iter::repeat_n(fruit, 5)
            .chain(std::iter::repeat_n(dairy, 3))
            .chain(std::iter::repeat_n(tech, 2))
            .collect();
        let d = TaxonomyDomain::new(t, &tuples);
        assert_eq!(d.score(&0), 10.0); // root
        assert_eq!(d.score(&1), 8.0); // food
        assert_eq!(d.score(&fruit), 5.0);
        assert_eq!(d.score(&tech), 2.0);
    }

    #[test]
    fn monotone_score() {
        let (t, fruit, ..) = product_taxonomy();
        let mut d = TaxonomyDomain::new(t, &[fruit; 7]);
        // every child scores no more than its parent
        for id in 0..d.taxonomy().len() {
            if let Some(kids) = d.split(&id) {
                for k in kids {
                    assert!(d.score(&k) <= d.score(&id));
                }
            }
        }
    }

    #[test]
    fn leaves_cannot_split() {
        let (t, fruit, ..) = product_taxonomy();
        let mut d = TaxonomyDomain::new(t, &[fruit]);
        assert!(d.split(&fruit).is_none());
    }

    #[test]
    fn privtree_over_taxonomy_runs() {
        let (t, fruit, dairy, tech) = product_taxonomy();
        let tuples: Vec<usize> = std::iter::repeat_n(fruit, 500)
            .chain(std::iter::repeat_n(dairy, 10))
            .chain(std::iter::repeat_n(tech, 5))
            .collect();
        let mut d = TaxonomyDomain::new(t, &tuples);
        let params = PrivTreeParams::from_epsilon(Epsilon::new(1.0).unwrap(), d.fanout()).unwrap();
        let tree = build_privtree(&mut d, &params, &mut seeded(8)).unwrap();
        // the dense "food" branch should be expanded with high probability
        assert!(tree.len() >= 3, "tree len = {}", tree.len());
        assert!(tree.max_depth() <= 2);
    }

    #[test]
    #[should_panic(expected = "invalid")]
    fn rejects_non_leaf_tuples() {
        let (t, ..) = product_taxonomy();
        TaxonomyDomain::new(t, &[0]); // root is not a leaf category
    }
}
