//! SimpleTree — Algorithm 1 of the paper (the generic private quadtree
//! approach of Cormode et al. \[12\] and successors).
//!
//! Each visited node receives a noisy count `ĉ(v) = c(v) + Lap(λ)`; the
//! node is split iff `ĉ(v) > θ` **and** `depth(v) < h − 1`. Releasing all
//! noisy counts of a height-h tree has sensitivity h, so ε-DP requires
//! `λ ≥ h/ε` — the dilemma PrivTree removes.
//!
//! Like [`crate::privtree`], construction is level-synchronous: all noisy
//! counts of a frontier level are drawn in one sequential pass (arena
//! order, bit-identical to the node-at-a-time loop) and the surviving
//! nodes are split as one batch.

use std::collections::VecDeque;

use privtree_dp::laplace::Laplace;
use rand::Rng;

use crate::domain::TreeDomain;
use crate::params::SimpleTreeParams;
use crate::tree::{NodeId, Tree};
use crate::{CoreError, Result};

/// Output of Algorithm 1: the decomposition plus the noisy count attached
/// to every node (indexed by [`crate::tree::NodeId`] arena order).
#[derive(Debug, Clone)]
pub struct SimpleTreeOutput<N> {
    /// The decomposition tree.
    pub tree: Tree<N>,
    /// `ĉ(v)` for every node, in arena order. Unlike PrivTree, these are
    /// part of the released output (they already paid for their privacy via
    /// the h/ε noise scale).
    pub noisy_counts: Vec<f64>,
}

/// Run SimpleTree over `domain`, one frontier level at a time.
pub fn build_simple_tree<D: TreeDomain, R: Rng + ?Sized>(
    domain: &mut D,
    params: &SimpleTreeParams,
    rng: &mut R,
) -> Result<SimpleTreeOutput<D::Node>> {
    if params.height == 0 {
        return Err(CoreError::BadParams("height must be at least 1".into()));
    }
    let noise =
        Laplace::centered(params.lambda).map_err(|e| CoreError::BadParams(e.to_string()))?;

    let mut tree = Tree::with_root(domain.root());
    let mut noisy_counts = Vec::new();
    let mut frontier = vec![tree.root()];
    let mut survivors: Vec<NodeId> = Vec::new();

    while !frontier.is_empty() {
        // raw counts for the whole level as one noise-free batch, then the
        // noisy counts in one sequential arena-order pass
        let payloads: Vec<&D::Node> = frontier.iter().map(|&v| tree.payload(v)).collect();
        let raw_scores = domain.score_frontier(&payloads);
        debug_assert_eq!(raw_scores.len(), frontier.len());
        survivors.clear();
        for (&v, c) in frontier.iter().zip(raw_scores) {
            let c_hat = c + noise.sample(rng);
            debug_assert_eq!(noisy_counts.len(), v.index());
            noisy_counts.push(c_hat);
            // split only while the height budget allows
            if c_hat > params.theta && tree.depth(v) < params.height - 1 {
                survivors.push(v);
            }
        }
        let payloads: Vec<&D::Node> = survivors.iter().map(|&v| tree.payload(v)).collect();
        let splits = domain.split_frontier(&payloads);

        frontier.clear();
        for (&v, children) in survivors.iter().zip(splits) {
            if let Some(children) = children {
                if tree.len() + children.len() > params.node_limit {
                    return Err(CoreError::TreeTooLarge {
                        limit: params.node_limit,
                    });
                }
                frontier.extend(tree.add_children(v, children));
            }
        }
    }
    Ok(SimpleTreeOutput { tree, noisy_counts })
}

/// The node-at-a-time reference implementation of Algorithm 1, kept as
/// the oracle [`build_simple_tree`] is tested against.
pub fn build_simple_tree_sequential<D: TreeDomain, R: Rng + ?Sized>(
    domain: &mut D,
    params: &SimpleTreeParams,
    rng: &mut R,
) -> Result<SimpleTreeOutput<D::Node>> {
    if params.height == 0 {
        return Err(CoreError::BadParams("height must be at least 1".into()));
    }
    let noise =
        Laplace::centered(params.lambda).map_err(|e| CoreError::BadParams(e.to_string()))?;

    let mut tree = Tree::with_root(domain.root());
    let mut noisy_counts = Vec::new();
    let mut queue = VecDeque::new();
    queue.push_back(tree.root());

    while let Some(v) = queue.pop_front() {
        let c = domain.score(tree.payload(v));
        let c_hat = c + noise.sample(rng);
        debug_assert_eq!(noisy_counts.len(), v.index());
        noisy_counts.push(c_hat);
        if c_hat > params.theta && tree.depth(v) < params.height - 1 {
            if let Some(children) = domain.split(tree.payload(v)) {
                if tree.len() + children.len() > params.node_limit {
                    return Err(CoreError::TreeTooLarge {
                        limit: params.node_limit,
                    });
                }
                for child in tree.add_children(v, children) {
                    queue.push_back(child);
                }
            }
        }
    }
    Ok(SimpleTreeOutput { tree, noisy_counts })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::LineDomain;
    use crate::params::SimpleTreeParams;
    use privtree_dp::budget::Epsilon;
    use privtree_dp::rng::seeded;

    fn clustered_points(n: usize) -> Vec<f64> {
        (0..n).map(|i| (i as f64) / (n as f64) / 64.0).collect()
    }

    #[test]
    fn height_is_hard_capped() {
        let mut domain = LineDomain::new(clustered_points(1_000_000));
        for h in [1u32, 2, 4, 6] {
            let params =
                SimpleTreeParams::from_epsilon(Epsilon::new(10.0).unwrap(), h, 0.0).unwrap();
            let out = build_simple_tree(&mut domain, &params, &mut seeded(2)).unwrap();
            assert!(
                out.tree.max_depth() < h,
                "h = {h}, depth = {}",
                out.tree.max_depth()
            );
        }
    }

    #[test]
    fn every_node_has_a_noisy_count() {
        let mut domain = LineDomain::new(clustered_points(5000));
        let params = SimpleTreeParams::from_epsilon(Epsilon::new(1.0).unwrap(), 5, 0.0).unwrap();
        let out = build_simple_tree(&mut domain, &params, &mut seeded(9)).unwrap();
        assert_eq!(out.noisy_counts.len(), out.tree.len());
    }

    #[test]
    fn noise_grows_with_height() {
        // the core dilemma: λ = h/ε, so deep trees get noisy counts
        let e = Epsilon::new(1.0).unwrap();
        let p3 = SimpleTreeParams::from_epsilon(e, 3, 0.0).unwrap();
        let p12 = SimpleTreeParams::from_epsilon(e, 12, 0.0).unwrap();
        assert!((p3.lambda - 3.0).abs() < 1e-12);
        assert!((p12.lambda - 12.0).abs() < 1e-12);
    }

    #[test]
    fn cannot_resolve_fine_clusters_with_small_height() {
        // With h = 4 the tree can only reach width 1/8 intervals; the
        // cluster in [0, 1/64) is never isolated.
        let mut domain = LineDomain::new(clustered_points(100_000));
        let params = SimpleTreeParams::from_epsilon(Epsilon::new(1.0).unwrap(), 4, 0.0).unwrap();
        let out = build_simple_tree(&mut domain, &params, &mut seeded(21)).unwrap();
        assert!(out.tree.max_depth() <= 3);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut domain = LineDomain::new(clustered_points(500));
        let params = SimpleTreeParams::from_epsilon(Epsilon::new(1.0).unwrap(), 6, 0.0).unwrap();
        let a = build_simple_tree(&mut domain, &params, &mut seeded(4)).unwrap();
        let b = build_simple_tree(&mut domain, &params, &mut seeded(4)).unwrap();
        assert_eq!(a.tree.len(), b.tree.len());
        assert_eq!(a.noisy_counts, b.noisy_counts);
    }

    /// Frontier and node-at-a-time builders agree bit for bit, including
    /// the released noisy counts.
    #[test]
    fn frontier_matches_sequential_bit_for_bit() {
        for seed in 0..25 {
            let mut d1 = LineDomain::new(clustered_points(2000));
            let mut d2 = d1.clone();
            let params =
                SimpleTreeParams::from_epsilon(Epsilon::new(1.0).unwrap(), 7, 0.0).unwrap();
            let a = build_simple_tree(&mut d1, &params, &mut seeded(seed)).unwrap();
            let b = build_simple_tree_sequential(&mut d2, &params, &mut seeded(seed)).unwrap();
            assert_eq!(a.tree.len(), b.tree.len(), "seed {seed}");
            assert_eq!(a.noisy_counts, b.noisy_counts, "seed {seed}");
            assert_eq!(
                a.tree.depth_histogram(),
                b.tree.depth_histogram(),
                "seed {seed}"
            );
        }
    }
}
