//! Parameterization of the decomposition algorithms.
//!
//! PrivTree's parameters follow Theorem 3.1 / Corollary 1; SimpleTree's
//! follow the Section 3.1 analysis (λ ≥ h/ε for a height-h tree).

use privtree_dp::budget::Epsilon;
use privtree_dp::rho::{delta_for_fanout, privtree_scale_for_fanout, privtree_scale_for_gamma};

use crate::{CoreError, Result};

/// Default cap on tree size; Lemma 3.2 keeps real trees far below this, so
/// hitting the cap means parameters are inconsistent with the theory.
pub const DEFAULT_NODE_LIMIT: usize = 1 << 24;

/// Parameters for PrivTree (Algorithm 2).
#[derive(Debug, Clone, Copy)]
pub struct PrivTreeParams {
    /// Laplace noise scale λ.
    pub lambda: f64,
    /// Decaying factor δ subtracted per level of depth.
    pub delta: f64,
    /// Split threshold θ (Section 3.4 recommends 0).
    pub theta: f64,
    /// Safety cap on the number of nodes.
    pub node_limit: usize,
}

impl PrivTreeParams {
    /// Corollary 1 parameterization for a β-ary tree and sensitivity-1
    /// scores: `λ = (2β−1)/(β−1)·1/ε`, `δ = λ·ln β`, `θ = 0`.
    pub fn from_epsilon(epsilon: Epsilon, fanout: usize) -> Result<Self> {
        Self::from_epsilon_with_sensitivity(epsilon, fanout, 1.0)
    }

    /// Same, but for a score function whose sensitivity to one tuple
    /// insertion is `sensitivity` (Theorem 4.1 uses `l⊤`; Section 3.5 item
    /// 3 uses the number `x` of affected leaves). The noise scale is
    /// enlarged `sensitivity` times.
    pub fn from_epsilon_with_sensitivity(
        epsilon: Epsilon,
        fanout: usize,
        sensitivity: f64,
    ) -> Result<Self> {
        if fanout < 2 {
            return Err(CoreError::BadParams(format!(
                "fanout must be at least 2, got {fanout}"
            )));
        }
        if !(sensitivity.is_finite() && sensitivity > 0.0) {
            return Err(CoreError::BadParams(format!(
                "sensitivity must be positive, got {sensitivity}"
            )));
        }
        let lambda = privtree_scale_for_fanout(epsilon.get(), fanout) * sensitivity;
        Ok(Self {
            lambda,
            delta: delta_for_fanout(lambda, fanout),
            theta: 0.0,
            node_limit: DEFAULT_NODE_LIMIT,
        })
    }

    /// Theorem 3.1 parameterization with an explicit decay ratio γ = δ/λ
    /// (mostly for ablations; Corollary 1's γ = ln β is the recommended
    /// choice because it also yields the Lemma 3.2 size bound).
    pub fn from_epsilon_with_gamma(epsilon: Epsilon, gamma: f64) -> Result<Self> {
        if !(gamma.is_finite() && gamma > 0.0) {
            return Err(CoreError::BadParams(format!(
                "gamma must be positive: {gamma}"
            )));
        }
        let lambda = privtree_scale_for_gamma(epsilon.get(), gamma);
        Ok(Self {
            lambda,
            delta: gamma * lambda,
            theta: 0.0,
            node_limit: DEFAULT_NODE_LIMIT,
        })
    }

    /// Override the split threshold θ.
    pub fn with_theta(mut self, theta: f64) -> Self {
        self.theta = theta;
        self
    }

    /// Override the node-count safety cap.
    pub fn with_node_limit(mut self, limit: usize) -> Self {
        self.node_limit = limit;
        self
    }

    /// The biased count of Eq. (8): `b(v) = max(θ − δ, c(v) − depth·δ)`.
    #[inline]
    pub fn biased_score(&self, raw: f64, depth: u32) -> f64 {
        (raw - depth as f64 * self.delta).max(self.theta - self.delta)
    }

    /// The ε this parameterization guarantees (inverse of Theorem 3.1).
    pub fn epsilon(&self) -> f64 {
        let gamma = self.delta / self.lambda;
        let eg = gamma.exp();
        (2.0 * eg - 1.0) / (eg - 1.0) / self.lambda
    }

    fn validate(&self) -> Result<()> {
        if !(self.lambda.is_finite() && self.lambda > 0.0) {
            return Err(CoreError::BadParams(format!("lambda = {}", self.lambda)));
        }
        if !(self.delta.is_finite() && self.delta > 0.0) {
            return Err(CoreError::BadParams(format!("delta = {}", self.delta)));
        }
        if !self.theta.is_finite() {
            return Err(CoreError::BadParams(format!("theta = {}", self.theta)));
        }
        Ok(())
    }

    /// Validate fields set by hand.
    pub fn checked(self) -> Result<Self> {
        self.validate()?;
        Ok(self)
    }
}

/// Parameters for SimpleTree (Algorithm 1).
#[derive(Debug, Clone, Copy)]
pub struct SimpleTreeParams {
    /// Laplace noise scale λ (must be ≥ h/ε for ε-DP).
    pub lambda: f64,
    /// Split threshold θ.
    pub theta: f64,
    /// Maximum tree height h (number of levels; a lone root is height 1).
    /// Nodes at depth `h − 1` are never split.
    pub height: u32,
    /// Safety cap on the number of nodes.
    pub node_limit: usize,
}

impl SimpleTreeParams {
    /// The Section 3.1 calibration: λ = h/ε for a height-h tree, with a
    /// caller-chosen threshold θ.
    pub fn from_epsilon(epsilon: Epsilon, height: u32, theta: f64) -> Result<Self> {
        Self::from_epsilon_with_sensitivity(epsilon, height, theta, 1.0)
    }

    /// λ = h·sensitivity/ε, for score functions with non-unit sensitivity.
    pub fn from_epsilon_with_sensitivity(
        epsilon: Epsilon,
        height: u32,
        theta: f64,
        sensitivity: f64,
    ) -> Result<Self> {
        if height == 0 {
            return Err(CoreError::BadParams("height must be at least 1".into()));
        }
        if !(sensitivity.is_finite() && sensitivity > 0.0) {
            return Err(CoreError::BadParams(format!(
                "sensitivity must be positive, got {sensitivity}"
            )));
        }
        Ok(Self {
            lambda: height as f64 * sensitivity / epsilon.get(),
            theta,
            height,
            node_limit: DEFAULT_NODE_LIMIT,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corollary_1_values() {
        let p = PrivTreeParams::from_epsilon(Epsilon::new(1.0).unwrap(), 4).unwrap();
        assert!((p.lambda - 7.0 / 3.0).abs() < 1e-12);
        assert!((p.delta - p.lambda * 4.0f64.ln()).abs() < 1e-12);
        assert_eq!(p.theta, 0.0);
        // round trip: the params certify the ε they were built from
        assert!((p.epsilon() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sensitivity_scales_lambda() {
        let e = Epsilon::new(0.5).unwrap();
        let base = PrivTreeParams::from_epsilon(e, 8).unwrap();
        let scaled = PrivTreeParams::from_epsilon_with_sensitivity(e, 8, 20.0).unwrap();
        assert!((scaled.lambda - 20.0 * base.lambda).abs() < 1e-9);
        // δ keeps the same γ = ln β ratio
        assert!((scaled.delta / scaled.lambda - base.delta / base.lambda).abs() < 1e-12);
    }

    #[test]
    fn biased_score_floor() {
        let p = PrivTreeParams {
            lambda: 1.0,
            delta: 2.0,
            theta: 0.0,
            node_limit: 1000,
        };
        // c − depth·δ above the floor
        assert_eq!(p.biased_score(10.0, 2), 6.0);
        // floor at θ − δ
        assert_eq!(p.biased_score(0.0, 3), -2.0);
        assert_eq!(p.biased_score(-100.0, 0), -2.0);
    }

    #[test]
    fn rejects_bad_params() {
        let e = Epsilon::new(1.0).unwrap();
        assert!(PrivTreeParams::from_epsilon(e, 1).is_err());
        assert!(PrivTreeParams::from_epsilon_with_sensitivity(e, 4, 0.0).is_err());
        assert!(PrivTreeParams::from_epsilon_with_gamma(e, -1.0).is_err());
        assert!(SimpleTreeParams::from_epsilon(e, 0, 0.0).is_err());
        let bad = PrivTreeParams {
            lambda: -1.0,
            delta: 1.0,
            theta: 0.0,
            node_limit: 10,
        };
        assert!(bad.checked().is_err());
    }

    #[test]
    fn simple_tree_lambda_is_h_over_eps() {
        let p = SimpleTreeParams::from_epsilon(Epsilon::new(0.5).unwrap(), 6, 25.0).unwrap();
        assert!((p.lambda - 12.0).abs() < 1e-12);
        assert_eq!(p.height, 6);
    }
}
