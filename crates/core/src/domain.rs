//! The [`TreeDomain`] abstraction.
//!
//! Section 3.5 of the paper observes that PrivTree needs only two things
//! from its input: (i) a tree-structured way to split a domain into
//! sub-domains, and (ii) a *monotone* score function over sub-domains
//! (`score(child) ≤ score(parent)`), whose sensitivity to one tuple
//! insertion is bounded. Quadtrees with point counts (Section 3) and
//! prediction suffix trees with the Eq. (13) score (Section 4) are the two
//! instantiations shipped in this workspace; [`crate::taxonomy`] adds a
//! third.
//!
//! Splitting takes `&mut self`: domains that reorder shared scratch state
//! (the point permutation of the quadtree, the occurrence array of the
//! PST) mutate it directly instead of hiding it behind a `RefCell`, which
//! keeps every domain `Send` and lets [`TreeDomain::split_frontier`]
//! process a whole frontier level as one batch.

/// A domain that PrivTree (or SimpleTree) can decompose.
pub trait TreeDomain {
    /// Per-node payload: identifies a sub-domain and whatever bookkeeping
    /// the implementation needs to score and split it quickly (e.g. the
    /// indices of the data points it contains).
    type Node;

    /// The node covering the whole domain Ω.
    fn root(&self) -> Self::Node;

    /// The fanout β of the decomposition tree (number of children per
    /// split). For trees with variable fanout return the maximum; it is
    /// used only for parameter calibration.
    fn fanout(&self) -> usize;

    /// Split `node` into its children, or `None` if this node cannot be
    /// split (e.g. a PST node whose predictor string starts with `$`
    /// (condition C1), or a region at the resolution floor).
    ///
    /// Must be idempotent: splitting the same node twice yields the same
    /// children (the exact audits re-split nodes while enumerating
    /// shapes).
    fn split(&mut self, node: &Self::Node) -> Option<Vec<Self::Node>>;

    /// The raw score `c(v)` used in the split decision. Must be monotone
    /// along root-to-leaf paths and must change by at most the configured
    /// sensitivity when one tuple is inserted into the dataset.
    fn score(&self, node: &Self::Node) -> f64;

    /// Split every node of a frontier level as one batch, returning one
    /// entry per input in order. The default loops [`TreeDomain::split`];
    /// domains whose nodes own disjoint scratch segments override this to
    /// partition the batch (and, with the default `parallel` feature of
    /// `privtree-spatial`, fan the work out across the persistent
    /// `privtree-runtime` worker pool).
    fn split_frontier(&mut self, nodes: &[&Self::Node]) -> Vec<Option<Vec<Self::Node>>> {
        nodes.iter().map(|n| self.split(n)).collect()
    }

    /// Raw scores `c(v)` for a whole frontier level, one per input in
    /// order. This pass is noise-free: the builders call it *before*
    /// drawing any Laplace noise, so `Sync` domains with expensive scores
    /// (the PST's Eq. (13) histogram scans) override it to fan the reads
    /// out across the worker pool — results are collected in input order,
    /// so the level is bit-identical to the sequential loop, and the
    /// noise draws that follow stay a sequential arena-order pass.
    fn score_frontier(&self, nodes: &[&Self::Node]) -> Vec<f64> {
        nodes.iter().map(|n| self.score(n)).collect()
    }
}

/// Blanket access through mutable references, so builders can take
/// `&mut D` and callers can keep the domain afterwards.
impl<D: TreeDomain> TreeDomain for &mut D {
    type Node = D::Node;

    fn root(&self) -> Self::Node {
        (**self).root()
    }

    fn fanout(&self) -> usize {
        (**self).fanout()
    }

    fn split(&mut self, node: &Self::Node) -> Option<Vec<Self::Node>> {
        (**self).split(node)
    }

    fn score(&self, node: &Self::Node) -> f64 {
        (**self).score(node)
    }

    fn split_frontier(&mut self, nodes: &[&Self::Node]) -> Vec<Option<Vec<Self::Node>>> {
        (**self).split_frontier(nodes)
    }

    fn score_frontier(&self, nodes: &[&Self::Node]) -> Vec<f64> {
        (**self).score_frontier(nodes)
    }
}

/// A minimal 1-d test domain: points on the unit interval, regions are
/// dyadic sub-intervals, score is the point count, fanout 2.
///
/// Used by this crate's tests, the exact privacy audits, and the doc
/// examples; real applications live in `privtree-spatial` and
/// `privtree-markov`.
#[derive(Debug, Clone)]
pub struct LineDomain {
    points: Vec<f64>,
    /// Intervals narrower than this cannot be split (keeps enumeration
    /// finite in audits; `0.0` means unbounded depth).
    pub min_width: f64,
}

/// A dyadic interval `[lo, hi)` within [`LineDomain`].
#[derive(Debug, Clone, PartialEq)]
pub struct LineNode {
    /// Inclusive lower edge.
    pub lo: f64,
    /// Exclusive upper edge.
    pub hi: f64,
}

impl LineDomain {
    /// Build from points, which must lie in `[0, 1)`.
    pub fn new(points: Vec<f64>) -> Self {
        assert!(
            points.iter().all(|p| (0.0..1.0).contains(p)),
            "points must lie in [0,1)"
        );
        Self {
            points,
            min_width: 0.0,
        }
    }

    /// Restrict splitting to intervals of at least `min_width`.
    pub fn with_min_width(mut self, min_width: f64) -> Self {
        self.min_width = min_width;
        self
    }

    /// Exact number of points in `[lo, hi)`.
    pub fn count(&self, lo: f64, hi: f64) -> usize {
        self.points.iter().filter(|p| **p >= lo && **p < hi).count()
    }
}

impl TreeDomain for LineDomain {
    type Node = LineNode;

    fn root(&self) -> LineNode {
        LineNode { lo: 0.0, hi: 1.0 }
    }

    fn fanout(&self) -> usize {
        2
    }

    fn split(&mut self, node: &LineNode) -> Option<Vec<LineNode>> {
        let width = node.hi - node.lo;
        if width / 2.0 < self.min_width {
            return None;
        }
        let mid = 0.5 * (node.lo + node.hi);
        Some(vec![
            LineNode {
                lo: node.lo,
                hi: mid,
            },
            LineNode {
                lo: mid,
                hi: node.hi,
            },
        ])
    }

    fn score(&self, node: &LineNode) -> f64 {
        self.count(node.lo, node.hi) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_domain_counts() {
        let d = LineDomain::new(vec![0.1, 0.2, 0.6, 0.61]);
        assert_eq!(d.count(0.0, 0.5), 2);
        assert_eq!(d.count(0.5, 1.0), 2);
        assert_eq!(d.count(0.6, 0.62), 2);
        let root = d.root();
        assert_eq!(d.score(&root), 4.0);
    }

    #[test]
    fn split_bisects() {
        let mut d = LineDomain::new(vec![]);
        let kids = d.split(&d.root()).unwrap();
        assert_eq!(kids.len(), 2);
        assert_eq!(kids[0], LineNode { lo: 0.0, hi: 0.5 });
        assert_eq!(kids[1], LineNode { lo: 0.5, hi: 1.0 });
    }

    #[test]
    fn min_width_stops_splitting() {
        let mut d = LineDomain::new(vec![]).with_min_width(0.25);
        let kids = d.split(&d.root()).unwrap();
        let grandkids = d.split(&kids[0]).unwrap();
        assert!(d.split(&grandkids[0]).is_none());
    }

    #[test]
    fn score_is_monotone_under_split() {
        let pts: Vec<f64> = (0..100).map(|i| (i as f64) / 101.0).collect();
        let mut d = LineDomain::new(pts);
        let root = d.root();
        let kids = d.split(&root).unwrap();
        for k in &kids {
            assert!(d.score(k) <= d.score(&root));
        }
        // counts of children partition the parent's count
        let total: f64 = kids.iter().map(|k| d.score(k)).sum();
        assert_eq!(total, d.score(&root));
    }

    #[test]
    #[should_panic(expected = "points must lie in")]
    fn rejects_out_of_range_points() {
        LineDomain::new(vec![1.5]);
    }
}
