//! The noise-free decomposition `T*` of Lemma 3.2: split a node iff its raw
//! score exceeds θ. Used as the reference in the `E[|T|] ≤ 2|T*|` size
//! bound, as ground truth in tests, and to seed the `Truncate`-style
//! non-private baselines in the experiments.

use crate::domain::TreeDomain;
use crate::tree::{NodeId, Tree};

/// Build the deterministic tree that splits every node with
/// `score(v) > theta`, optionally capping the depth. Like the private
/// builders this proceeds level-synchronously, splitting each frontier as
/// one [`TreeDomain::split_frontier`] batch.
pub fn nonprivate_tree<D: TreeDomain>(
    domain: &mut D,
    theta: f64,
    max_depth: Option<u32>,
) -> Tree<D::Node> {
    let mut tree = Tree::with_root(domain.root());
    let mut frontier = vec![tree.root()];
    let mut survivors: Vec<NodeId> = Vec::new();
    while !frontier.is_empty() {
        survivors.clear();
        for &v in &frontier {
            if let Some(cap) = max_depth {
                if tree.depth(v) >= cap {
                    continue;
                }
            }
            if domain.score(tree.payload(v)) > theta {
                survivors.push(v);
            }
        }
        let payloads: Vec<&D::Node> = survivors.iter().map(|&v| tree.payload(v)).collect();
        let splits = domain.split_frontier(&payloads);
        frontier.clear();
        for (&v, children) in survivors.iter().zip(splits) {
            if let Some(children) = children {
                frontier.extend(tree.add_children(v, children));
            }
        }
    }
    tree
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::LineDomain;

    #[test]
    fn splits_exactly_above_threshold() {
        // 10 points in the left half, 3 in the right; θ = 5
        let mut pts = vec![0.01, 0.06, 0.11, 0.16, 0.21, 0.26, 0.31, 0.36, 0.41, 0.46];
        pts.extend([0.6, 0.7, 0.8]);
        let mut domain = LineDomain::new(pts).with_min_width(0.2);
        let tree = nonprivate_tree(&mut domain, 5.0, None);
        let root_children: Vec<_> = tree.children(tree.root()).collect();
        assert_eq!(root_children.len(), 2, "root has 13 > 5 points, splits");
        // left child has 10 > 5 points and splits; right has 3 ≤ 5, leaf
        assert!(!tree.is_leaf(root_children[0]));
        assert!(tree.is_leaf(root_children[1]));
    }

    #[test]
    fn depth_cap_respected() {
        let pts: Vec<f64> = (0..1000).map(|i| i as f64 / 1000.0 / 128.0).collect();
        let mut domain = LineDomain::new(pts);
        let tree = nonprivate_tree(&mut domain, 0.5, Some(3));
        assert!(tree.max_depth() <= 3);
    }

    #[test]
    fn empty_data_is_single_node() {
        let mut domain = LineDomain::new(vec![]);
        let tree = nonprivate_tree(&mut domain, 0.0, None);
        assert_eq!(tree.len(), 1);
    }

    #[test]
    fn zero_threshold_splits_until_empty_or_floor() {
        let mut domain = LineDomain::new(vec![0.3]).with_min_width(0.2);
        let tree = nonprivate_tree(&mut domain, 0.0, None);
        // every leaf either holds no points or is at the resolution floor
        for leaf in tree.leaf_ids() {
            let node = tree.payload(leaf);
            let width = node.hi - node.lo;
            let c = domain.count(node.lo, node.hi);
            assert!(
                c == 0 || width / 2.0 < 0.2,
                "leaf with c={c}, width={width}"
            );
        }
    }
}
