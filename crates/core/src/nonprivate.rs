//! The noise-free decomposition `T*` of Lemma 3.2: split a node iff its raw
//! score exceeds θ. Used as the reference in the `E[|T|] ≤ 2|T*|` size
//! bound, as ground truth in tests, and to seed the `Truncate`-style
//! non-private baselines in the experiments.

use std::collections::VecDeque;

use crate::domain::TreeDomain;
use crate::tree::Tree;

/// Build the deterministic tree that splits every node with
/// `score(v) > theta`, optionally capping the depth.
pub fn nonprivate_tree<D: TreeDomain>(
    domain: &D,
    theta: f64,
    max_depth: Option<u32>,
) -> Tree<D::Node> {
    let mut tree = Tree::with_root(domain.root());
    let mut queue = VecDeque::new();
    queue.push_back(tree.root());
    while let Some(v) = queue.pop_front() {
        if let Some(cap) = max_depth {
            if tree.depth(v) >= cap {
                continue;
            }
        }
        if domain.score(tree.payload(v)) > theta {
            if let Some(children) = domain.split(tree.payload(v)) {
                for child in tree.add_children(v, children) {
                    queue.push_back(child);
                }
            }
        }
    }
    tree
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::LineDomain;

    #[test]
    fn splits_exactly_above_threshold() {
        // 10 points in the left half, 3 in the right; θ = 5
        let mut pts = vec![0.01, 0.06, 0.11, 0.16, 0.21, 0.26, 0.31, 0.36, 0.41, 0.46];
        pts.extend([0.6, 0.7, 0.8]);
        let domain = LineDomain::new(pts).with_min_width(0.2);
        let tree = nonprivate_tree(&domain, 5.0, None);
        let root_children: Vec<_> = tree.children(tree.root()).collect();
        assert_eq!(root_children.len(), 2, "root has 13 > 5 points, splits");
        // left child has 10 > 5 points and splits; right has 3 ≤ 5, leaf
        assert!(!tree.is_leaf(root_children[0]));
        assert!(tree.is_leaf(root_children[1]));
    }

    #[test]
    fn depth_cap_respected() {
        let pts: Vec<f64> = (0..1000).map(|i| i as f64 / 1000.0 / 128.0).collect();
        let domain = LineDomain::new(pts);
        let tree = nonprivate_tree(&domain, 0.5, Some(3));
        assert!(tree.max_depth() <= 3);
    }

    #[test]
    fn empty_data_is_single_node() {
        let domain = LineDomain::new(vec![]);
        let tree = nonprivate_tree(&domain, 0.0, None);
        assert_eq!(tree.len(), 1);
    }

    #[test]
    fn zero_threshold_splits_until_empty_or_floor() {
        let domain = LineDomain::new(vec![0.3]).with_min_width(0.2);
        let tree = nonprivate_tree(&domain, 0.0, None);
        // every leaf either holds no points or is at the resolution floor
        for leaf in tree.leaf_ids() {
            let node = tree.payload(leaf);
            let width = node.hi - node.lo;
            let c = domain.count(node.lo, node.hi);
            assert!(c == 0 || width / 2.0 < 0.2, "leaf with c={c}, width={width}");
        }
    }
}
