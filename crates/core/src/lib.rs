//! The paper's primary contribution: differentially private hierarchical
//! decompositions without a pre-defined recursion-depth limit.
//!
//! * [`tree`] — arena-backed decomposition trees.
//! * [`domain`] — the [`TreeDomain`] abstraction: a splittable domain with a
//!   monotone score function (Section 3.5 generality).
//! * [`params`] — Theorem 3.1 / Corollary 1 parameterization.
//! * [`privtree`] — Algorithm 2, built level-synchronously: each frontier
//!   is scored and noised in one deterministic pass, then split as one
//!   [`TreeDomain::split_frontier`] batch.
//! * [`simple`] — Algorithm 1 (`SimpleTree`), the h-limited baseline,
//!   built the same level-synchronous way.
//! * [`nonprivate`] — the noise-free decomposition `T*` of Lemma 3.2.
//! * [`counts`] — noisy-leaf-count postprocessing (Section 3.4).
//! * [`audit`] — exact output-distribution computations used to verify the
//!   privacy guarantees numerically.
//! * [`taxonomy`] — categorical-taxonomy decomposition (Section 3.5, item 1).

pub mod audit;
pub mod counts;
pub mod domain;
pub mod nonprivate;
pub mod params;
pub mod privtree;
pub mod simple;
pub mod taxonomy;
pub mod tree;

pub use counts::{noisy_leaf_counts, NoisyCounts};
pub use domain::TreeDomain;
pub use nonprivate::nonprivate_tree;
pub use params::{PrivTreeParams, SimpleTreeParams};
pub use privtree::{build_privtree, build_privtree_sequential};
pub use simple::{build_simple_tree, build_simple_tree_sequential, SimpleTreeOutput};
pub use tree::{NodeId, Tree};

/// Errors from decomposition construction.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The decomposition exceeded the configured node limit. With the
    /// paper's parameterization (δ = λ·ln β) this indicates a mis-set δ or
    /// a pathological score function, not normal operation (Lemma 3.2
    /// bounds the expected size by 2·|T*|).
    TreeTooLarge { limit: usize },
    /// Parameter validation failure.
    BadParams(String),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::TreeTooLarge { limit } => {
                write!(f, "decomposition tree exceeded node limit {limit}")
            }
            CoreError::BadParams(msg) => write!(f, "bad parameters: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, CoreError>;
