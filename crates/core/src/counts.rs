//! Noisy-count postprocessing (Section 3.4).
//!
//! PrivTree releases only the tree structure. When a tree *with counts* is
//! wanted, the paper prescribes: (i) build the tree with ε/2; (ii) add
//! `Lap(2/ε)` noise to the exact count of every **leaf**; (iii) compute the
//! count of every intermediate node as the sum of the noisy counts of the
//! leaves below it. Step (iii) is pure postprocessing and costs no privacy.

use privtree_dp::mechanism::LaplaceMechanism;
use rand::Rng;

use crate::tree::{NodeId, Tree};

/// Per-node noisy counts for a decomposition tree, arena-aligned.
#[derive(Debug, Clone)]
pub struct NoisyCounts {
    per_node: Vec<f64>,
}

impl NoisyCounts {
    /// The noisy count of a node.
    #[inline]
    pub fn get(&self, id: NodeId) -> f64 {
        self.per_node[id.index()]
    }

    /// All counts in arena order.
    pub fn as_slice(&self) -> &[f64] {
        &self.per_node
    }

    /// Clamp all counts to be non-negative (the paper does this for PST
    /// histograms; optional for spatial counts).
    pub fn clamp_non_negative(&mut self) {
        for c in &mut self.per_node {
            if *c < 0.0 {
                *c = 0.0;
            }
        }
    }
}

/// Add Laplace noise to each **leaf**'s exact count (obtained via `exact`)
/// and aggregate upward so every internal node's value equals the sum of
/// its descendant leaves' noisy counts.
pub fn noisy_leaf_counts<N, R: Rng + ?Sized>(
    tree: &Tree<N>,
    mechanism: &LaplaceMechanism,
    mut exact: impl FnMut(&N) -> f64,
    rng: &mut R,
) -> NoisyCounts {
    let mut per_node = vec![0.0f64; tree.len()];
    // leaves first (any order; arena order is fine)
    for id in tree.leaf_ids() {
        per_node[id.index()] = mechanism.randomize(exact(tree.payload(id)), rng);
    }
    // bottom-up: children have strictly larger arena indices than parents,
    // so a reverse scan accumulates child values into parents correctly.
    for idx in (1..tree.len()).rev() {
        let id = NodeId(idx as u32);
        if let Some(parent) = tree.parent(id) {
            per_node[parent.index()] += per_node[idx];
        }
    }
    NoisyCounts { per_node }
}

/// Exact (noise-free) leaf counts aggregated the same way — useful for
/// testing and for non-private reference synopses.
pub fn exact_leaf_counts<N>(tree: &Tree<N>, mut exact: impl FnMut(&N) -> f64) -> NoisyCounts {
    let mut per_node = vec![0.0f64; tree.len()];
    for id in tree.leaf_ids() {
        per_node[id.index()] = exact(tree.payload(id));
    }
    for idx in (1..tree.len()).rev() {
        let id = NodeId(idx as u32);
        if let Some(parent) = tree.parent(id) {
            per_node[parent.index()] += per_node[idx];
        }
    }
    NoisyCounts { per_node }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::{LineDomain, TreeDomain};
    use crate::nonprivate::nonprivate_tree;
    use privtree_dp::budget::Epsilon;
    use privtree_dp::rng::seeded;

    fn setup() -> (LineDomain, Tree<crate::domain::LineNode>) {
        let pts: Vec<f64> = (0..256).map(|i| (i as f64 + 0.5) / 256.0).collect();
        let mut domain = LineDomain::new(pts).with_min_width(1.0 / 16.0);
        let tree = nonprivate_tree(&mut domain, 20.0, None);
        (domain, tree)
    }

    #[test]
    fn internal_equals_sum_of_descendant_leaves() {
        let (domain, tree) = setup();
        let mech = LaplaceMechanism::new(Epsilon::new(1.0).unwrap(), 1.0).unwrap();
        let counts = noisy_leaf_counts(&tree, &mech, |n| domain.score(n), &mut seeded(5));
        for id in tree.internal_ids() {
            let child_sum: f64 = tree.children(id).map(|c| counts.get(c)).sum();
            assert!(
                (counts.get(id) - child_sum).abs() < 1e-9,
                "node {id:?}: {} vs {child_sum}",
                counts.get(id)
            );
        }
    }

    #[test]
    fn exact_counts_match_domain() {
        let (domain, tree) = setup();
        let counts = exact_leaf_counts(&tree, |n| domain.score(n));
        // root aggregate equals the dataset cardinality
        assert!((counts.get(tree.root()) - 256.0).abs() < 1e-9);
        for id in tree.ids() {
            if tree.is_leaf(id) {
                assert_eq!(counts.get(id), domain.score(tree.payload(id)));
            }
        }
    }

    #[test]
    fn noise_is_centered() {
        let (domain, tree) = setup();
        let mech = LaplaceMechanism::new(Epsilon::new(1.0).unwrap(), 1.0).unwrap();
        let mut rng = seeded(77);
        let reps = 3000;
        let mut sum_root = 0.0;
        for _ in 0..reps {
            let counts = noisy_leaf_counts(&tree, &mech, |n| domain.score(n), &mut rng);
            sum_root += counts.get(tree.root());
        }
        let mean = sum_root / reps as f64;
        assert!((mean - 256.0).abs() < 1.0, "mean root count = {mean}");
    }

    #[test]
    fn clamping_zeroes_negatives() {
        let (domain, tree) = setup();
        // enormous noise guarantees some negatives
        let mech = LaplaceMechanism::with_scale(1e6).unwrap();
        let mut counts = noisy_leaf_counts(&tree, &mech, |n| domain.score(n), &mut seeded(3));
        counts.clamp_non_negative();
        assert!(counts.as_slice().iter().all(|c| *c >= 0.0));
    }
}
