//! Property tests for the telemetry histogram: bucket boundaries
//! partition `u64` exactly, concurrent recording from pool workers
//! loses nothing and matches sequential recording bucket for bucket,
//! and snapshot merging is associative and commutative (the contract
//! that makes per-worker histograms foldable into one readout).

use privtree_runtime::telemetry::{
    bucket_index, bucket_upper, Histogram, HistogramSnapshot, BUCKETS,
};
use privtree_runtime::WorkerPool;
use proptest::prelude::*;
use std::sync::Arc;

/// Deterministic value stream with a heavy-tailed spread (latencies
/// span nine decades; uniform draws would leave high octaves untested).
fn values(seed: u64, n: usize) -> Vec<u64> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let shift = (state >> 58) as u32; // 0..64
            state >> shift.min(63)
        })
        .collect()
}

proptest! {
    /// Every value lands in exactly one bucket: at or below its
    /// bucket's upper boundary, strictly above the previous bucket's.
    #[test]
    fn buckets_partition_u64(seed in 0u64..1_000_000) {
        for v in values(seed, 64) {
            let i = bucket_index(v);
            prop_assert!(i < BUCKETS);
            prop_assert!(v <= bucket_upper(i), "v={v} above bucket {i}");
            if i > 0 {
                prop_assert!(v > bucket_upper(i - 1), "v={v} below bucket {i}");
            }
        }
    }

    /// Recording a workload from pool workers yields the same
    /// snapshot — bucket for bucket, count, sum, and max — as
    /// recording it sequentially, for every worker count.
    #[test]
    fn concurrent_recording_matches_sequential(
        seed in 0u64..100_000,
        n in 1usize..2_000,
        workers in 1usize..6,
    ) {
        let vals = values(seed, n);
        let sequential = Histogram::new();
        for &v in &vals {
            sequential.observe(v);
        }
        let concurrent = Arc::new(Histogram::new());
        let pool = WorkerPool::new(workers);
        pool.map_ref(&vals, |&v| concurrent.observe(v));
        prop_assert_eq!(sequential.snapshot(), concurrent.snapshot());
    }

    /// Snapshot merging is associative and commutative, and matches
    /// observing the concatenated stream into one histogram.
    #[test]
    fn merge_is_associative_and_commutative(
        sa in 0u64..100_000,
        sb in 0u64..100_000,
        sc in 0u64..100_000,
        n in 1usize..300,
    ) {
        let observe_all = |streams: &[&[u64]]| {
            let h = Histogram::new();
            for s in streams {
                for &v in *s {
                    h.observe(v);
                }
            }
            h.snapshot()
        };
        let (va, vb, vc) = (values(sa, n), values(sb, n + 1), values(sc, n + 2));
        let (a, b, c) = (
            observe_all(&[&va]),
            observe_all(&[&vb]),
            observe_all(&[&vc]),
        );
        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a ⊕ (b ⊕ c)
        let mut right_inner = b.clone();
        right_inner.merge(&c);
        let mut right = a.clone();
        right.merge(&right_inner);
        prop_assert_eq!(&left, &right);
        // b ⊕ a == a ⊕ b
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba);
        // merge == one histogram over the concatenation
        prop_assert_eq!(&left, &observe_all(&[&va, &vb, &vc]));
        // the empty snapshot is the identity
        let mut with_empty = left.clone();
        with_empty.merge(&HistogramSnapshot::empty());
        prop_assert_eq!(&with_empty, &left);
    }

    /// Quantile readouts are monotone in `q`, bounded by the observed
    /// max, and within one bucket's relative error of the true
    /// rank-order statistic.
    #[test]
    fn quantiles_are_monotone_and_bounded(seed in 0u64..100_000, n in 1usize..1_000) {
        let mut vals = values(seed, n);
        let h = Histogram::new();
        for &v in &vals {
            h.observe(v);
        }
        let snap = h.snapshot();
        vals.sort_unstable();
        let mut prev = 0u64;
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let got = snap.quantile(q);
            prop_assert!(got >= prev, "quantile not monotone at q={q}");
            prop_assert!(got <= snap.max);
            // the true order statistic shares got's bucket or a lower one
            let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
            let truth = vals[rank - 1];
            prop_assert!(
                bucket_index(truth) <= bucket_index(got),
                "q={q}: true {truth} above reported {got}"
            );
            prev = got;
        }
    }
}
