//! Cooperative shutdown signalling for serving processes.
//!
//! A [`ShutdownSignal`] is a shared one-way flag: once triggered it
//! stays triggered, and every clone observes it. The serve layer's
//! accept loop and connection threads poll it between commands, so
//! triggering the signal starts a **drain**: stop accepting, finish
//! in-flight replies, close. [`install_termination_handler`] wires the
//! same flag to `SIGTERM`/`SIGINT` on Unix (dependency-free, via the C
//! library's `signal(2)`), so `kill <pid>` drains instead of dropping
//! connections mid-reply.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared, monotone "stop now" flag. Cheap to clone (one `Arc`);
/// safe to poll from any thread.
#[derive(Debug, Clone, Default)]
pub struct ShutdownSignal {
    flag: Arc<AtomicBool>,
}

impl ShutdownSignal {
    /// A fresh, untriggered signal.
    pub fn new() -> Self {
        Self::default()
    }

    /// Trip the flag. Idempotent; never blocks.
    pub fn trigger(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Whether the flag has been tripped (by any clone or by an
    /// installed signal handler).
    pub fn is_triggered(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

#[cfg(unix)]
mod unix {
    use super::ShutdownSignal;
    use std::sync::OnceLock;

    /// The signal a handler trips. `OnceLock::get` and the `AtomicBool`
    /// store are both plain atomic operations — async-signal-safe.
    static INSTALLED: OnceLock<ShutdownSignal> = OnceLock::new();

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        /// `sighandler_t signal(int signum, sighandler_t handler)` from
        /// the C library (always linked; no crates.io dependency).
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_terminate(_signum: i32) {
        if let Some(signal) = INSTALLED.get() {
            signal.trigger();
        }
    }

    /// Route `SIGTERM` and `SIGINT` to `shutdown.trigger()`. Returns
    /// `false` if a handler was already installed for another signal
    /// instance (only the first installation wins).
    pub fn install_termination_handler(shutdown: &ShutdownSignal) -> bool {
        if INSTALLED.set(shutdown.clone()).is_err() {
            return false;
        }
        let handler = on_terminate as extern "C" fn(i32) as usize;
        unsafe {
            signal(SIGTERM, handler);
            signal(SIGINT, handler);
        }
        true
    }
}

#[cfg(unix)]
pub use unix::install_termination_handler;

/// Signal handlers are not available on this platform; the caller
/// falls back to explicit [`ShutdownSignal::trigger`] calls (stdin
/// EOF, an admin verb). Returns `false`.
#[cfg(not(unix))]
pub fn install_termination_handler(_shutdown: &ShutdownSignal) -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_observe_the_trigger() {
        let signal = ShutdownSignal::new();
        let observer = signal.clone();
        assert!(!observer.is_triggered());
        signal.trigger();
        assert!(observer.is_triggered());
        signal.trigger(); // idempotent
        assert!(observer.is_triggered());
    }
}
