//! Deterministic fault injection for crash-consistency tests.
//!
//! A *failpoint* is a named trigger compiled into an I/O sequence (the
//! catalog's create/write/sync/rename steps, the serve layer's
//! connection reads and writes). In normal builds the `failpoints`
//! cargo feature is off and [`check`] is an inlined no-op; with the
//! feature on, a test (or the `PRIVTREE_FAILPOINTS` environment
//! variable) can arm a point to fire on its *n*-th hit with one of
//! three actions:
//!
//! * [`FailAction::Error`] — the instrumented call returns a typed
//!   error and its normal error-path cleanup runs, modelling a syscall
//!   failure (disk full, permission lost).
//! * [`FailAction::Crash`] — the instrumented call returns an error
//!   **and skips its cleanup**, modelling the process dying at that
//!   instant (`kill -9`, power loss): whatever was on disk at the
//!   failpoint stays on disk.
//! * [`FailAction::Panic`] — the call site panics, modelling a bug in
//!   the middle of a critical section (used to prove lock-poison
//!   recovery and per-connection panic isolation in the serve layer).
//!
//! Besides per-point triggers there is a **global step trigger**
//! ([`arm_global`]): every [`check`] call increments one process-wide
//! counter, and the trigger fires on the *n*-th hit regardless of
//! which point it lands on. A crash-at-every-step sweep is then just:
//! run the operation once cleanly and read [`hits`], then re-run it
//! once per step with `arm_global(k, Crash)` and assert the
//! interrupted state recovers.
//!
//! Environment syntax (parsed once, on first registry use):
//!
//! ```text
//! PRIVTREE_FAILPOINTS="catalog.data.rename=crash@1,serve.read=err"
//! ```
//!
//! `@n` is the 1-based hit count and defaults to 1. Unknown actions
//! are ignored (a misspelled variable must never turn into silent
//! production behaviour — the registry only arms what it understands).
//!
//! The registry is process-global and guarded by a mutex; tests that
//! arm triggers must serialize themselves (integration-test binaries
//! are separate processes, which is usually isolation enough).

/// What an armed failpoint does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailAction {
    /// Return a typed error; the call site's cleanup runs.
    Error,
    /// Return an error flagged as a crash; the call site must skip its
    /// cleanup, leaving disk state exactly as it was at the failpoint.
    Crash,
    /// Panic at the call site.
    Panic,
}

/// A fired failpoint, returned by [`check`] for the `Error` and
/// `Crash` actions (`Panic` never returns).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Failure {
    /// The point that fired.
    pub point: String,
    /// The armed action (`Error` or `Crash`).
    pub action: FailAction,
}

impl Failure {
    /// Whether the call site must skip its error-path cleanup to model
    /// a process death.
    pub fn is_crash(&self) -> bool {
        self.action == FailAction::Crash
    }
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "injected {:?} at failpoint {}", self.action, self.point)
    }
}

#[cfg(feature = "failpoints")]
mod imp {
    use super::{FailAction, Failure};
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};

    #[derive(Default)]
    struct Registry {
        /// Per-point triggers: point name -> (1-based nth hit, action).
        points: HashMap<String, (u64, FailAction)>,
        /// Hit counters per point (count every traversal, armed or not).
        point_hits: HashMap<String, u64>,
        /// Global step trigger: fires on the nth [`check`] overall.
        global: Option<(u64, FailAction)>,
        /// Total checks since the last [`reset`].
        hits: u64,
        /// Names of every hit since the last reset, when tracing.
        trace: Option<Vec<String>>,
    }

    fn registry() -> &'static Mutex<Registry> {
        static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
        REGISTRY.get_or_init(|| {
            let mut reg = Registry::default();
            if let Ok(spec) = std::env::var("PRIVTREE_FAILPOINTS") {
                arm_from_spec(&mut reg, &spec);
            }
            Mutex::new(reg)
        })
    }

    fn parse_action(s: &str) -> Option<FailAction> {
        match s {
            "err" | "error" => Some(FailAction::Error),
            "crash" => Some(FailAction::Crash),
            "panic" => Some(FailAction::Panic),
            _ => None,
        }
    }

    fn arm_from_spec(reg: &mut Registry, spec: &str) {
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let Some((name, rest)) = part.split_once('=') else {
                continue;
            };
            let (action, nth) = match rest.split_once('@') {
                Some((a, n)) => (parse_action(a), n.parse::<u64>().ok()),
                None => (parse_action(rest), Some(1)),
            };
            if let (Some(action), Some(nth)) = (action, nth) {
                if nth >= 1 {
                    reg.points.insert(name.to_string(), (nth, action));
                }
            }
        }
    }

    /// Traverse the failpoint `name`: count the hit and fire if armed.
    pub fn check(name: &str) -> Result<(), Failure> {
        let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
        reg.hits += 1;
        let hits = reg.hits;
        if let Some(trace) = reg.trace.as_mut() {
            trace.push(name.to_string());
        }
        let point_hits = reg.point_hits.entry(name.to_string()).or_insert(0);
        *point_hits += 1;
        let point_hits = *point_hits;
        let fired = match reg.global {
            Some((nth, action)) if nth == hits => {
                reg.global = None; // one-shot
                Some(action)
            }
            _ => match reg.points.get(name) {
                Some(&(nth, action)) if nth == point_hits => {
                    reg.points.remove(name); // one-shot
                    Some(action)
                }
                _ => None,
            },
        };
        drop(reg); // never panic while holding the registry lock
        match fired {
            None => Ok(()),
            Some(FailAction::Panic) => panic!("injected panic at failpoint {name}"),
            Some(action) => Err(Failure {
                point: name.to_string(),
                action,
            }),
        }
    }

    /// Arm `name` to fire with `action` on its `nth` (1-based) hit,
    /// counted from the last [`reset`]. One-shot: the trigger disarms
    /// after firing.
    pub fn arm(name: &str, action: FailAction, nth: u64) {
        let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
        reg.points.insert(name.to_string(), (nth.max(1), action));
    }

    /// Arm the global step trigger: the `nth` (1-based) [`check`] call
    /// overall fires with `action`, whatever point it lands on.
    /// One-shot.
    pub fn arm_global(nth: u64, action: FailAction) {
        let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
        reg.global = Some((nth.max(1), action));
    }

    /// Disarm every trigger and zero every counter (the environment
    /// spec is *not* re-applied).
    pub fn reset() {
        let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
        *reg = Registry::default();
    }

    /// Total [`check`] traversals since the last [`reset`].
    pub fn hits() -> u64 {
        registry().lock().unwrap_or_else(|e| e.into_inner()).hits
    }

    /// Start recording the name of every hit (cleared by [`reset`]).
    pub fn set_trace(on: bool) {
        let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
        reg.trace = on.then(Vec::new);
    }

    /// The hits recorded since tracing was enabled.
    pub fn take_trace() -> Vec<String> {
        let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
        reg.trace.take().unwrap_or_default()
    }
}

#[cfg(feature = "failpoints")]
pub use imp::{arm, arm_global, check, hits, reset, set_trace, take_trace};

/// Traverse the failpoint `name`. With the `failpoints` feature off
/// this is a no-op the optimizer removes entirely.
#[cfg(not(feature = "failpoints"))]
#[inline(always)]
pub fn check(_name: &str) -> Result<(), Failure> {
    Ok(())
}

#[cfg(all(test, feature = "failpoints"))]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The registry is process-global: serialize these tests.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn per_point_trigger_fires_on_nth_hit_once() {
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        arm("unit.a", FailAction::Error, 2);
        assert!(check("unit.a").is_ok(), "first hit passes");
        let failure = check("unit.a").unwrap_err();
        assert_eq!(failure.point, "unit.a");
        assert!(!failure.is_crash());
        assert!(check("unit.a").is_ok(), "one-shot: third hit passes");
        reset();
    }

    #[test]
    fn global_trigger_counts_across_points() {
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        set_trace(true);
        arm_global(3, FailAction::Crash);
        assert!(check("unit.a").is_ok());
        assert!(check("unit.b").is_ok());
        let failure = check("unit.c").unwrap_err();
        assert_eq!(failure.point, "unit.c");
        assert!(failure.is_crash());
        assert_eq!(hits(), 3);
        assert_eq!(take_trace(), ["unit.a", "unit.b", "unit.c"]);
        reset();
    }

    #[test]
    fn panic_action_panics_at_the_call_site() {
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        arm("unit.boom", FailAction::Panic, 1);
        let result = std::panic::catch_unwind(|| check("unit.boom"));
        assert!(result.is_err(), "panic action must panic");
        // the registry survives the panic and keeps counting
        assert!(check("unit.boom").is_ok());
        reset();
    }
}
