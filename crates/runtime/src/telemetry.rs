//! Lock-free metrics for the serving stack: counters, gauges,
//! log-scale histograms, and per-tick stage tracing.
//!
//! The serving layers (reactor, engine, store) record everything they
//! know about a running process here — request latencies, reactor
//! stage timings, journal fsync distributions, byte counts — and the
//! `metrics` verb renders the registry as a Prometheus-style text
//! exposition. Three design rules keep the module true to the rest of
//! the workspace:
//!
//! * **No dependencies, no locks on the hot path.** Recording into a
//!   [`Counter`], [`Gauge`], or [`Histogram`] is a handful of relaxed
//!   atomic ops; handles are plain `Arc`s that callers cache at setup
//!   time. The only mutex in the module guards metric *registration*
//!   (get-or-create), which happens once per metric per process.
//! * **Deterministic readout.** Histogram quantiles are reported as
//!   the upper boundary of the bucket holding the requested rank — an
//!   integer, never an interpolated float — and
//!   [`Registry::render`] returns lexicographically sorted lines, so
//!   two scrapes of the same state are byte-identical and tests can
//!   pin the exposition format.
//! * **Runtime kill switch, not a cargo feature.** [`set_enabled`]
//!   (or `PRIVTREE_TELEMETRY=0`) turns off the *clock reads* — the
//!   `Instant::now` pairs around reactor stages and request spans —
//!   while counters keep counting, so the `stats` verb never regresses
//!   and the bench overhead lane can measure the timing cost alone.
//!   A cargo feature would instead zero the protocol counters in
//!   `--no-default-features` builds and break their tests.
//!
//! # Units
//!
//! Durations are recorded in **microseconds** and metric names end in
//! `_us`; byte distributions end in `_bytes`. Values are `u64` and
//! render as integers — no float formatting enters the exposition.
//!
//! # Histogram shape
//!
//! Fixed log-scale boundaries, identical for every histogram: values
//! 0–15 get exact unit buckets, and from 16 up each power-of-two
//! octave is split into 4 sub-buckets (relative error ≤ 25%, typically
//! ~12%), for [`BUCKETS`] = 256 buckets total covering all of `u64`.
//! Fixed boundaries make histograms mergeable by plain bucket-wise
//! addition — merging is associative and commutative, which the
//! property tests pin.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

// ---------------------------------------------------------------- switch

/// 0 = uninitialised (consult `PRIVTREE_TELEMETRY`), 1 = on, 2 = off.
static ENABLED: AtomicU8 = AtomicU8::new(0);

/// Whether timing capture is on. Counters and gauges record
/// regardless; this gates only the clock reads (stage spans, request
/// latency). Defaults to on; `PRIVTREE_TELEMETRY=0` (or `off`/`false`)
/// starts the process with timing off.
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            let on = !matches!(
                std::env::var("PRIVTREE_TELEMETRY").as_deref(),
                Ok("0") | Ok("off") | Ok("false")
            );
            ENABLED.store(if on { 1 } else { 2 }, Ordering::Relaxed);
            on
        }
    }
}

/// Turn timing capture on or off at runtime (the bench overhead lane
/// flips this to measure the cost of the clock reads).
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

// -------------------------------------------------------------- primitives

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Count one event.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Count `n` events.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A value that can go up and down (queue depth, mapped bytes).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replace the value.
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Raise the value by `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Lower the value by `n` (saturating at zero: a release decrement
    /// racing a concurrent reader must never wrap to 2^64).
    pub fn sub(&self, n: u64) {
        let mut cur = self.value.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(n);
            match self
                .value
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets (fixed log-scale boundaries over `u64`).
pub const BUCKETS: usize = 256;

/// Bucket index for a recorded value. Values 0–15 map to exact unit
/// buckets; above that, each power-of-two octave splits into 4
/// sub-buckets keyed by the two bits below the leading one.
pub fn bucket_index(v: u64) -> usize {
    if v < 16 {
        return v as usize;
    }
    let octave = 63 - v.leading_zeros() as usize; // >= 4
    let sub = ((v >> (octave - 2)) & 3) as usize;
    16 + (octave - 4) * 4 + sub
}

/// Inclusive upper boundary of bucket `i` — the value a quantile
/// readout reports for ranks landing in that bucket.
pub fn bucket_upper(i: usize) -> u64 {
    assert!(i < BUCKETS, "bucket index out of range");
    if i < 16 {
        return i as u64;
    }
    let k = i - 16;
    let octave = 4 + k / 4;
    let sub = (k % 4) as u64;
    let width = 1u64 << (octave - 2);
    (1u64 << octave) + sub * width + (width - 1)
}

/// A fixed-boundary log-scale histogram with atomic buckets.
///
/// Recording is lock-free (one relaxed `fetch_add` per bucket/count/
/// sum plus a `fetch_max` for the max); readout goes through
/// [`Histogram::snapshot`]. Two histograms merge by bucket-wise
/// addition because every histogram shares the same boundaries.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one value.
    pub fn observe(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Fold another histogram's recordings into this one.
    pub fn merge_from(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            let n = theirs.load(Ordering::Relaxed);
            if n != 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// A point-in-time copy for readout and offline merging.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A frozen copy of a [`Histogram`]: quantile readout and merging
/// without touching the live atomics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts (same boundaries as every histogram).
    pub buckets: [u64; BUCKETS],
    /// Total recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot (the merge identity).
    pub fn empty() -> Self {
        Self {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// The deterministic quantile readout: the upper boundary of the
    /// bucket holding rank `ceil(q * count)`, capped at the observed
    /// max. Returns 0 on an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Fold another snapshot into this one (bucket-wise addition —
    /// associative and commutative by construction).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

// ---------------------------------------------------------------- registry

#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

#[derive(Debug)]
struct Entry {
    name: String,
    labels: Vec<(String, String)>,
    metric: Metric,
}

/// A named collection of metrics with a deterministic text readout.
///
/// `counter`/`gauge`/`histogram` are get-or-create: the first call for
/// a `(name, labels)` pair registers the metric, later calls hand back
/// the same `Arc`. Callers cache the handle and record lock-free from
/// then on. A server owns one registry per listener (parallel
/// in-process tests must not see each other's counts); the `privtree-
/// serve` binary effectively has one per process, and [`global`]
/// provides a shared instance for code with no context to thread.
#[derive(Debug, Default)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter `name{labels}`.
    ///
    /// # Panics
    /// If the pair is already registered as a different metric kind.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.get_or_insert(name, labels, || Metric::Counter(Arc::new(Counter::new()))) {
            Metric::Counter(c) => c,
            _ => panic!("{name} is registered as a non-counter"),
        }
    }

    /// Get or create the gauge `name{labels}`.
    ///
    /// # Panics
    /// If the pair is already registered as a different metric kind.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        match self.get_or_insert(name, labels, || Metric::Gauge(Arc::new(Gauge::new()))) {
            Metric::Gauge(g) => g,
            _ => panic!("{name} is registered as a non-gauge"),
        }
    }

    /// Get or create the histogram `name{labels}`.
    ///
    /// # Panics
    /// If the pair is already registered as a different metric kind.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        match self.get_or_insert(name, labels, || {
            Metric::Histogram(Arc::new(Histogram::new()))
        }) {
            Metric::Histogram(h) => h,
            _ => panic!("{name} is registered as a non-histogram"),
        }
    }

    fn get_or_insert(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Metric,
    ) -> Metric {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(e) = entries
            .iter()
            .find(|e| e.name == name && e.labels == labels)
        {
            return e.metric.clone();
        }
        let metric = make();
        entries.push(Entry {
            name: name.to_string(),
            labels,
            metric: metric.clone(),
        });
        metric
    }

    /// Render every metric as `name{label="v"} value` lines, sorted
    /// lexicographically — two scrapes of identical state are
    /// byte-identical. Histograms expand to `quantile="0.5"/"0.9"/
    /// "0.99"` lines plus `_count`/`_sum`/`_max`, all present even
    /// when empty so the exposition's key set is stable from the first
    /// scrape.
    pub fn render(&self) -> Vec<String> {
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        let mut lines = Vec::with_capacity(entries.len() * 2);
        for e in entries.iter() {
            match &e.metric {
                Metric::Counter(c) => {
                    lines.push(format!(
                        "{} {}",
                        render_key(&e.name, &e.labels, None),
                        c.get()
                    ));
                }
                Metric::Gauge(g) => {
                    lines.push(format!(
                        "{} {}",
                        render_key(&e.name, &e.labels, None),
                        g.get()
                    ));
                }
                Metric::Histogram(h) => {
                    let snap = h.snapshot();
                    for (q, v) in [
                        ("0.5", snap.quantile(0.5)),
                        ("0.9", snap.quantile(0.9)),
                        ("0.99", snap.quantile(0.99)),
                    ] {
                        lines.push(format!("{} {v}", render_key(&e.name, &e.labels, Some(q))));
                    }
                    let base =
                        |suffix: &str| render_key(&format!("{}{suffix}", e.name), &e.labels, None);
                    lines.push(format!("{} {}", base("_count"), snap.count));
                    lines.push(format!("{} {}", base("_sum"), snap.sum));
                    lines.push(format!("{} {}", base("_max"), snap.max));
                }
            }
        }
        lines.sort();
        lines
    }
}

/// Render `name{k="v",...}` (labels pre-sorted; a trailing
/// `quantile="q"` label for histogram quantile lines). Label values
/// are escaped so free-text reasons (quarantine errors) cannot break
/// the line format.
pub fn render_key(name: &str, labels: &[(String, String)], quantile: Option<&str>) -> String {
    if labels.is_empty() && quantile.is_none() {
        return name.to_string();
    }
    let mut out = String::with_capacity(name.len() + 16);
    out.push_str(name);
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&escape_label(v));
        out.push('"');
    }
    if let Some(q) = quantile {
        if !first {
            out.push(',');
        }
        out.push_str("quantile=\"");
        out.push_str(q);
        out.push('"');
    }
    out.push('}');
    out
}

/// Escape a label value for the exposition: backslash, double quote,
/// and newline, exactly as the Prometheus text format does.
pub fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// The process-wide registry, for code with no context to thread a
/// per-server registry through.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

// -------------------------------------------------------------- tick spans

/// The reactor tick stages a [`TickTrace`] times, in pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Reading sockets and parsing bytes into jobs.
    Decode,
    /// Gathering per-connection query jobs into one dispatch.
    Coalesce,
    /// The pooled batch answer itself.
    Dispatch,
    /// Scattering answers back into per-connection reply buffers.
    Scatter,
    /// Writing reply buffers to sockets.
    Flush,
}

/// Every stage, in pipeline order (the exposition's label values).
pub const STAGES: [Stage; 5] = [
    Stage::Decode,
    Stage::Coalesce,
    Stage::Dispatch,
    Stage::Scatter,
    Stage::Flush,
];

impl Stage {
    /// The `stage=` label value.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Decode => "decode",
            Stage::Coalesce => "coalesce",
            Stage::Dispatch => "dispatch",
            Stage::Scatter => "scatter",
            Stage::Flush => "flush",
        }
    }
}

/// Per-tick stage timing accumulator.
///
/// The reactor creates one per tick, wraps each pipeline section in
/// [`TickTrace::time`] (or feeds pre-measured spans via
/// [`TickTrace::add_us`]) *only when that section had work*, and ends
/// the tick with [`TickTrace::observe_into`] — so idle ticks never
/// dilute the stage histograms. When telemetry is [`enabled`]`()==
/// false` the clock is never read and `time` is a plain call-through.
#[derive(Debug)]
pub struct TickTrace {
    enabled: bool,
    touched: u8,
    accum_us: [u64; STAGES.len()],
}

impl Default for TickTrace {
    fn default() -> Self {
        Self::new()
    }
}

impl TickTrace {
    /// A fresh trace for one tick; samples the [`enabled`] switch once.
    pub fn new() -> Self {
        Self {
            enabled: enabled(),
            touched: 0,
            accum_us: [0; STAGES.len()],
        }
    }

    /// Whether this trace is capturing (callers can skip building
    /// span inputs when it is not).
    pub fn capturing(&self) -> bool {
        self.enabled
    }

    /// Run `f`, charging its wall time to `stage`.
    pub fn time<R>(&mut self, stage: Stage, f: impl FnOnce() -> R) -> R {
        if !self.enabled {
            return f();
        }
        let start = Instant::now();
        let out = f();
        self.add_us(stage, start.elapsed().as_micros() as u64);
        out
    }

    /// Charge a pre-measured span to `stage`.
    pub fn add_us(&mut self, stage: Stage, us: u64) {
        if !self.enabled {
            return;
        }
        self.touched |= 1 << stage as usize;
        self.accum_us[stage as usize] += us;
    }

    /// Microseconds charged to `stage` so far this tick.
    pub fn stage_us(&self, stage: Stage) -> u64 {
        self.accum_us[stage as usize]
    }

    /// Whether any stage was touched this tick.
    pub fn any(&self) -> bool {
        self.touched != 0
    }

    /// Record every touched stage into its histogram (`hists` indexed
    /// like [`STAGES`]) and reset for the next tick.
    pub fn observe_into(&mut self, hists: &[Arc<Histogram>; STAGES.len()]) {
        if self.touched != 0 {
            for (i, h) in hists.iter().enumerate() {
                if self.touched & (1 << i) != 0 {
                    h.observe(self.accum_us[i]);
                }
            }
        }
        self.touched = 0;
        self.accum_us = [0; STAGES.len()];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_get_exact_buckets() {
        for v in 0u64..16 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_upper(v as usize), v);
        }
    }

    #[test]
    fn boundaries_are_monotonic_and_cover_u64() {
        let mut prev = bucket_upper(0);
        for i in 1..BUCKETS {
            let upper = bucket_upper(i);
            assert!(upper > prev, "bucket {i} not increasing");
            prev = upper;
        }
        assert_eq!(bucket_upper(BUCKETS - 1), u64::MAX);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn every_value_lands_at_or_below_its_bucket_upper() {
        for shift in 0..64u32 {
            for delta in [-1i64, 0, 1, 3] {
                let v = (1u64 << shift).wrapping_add_signed(delta);
                let i = bucket_index(v);
                assert!(v <= bucket_upper(i), "v={v} above bucket {i}");
                if i > 0 {
                    assert!(v > bucket_upper(i - 1), "v={v} below bucket {i}");
                }
            }
        }
    }

    #[test]
    fn quantiles_read_bucket_uppers_capped_at_max() {
        let h = Histogram::new();
        assert_eq!(h.snapshot().quantile(0.99), 0);
        for v in 1..=100u64 {
            h.observe(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 100);
        assert_eq!(snap.sum, 5050);
        assert_eq!(snap.max, 100);
        let p50 = snap.quantile(0.5);
        // rank 50 lands in the bucket covering 50; the readout is that
        // bucket's upper bound — within the 25% relative-error contract
        assert!((50..=63).contains(&p50), "p50 = {p50}");
        assert!(snap.quantile(0.99) <= 100);
        assert!(snap.quantile(1.0) == 100, "p100 capped at observed max");
        assert!(snap.quantile(0.9) >= p50);
    }

    #[test]
    fn histograms_merge_bucketwise() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in 0..50u64 {
            a.observe(v);
            b.observe(v * 1000);
        }
        a.merge_from(&b);
        let merged = a.snapshot();
        assert_eq!(merged.count, 100);
        assert_eq!(merged.max, 49_000);
        let mut by_snapshot = Histogram::new().snapshot();
        let c = Histogram::new();
        for v in 0..50u64 {
            c.observe(v);
        }
        let d = Histogram::new();
        for v in 0..50u64 {
            d.observe(v * 1000);
        }
        by_snapshot.merge(&c.snapshot());
        by_snapshot.merge(&d.snapshot());
        assert_eq!(merged, by_snapshot);
    }

    #[test]
    fn concurrent_observation_loses_nothing() {
        let h = Arc::new(Histogram::new());
        let threads = 8;
        let per_thread = 10_000u64;
        std::thread::scope(|s| {
            for t in 0..threads {
                let h = Arc::clone(&h);
                s.spawn(move || {
                    for i in 0..per_thread {
                        h.observe(t * per_thread + i);
                    }
                });
            }
        });
        let snap = h.snapshot();
        assert_eq!(snap.count, threads * per_thread);
        assert_eq!(snap.buckets.iter().sum::<u64>(), threads * per_thread);
        assert_eq!(snap.max, threads * per_thread - 1);
    }

    #[test]
    fn gauge_sub_saturates() {
        let g = Gauge::new();
        g.add(3);
        g.sub(10);
        assert_eq!(g.get(), 0);
        g.set(42);
        g.sub(2);
        assert_eq!(g.get(), 40);
    }

    #[test]
    fn registry_returns_the_same_handle_and_renders_sorted() {
        let r = Registry::new();
        let c1 = r.counter("requests_total", &[("proto", "text")]);
        let c2 = r.counter("requests_total", &[("proto", "text")]);
        c1.inc();
        c2.add(2);
        assert_eq!(c1.get(), 3);
        r.counter("requests_total", &[("proto", "wire")]).add(7);
        r.gauge("queue_depth", &[]).set(4);
        r.histogram("latency_us", &[("proto", "text")]).observe(100);
        let lines = r.render();
        let mut sorted = lines.clone();
        sorted.sort();
        assert_eq!(lines, sorted, "render must be sorted");
        assert!(lines.contains(&"requests_total{proto=\"text\"} 3".to_string()));
        assert!(lines.contains(&"requests_total{proto=\"wire\"} 7".to_string()));
        assert!(lines.contains(&"queue_depth 4".to_string()));
        assert!(lines.contains(&"latency_us_count{proto=\"text\"} 1".to_string()));
        assert!(lines.contains(&"latency_us_sum{proto=\"text\"} 100".to_string()));
        assert!(lines
            .iter()
            .any(|l| l.starts_with("latency_us{proto=\"text\",quantile=\"0.5\"}")));
        // a second scrape of unchanged state is byte-identical
        assert_eq!(lines, r.render());
    }

    #[test]
    fn empty_histogram_still_exposes_its_full_key_set() {
        let r = Registry::new();
        r.histogram("idle_us", &[]);
        let lines = r.render();
        for want in [
            "idle_us_count 0",
            "idle_us_sum 0",
            "idle_us_max 0",
            "idle_us{quantile=\"0.5\"} 0",
            "idle_us{quantile=\"0.9\"} 0",
            "idle_us{quantile=\"0.99\"} 0",
        ] {
            assert!(
                lines.contains(&want.to_string()),
                "missing {want}: {lines:?}"
            );
        }
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(escape_label("plain"), "plain");
        assert_eq!(escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        let r = Registry::new();
        r.gauge("quarantined", &[("key", "bad\"name")]).set(1);
        assert_eq!(
            r.render(),
            vec!["quarantined{key=\"bad\\\"name\"} 1".to_string()]
        );
    }

    #[test]
    fn labels_are_sorted_within_a_key() {
        let r = Registry::new();
        let a = r.counter("m", &[("b", "2"), ("a", "1")]);
        let b = r.counter("m", &[("a", "1"), ("b", "2")]);
        a.inc();
        assert_eq!(b.get(), 1, "label order must not split the metric");
        assert_eq!(r.render(), vec!["m{a=\"1\",b=\"2\"} 1".to_string()]);
    }

    /// Serializes the tests that flip the process-global [`enabled`]
    /// switch (cargo runs tests on parallel threads).
    static SWITCH: Mutex<()> = Mutex::new(());

    #[test]
    fn tick_trace_accumulates_and_resets() {
        let _guard = SWITCH.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(true);
        let mut trace = TickTrace::new();
        assert!(!trace.any());
        trace.time(Stage::Dispatch, || {
            std::thread::sleep(std::time::Duration::from_millis(2))
        });
        trace.add_us(Stage::Decode, 5);
        trace.add_us(Stage::Decode, 7);
        assert!(trace.any());
        assert_eq!(trace.stage_us(Stage::Decode), 12);
        assert!(trace.stage_us(Stage::Dispatch) >= 2_000);
        let hists: [Arc<Histogram>; STAGES.len()] =
            std::array::from_fn(|_| Arc::new(Histogram::new()));
        trace.observe_into(&hists);
        assert!(!trace.any());
        assert_eq!(hists[Stage::Decode as usize].count(), 1);
        assert_eq!(hists[Stage::Dispatch as usize].count(), 1);
        // untouched stages record nothing — idle stages don't pollute
        assert_eq!(hists[Stage::Flush as usize].count(), 0);
        // a second observe after reset records nothing
        trace.observe_into(&hists);
        assert_eq!(hists[Stage::Decode as usize].count(), 1);
    }

    #[test]
    fn disabled_trace_never_reads_the_clock() {
        let _guard = SWITCH.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(false);
        let mut trace = TickTrace::new();
        assert!(!trace.capturing());
        trace.time(Stage::Dispatch, || {
            std::thread::sleep(std::time::Duration::from_millis(1))
        });
        trace.add_us(Stage::Decode, 99);
        assert!(!trace.any());
        set_enabled(true);
    }
}
