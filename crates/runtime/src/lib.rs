//! A persistent, deterministic worker pool for the suite's hot paths.
//!
//! PrivTree workloads are build-once/read-many: a release is constructed
//! level by level (disjoint segment splits, noise-free scoring) and then
//! serves millions of range-count queries. Both sides decompose into
//! *pure, independent* tasks whose results only need to come back in
//! input order — so parallelism must never change a single bit of output.
//! [`WorkerPool`] provides exactly that contract:
//!
//! * a **fixed set of worker threads** spawned once and fed over a
//!   channel (no per-level `std::thread::scope` spawning — thread startup
//!   used to dominate shallow levels and kept the `parallel` feature off
//!   by default);
//! * **chunked tasks**: a batch of items is cut into contiguous chunks
//!   (optionally balanced by a caller-supplied weight, e.g. points per
//!   segment or queries per slice) so per-task channel overhead is
//!   amortized;
//! * **ordered collection**: every chunk reports `(chunk_index, results)`
//!   and the caller reassembles the output by index, so the returned
//!   `Vec` is identical — bitwise — to what a sequential loop produces,
//!   regardless of worker count or scheduling. Randomness never enters a
//!   pooled task: Laplace draws stay sequential arena-order passes in the
//!   builders.
//!
//! The pool is shared process-wide through [`global`] (sized from
//! `PRIVTREE_POOL_WORKERS` or the machine's parallelism); benches and
//! tests construct private pools with [`WorkerPool::new`] to compare
//! worker counts explicitly.
//!
//! Scoped borrows: tasks may capture non-`'static` references (the point
//! permutation's sub-slices, a borrowed synopsis). [`WorkerPool`] makes
//! this sound the same way scoped thread pools do — every dispatch blocks
//! until all of its chunks have reported back (even on panic, which is
//! re-raised in the caller), so no borrow outlives the call.

pub mod coalesce;
pub mod failpoints;
pub mod readiness;
pub mod shutdown;
pub mod telemetry;

pub use coalesce::Coalescer;
pub use shutdown::{install_termination_handler, ShutdownSignal};

use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::thread::JoinHandle;

/// A shared slot holding an `Arc<T>` that readers load cheaply and
/// writers replace atomically — the publication primitive for
/// build-once/read-many state (the epoch engine's current snapshot).
///
/// Readers never observe a torn or intermediate value: [`ArcCell::load`]
/// clones the `Arc` under a read lock (two atomic ops, no allocation, no
/// contention between readers), and a loaded snapshot stays valid for as
/// long as the caller holds it, no matter how many stores happen
/// afterwards. Writers swap the pointer under the write lock; the old
/// value is dropped when its last reader lets go. Lock poisoning is
/// ignored (an `Arc` swap cannot leave the slot in a half-written state),
/// so a panicked writer never wedges the readers.
pub struct ArcCell<T> {
    slot: RwLock<Arc<T>>,
}

impl<T> ArcCell<T> {
    /// A cell holding `value`.
    pub fn new(value: Arc<T>) -> Self {
        Self {
            slot: RwLock::new(value),
        }
    }

    /// The current value (an `Arc` clone; never blocks on other readers).
    pub fn load(&self) -> Arc<T> {
        Arc::clone(&self.slot.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Publish `value`, returning the previous one.
    pub fn swap(&self, value: Arc<T>) -> Arc<T> {
        std::mem::replace(
            &mut self.slot.write().unwrap_or_else(|e| e.into_inner()),
            value,
        )
    }

    /// Publish `value`, dropping the previous one (unless still loaded).
    pub fn store(&self, value: Arc<T>) {
        drop(self.swap(value));
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for ArcCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("ArcCell").field(&self.load()).finish()
    }
}

/// A type-erased unit of work shipped to a worker thread.
type Job = Box<dyn FnOnce() + Send + 'static>;

thread_local! {
    /// True on pool worker threads. A task already running on a pool must
    /// not dispatch to one (its own or another): it would block waiting on
    /// sub-jobs while occupying the very worker that could drain them — a
    /// deadlock once every worker waits. Nested dispatches therefore run
    /// inline, which is always safe (and bit-identical by contract).
    static IN_POOL_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Fixed worker threads fed by one shared channel.
///
/// See the crate docs for the determinism contract. Dropping the pool
/// closes the channel and joins every worker.
pub struct WorkerPool {
    sender: Option<Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
    workers: usize,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers)
            .finish()
    }
}

impl WorkerPool {
    /// Spawn a pool of `workers` threads (clamped to at least 1).
    ///
    /// A 1-worker pool never spawns: dispatches run inline on the caller,
    /// which keeps single-core machines and `--no-default-features`-style
    /// comparisons free of thread overhead.
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        if workers == 1 {
            return Self {
                sender: None,
                handles: Vec::new(),
                workers,
            };
        }
        let (sender, receiver) = channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let handles = (0..workers)
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("privtree-worker-{i}"))
                    .spawn(move || {
                        IN_POOL_WORKER.set(true);
                        loop {
                            // hold the lock only while dequeuing, not
                            // while running the job
                            let job = match receiver.lock() {
                                Ok(rx) => rx.recv(),
                                Err(_) => break, // a job panicked mid-recv
                            };
                            match job {
                                Ok(job) => job(),
                                Err(_) => break, // pool dropped
                            }
                        }
                    })
                    .expect("failed to spawn pool worker")
            })
            .collect();
        Self {
            sender: Some(sender),
            handles,
            workers,
        }
    }

    /// Pool sized for this machine: `PRIVTREE_POOL_WORKERS` if set,
    /// otherwise `std::thread::available_parallelism()`.
    pub fn for_machine() -> Self {
        let workers = std::env::var("PRIVTREE_POOL_WORKERS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        Self::new(workers)
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Map `f` over `items` (chunks balanced by item count), returning
    /// results in input order. Bit-identical to
    /// `items.into_iter().map(f).collect()` for pure `f`.
    pub fn map_vec<T, R>(&self, items: Vec<T>, f: impl Fn(T) -> R + Sync) -> Vec<R>
    where
        T: Send,
        R: Send,
    {
        self.map_vec_weighted(items, |_| 1, f)
    }

    /// Map `f` over `items` with contiguous chunks balanced by `weight`
    /// (e.g. points per segment — PrivTree levels are heavily skewed, so
    /// equal-item chunks would serialize one dense chunk on one worker).
    /// Results come back in input order; for pure `f` the output is
    /// bit-identical to a sequential loop for every worker count.
    pub fn map_vec_weighted<T, R>(
        &self,
        items: Vec<T>,
        weight: impl Fn(&T) -> usize,
        f: impl Fn(T) -> R + Sync,
    ) -> Vec<R>
    where
        T: Send,
        R: Send,
    {
        let n = items.len();
        if self.workers <= 1 || n <= 1 || IN_POOL_WORKER.get() {
            return items.into_iter().map(f).collect();
        }

        // cut [0, n) into contiguous weight-balanced chunks; mild
        // oversubscription lets fast workers take a second helping
        let weights: Vec<usize> = items.iter().map(&weight).collect();
        let ranges = weighted_ranges(&weights, self.workers * 2);
        if ranges.len() <= 1 {
            return items.into_iter().map(f).collect();
        }

        // carve the items into owned chunks, preserving order
        let mut chunks: Vec<(usize, Vec<T>)> = Vec::with_capacity(ranges.len());
        let mut items = items.into_iter();
        for (idx, r) in ranges.iter().enumerate() {
            chunks.push((idx, items.by_ref().take(r.len()).collect()));
        }

        let (result_tx, result_rx) = channel::<(usize, std::thread::Result<Vec<R>>)>();
        let f = &f;
        let n_chunks = chunks.len();
        for (idx, chunk) in chunks {
            let result_tx = result_tx.clone();
            self.submit(Box::new(move || {
                let out = catch_unwind(AssertUnwindSafe(|| {
                    chunk.into_iter().map(f).collect::<Vec<R>>()
                }));
                // the caller always outlives this send: it blocks on
                // receiving exactly n_chunks reports
                let _ = result_tx.send((idx, out));
            }));
        }
        drop(result_tx);

        let mut slots: Vec<Option<Vec<R>>> = (0..n_chunks).map(|_| None).collect();
        let mut panic = None;
        for _ in 0..n_chunks {
            let (idx, out) = result_rx
                .recv()
                .expect("worker pool disconnected mid-dispatch");
            match out {
                Ok(results) => slots[idx] = Some(results),
                Err(payload) => panic = Some(payload),
            }
        }
        // only re-raise once every chunk has reported: no task may still
        // borrow the caller's data after this function returns
        if let Some(payload) = panic {
            resume_unwind(payload);
        }
        let mut out = Vec::with_capacity(n);
        for slot in slots {
            out.extend(slot.expect("every chunk reports exactly once"));
        }
        out
    }

    /// Map `f` over shared references, in input order. Convenience for
    /// read-only fan-outs (per-level noise-free scoring).
    pub fn map_ref<T, R>(&self, items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R>
    where
        T: Sync,
        R: Send,
    {
        self.map_vec(items.iter().collect(), |t: &T| f(t))
    }

    /// Cut `[0, len)` into at most `max_chunks` contiguous ranges, run `f`
    /// on each range (one pool task per range), and concatenate the
    /// per-range outputs in range order. The one copy of the
    /// "chunk an index space, fan out, flatten ordered" pattern used by
    /// grid-cell precomputation and the baselines' histogram pass; for
    /// pure `f` the result is bit-identical to `f(0..len)` for every
    /// worker count. Runs `f(0..len)` inline when chunking cannot help.
    pub fn map_chunks<R: Send>(
        &self,
        len: usize,
        max_chunks: usize,
        f: impl Fn(Range<usize>) -> Vec<R> + Sync,
    ) -> Vec<R> {
        let ranges = chunk_ranges(len, max_chunks);
        if self.workers <= 1 || ranges.len() <= 1 {
            return f(0..len);
        }
        self.map_vec(ranges, &f).into_iter().flatten().collect()
    }

    /// Ship one erased job to the workers.
    ///
    /// The `'scope` lifetime is transmuted away; this is sound because
    /// every public dispatch path blocks until all of its jobs have
    /// reported completion (see [`WorkerPool::map_vec_weighted`]), so the
    /// borrows a job captures always outlive its execution — the same
    /// argument scoped thread pools rely on.
    fn submit<'scope>(&self, job: Box<dyn FnOnce() + Send + 'scope>) {
        let job: Job =
            unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Job>(job) };
        self.sender
            .as_ref()
            .expect("submit on an inline (1-worker) pool")
            .send(job)
            .expect("worker pool channel closed");
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        drop(self.sender.take()); // workers see Err(RecvError) and exit
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// The process-wide pool, created on first use via
/// [`WorkerPool::for_machine`]. Builders and batch query paths reach for
/// this when no explicit pool is supplied.
pub fn global() -> &'static WorkerPool {
    static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
    GLOBAL.get_or_init(WorkerPool::for_machine)
}

/// Cut `[0, len)` into at most `chunks` contiguous equal-count ranges
/// (every range non-empty). Deterministic in its inputs.
pub fn chunk_ranges(len: usize, chunks: usize) -> Vec<Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let chunks = chunks.clamp(1, len);
    let base = len / chunks;
    let extra = len % chunks;
    let mut out = Vec::with_capacity(chunks);
    let mut start = 0;
    for i in 0..chunks {
        let size = base + usize::from(i < extra);
        out.push(start..start + size);
        start += size;
    }
    out
}

/// Cut `[0, weights.len())` into at most `max_chunks` contiguous ranges of
/// roughly equal total weight. Deterministic in its inputs.
pub fn weighted_ranges(weights: &[usize], max_chunks: usize) -> Vec<Range<usize>> {
    let n = weights.len();
    if n == 0 {
        return Vec::new();
    }
    let max_chunks = max_chunks.clamp(1, n);
    let total: usize = weights.iter().sum();
    let target = total.div_ceil(max_chunks).max(1);
    let mut out = Vec::with_capacity(max_chunks);
    let mut start = 0;
    let mut acc = 0usize;
    for (i, w) in weights.iter().enumerate() {
        acc += w;
        if acc >= target && out.len() + 1 < max_chunks {
            out.push(start..i + 1);
            start = i + 1;
            acc = 0;
        }
    }
    if start < n {
        out.push(start..n);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_vec_matches_sequential_for_every_worker_count() {
        let items: Vec<u64> = (0..1000).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for workers in [1usize, 2, 3, 4, 8] {
            let pool = WorkerPool::new(workers);
            let got = pool.map_vec(items.clone(), |x| x * x + 1);
            assert_eq!(got, expected, "workers = {workers}");
        }
    }

    #[test]
    fn map_ref_preserves_order() {
        let items: Vec<String> = (0..257).map(|i| format!("item-{i}")).collect();
        let pool = WorkerPool::new(4);
        let got = pool.map_ref(&items, |s| s.len());
        let expected: Vec<usize> = items.iter().map(|s| s.len()).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn weighted_map_handles_heavy_skew() {
        // one huge item plus a sea of small ones: the pool must still
        // return everything in order
        let mut items: Vec<usize> = vec![1_000_000];
        items.extend(1..500);
        let pool = WorkerPool::new(4);
        let got = pool.map_vec_weighted(items.clone(), |w| *w, |w| w + 1);
        let expected: Vec<usize> = items.iter().map(|w| w + 1).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn borrows_stay_valid_across_dispatch() {
        let data: Vec<f64> = (0..10_000).map(|i| i as f64).collect();
        let pool = WorkerPool::new(3);
        let ranges = chunk_ranges(data.len(), 16);
        let sums = pool.map_vec(ranges, |r| data[r].iter().sum::<f64>());
        assert_eq!(sums.iter().sum::<f64>(), data.iter().sum::<f64>());
    }

    #[test]
    fn map_chunks_flattens_in_order() {
        let expected: Vec<usize> = (0..1000).map(|i| i * 3).collect();
        for workers in [1usize, 2, 4, 8] {
            let pool = WorkerPool::new(workers);
            let got = pool.map_chunks(1000, workers * 4, |r| r.map(|i| i * 3).collect());
            assert_eq!(got, expected, "workers = {workers}");
        }
        let pool = WorkerPool::new(4);
        assert_eq!(
            pool.map_chunks(0, 8, |r| r.map(|i| i * 3).collect::<Vec<_>>()),
            Vec::<usize>::new()
        );
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.map_vec(Vec::<u32>::new(), |x| x), Vec::<u32>::new());
        assert_eq!(pool.map_vec(vec![7u32], |x| x * 2), vec![14]);
    }

    #[test]
    fn nested_dispatch_runs_inline_instead_of_deadlocking() {
        // a pooled task dispatching again (same pool or another) must
        // complete: nested dispatches detect the worker context and run
        // inline rather than re-entering a pool
        let outer = WorkerPool::new(2);
        let inner = WorkerPool::new(2);
        let got = outer.map_vec(vec![10usize, 20, 30], |x| {
            let same: usize = outer.map_vec((0..x).collect(), |y| y + 1).iter().sum();
            let other: usize = inner.map_vec((0..x).collect(), |y| y + 1).iter().sum();
            assert_eq!(same, other);
            same
        });
        assert_eq!(got, vec![55, 210, 465]);
    }

    #[test]
    fn worker_panic_propagates_without_deadlock() {
        let pool = WorkerPool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.map_vec((0..64).collect::<Vec<i32>>(), |x| {
                assert!(x != 33, "boom");
                x
            })
        }));
        assert!(result.is_err(), "panic must surface to the caller");
        // the pool remains usable after a propagated panic
        let ok = pool.map_vec(vec![1, 2, 3], |x| x + 1);
        assert_eq!(ok, vec![2, 3, 4]);
    }

    #[test]
    fn chunk_ranges_cover_exactly() {
        for (len, chunks) in [(10usize, 3usize), (1, 8), (0, 4), (16, 16), (100, 7)] {
            let ranges = chunk_ranges(len, chunks);
            let covered: usize = ranges.iter().map(|r| r.len()).sum();
            assert_eq!(covered, len);
            assert!(ranges.iter().all(|r| !r.is_empty()));
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start);
            }
        }
    }

    #[test]
    fn weighted_ranges_cover_exactly() {
        let weights = [100usize, 1, 1, 1, 50, 2, 2, 90, 1];
        let ranges = weighted_ranges(&weights, 4);
        assert!(ranges.len() <= 4);
        let covered: usize = ranges.iter().map(|r| r.len()).sum();
        assert_eq!(covered, weights.len());
        for w in ranges.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
    }

    #[test]
    fn arc_cell_readers_keep_their_snapshot_across_stores() {
        let cell = ArcCell::new(Arc::new(vec![1, 2, 3]));
        let before = cell.load();
        let old = cell.swap(Arc::new(vec![9]));
        assert_eq!(*old, vec![1, 2, 3]);
        assert!(Arc::ptr_eq(&before, &old));
        assert_eq!(*cell.load(), vec![9]);
        // the reader's snapshot is untouched by the store
        assert_eq!(*before, vec![1, 2, 3]);
    }

    #[test]
    fn arc_cell_is_consistent_under_concurrent_load_and_store() {
        let cell = Arc::new(ArcCell::new(Arc::new(0usize)));
        std::thread::scope(|s| {
            let writer_cell = Arc::clone(&cell);
            s.spawn(move || {
                for i in 1..=1000 {
                    writer_cell.store(Arc::new(i));
                }
            });
            for _ in 0..4 {
                let reader_cell = Arc::clone(&cell);
                s.spawn(move || {
                    let mut last = 0usize;
                    for _ in 0..1000 {
                        let v = *reader_cell.load();
                        // values only move forward; no torn/stale regressions
                        assert!(v >= last, "snapshot went backwards: {v} < {last}");
                        last = v;
                    }
                });
            }
        });
        assert_eq!(*cell.load(), 1000);
    }

    #[test]
    fn global_pool_is_shared_and_works() {
        let pool = global();
        assert!(pool.workers() >= 1);
        let got = pool.map_vec((0..100).collect::<Vec<u32>>(), |x| x + 1);
        assert_eq!(got.len(), 100);
        assert_eq!(got[99], 100);
    }
}
